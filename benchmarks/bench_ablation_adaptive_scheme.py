"""A7 — extension: event-triggered classifier invocation.

The paper's conclusion: "We reported a simple invocation scheme.  A
more complete invocation scheme can be developed in future."  The
``adaptive`` case implements one — refresh bursts on situation changes
and perception misses instead of a fixed 300 ms window — and this bench
compares it with the paper's variable scheme on the dynamic track.
"""

from repro.experiments.common import format_table
from repro.hil.engine import HilConfig, HilEngine
from repro.experiments.ablations import compact_track


def test_ablation_adaptive_scheme(once, capsys):
    def study():
        track = compact_track()
        out = {}
        for case in ("variable", "adaptive"):
            result = HilEngine(track, case, config=HilConfig(seed=3)).run()
            lane_scene = sum(
                1
                for c in result.cycles
                if c.invoked and c.invoked[0] in ("lane", "scene")
            )
            out[case] = {
                "mae": result.mae(skip_time_s=2.0),
                "crashed": result.crashed,
                "refresh_frames": lane_scene,
                "cycles": len(result.cycles),
            }
        return out

    results = once(study)
    with capsys.disabled():
        print()
        rows = [
            [
                case,
                "CRASH" if r["crashed"] else f"{r['mae'] * 100:.2f} cm",
                f"{r['refresh_frames']}/{r['cycles']}",
            ]
            for case, r in results.items()
        ]
        print(
            format_table(
                ["scheme", "track MAE", "lane/scene frames"],
                rows,
                title="Extension — event-triggered vs fixed-window invocation",
            )
        )

    assert not results["variable"]["crashed"]
    assert not results["adaptive"]["crashed"]
    # The adaptive scheme must stay competitive while invoking the
    # lane/scene classifiers when situations actually change.
    assert results["adaptive"]["mae"] <= results["variable"]["mae"] * 1.3 + 0.005
