"""E4 — regenerate Table IV (classifier datasets and accuracy).

Training runs once and is cached (~8 minutes cold on a laptop core);
subsequent runs load the cached weights.
"""

from repro.experiments.table4 import format_table4, run_table4


def test_table4_classifiers(once, capsys):
    rows = once(run_table4)
    with capsys.disabled():
        print()
        print(format_table4(rows))

    by_name = {row.name: row for row in rows}
    # Dataset split sizes are the paper's.
    assert by_name["road"].n_train == 5353 and by_name["road"].n_val == 513
    assert by_name["lane"].n_train == 3939 and by_name["lane"].n_val == 842
    assert by_name["scene"].n_train == 3892 and by_name["scene"].n_val == 811
    # All three classifiers reach high accuracy on the synthetic task
    # (the paper reports 99.9 %; our substrate: > 97 %).
    for row in rows:
        assert row.accuracy > 0.97, f"{row.name}: {row.accuracy}"
