"""E6 — regenerate Fig. 6 (static per-situation robustness and QoC).

Default: a representative subset of the 21 situations; REPRO_FULL=1
runs all of them (tens of minutes).
"""

import numpy as np

from repro.experiments.common import scale_note
from repro.experiments.fig6 import CASES_FIG6, format_fig6, run_fig6


def test_fig6_static(once, capsys):
    results = once(run_fig6)
    with capsys.disabled():
        print()
        print(scale_note())
        print(format_fig6(results))

    by_case = {case: {} for case in CASES_FIG6}
    for r in results:
        by_case[r.case][r.index] = r

    # Robustness shape (paper Sec. IV-C): the robust cases never fail.
    assert not any(r.crashed for r in by_case["case3"].values())
    assert not any(r.crashed for r in by_case["case4"].values())

    # Case 1 (static knobs) degrades on the hard turn situations: its
    # worst normalized QoC across turn situations far exceeds case 3's.
    turn_indices = [i for i in by_case["case1"] if i >= 8]
    if turn_indices:
        worst_case1 = max(
            (
                np.inf
                if by_case["case1"][i].crashed
                else by_case["case1"][i].normalized
            )
            for i in turn_indices
        )
        assert worst_case1 > 2.0

    # On day straights the fast cases match or beat the robust baseline.
    straight_days = [i for i in by_case["case1"] if i <= 4]
    for i in straight_days:
        assert not by_case["case1"][i].crashed
