"""EF — fault tolerance: graceful degradation off vs on.

Each scenario runs the same deterministic fault campaign twice
(mitigation disabled / enabled) and the table reports crash + QoC per
arm.  ``extra_info`` records the per-scenario crash/MAE pairs so the
mitigation benefit lands in the benchmark history.
"""

from repro.experiments.fault_tolerance import (
    format_fault_tolerance,
    run_fault_tolerance,
)


def test_fault_tolerance(once, benchmark, capsys):
    results = once(run_fault_tolerance)
    with capsys.disabled():
        print()
        print(format_fault_tolerance(results))

    for r in results:
        key = r.scenario.name.replace("-", "_")
        benchmark.extra_info[f"{key}_crash_off"] = r.baseline.crashed
        benchmark.extra_info[f"{key}_crash_on"] = r.mitigated.crashed
        benchmark.extra_info[f"{key}_mae_off"] = round(r.baseline.mae, 4)
        benchmark.extra_info[f"{key}_mae_on"] = round(r.mitigated.mae, 4)
        benchmark.extra_info[f"{key}_degraded_frac"] = round(
            r.mitigated.degraded_fraction, 3
        )

    # Faults actually fired in every scenario, in both arms.
    assert all(r.baseline.fault_kinds for r in results)
    assert all(r.mitigated.fault_kinds for r in results)
    # Mitigation only ever degrades cycles in the mitigated arm.
    assert all(r.baseline.degraded_fraction == 0.0 for r in results)

    # The acceptance bar: graceful degradation is strictly better on at
    # least one scenario (survives a crash or beats the baseline MAE).
    wins = [r.scenario.name for r in results if r.mitigation_wins]
    assert wins, "mitigation should win at least one scenario"

    # The flagship blind-turn outage: the unmitigated design crashes in
    # the curve, the mitigated one completes the track.
    outage = next(r for r in results if r.scenario.name == "blind-turn-outage")
    assert outage.baseline.crashed
    assert not outage.mitigated.crashed
