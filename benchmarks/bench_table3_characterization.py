"""E3 — regenerate Table III (situation-specific knob characterization).

By default a representative subset of situations is characterized (the
full 21-situation sweep takes tens of minutes: REPRO_FULL=1).

The sweep is the hottest path in the repo, and the parallel runner
(:mod:`repro.utils.parallel`) exists to make it scale: this benchmark
measures the cold-cache wall-clock for ``jobs=1`` and
``jobs=cpu_count`` on the same sweep, asserts the two tables are
bit-identical, and records both timings (plus the speedup) in the
benchmark's ``extra_info`` so the perf trajectory lands in the
BENCH_*.json artifacts.
"""

import os
import time

from repro.core.situation import RoadLayout
from repro.experiments.common import scale_note
from repro.experiments.table3 import format_table3, run_table3


def test_table3_characterization(once, benchmark, capsys, tmp_path, monkeypatch):
    cpu = os.cpu_count() or 1

    # Serial reference, cold cache — this is the benchmarked timing.
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "jobs1"))
    t0 = time.perf_counter()
    rows = once(run_table3, jobs=1)
    serial_s = time.perf_counter() - t0

    parallel_s = serial_s
    if cpu > 1:
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "jobsN"))
        t0 = time.perf_counter()
        parallel_rows = run_table3(jobs=cpu)
        parallel_s = time.perf_counter() - t0
        # Determinism contract: worker count never changes the table.
        assert [(r.index, r.knobs) for r in parallel_rows] == [
            (r.index, r.knobs) for r in rows
        ]

    # Warm-cache phase: the same sweep against the rollout store the
    # jobs=1 run just filled — every rollout (and prescreen vector) is
    # a hit, so the sweep reduces to loads plus ranking.
    from repro.cache import global_stats

    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "jobs1"))
    before = global_stats().snapshot()
    t0 = time.perf_counter()
    warm_rows = run_table3(jobs=1)
    warm_s = time.perf_counter() - t0
    cache_delta = global_stats().since(before)
    assert [(r.index, r.knobs) for r in warm_rows] == [
        (r.index, r.knobs) for r in rows
    ]
    assert cache_delta.hits > 0 and cache_delta.misses == 0
    warm_speedup = serial_s / warm_s if warm_s > 0 else float("inf")
    assert warm_s * 5.0 <= serial_s, (
        f"warm cache gained only {warm_speedup:.1f}x over the "
        f"{serial_s:.1f} s cold sweep (expected >= 5x)"
    )

    speedup = serial_s / parallel_s if parallel_s > 0 else 1.0
    benchmark.extra_info["jobs"] = cpu
    benchmark.extra_info["jobs1_wall_s"] = round(serial_s, 3)
    benchmark.extra_info["jobsN_wall_s"] = round(parallel_s, 3)
    benchmark.extra_info["speedup"] = round(speedup, 3)
    benchmark.extra_info["warm_wall_s"] = round(warm_s, 3)
    benchmark.extra_info["warm_speedup"] = round(warm_speedup, 3)
    benchmark.extra_info["cache_hits"] = cache_delta.hits
    benchmark.extra_info["cache_misses"] = cache_delta.misses

    with capsys.disabled():
        print()
        print(scale_note())
        print(format_table3(rows))
        print(
            f"wall-clock: jobs=1 {serial_s:.1f} s, jobs={cpu} "
            f"{parallel_s:.1f} s ({speedup:.2f}x), warm cache "
            f"{warm_s:.1f} s ({warm_speedup:.1f}x, "
            f"{cache_delta.hits} hits / {cache_delta.misses} misses)"
        )

    # Shape assertions against the paper's Table III:
    for row in rows:
        layout = row.situation.layout
        # Speed knob: 50 on straights; turns pick from the knob set
        # (the paper's sweep settles on 30 for every turn; ours keeps
        # 50 on some left turns — see EXPERIMENTS.md).
        if layout is RoadLayout.STRAIGHT:
            assert row.knobs.speed_kmph == 50.0
        else:
            assert row.knobs.speed_kmph in (30.0, 50.0)
        # ROI knob follows the layout family.
        if layout is RoadLayout.STRAIGHT:
            assert row.knobs.roi == "ROI 1"
        elif layout is RoadLayout.RIGHT:
            assert row.knobs.roi in ("ROI 2", "ROI 3")
        else:
            assert row.knobs.roi in ("ROI 4", "ROI 5")
    # Right turns reproduce the paper's 30 kmph choice.
    for row in rows:
        if row.situation.layout is RoadLayout.RIGHT:
            assert row.knobs.speed_kmph == 30.0
    # Most situations admit a cheap ISP knob -> h = 25 ms sampling.
    fast = sum(1 for row in rows if row.period_ms == 25.0)
    assert fast >= len(rows) // 2
