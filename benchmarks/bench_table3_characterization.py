"""E3 — regenerate Table III (situation-specific knob characterization).

By default a representative subset of situations is characterized (the
full 21-situation sweep takes tens of minutes: REPRO_FULL=1).  Results
are cached under ``~/.cache/repro/characterization``.
"""

from repro.core.situation import RoadLayout
from repro.experiments.common import scale_note
from repro.experiments.table3 import format_table3, run_table3


def test_table3_characterization(once, capsys):
    rows = once(run_table3)
    with capsys.disabled():
        print()
        print(scale_note())
        print(format_table3(rows))

    by_index = {row.index: row for row in rows}
    # Shape assertions against the paper's Table III:
    for row in rows:
        layout = row.situation.layout
        # Speed knob: 50 on straights; turns pick from the knob set
        # (the paper's sweep settles on 30 for every turn; ours keeps
        # 50 on some left turns — see EXPERIMENTS.md).
        if layout is RoadLayout.STRAIGHT:
            assert row.knobs.speed_kmph == 50.0
        else:
            assert row.knobs.speed_kmph in (30.0, 50.0)
        # ROI knob follows the layout family.
        if layout is RoadLayout.STRAIGHT:
            assert row.knobs.roi == "ROI 1"
        elif layout is RoadLayout.RIGHT:
            assert row.knobs.roi in ("ROI 2", "ROI 3")
        else:
            assert row.knobs.roi in ("ROI 4", "ROI 5")
    # Right turns reproduce the paper's 30 kmph choice.
    for row in rows:
        if row.situation.layout is RoadLayout.RIGHT:
            assert row.knobs.speed_kmph == 30.0
    # Most situations admit a cheap ISP knob -> h = 25 ms sampling.
    fast = sum(1 for row in rows if row.period_ms == 25.0)
    assert fast >= len(rows) // 2
