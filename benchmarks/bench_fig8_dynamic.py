"""E8 — regenerate Fig. 8 (dynamic switching on the nine-sector track).

The paper's headline: the robust configuration costs QoC (case 3 worse
than cases 1/2 where those survive), ISP approximation with the scene
classifier recovers ~30 % (case 4), and the variable invocation scheme
~32 % over the robust baseline.
"""

from repro.experiments.fig8 import (
    aggregate_improvements,
    format_fig8,
    run_fig8,
)


def test_fig8_dynamic(once, capsys):
    results = once(run_fig8)
    with capsys.disabled():
        print()
        print(format_fig8(results))

    # The robust cases complete the full track.
    for case in ("case3", "case4", "variable"):
        assert not results[case].crashed, f"{case} crashed"

    aggregates = aggregate_improvements(results)
    # Case 4's per-situation ISP knobs + faster sampling must improve
    # on the robust baseline over the full dynamic track.
    assert aggregates[("case4", "case3")] > 0.0
    # The variable invocation scheme must improve on case 3 as well.
    assert aggregates[("variable", "case3")] > 0.0
