"""E7 — regenerate Fig. 7 (the nine-sector world model)."""

from repro.core.situation import RoadLayout, Scene
from repro.experiments.fig7 import format_fig7, run_fig7


def test_fig7_track(once, capsys):
    rows = once(run_fig7)
    with capsys.disabled():
        print()
        print(format_fig7(rows))

    assert len(rows) == 9
    layouts = [r.situation.layout for r in rows]
    # The track covers straight, left and right layouts (Sec. IV-D).
    assert set(layouts) == {RoadLayout.STRAIGHT, RoadLayout.LEFT, RoadLayout.RIGHT}
    # Sector 2 is the first turn; sector 6 the dotted-lane turn.
    assert layouts[1] is not RoadLayout.STRAIGHT
    assert rows[5].situation.lane_form.value == "dotted"
    # Night -> dark transition at sector 8 -> 9.
    assert rows[7].situation.scene is Scene.NIGHT
    assert rows[8].situation.scene is Scene.DARK
