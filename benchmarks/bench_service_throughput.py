"""Served simulate throughput vs direct facade calls (perf artifact).

Drives one resident :class:`~repro.service.server.ServerThread` (four
pool workers) with 1, 4, and 16 concurrent clients, each issuing its
share of 16 short closed-loop runs at 48x24 camera fidelity, and
compares against the same 16 runs as serial in-process
``repro.api.simulate`` calls.  Each arm reports requests/s and the
nearest-rank p95 per-request latency to ``extra_info``; one served
result is checked bit-identical against its direct twin so the speed
numbers are known to price the same computation.

The interesting quantities are (a) the wire + scheduling overhead at
one client — served must stay within a small factor of direct — and
(b) how throughput scales as concurrent clients fill the four worker
slots.
"""

from __future__ import annotations

import threading
import time

import numpy as np

import repro.api

FRAME = (48, 24)
LENGTH_M = 40.0
TOTAL_REQUESTS = 16
CONCURRENCY_LEVELS = (1, 4, 16)
WORKERS = 4


def _simulate_params(seed):
    return {"seed": seed, "length_m": LENGTH_M, "frame": list(FRAME)}


def _client_worker(connect_kwargs, seeds, latencies, barrier):
    with repro.api.connect(**connect_kwargs) as client:
        barrier.wait()
        for seed in seeds:
            t0 = time.perf_counter()
            client.simulate(timeout=600.0, **_simulate_params(seed))
            latencies.append(time.perf_counter() - t0)


def _drive(connect_kwargs, clients):
    """Issue TOTAL_REQUESTS runs through *clients* concurrent clients.

    Returns (wall seconds, sorted per-request latencies).
    """
    seeds = list(range(1, TOTAL_REQUESTS + 1))
    shares = [seeds[i::clients] for i in range(clients)]
    latencies = []
    barrier = threading.Barrier(clients + 1)
    threads = [
        threading.Thread(
            target=_client_worker,
            args=(connect_kwargs, share, latencies, barrier),
        )
        for share in shares
    ]
    for thread in threads:
        thread.start()
    barrier.wait()
    t0 = time.perf_counter()
    for thread in threads:
        thread.join()
    return time.perf_counter() - t0, sorted(latencies)


def _p95_ms(latencies):
    rank = min(len(latencies) - 1, int(0.95 * len(latencies)))
    return latencies[rank] * 1000.0


def test_service_throughput(benchmark, tmp_path):
    from repro.service.server import ServerThread

    # Serial baseline: the same runs as direct in-process facade calls.
    t0 = time.perf_counter()
    direct = [
        repro.api.simulate(seed=seed, length_m=LENGTH_M, frame=FRAME)
        for seed in range(1, TOTAL_REQUESTS + 1)
    ]
    serial_s = time.perf_counter() - t0
    serial_rps = TOTAL_REQUESTS / serial_s

    arms = {}
    with ServerThread(
        socket_path=str(tmp_path / "bench.sock"),
        workers=WORKERS,
        queue_limit=TOTAL_REQUESTS,
    ) as thread:
        with repro.api.connect(**thread.connect_kwargs) as client:
            served = client.simulate(timeout=600.0, **_simulate_params(1))
        assert np.array_equal(served.lateral_offset, direct[0].lateral_offset), (
            "served result diverged from the direct facade call"
        )
        for clients in CONCURRENCY_LEVELS:
            wall_s, latencies = _drive(thread.connect_kwargs, clients)
            arms[clients] = {
                "rps": TOTAL_REQUESTS / wall_s,
                "p95_ms": _p95_ms(latencies),
            }

        benchmark.extra_info["total_requests"] = TOTAL_REQUESTS
        benchmark.extra_info["workers"] = WORKERS
        benchmark.extra_info["frame"] = list(FRAME)
        benchmark.extra_info["length_m"] = LENGTH_M
        benchmark.extra_info["serial_rps"] = round(serial_rps, 2)
        for clients, arm in arms.items():
            benchmark.extra_info[f"served_c{clients}_rps"] = round(arm["rps"], 2)
            benchmark.extra_info[f"served_c{clients}_p95_ms"] = round(
                arm["p95_ms"], 1
            )

        print(f"\nserial facade      : {serial_rps:6.2f} req/s")
        for clients, arm in arms.items():
            print(
                f"served, {clients:2d} client(s): {arm['rps']:6.2f} req/s"
                f"  p95 {arm['p95_ms']:7.1f} ms"
                f"  (x{arm['rps'] / serial_rps:.2f} vs serial)"
            )

        # Scheduling sanity: more clients than workers must not collapse
        # throughput below the single-client arm.
        assert arms[16]["rps"] >= arms[1]["rps"] * 0.8, (
            "throughput collapsed under concurrent clients"
        )

        # The benchmark's reported time is one served request round trip.
        benchmark.pedantic(
            lambda: _drive(thread.connect_kwargs, 1),
            rounds=1,
            iterations=1,
        )
