"""A1 — ablation: ISP knob apply lag (paper Sec. III-D argument).

The paper configures PR/control knobs in the same cycle but the ISP
knob one cycle later, arguing situations do not change per frame.  The
sweep verifies that 0 vs 1 cycles of lag is QoC-neutral while a much
slower reconfiguration path degrades the dynamic-track QoC.
"""

from repro.experiments.ablations import format_ablation, run_isp_lag_ablation


def test_ablation_isp_apply_lag(once, capsys):
    points = once(run_isp_lag_ablation)
    with capsys.disabled():
        print()
        print(format_ablation("Ablation — ISP knob apply lag (case 4)", points))

    by_lag = {p.setting: p for p in points}
    base = by_lag["lag=1 cycles"]
    oracle = by_lag["lag=0 cycles"]
    assert not base.crashed and not oracle.crashed
    # One cycle of ISP lag costs (almost) nothing vs the same-cycle
    # oracle: within 20 % relative QoC.
    assert base.mae <= oracle.mae * 1.2 + 0.005
