"""E2 — regenerate Table II (knob inventory and profiled runtimes)."""

from repro.experiments.table2 import format_table2, run_table2


def test_table2_runtimes(once, capsys):
    data = once(run_table2)
    with capsys.disabled():
        print()
        print(format_table2(data))

    isp_rows = {row.name: row for row in data["isp"]}
    # The paper's profiled values must be reproduced exactly (they feed
    # the timing model).
    assert isp_rows["S0"].xavier_ms == 21.5
    assert isp_rows["S3"].xavier_ms == 3.3
    # Our Python ISP shows the same structural split the Xavier does:
    # the full pipeline costs more than the cheap approximations.
    assert isp_rows["S0"].python_ms > isp_rows["S5"].python_ms
    assert data["pr_runtime_ms"] == 3.0
