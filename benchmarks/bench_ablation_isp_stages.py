"""A3 — ablation: per-stage ISP contribution per scene.

Drops single ISP stages (S1: -DN, S2: -CM, S3: -GM, S4: -TM) and
measures the detection bad-frame rate per scene — the mechanism behind
the situation-specific ISP knobs of Table III.
"""

from repro.experiments.ablations import run_isp_stage_ablation
from repro.experiments.common import format_table


def test_ablation_isp_stages(once, capsys):
    data = once(run_isp_stage_ablation)
    with capsys.disabled():
        print()
        headers = ["scene", "full", "-DN", "-CM", "-GM", "-TM"]
        rows = [
            [
                scene,
                *(f"{row[h] * 100:.0f}%" for h in headers[1:]),
            ]
            for scene, row in data.items()
        ]
        print(
            format_table(
                headers, rows, title="Ablation — ISP stage drop (bad-frame rate)"
            )
        )

    # Day tolerates dropping the tone map; the full pipeline handles
    # every scene.
    assert data["day"]["-TM"] <= data["day"]["full"] + 0.10
    assert data["dark"]["full"] <= 0.25
    # In the dark, dropping tone map or denoise hurts most.
    assert data["dark"]["-TM"] >= data["day"]["-TM"]
