"""E1 — regenerate Fig. 1 (accuracy vs FPS trade-off)."""

from repro.experiments.common import scale_note
from repro.experiments.fig1 import format_fig1, run_fig1


def test_fig1_tradeoff(once, capsys):
    points = once(run_fig1)
    with capsys.disabled():
        print()
        print(scale_note())
        print(format_fig1(points))

    by_name = {p.name: p for p in points}
    static = by_name["sliding window (static)"]
    proposed = by_name["proposed (situation-aware)"]
    dense = [p for name, p in by_name.items() if "dense" in name]

    # Shape assertions from the paper's Fig. 1:
    # the static sliding window is the least accurate detector,
    assert static.accuracy < proposed.accuracy
    assert all(static.accuracy < p.accuracy for p in dense)
    # the dense (CNN-class) detectors are far below real time,
    assert all(p.fps < 10.0 for p in dense)
    # and the proposed design keeps a near-sliding-window frame rate.
    assert proposed.fps > 25.0
    assert static.fps > 35.0
