"""E5 — regenerate Table V (design cases and derived timing)."""

import pytest

from repro.experiments.table5 import format_table5, run_table5


def test_table5_cases(once, capsys):
    rows = once(run_table5)
    with capsys.disabled():
        print()
        print(format_table5(rows))

    by_name = {row.case.name: row for row in rows}
    # The paper's [h, tau] annotations are reproduced exactly for the
    # static-ISP cases.
    assert by_name["case1"].delay_ms == pytest.approx(24.6, abs=0.05)
    assert by_name["case1"].period_ms == 25.0
    assert by_name["case2"].delay_ms == pytest.approx(30.1, abs=0.05)
    assert by_name["case2"].period_ms == 35.0
    assert by_name["case3"].delay_ms == pytest.approx(35.6, abs=0.05)
    assert by_name["case3"].period_ms == 40.0
    # The variable scheme charges only one classifier slot per frame.
    assert by_name["variable"].delay_ms < by_name["case4"].delay_ms
