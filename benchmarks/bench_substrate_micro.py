"""Micro-benchmarks of the substrate hot paths (repeated timing).

Unlike the experiment benches (one run, scientific output), these
measure throughput of the individual pipeline pieces: frame rendering,
ISP configurations, perception, control design and classifier
inference.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.classifiers.models import build_tiny_resnet
from repro.control.lqr import design_lqr
from repro.core.situation import situation_by_index
from repro.isp.pipeline import IspPipeline
from repro.perception.pipeline import PerceptionPipeline
from repro.sim.camera import CameraModel
from repro.sim.renderer import RoadSceneRenderer
from repro.sim.vehicle import Vehicle, VehicleParams, VehicleState
from repro.sim.world import static_situation_track


@pytest.fixture(scope="module")
def scene():
    camera = CameraModel(width=384, height=192)
    track = static_situation_track(situation_by_index(1), length=200.0)
    renderer = RoadSceneRenderer(camera, track, seed=0)
    pose = track.pose_at(40.0, 0.1)
    raw = renderer.render_raw(pose)
    rgb = IspPipeline("S0").process(raw)
    return camera, track, renderer, pose, raw, rgb


def test_bench_render_raw(benchmark, scene):
    _, _, renderer, pose, _, _ = scene
    benchmark(renderer.render_raw, pose)


@pytest.mark.parametrize("config", ["S0", "S3", "S5", "S8"])
def test_bench_isp(benchmark, scene, config):
    _, _, _, _, raw, _ = scene
    pipeline = IspPipeline(config)
    pipeline.process(raw)  # warm shape caches
    benchmark(pipeline.process, raw)


def test_bench_perception(benchmark, scene):
    camera, _, _, _, _, rgb = scene
    pipeline = PerceptionPipeline(camera, "ROI 1")
    pipeline.process(rgb)
    benchmark(pipeline.process, rgb)


def test_bench_lqr_design(benchmark):
    params = VehicleParams()
    benchmark(design_lqr, params, 13.9, 0.025, 0.0246)


def test_bench_vehicle_step(benchmark):
    from repro.sim.geometry import Pose2D

    vehicle = Vehicle(VehicleParams(), VehicleState(pose=Pose2D(0, 0, 0)))
    benchmark(vehicle.step, 0.005, 0.05)


def test_bench_classifier_inference(benchmark):
    model = build_tiny_resnet(5, seed=0)
    x = np.random.default_rng(0).standard_normal((1, 3, 24, 48)).astype(np.float32)
    model.forward(x)
    benchmark(model.forward, x)
