"""Micro-benchmarks of the substrate hot paths (repeated timing).

Unlike the experiment benches (one run, scientific output), these
measure throughput of the individual pipeline pieces: frame rendering,
ISP configurations, perception, control design and classifier
inference.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.classifiers.models import build_tiny_resnet
from repro.control.lqr import design_lqr
from repro.core.situation import situation_by_index
from repro.isp.pipeline import IspPipeline
from repro.perception.pipeline import PerceptionPipeline
from repro.sim.camera import CameraModel
from repro.sim.renderer import RoadSceneRenderer
from repro.sim.vehicle import Vehicle, VehicleParams, VehicleState
from repro.sim.world import static_situation_track


@pytest.fixture(scope="module")
def scene():
    camera = CameraModel(width=384, height=192)
    track = static_situation_track(situation_by_index(1), length=200.0)
    renderer = RoadSceneRenderer(camera, track, seed=0)
    pose = track.pose_at(40.0, 0.1)
    raw = renderer.render_raw(pose)
    rgb = IspPipeline("S0").process(raw)
    return camera, track, renderer, pose, raw, rgb


def test_bench_render_raw(benchmark, scene):
    _, _, renderer, pose, _, _ = scene
    benchmark(renderer.render_raw, pose)


@pytest.mark.parametrize("config", ["S0", "S3", "S5", "S8"])
def test_bench_isp(benchmark, scene, config):
    _, _, _, _, raw, _ = scene
    pipeline = IspPipeline(config)
    pipeline.process(raw)  # warm shape caches
    benchmark(pipeline.process, raw)


def test_bench_perception(benchmark, scene):
    camera, _, _, _, _, rgb = scene
    pipeline = PerceptionPipeline(camera, "ROI 1")
    pipeline.process(rgb)
    benchmark(pipeline.process, rgb)


def test_bench_lqr_design(benchmark):
    params = VehicleParams()
    benchmark(design_lqr, params, 13.9, 0.025, 0.0246)


def test_bench_vehicle_step(benchmark):
    from repro.sim.geometry import Pose2D

    vehicle = Vehicle(VehicleParams(), VehicleState(pose=Pose2D(0, 0, 0)))
    benchmark(vehicle.step, 0.005, 0.05)


def _time_forward(model, x, repeats: int = 50) -> float:
    """Best-of-repeats forward wall clock in milliseconds."""
    import time

    model.forward(x)  # warm caches
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        model.forward(x)
        best = min(best, time.perf_counter() - t0)
    return best * 1e3


def test_bench_classifier_inference(benchmark):
    """Deployment-path (fused) inference, with the optimisation ledger.

    ``extra_info`` records the fast-path win of this PR: seed-style
    (allocating im2col, unfused) vs unfused-with-scratch vs fused, plus
    the end-to-end speedup and the fused/unfused numeric agreement.
    """
    import repro.nn.layers as nn_layers

    model = build_tiny_resnet(5, seed=0)
    fused = model.fuse()
    x = np.random.default_rng(0).standard_normal((1, 3, 24, 48)).astype(np.float32)

    # Seed-style baseline: disable the inference scratch pool so conv
    # falls back to the allocating np.pad/im2col path of the seed tree.
    saved = nn_layers._INFERENCE_SCRATCH
    nn_layers._INFERENCE_SCRATCH = None
    try:
        seed_style_ms = _time_forward(model, x)
    finally:
        nn_layers._INFERENCE_SCRATCH = saved
    unfused_ms = _time_forward(model, x)
    fused_ms = _time_forward(fused, x)
    max_diff = float(np.max(np.abs(model.forward(x) - fused.forward(x))))

    benchmark.extra_info["seed_style_ms"] = round(seed_style_ms, 4)
    benchmark.extra_info["unfused_ms"] = round(unfused_ms, 4)
    benchmark.extra_info["fused_ms"] = round(fused_ms, 4)
    benchmark.extra_info["speedup_vs_seed"] = round(seed_style_ms / fused_ms, 2)
    benchmark.extra_info["fused_max_abs_diff"] = max_diff

    assert max_diff < 1e-4
    assert seed_style_ms / fused_ms >= 2.0

    benchmark(fused.forward, x)
