"""A5 — Monte-Carlo knob sensitivity (paper Sec. III-B, first step).

Reproduces the analysis that selected the configurable knobs: on a turn
situation the ROI (and speed) dominate the QoC variance; on a dark
straight the ISP configuration does.
"""

from repro.core.sensitivity import SensitivityConfig, knob_sensitivity
from repro.core.situation import situation_by_index
from repro.experiments.common import format_table


def test_knob_sensitivity(once, capsys):
    def study():
        turn = knob_sensitivity(
            situation_by_index(8), SensitivityConfig(n_samples=14)
        )
        dark = knob_sensitivity(
            situation_by_index(7),
            SensitivityConfig(
                n_samples=14, roi_names=("ROI 1",), isp_names=("S0", "S2", "S5", "S7")
            ),
        )
        return turn, dark

    turn, dark = once(study)
    with capsys.disabled():
        print()
        rows = [
            [
                report.situation.describe(),
                *(f"{report.main_effect[k] * 100:.0f}%" for k in ("isp", "roi", "speed")),
            ]
            for report in (turn, dark)
        ]
        print(
            format_table(
                ["situation", "ISP effect", "ROI effect", "speed effect"],
                rows,
                title="Monte-Carlo knob sensitivity (share of QoC variance)",
            )
        )

    # On a turn, the ROI knob explains a large share of the variance.
    assert turn.main_effect["roi"] >= 0.2
    # In the dark, with the ROI pinned, the ISP knob dominates.
    assert dark.main_effect["isp"] >= 0.3
    assert dark.ranked_knobs()[0] == "isp"
