"""A9 — ablation: task-mapping optimization on the CPU/GPU pair.

The paper maps the pipeline as a chain (Fig. 4b).  The scene
classifier's output only feeds the *next* cycle's ISP knob, so its GPU
time can legally overlap the CPU-side perception — a mapping
optimization the DAG scheduler quantifies: the case-4 cycle shortens by
min(scene, PR) = 3.0 ms, which is occasionally a whole 5 ms sampling
bin.
"""

from repro.experiments.common import format_table
from repro.isp.configs import ISP_CONFIGS
from repro.platform.dag import dag_delay_ms, lkas_dag
from repro.platform.schedule import period_for_delay


def test_ablation_mapping_overlap(once, capsys):
    def study():
        rows = []
        for isp in ("S0", "S3", "S5"):
            chain = dag_delay_ms(
                lkas_dag(isp, ("road", "lane", "scene")), dynamic_isp=True
            )
            overlap = dag_delay_ms(
                lkas_dag(isp, ("road", "lane", "scene"), overlap_scene=True),
                dynamic_isp=True,
            )
            rows.append(
                (
                    isp,
                    chain,
                    period_for_delay(chain),
                    overlap,
                    period_for_delay(overlap),
                )
            )
        return rows

    rows = once(study)
    with capsys.disabled():
        print()
        print(
            format_table(
                ["ISP", "chain tau", "chain h", "overlap tau", "overlap h"],
                [
                    [isp, f"{ct:.1f}", f"{ch:.0f}", f"{ot:.1f}", f"{oh:.0f}"]
                    for isp, ct, ch, ot, oh in rows
                ],
                title="Ablation — overlapping the scene classifier with PR",
            )
        )

    for isp, chain_tau, _, overlap_tau, _ in rows:
        assert overlap_tau < chain_tau
