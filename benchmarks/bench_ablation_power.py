"""A8 — ablation: Xavier power budget (hardware-awareness).

The paper measures at the Xavier 30 W preset.  Rescaling the profiled
runtimes to the 15 W / 10 W nvpmodel presets lengthens the sensing
chain, which pushes ``(tau, h)`` design points out and degrades the
closed-loop QoC — the "hardware-aware" half of the paper's title made
explicit.
"""

from repro.core.situation import situation_by_index
from repro.experiments.common import format_table
from repro.hil.engine import HilConfig, HilEngine
from repro.platform.schedule import pipeline_timing
from repro.sim.world import static_situation_track


def test_ablation_power_modes(once, capsys):
    def study():
        timings = {
            mode: pipeline_timing("S0", ("road", "lane"), power_mode=mode)
            for mode in ("MAXN", "30W", "15W", "10W")
        }
        track = static_situation_track(situation_by_index(5), length=120.0)
        qoc = {}
        for mode in ("30W", "10W"):
            config = HilConfig(seed=3, power_mode=mode)
            result = HilEngine(track, "case3", config=config).run()
            qoc[mode] = (result.mae(skip_time_s=2.0), result.crashed)
        return timings, qoc

    timings, qoc = once(study)
    with capsys.disabled():
        print()
        rows = [
            [mode, f"{t.delay_ms:.1f}", f"{t.period_ms:.0f}", f"{t.fps:.1f}"]
            for mode, t in timings.items()
        ]
        print(
            format_table(
                ["power mode", "tau ms (case 3)", "h ms", "FPS"],
                rows,
                title="Ablation — Xavier power budget vs timing",
            )
        )
        for mode, (mae, crashed) in qoc.items():
            status = "CRASH" if crashed else f"MAE {mae * 100:.2f} cm"
            print(f"  closed loop at {mode}: {status}")

    # Lower budgets -> slower clocks -> longer delays and periods.
    assert timings["10W"].delay_ms > timings["15W"].delay_ms > timings["30W"].delay_ms
    assert timings["10W"].period_ms >= timings["30W"].period_ms
    # The 30 W design point reproduces the paper's case 3 annotation.
    assert abs(timings["30W"].delay_ms - 35.6) < 0.05
    # The loop must remain stable even at the lowest budget.
    assert not qoc["10W"][1]
