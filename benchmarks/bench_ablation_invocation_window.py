"""A2 — ablation: variable-scheme invocation window (paper footnote 8).

The paper bounds the window by the ~400 ms look-ahead validity at
50 kmph and uses 300 ms.  The sweep shows the scheme works across a
range of windows and the dynamic track is completed without crashes.
"""

from repro.experiments.ablations import (
    format_ablation,
    run_invocation_window_ablation,
)


def test_ablation_invocation_window(once, capsys):
    points = once(run_invocation_window_ablation)
    with capsys.disabled():
        print()
        print(
            format_ablation(
                "Ablation — variable-scheme window (variable case)", points
            )
        )

    # All windows keep the loop alive on the dynamic track.
    assert not any(p.crashed for p in points)
    maes = {p.setting: p.mae for p in points}
    # The paper's 300 ms window is competitive: within 50 % of the best.
    best = min(maes.values())
    assert maes["window=300 ms"] <= best * 1.5 + 0.005
