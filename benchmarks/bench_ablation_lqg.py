"""A6 — extension: LQG filtering of the noisy look-ahead measurement.

The paper points at the left-turn situations (15/16), where the dotted
right lane far from the camera adds sensor noise, and suggests an LQG
controller as future work.  This bench runs that extension: case 3 on
the left-turn situation with and without the Kalman filter.
"""

from repro.core.situation import situation_by_index
from repro.experiments.common import format_table
from repro.hil.engine import HilConfig, HilEngine
from repro.sim.world import static_situation_track


def test_ablation_lqg(once, capsys):
    def study():
        track = static_situation_track(situation_by_index(15), length=140.0)
        out = {}
        for use_lqg in (False, True):
            config = HilConfig(seed=3, use_lqg=use_lqg)
            result = HilEngine(track, "case3", config=config).run()
            out["lqg" if use_lqg else "lqr"] = (
                result.mae(skip_time_s=2.0),
                result.crashed,
            )
        return out

    results = once(study)
    with capsys.disabled():
        print()
        rows = [
            [name, "CRASH" if crashed else f"{mae * 100:.2f} cm"]
            for name, (mae, crashed) in results.items()
        ]
        print(
            format_table(
                ["controller", "MAE (left turn, sit. 15)"],
                rows,
                title="Extension — LQG on the noisy left-turn situation",
            )
        )

    assert not results["lqr"][1] and not results["lqg"][1]
    # The filter must not degrade QoC on the noisy situation; the paper
    # expects an improvement.
    assert results["lqg"][0] <= results["lqr"][0] * 1.05
