"""Per-stage wall clock of one closed-loop cycle (this PR's profiler).

Runs a short HiL episode with :class:`HilConfig` profiling enabled and
records each stage's measured mean latency in ``extra_info``, next to
the Table II modeled figure the control design assumes.  This is the
observability counterpart of ``bench_table2_runtimes``: that bench
reproduces the *modeled* numbers, this one shows where this host's
wall clock actually goes.
"""

from __future__ import annotations

from repro.core.situation import situation_by_index
from repro.hil.engine import HilConfig, HilEngine
from repro.platform.profiles import control_runtime_ms, pr_runtime_ms
from repro.sim.world import static_situation_track
from repro.utils.profiling import format_stage_table


def test_pipeline_stage_profile(once, benchmark, capsys):
    track = static_situation_track(situation_by_index(1), length=60.0)
    config = HilConfig(
        seed=7, frame_width=192, frame_height=96, profile=True
    )
    engine = HilEngine(track, "case4", config=config)
    result = once(engine.run)

    assert result.profile, "profiling was enabled but no stats were recorded"
    with capsys.disabled():
        print()
        print(result.profile_table())

    for label, stat in result.profile.items():
        benchmark.extra_info[f"{label}_mean_ms"] = round(stat.mean_ms, 4)
        benchmark.extra_info[f"{label}_count"] = stat.count
    benchmark.extra_info["modeled_pr_ms"] = pr_runtime_ms()
    benchmark.extra_info["modeled_control_ms"] = control_runtime_ms()

    # Every cycle must have passed through the whole sensing chain.
    cycles = len(result.cycles)
    for label in ("hil.render", "hil.isp", "hil.pr", "hil.control"):
        assert result.profile[label].count == cycles
    # The table renderer must accept the stats it produced.
    assert "hil.isp" in format_stage_table(result.profile)
