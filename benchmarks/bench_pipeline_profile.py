"""Per-stage wall clock of one closed-loop cycle (this PR's profiler).

Runs a short HiL episode with :class:`HilConfig` profiling enabled and
records each stage's measured mean latency in ``extra_info``, next to
the Table II modeled figure the control design assumes.  This is the
observability counterpart of ``bench_table2_runtimes``: that bench
reproduces the *modeled* numbers, this one shows where this host's
wall clock actually goes.

Also pins the telemetry no-op contract: with no recorder active the
per-cycle hooks cost one ``get_active() is None`` check, so a disabled
run's wall clock and simulated arrays must be indistinguishable from a
build without the subsystem.
"""

from __future__ import annotations

import time

import numpy as np

from repro.core.situation import situation_by_index
from repro.hil.engine import HilConfig, HilEngine
from repro.platform.profiles import control_runtime_ms, pr_runtime_ms
from repro.sim.world import static_situation_track
from repro.telemetry import TelemetryRecorder, activated
from repro.utils.profiling import format_stage_table


def test_pipeline_stage_profile(once, benchmark, capsys):
    track = static_situation_track(situation_by_index(1), length=60.0)
    config = HilConfig(
        seed=7, frame_width=192, frame_height=96, profile=True
    )
    engine = HilEngine(track, "case4", config=config)
    result = once(engine.run)

    assert result.profile, "profiling was enabled but no stats were recorded"
    with capsys.disabled():
        print()
        print(result.profile_table())

    for label, stat in result.profile.items():
        benchmark.extra_info[f"{label}_mean_ms"] = round(stat.mean_ms, 4)
        benchmark.extra_info[f"{label}_count"] = stat.count
    benchmark.extra_info["modeled_pr_ms"] = pr_runtime_ms()
    benchmark.extra_info["modeled_control_ms"] = control_runtime_ms()

    # Every cycle must have passed through the whole sensing chain.
    cycles = len(result.cycles)
    for label in ("hil.render", "hil.isp", "hil.pr", "hil.control"):
        assert result.profile[label].count == cycles
    # The table renderer must accept the stats it produced.
    assert "hil.isp" in format_stage_table(result.profile)


def test_telemetry_noop_overhead(once, benchmark):
    """Disabled telemetry must not be measurable in the closed loop."""
    track = static_situation_track(situation_by_index(1), length=60.0)
    config = HilConfig(seed=7, frame_width=192, frame_height=96)

    def run_pair():
        t0 = time.perf_counter()
        disabled = HilEngine(track, "case4", config=config).run()
        t1 = time.perf_counter()
        with activated(TelemetryRecorder()) as rec:
            enabled = HilEngine(track, "case4", config=config).run()
        t2 = time.perf_counter()
        return disabled, enabled, rec, t1 - t0, t2 - t1

    disabled, enabled, rec, off_s, on_s = once(run_pair)

    benchmark.extra_info["telemetry_off_s"] = round(off_s, 4)
    benchmark.extra_info["telemetry_on_s"] = round(on_s, 4)
    benchmark.extra_info["events_recorded"] = len(rec.events)

    # The observability contract: same simulated trace either way.
    np.testing.assert_array_equal(disabled.time_s, enabled.time_s)
    np.testing.assert_array_equal(
        disabled.lateral_offset, enabled.lateral_offset
    )
    np.testing.assert_array_equal(disabled.steering, enabled.steering)
    assert len(rec.events) >= 2 * len(enabled.cycles)
