"""A4 — ablation: curvature feed-forward extension.

The paper's controller consumes ``y_L`` only; the reproduction keeps a
production-style curvature feed-forward available.  This ablation
compares case 3 on the dynamic track with and without it.
"""

from repro.experiments.ablations import format_ablation, run_feedforward_ablation


def test_ablation_feedforward(once, capsys):
    points = once(run_feedforward_ablation)
    with capsys.disabled():
        print()
        print(format_ablation("Ablation — curvature feed-forward (case 3)", points))

    # Both variants must complete the dynamic track.
    assert not any(p.crashed for p in points)
