"""Benchmark harness configuration.

Every benchmark regenerates one paper artifact (table or figure) and
prints the paper-vs-measured rows.  Heavy closed-loop experiments run
once per benchmark (``pedantic(rounds=1)``); the timing numbers report
the experiment's wall cost, and the printed tables are the scientific
output.  Set ``REPRO_FULL=1`` for full-scale sweeps.
"""

from __future__ import annotations

import pytest


@pytest.fixture()
def once(benchmark):
    """Run a callable exactly once under pytest-benchmark."""

    def runner(fn, *args, **kwargs):
        return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)

    return runner
