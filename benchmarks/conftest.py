"""Benchmark harness configuration.

Every benchmark regenerates one paper artifact (table or figure) and
prints the paper-vs-measured rows.  Heavy closed-loop experiments run
once per benchmark (``pedantic(rounds=1)``); the timing numbers report
the experiment's wall cost, and the printed tables are the scientific
output.  Set ``REPRO_FULL=1`` for full-scale sweeps.

Every benchmark's ``extra_info`` additionally records run provenance —
git SHA, package version, CPU count, and the sweep-shaping environment
knobs (``REPRO_JOBS``, ``REPRO_BATCH``) — so saved benchmark JSON can
be compared across machines and revisions without guessing what
produced it.
"""

from __future__ import annotations

import os
import subprocess

import pytest


def _git_sha() -> str:
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            capture_output=True,
            text=True,
            timeout=10,
            cwd=os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
        )
        return out.stdout.strip() if out.returncode == 0 else "unknown"
    except OSError:
        return "unknown"


@pytest.fixture(autouse=True)
def provenance(benchmark):
    """Stamp every benchmark's ``extra_info`` with run provenance."""
    from repro.utils.version import __version__

    benchmark.extra_info["git_sha"] = _git_sha()
    benchmark.extra_info["version"] = __version__
    benchmark.extra_info["cpu_count"] = os.cpu_count()
    benchmark.extra_info["repro_jobs"] = os.environ.get("REPRO_JOBS", "")
    benchmark.extra_info["repro_batch"] = os.environ.get("REPRO_BATCH", "")
    return benchmark


@pytest.fixture()
def once(benchmark):
    """Run a callable exactly once under pytest-benchmark."""

    def runner(fn, *args, **kwargs):
        return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)

    return runner
