"""Batched lock-step rollouts vs the serial sweep (perf artifact).

Evaluates one reduced-fidelity characterization slice — a
same-situation knob grid of 16 rollouts at 48x24 camera fidelity —
four ways: the serial per-task path, and lock-step lane chunks of 4,
16, and auto.  Each arm's wall clock, its speedup over serial, and the
batch composition go to ``extra_info``; every arm must agree
bit-identically with the serial sweep, and the auto batch must clear
3x over the serial single-process sweep (the headroom the batched
plant/render/ISP/perception kernels buy by amortizing numpy dispatch
across lanes).

Timings are best-of-2 per arm: the suite shares one CPU with whatever
else the host runs, and ``min`` is the standard robust estimator for
wall-clock under external load.
"""

from __future__ import annotations

import time

from repro.core.characterization import (
    CharacterizationConfig,
    _knob_tasks,
    _knob_worker,
    _run_knob_tasks,
    roi_candidates,
)
from repro.core.situation import TABLE3_SITUATIONS

#: Reduced-fidelity slice: short track, four ISP candidates, both ROI
#: presets of a curved layout, both speeds -> 16 closed-loop rollouts
#: at 48x24 camera fidelity (the BEV stays at its native 96x128, so
#: perception and plant stepping keep their full weight).
CONFIG = CharacterizationConfig(
    isp_names=("S0", "S2", "S5", "S7"),
    speeds_kmph=(30.0, 50.0),
    track_length=60.0,
    seed=11,
    frame_width=48,
    frame_height=24,
)

_ROUNDS = 2


def _slice_tasks():
    situation = next(
        s for s in TABLE3_SITUATIONS if len(roi_candidates(s)) > 1
    )
    return _knob_tasks(situation, CONFIG.isp_names, CONFIG)


def _best_of(fn, rounds=_ROUNDS):
    """Run *fn* *rounds* times; return (last result, fastest wall-clock)."""
    best = float("inf")
    for _ in range(rounds):
        t0 = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - t0)
    return result, best


def test_batched_rollouts_speedup(benchmark):
    tasks = _slice_tasks()

    serial, serial_s = _best_of(lambda: [_knob_worker(t) for t in tasks])

    arms = {}
    for label, batch in (("batch4", 4), ("batch16", 16), ("batch_auto", "auto")):
        results, wall_s = _best_of(lambda b=batch: _run_knob_tasks(tasks, 1, b))
        assert results == serial, f"{label} diverged from the serial sweep"
        arms[label] = wall_s

    benchmark.extra_info["n_tasks"] = len(tasks)
    benchmark.extra_info["frame"] = [CONFIG.frame_width, CONFIG.frame_height]
    benchmark.extra_info["rounds"] = _ROUNDS
    benchmark.extra_info["serial_s"] = round(serial_s, 3)
    for label, wall_s in arms.items():
        benchmark.extra_info[f"{label}_s"] = round(wall_s, 3)
        benchmark.extra_info[f"{label}_speedup"] = round(serial_s / wall_s, 2)

    print(f"\nserial sweep       : {serial_s:7.2f} s  (x1.00)")
    for label, wall_s in arms.items():
        print(
            f"{label:<19}: {wall_s:7.2f} s  (x{serial_s / wall_s:.2f})"
        )

    auto_speedup = serial_s / arms["batch_auto"]
    assert auto_speedup >= 3.0, (
        f"batch=auto speedup {auto_speedup:.2f}x below the 3x bar"
    )

    # The benchmark's reported time is the batched sweep.
    benchmark.pedantic(
        lambda: _run_knob_tasks(tasks, 1, "auto"), rounds=1, iterations=1
    )
