"""Tests for the repro.api facade, the identifier registry, and the
``invocation_window_ms`` keyword unification."""

from __future__ import annotations

import numpy as np
import pytest

import repro
from repro.api import ProfileReport
from repro.core.cases import case_config
from repro.core.characterization import CharacterizationConfig
from repro.core.identifiers import (
    register_identifier,
    registered_identifiers,
    resolve_identifier,
)
from repro.core.reconfiguration import (
    MitigationConfig,
    OracleIdentifier,
    ReconfigurationManager,
)
from repro.core.situation import situation_by_index
from repro.hil.engine import HilConfig, HilEngine
from repro.sim.world import static_situation_track

FAST = dict(frame_width=192, frame_height=96)
FRAME = (192, 96)

#: Same tiny sweep as tests/test_characterization.py.
TINY = CharacterizationConfig(
    isp_names=("S0", "S7"),
    speeds_kmph=(50.0,),
    track_length=70.0,
    prescreen_frames=6,
    max_isp_candidates=2,
    frame_width=192,
    frame_height=96,
    seed=5,
)


class TestFacade:
    def test_top_level_exports(self):
        for name in ("simulate", "characterize", "profile", "inject"):
            assert name in repro.__all__
            assert callable(getattr(repro, name))
        assert repro.ProfileReport is ProfileReport

    def test_functions_are_keyword_only(self):
        with pytest.raises(TypeError):
            repro.simulate(1)  # type: ignore[misc]
        with pytest.raises(TypeError):
            repro.inject("blackout")  # type: ignore[misc]
        with pytest.raises(TypeError, match="faults"):
            repro.inject()  # type: ignore[call-arg]

    def test_simulate_matches_direct_engine_run(self):
        via_api = repro.simulate(
            situation=1, case="case3", length_m=70.0, seed=7, frame=FRAME
        )
        track = static_situation_track(situation_by_index(1), length=70.0)
        direct = HilEngine(track, "case3", config=HilConfig(seed=7, **FAST)).run()
        assert np.array_equal(via_api.lateral_offset, direct.lateral_offset)
        assert np.array_equal(via_api.steering, direct.steering)
        assert via_api.cycles == direct.cycles

    def test_shortcut_keywords_compose_with_config(self):
        base = HilConfig(seed=7, **FAST)
        from_config = repro.simulate(length_m=70.0, config=base)
        from_keywords = repro.simulate(length_m=70.0, seed=7, frame=FRAME)
        assert np.array_equal(from_config.lateral_offset, from_keywords.lateral_offset)
        # Keywords override the base config field by field.
        reseeded = repro.simulate(length_m=70.0, seed=11, config=base)
        assert not np.array_equal(reseeded.lateral_offset, from_config.lateral_offset)

    def test_simulate_accepts_situation_instance_and_track(self):
        situation = situation_by_index(8)
        by_index = repro.simulate(situation=8, length_m=70.0, seed=7, frame=FRAME)
        by_instance = repro.simulate(
            situation=situation, length_m=70.0, seed=7, frame=FRAME
        )
        assert np.array_equal(by_index.lateral_offset, by_instance.lateral_offset)
        track = static_situation_track(situation, length=70.0)
        by_track = repro.simulate(track=track, situation=8, seed=7, frame=FRAME)
        assert np.array_equal(by_track.lateral_offset, by_index.lateral_offset)

    def test_inject_runs_campaign_and_mitigation_kwarg(self):
        result = repro.inject(
            faults="banding@1000:2000",
            length_m=70.0,
            seed=7,
            frame=FRAME,
            mitigate=False,
        )
        assert result.fault_kinds() == ("banding",)
        assert result.degraded_cycles() == 0
        custom = repro.inject(
            faults="outage@1000:inf",
            length_m=70.0,
            seed=7,
            frame=FRAME,
            mitigate=MitigationConfig(stale_after_ms=500.0),
        )
        assert custom.degraded_cycles() > 0

    def test_profile_returns_report_with_modeled_latencies(self):
        report = repro.profile(length_m=40.0, seed=7, frame=FRAME)
        assert isinstance(report, ProfileReport)
        assert report.result.profile, "profiling must be forced on"
        assert "hil.pr" in report.modeled_ms
        assert "hil.control" in report.modeled_ms
        text = report.table()
        assert "hil.control" in text and "model ms" in text

    def test_characterize_single_situation_returns_ranked_evaluations(self):
        evaluations = repro.characterize(situation=1, config=TINY)
        assert evaluations, "sweep must produce evaluations"
        survivors = [e for e in evaluations if not e.crashed]
        assert survivors == sorted(survivors, key=lambda e: e.mae)

    def test_characterize_rejects_both_selectors(self):
        with pytest.raises(ValueError, match="not both"):
            repro.characterize(situation=1, situations=[1, 2], config=TINY)


class TestIdentifierRegistry:
    def test_builtin_names(self):
        names = registered_identifiers()
        assert "oracle" in names and "cnn" in names

    def test_resolve_oracle_specs(self):
        perfect = resolve_identifier("oracle", seed=3)
        assert isinstance(perfect, OracleIdentifier)
        assert perfect.accuracy == 1.0
        degraded = resolve_identifier("oracle:0.9", seed=3)
        assert degraded.accuracy == pytest.approx(0.9)
        assert resolve_identifier(None, seed=3).accuracy == 1.0
        instance = OracleIdentifier(seed=3)
        assert resolve_identifier(instance) is instance

    def test_resolve_rejects_bad_specs(self):
        with pytest.raises(ValueError, match="unknown identifier"):
            resolve_identifier("gps")
        with pytest.raises(ValueError, match="accuracy"):
            resolve_identifier("oracle:perfect")
        with pytest.raises(TypeError):
            resolve_identifier(42)  # type: ignore[arg-type]

    def test_register_and_use_custom_identifier(self):
        calls = []

        def factory(arg, seed):
            calls.append((arg, seed))
            return OracleIdentifier(seed=seed)

        register_identifier("test-oracle", factory)
        try:
            assert "test-oracle" in registered_identifiers()
            resolved = resolve_identifier("test-oracle:xyz", seed=5)
            assert isinstance(resolved, OracleIdentifier)
            assert calls == [("xyz", 5)]
        finally:
            from repro.core import identifiers

            identifiers._REGISTRY.pop("test-oracle", None)

    def test_register_rejects_bad_names(self):
        with pytest.raises(ValueError, match="invalid identifier name"):
            register_identifier("", lambda arg, seed: OracleIdentifier())
        with pytest.raises(ValueError, match="invalid identifier name"):
            register_identifier("a:b", lambda arg, seed: OracleIdentifier())

    def test_engine_accepts_registry_spec(self):
        track = static_situation_track(situation_by_index(1), length=70.0)
        config = HilConfig(seed=7, **FAST)
        spec = HilEngine(track, "case3", identifier="oracle", config=config).run()
        direct = HilEngine(
            track, "case3", identifier=OracleIdentifier(seed=7), config=config
        ).run()
        assert np.array_equal(spec.lateral_offset, direct.lateral_offset)


class TestWindowKeywordUnification:
    def test_manager_prefers_invocation_window_ms(self):
        manager = ReconfigurationManager(
            case_config("variable"), invocation_window_ms=200.0
        )
        assert manager.invocation_window_ms == 200.0

    def test_window_ms_shim_removed(self):
        # Deprecated in 1.1.0 with a DeprecationWarning shim, removed in
        # 1.3.0: the old spelling is now an ordinary unknown keyword.
        with pytest.raises(TypeError, match="window_ms"):
            ReconfigurationManager(case_config("variable"), window_ms=250.0)

    def test_config_keyword_reaches_manager(self):
        track = static_situation_track(situation_by_index(1), length=70.0)
        config = HilConfig(seed=7, invocation_window_ms=200.0, **FAST)
        engine = HilEngine(track, "variable", config=config)
        assert engine.manager.invocation_window_ms == 200.0
