"""Golden-trace regression tests: replay the frozen corpus byte-for-byte.

Each corpus entry (see :mod:`tests.golden_corpus`) pins one execution
path — nominal serial, fault + mitigation, lock-step batched, served
over the wire — against fixture files committed under ``tests/golden/``.
A failure here means the simulation kernels changed behaviour: either a
regression, or an intentional change that must bump the kernel-identity
version *and* regenerate the corpus (``python tests/golden_corpus.py``).

Result comparison is bitwise on every trace array (dtype, shape and raw
buffer), exact on cycle records and crash flags, and exact on the run
manifest minus its volatile wall-clock bounds.  Trace comparison goes
through :func:`repro.telemetry.diff_traces`, so a mismatch fails with a
readable line-by-line diff instead of a bare assert.
"""

from __future__ import annotations

import dataclasses

import numpy as np
import pytest

import repro.api
from repro.hil.record import HilResult
from tests.golden_corpus import (
    CORPUS,
    npz_path,
    reference_result,
    serial_params,
    trace_path,
)

#: HilResult array members compared bitwise.
_ARRAY_FIELDS = (
    "time_s",
    "s",
    "lateral_offset",
    "y_l_true",
    "steering",
    "speed",
)


def _require_fixture(path):
    if not path.exists():
        pytest.fail(
            f"golden fixture missing: {path} "
            "(regenerate with `PYTHONPATH=src python tests/golden_corpus.py`)"
        )


def assert_results_byte_equal(expected: HilResult, actual: HilResult, label: str):
    for field in _ARRAY_FIELDS:
        exp = getattr(expected, field)
        act = getattr(actual, field)
        assert exp.dtype == act.dtype, f"{label}: {field} dtype {exp.dtype} != {act.dtype}"
        assert exp.shape == act.shape, f"{label}: {field} shape {exp.shape} != {act.shape}"
        if exp.tobytes() != act.tobytes():
            first = int(np.flatnonzero(np.asarray(exp) != np.asarray(act))[0])
            pytest.fail(
                f"{label}: {field} differs from the golden trace at index "
                f"{first}: {exp[first]!r} != {act[first]!r}"
            )
    assert expected.crashed == actual.crashed, f"{label}: crashed flag differs"
    assert expected.crash_s == actual.crash_s, f"{label}: crash_s differs"
    assert expected.completed == actual.completed, f"{label}: completed flag differs"
    exp_cycles = [dataclasses.asdict(c) for c in expected.cycles]
    act_cycles = [dataclasses.asdict(c) for c in actual.cycles]
    assert len(exp_cycles) == len(act_cycles), (
        f"{label}: cycle count {len(exp_cycles)} != {len(act_cycles)}"
    )
    for index, (ec, ac) in enumerate(zip(exp_cycles, act_cycles)):
        assert ec == ac, f"{label}: cycle {index} differs: {ec} != {ac}"
    exp_manifest = dict(expected.manifest or {})
    act_manifest = dict(actual.manifest or {})
    exp_manifest.pop("wall_clock", None)
    act_manifest.pop("wall_clock", None)
    assert exp_manifest == act_manifest, (
        f"{label}: manifest differs (minus wall_clock): "
        f"{exp_manifest} != {act_manifest}"
    )


@pytest.mark.parametrize("name", sorted(CORPUS))
def test_golden_result_replays_byte_identical(name):
    _require_fixture(npz_path(name))
    expected = HilResult.load(str(npz_path(name)))
    actual = reference_result(name)
    assert_results_byte_equal(expected, actual, label=name)


@pytest.mark.parametrize("name", sorted(CORPUS))
def test_golden_trace_replays_equal(name, tmp_path):
    _require_fixture(trace_path(name))
    replay = tmp_path / f"{name}.trace.jsonl"
    repro.api.simulate(**serial_params(name), telemetry=replay)
    differences = repro.api.diff_traces(a=trace_path(name), b=replay)
    assert not differences, (
        f"{name}: telemetry trace diverged from the golden fixture "
        f"({len(differences)} difference(s)):\n" + "\n".join(differences)
    )


def test_golden_hit_is_byte_identical_to_cold_run(tmp_path):
    """A cache hit replays the golden entry exactly (the tentpole invariant)."""
    name = "nominal"
    _require_fixture(npz_path(name))
    expected = HilResult.load(str(npz_path(name)))
    store = tmp_path / "store"
    cold = repro.api.simulate(**CORPUS[name], cache=store)
    warm = repro.api.simulate(**CORPUS[name], cache=store)
    assert_results_byte_equal(expected, cold, label=f"{name} (cold)")
    assert_results_byte_equal(expected, warm, label=f"{name} (cache hit)")
