"""Timing-protocol tests of the HiL engine: sampling, delay, actuation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.situation import situation_by_index
from repro.hil.engine import HilConfig, HilEngine
from repro.sim.world import static_situation_track

FAST = dict(frame_width=192, frame_height=96)


def _run(case: str, sit: int = 1, **kwargs):
    track = static_situation_track(situation_by_index(sit), length=70.0)
    config = HilConfig(seed=7, **FAST, **kwargs)
    return HilEngine(track, case, config=config).run()


class TestTimingProtocol:
    def test_delay_never_exceeds_period(self):
        for case in ("case1", "case2", "case3", "case4", "variable"):
            result = _run(case)
            for cycle in result.cycles:
                assert cycle.delay_ms <= cycle.period_ms + 1e-9

    def test_cycle_times_multiple_of_sim_step(self):
        result = _run("case4")
        for cycle in result.cycles:
            assert cycle.time_ms % 5.0 == pytest.approx(0.0, abs=1e-9)

    def test_steering_changes_only_after_delay(self):
        """The plant's steering command cannot react to the first frame
        before tau has elapsed."""
        result = _run("case1", sit=1)
        # Steering trace is recorded per 5 ms step; case 1 tau = 24.6 ms
        # -> the first 4 steps must still carry the initial command (0).
        assert np.allclose(result.steering[:4], 0.0, atol=1e-9)

    def test_variable_scheme_has_shorter_period_than_case4(self):
        var = _run("variable")
        full = _run("case4")
        assert var.cycles[0].period_ms < full.cycles[0].period_ms

    def test_power_mode_stretches_cycle(self):
        slow = _run("case3", power_mode="10W")
        base = _run("case3")
        assert slow.cycles[0].period_ms > base.cycles[0].period_ms

    def test_isp_lag_zero_switches_first_cycle(self):
        result = _run("case4", sit=7, isp_apply_lag=0)
        assert result.cycles[0].active_isp == "S2"

    def test_isp_lag_one_switches_second_cycle(self):
        result = _run("case4", sit=7, isp_apply_lag=1)
        # reset() seeds the active ISP with the initial situation's
        # knob, so even with lag 1 the dark pipeline is active from the
        # start here; force a transition instead.
        assert result.cycles[1].active_isp == "S2"

    def test_lqg_records_measurement_validity(self):
        result = _run("case3", use_lqg=True)
        assert any(c.measurement_valid for c in result.cycles)


class TestSituationTransitions:
    def test_case4_isp_follows_scene_transition(self):
        """Crossing into a dark sector switches the ISP knob within a
        few cycles (identification + one-cycle apply lag)."""
        from repro.sim.scenario import parse_scenario

        track = parse_scenario("S60 S60@dark")
        config = HilConfig(seed=7, **FAST)
        result = HilEngine(track, "case4", config=config).run()
        # Find the first cycle in the dark sector.
        dark_cycles = [c for c in result.cycles if c.s > 62.0]
        assert dark_cycles, "run never reached the dark sector"
        assert any(c.active_isp == "S2" for c in dark_cycles)
        # Cycles well before the boundary still use the day knob.
        day_cycles = [c for c in result.cycles if c.s < 50.0]
        assert all(c.active_isp != "S2" for c in day_cycles[2:])

    def test_case2_roi_follows_layout_transition(self):
        from repro.sim.scenario import parse_scenario

        track = parse_scenario("S60 R60:50")
        config = HilConfig(seed=7, **FAST)
        result = HilEngine(track, "case2", config=config).run()
        turn_cycles = [c for c in result.cycles if c.s > 63.0]
        assert turn_cycles
        assert turn_cycles[-1].roi == "ROI 2"
        assert turn_cycles[-1].speed_kmph == 30.0
