"""Tests for the Xavier power-mode model."""

from __future__ import annotations

import pytest

from repro.platform.power import DEFAULT_POWER_MODE, POWER_MODES, PowerMode, power_mode
from repro.platform.resources import Resource
from repro.platform.schedule import pipeline_timing, sensing_fps


class TestPowerModes:
    def test_default_is_paper_condition(self):
        assert DEFAULT_POWER_MODE == "30W"
        assert power_mode("30W").cpu_scale == 1.0
        assert power_mode("30W").gpu_scale == 1.0

    def test_all_presets_registered(self):
        assert set(POWER_MODES) == {"MAXN", "30W", "15W", "10W"}

    def test_lower_budget_slower(self):
        assert power_mode("10W").gpu_scale > power_mode("15W").gpu_scale > 1.0

    def test_maxn_not_slower_than_30w(self):
        maxn = power_mode("MAXN")
        assert maxn.cpu_scale <= 1.0 and maxn.gpu_scale <= 1.0

    def test_scale_for_resource(self):
        mode = power_mode("15W")
        assert mode.scale_for(Resource.CPU) == mode.cpu_scale
        assert mode.scale_for(Resource.GPU) == mode.gpu_scale

    def test_unknown_mode_raises(self):
        with pytest.raises(ValueError):
            power_mode("5W")

    def test_invalid_scale_rejected(self):
        with pytest.raises(ValueError):
            PowerMode("bad", 1.0, 0.0, 1.0)


class TestPowerAwareTiming:
    def test_30w_reproduces_paper(self):
        timing = pipeline_timing("S0", power_mode="30W")
        assert timing.delay_ms == pytest.approx(24.6, abs=0.05)

    def test_budget_ordering(self):
        delays = [
            pipeline_timing("S0", power_mode=mode).delay_ms
            for mode in ("MAXN", "30W", "15W", "10W")
        ]
        assert delays == sorted(delays)

    def test_fps_drops_with_budget(self):
        assert sensing_fps("S0", power_mode="10W") < sensing_fps(
            "S0", power_mode="30W"
        )

    def test_overheads_not_scaled(self):
        """Only profiled task runtimes scale; the calibration overheads
        are platform-independent constants."""
        t30 = pipeline_timing("S5", power_mode="30W")
        t15 = pipeline_timing("S5", power_mode="15W")
        # S5 task sum: 3.1 (GPU) + 3.0 (CPU) + 0.0025 (CPU).
        expected = (
            3.1 * power_mode("15W").gpu_scale
            + (3.0 + 0.0025) * power_mode("15W").cpu_scale
            + 0.1
        )
        assert t15.delay_ms == pytest.approx(expected, abs=1e-6)
        assert t30.delay_ms < t15.delay_ms
