"""Tests for the ISP stages, configurations and pipeline."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.isp.configs import ISP_CONFIGS, IspConfig, isp_config
from repro.isp.pipeline import IspPipeline
from repro.isp.stages import (
    IspStage,
    color_map,
    demosaic,
    denoise,
    gamut_map,
    tone_map,
)
from repro.sim.sensor import mosaic


def _flat_raw(value: float = 0.5, size: int = 16) -> np.ndarray:
    return np.full((size, size), value, dtype=np.float32)


class TestDemosaic:
    def test_flat_field_is_preserved(self):
        rgb = demosaic(_flat_raw(0.4))
        np.testing.assert_allclose(rgb, 0.4, atol=1e-6)

    def test_mosaic_round_trip_smooth_image(self, rng):
        """Demosaic of a mosaiced smooth image recovers it closely."""
        x = np.linspace(0, 1, 32)
        smooth = np.stack(
            [np.outer(x, x), np.outer(x, 1 - x), np.outer(1 - x, x)], axis=-1
        ).astype(np.float32)
        recovered = demosaic(mosaic(smooth))
        assert np.abs(recovered[2:-2, 2:-2] - smooth[2:-2, 2:-2]).max() < 0.08

    def test_output_shape_and_dtype(self):
        rgb = demosaic(_flat_raw())
        assert rgb.shape == (16, 16, 3)
        assert rgb.dtype == np.float32

    def test_rejects_rgb_input(self):
        with pytest.raises(ValueError):
            demosaic(np.zeros((8, 8, 3)))


class TestDenoise:
    def test_reduces_noise_variance(self, rng):
        clean = np.full((64, 64, 3), 0.5, dtype=np.float32)
        noisy = clean + 0.05 * rng.standard_normal(clean.shape).astype(np.float32)
        out = denoise(noisy)
        assert out.std() < noisy.std() * 0.7

    def test_preserves_mean(self, rng):
        noisy = (0.5 + 0.05 * rng.standard_normal((32, 32, 3))).astype(np.float32)
        out = denoise(noisy)
        assert out.mean() == pytest.approx(noisy.mean(), abs=1e-3)

    def test_rejects_bad_sigma(self):
        with pytest.raises(ValueError):
            denoise(np.zeros((4, 4, 3)), sigma=0.0)


class TestColorMap:
    def test_removes_color_cast(self):
        base = np.random.default_rng(0).random((32, 32, 3)).astype(np.float32) * 0.5
        tinted = base * np.array([1.3, 1.0, 0.7], dtype=np.float32)
        corrected = color_map(tinted)
        means = corrected.reshape(-1, 3).mean(axis=0)
        assert means.max() / means.min() < 1.25

    def test_low_light_fades_to_identity(self):
        dark = np.full((16, 16, 3), 0.005, dtype=np.float32)
        dark[..., 2] = 0.002  # strong cast that must NOT be "corrected"
        out = color_map(dark)
        np.testing.assert_allclose(out, dark, atol=5e-4)


class TestGamutMap:
    def test_clips_negative(self):
        out = gamut_map(np.full((4, 4, 3), -0.2, dtype=np.float32))
        assert out.min() >= 0.0

    def test_compresses_highlights_monotonically(self):
        lo = gamut_map(np.full((2, 2, 3), 0.9, dtype=np.float32))
        hi = gamut_map(np.full((2, 2, 3), 1.2, dtype=np.float32))
        assert np.all(hi >= lo)
        assert hi.max() <= 1.0 + 1e-6

    def test_identity_below_knee(self):
        x = np.full((2, 2, 3), 0.5, dtype=np.float32)
        np.testing.assert_allclose(gamut_map(x), x)

    def test_rejects_bad_knee(self):
        with pytest.raises(ValueError):
            gamut_map(np.zeros((2, 2, 3)), knee=1.5)


class TestToneMap:
    def test_brightens_dark_frames(self):
        dark = np.full((16, 16, 3), 0.02, dtype=np.float32)
        out = tone_map(dark)
        assert out.mean() > 0.2

    def test_day_frame_mostly_gamma(self):
        mid = np.full((16, 16, 3), 0.5, dtype=np.float32)
        out = tone_map(mid)
        assert out.mean() == pytest.approx(0.5 ** (1 / 2.2), abs=0.05)

    def test_gain_is_bounded(self):
        black = np.full((16, 16, 3), 1e-5, dtype=np.float32)
        out = tone_map(black, max_gain=8.0)
        assert out.max() < 0.1  # 8x of almost nothing stays almost nothing

    @given(st.floats(min_value=0.05, max_value=0.9))
    @settings(max_examples=25, deadline=None)
    def test_output_in_unit_interval(self, level):
        frame = np.full((8, 8, 3), level, dtype=np.float32)
        out = tone_map(frame)
        assert out.min() >= 0.0 and out.max() <= 1.0


class TestConfigs:
    def test_table2_has_nine_configs(self):
        assert set(ISP_CONFIGS) == {f"S{i}" for i in range(9)}

    def test_s0_has_all_stages(self):
        assert len(isp_config("S0").stages) == 5

    def test_runtimes_match_table2(self):
        assert isp_config("S0").xavier_runtime_ms == 21.5
        assert isp_config("S3").xavier_runtime_ms == 3.3
        assert isp_config("S8").xavier_runtime_ms == 3.2

    def test_demosaic_always_present(self):
        for cfg in ISP_CONFIGS.values():
            assert cfg.has(IspStage.DEMOSAIC)

    def test_unknown_name_raises(self):
        with pytest.raises(ValueError, match="unknown ISP config"):
            isp_config("S9")

    def test_config_without_demosaic_rejected(self):
        with pytest.raises(ValueError, match="demosaic"):
            IspConfig("bad", (IspStage.DENOISE,), 1.0)


class TestPipeline:
    def test_output_is_rgb_unit_interval(self, rng):
        raw = rng.random((32, 32)).astype(np.float32)
        out = IspPipeline("S0").process(raw)
        assert out.shape == (32, 32, 3)
        assert out.min() >= 0.0 and out.max() <= 1.0

    def test_accepts_config_object(self):
        pipeline = IspPipeline(isp_config("S5"))
        assert pipeline.name == "S5"

    @pytest.mark.parametrize("name", sorted(ISP_CONFIGS))
    def test_every_config_runs(self, name, rng):
        raw = rng.random((16, 16)).astype(np.float32)
        out = IspPipeline(name).process(raw)
        assert np.all(np.isfinite(out))

    def test_tone_map_configs_brighten_dark_raw(self, rng):
        raw = (0.02 + 0.002 * rng.standard_normal((32, 32))).astype(np.float32)
        with_tm = IspPipeline("S8").process(raw)
        without_tm = IspPipeline("S5").process(raw)
        assert with_tm.mean() > 4 * without_tm.mean()
