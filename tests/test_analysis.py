"""Tests for the static-analysis subsystem (repro.analysis).

Covers: one failing + one passing fixture per rule, suppression
comments, the JSON report schema, exit-code semantics, config
select/ignore/exclude, runtime contracts, the CLI, and the tier-1 gate
that keeps ``src/repro`` itself clean under the full rule set.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
import textwrap
from pathlib import Path

import numpy as np
import pytest

from repro.analysis import (
    ContractViolation,
    LintConfig,
    LintEngine,
    all_rules_by_id,
    assert_finite,
    check_finite,
    check_shapes,
    extract_api_surface,
    load_config,
    project_rules_by_id,
    rules_by_id,
    set_contracts_enabled,
    write_lockfile,
)
from repro.analysis.report import (
    EXIT_CLEAN,
    EXIT_CRASH,
    EXIT_FINDINGS,
    JSON_REPORT_VERSION,
    LintReport,
)

REPO_ROOT = Path(__file__).resolve().parents[1]
SRC_TREE = REPO_ROOT / "src" / "repro"


def lint(source: str, path: str = "pkg/module.py"):
    """Lint one dedented source string with every rule."""
    return LintEngine().lint_source(textwrap.dedent(source), path)


def rule_hits(source: str, rule_id: str, path: str = "pkg/module.py"):
    return [f for f in lint(source, path) if f.rule_id == rule_id]


# ---------------------------------------------------------------------------
# per-rule fixtures: (rule_id, failing source, passing source, path)

RULE_FIXTURES = [
    (
        "RNG001",
        """
        import numpy as np
        x = np.random.rand(3)
        """,
        """
        from repro.utils.rng import derive_rng
        rng = derive_rng(1, "camera-noise")
        x = rng.normal()
        """,
        "pkg/module.py",
    ),
    (
        "DEF001",
        """
        def f(a, items=[]):
            return items
        """,
        """
        def f(a, items=None):
            return items or []
        """,
        "pkg/module.py",
    ),
    (
        "FLT001",
        """
        def f(x):
            return x == 1.5
        """,
        """
        import math
        def f(x):
            return math.isclose(x, 1.5)
        """,
        "pkg/module.py",
    ),
    (
        "EXC001",
        """
        def f():
            try:
                return 1
            except Exception:
                return None
        """,
        """
        def f():
            try:
                return 1
            except ValueError:
                return None
        """,
        "pkg/module.py",
    ),
    (
        "DOM001",
        """
        isp = "S9"
        """,
        """
        isp = "S7"
        """,
        "pkg/module.py",
    ),
    (
        "UNT001",
        """
        def f(delay_ms):
            delay_s = delay_ms
            return delay_s
        """,
        """
        def f(delay_ms):
            delay_s = delay_ms / 1000.0
            return delay_s
        """,
        "pkg/module.py",
    ),
    (
        "API001",
        """
        from pkg.other import thing
        """,
        """
        from pkg.other import thing
        __all__ = ["thing"]
        """,
        "pkg/__init__.py",
    ),
    (
        "IMP001",
        """
        import os
        import sys
        x = sys.platform
        """,
        """
        import os
        x = os.sep
        """,
        "pkg/module.py",
    ),
    (
        "IMP002",
        """
        from pkg.a import helper
        from pkg.b import helper
        x = helper
        """,
        """
        def f():
            from pkg.a import helper
            return helper
        def g():
            from pkg.b import helper
            return helper
        """,
        "pkg/module.py",
    ),
    (
        "IO001",
        """
        def f():
            print("hello")
        """,
        """
        import logging
        def f():
            logging.getLogger(__name__).info("hello")
        """,
        "pkg/module.py",
    ),
    (
        "API002",
        '''
        def simulate(situation, case):
            """Docstring present, but case is positional."""
            return situation, case
        ''',
        '''
        def simulate(situation=1, *, case="case3"):
            """Run one closed-loop simulation."""
            return situation, case
        ''',
        "src/repro/api.py",
    ),
    (
        "PRF001",
        """
        import numpy as np
        def f(x):
            return x.astype(np.float64)
        """,
        """
        import numpy as np
        def f(x):
            return x.astype(np.float32)
        """,
        "src/repro/nn/layers.py",
    ),
    (
        "SVC001",
        """
        def reject(request_id):
            return {"error": {"code": "queue_full"}}
        """,
        """
        from repro.service import protocol

        def reject(request_id):
            return {"error": {"code": protocol.ERR_QUEUE_FULL}}
        """,
        "src/repro/service/handler.py",
    ),
]


@pytest.mark.parametrize(
    "rule_id,bad,good,path",
    RULE_FIXTURES,
    ids=[fixture[0] for fixture in RULE_FIXTURES],
)
def test_rule_positive_and_negative_fixture(rule_id, bad, good, path):
    assert rule_hits(bad, rule_id, path), f"{rule_id} missed its failing fixture"
    assert not rule_hits(good, rule_id, path), (
        f"{rule_id} false positive on its passing fixture"
    )


def test_every_registered_rule_has_a_fixture():
    covered = {fixture[0] for fixture in RULE_FIXTURES}
    assert covered == set(rules_by_id())


def test_rng_rule_requires_random_import():
    # A local object that happens to be called `random` is not the
    # stdlib module.
    source = """
    def f(random):
        return random.random()
    """
    assert not rule_hits(source, "RNG001")


def test_rng_rule_exempts_rng_module():
    source = """
    import numpy as np
    np.random.seed(0)
    """
    assert rule_hits(source, "RNG001", "src/repro/utils/other.py")
    assert not rule_hits(source, "RNG001", "src/repro/utils/rng.py")


def test_broad_except_allows_reraise():
    source = """
    def f():
        try:
            return 1
        except BaseException:
            raise
    """
    assert not rule_hits(source, "EXC001")
    assert rule_hits(source.replace("raise", "return 2"), "EXC001")


def test_svc_rule_exempts_protocol_and_errors_modules():
    source = 'CODE = "queue_full"\n'
    assert rule_hits(source, "SVC001", "src/repro/service/server.py")
    assert not rule_hits(source, "SVC001", "src/repro/service/protocol.py")
    assert not rule_hits(source, "SVC001", "src/repro/service/errors.py")


def test_svc_rule_scans_op_names_only_inside_service():
    # Op names are everyday words ("simulate", "health"), so they are
    # only protocol vocabulary inside the service package; error codes
    # are distinctive enough to flag anywhere.
    source = 'op = "simulate"\n'
    assert rule_hits(source, "SVC001", "src/repro/service/client.py")
    assert not rule_hits(source, "SVC001", "src/repro/api.py")
    assert rule_hits('code = "deadline_exceeded"\n', "SVC001", "src/repro/api.py")


def test_knob_domain_keywords_and_docstrings():
    assert rule_hits('f(speed_kmph=45.0)\n', "DOM001")
    assert not rule_hits('f(speed_kmph=50.0)\n', "DOM001")
    assert rule_hits('f(period_ms=0.0)\n', "DOM001")
    assert rule_hits('roi = "ROI 7"\n', "DOM001")
    # Docstrings may mention out-of-domain ids freely.
    assert not rule_hits('"""About stage S9 and ROI 7."""\n', "DOM001")


def test_unit_suffix_reverse_direction():
    assert rule_hits("period_ms = period_s\n", "UNT001")
    assert not rule_hits("period_ms = period_s * 1000.0\n", "UNT001")


def test_print_rule_exempts_cli_and_report():
    source = 'print("x")\n'
    assert rule_hits(source, "IO001", "src/repro/nn/trainer.py")
    assert not rule_hits(source, "IO001", "src/repro/__main__.py")
    assert not rule_hits(source, "IO001", "src/repro/experiments/report.py")


def test_facade_rule_scoping_and_privates():
    source = """
    def run(a, b, c):
        return a + b + c
    """
    # Only the facade module is held to the contract.
    assert rule_hits(source, "API002", "src/repro/api.py")
    assert not rule_hits(source, "API002", "src/repro/hil/engine.py")
    # Private helpers and docstring-less privates are exempt.
    private = """
    def _coerce(a, b):
        return a, b
    """
    assert not rule_hits(private, "API002", "src/repro/api.py")
    # Missing docstring alone is a finding even if keyword-only.
    undocumented = """
    def inject(*, faults):
        return faults
    """
    assert rule_hits(undocumented, "API002", "src/repro/api.py")


def test_hot_path_float64_scoping():
    source = "import numpy as np\nx = np.float64(1.0)\n"
    # Guarded in the float32 sensing chain, allowed in geometry code.
    assert rule_hits(source, "PRF001", "src/repro/isp/stages.py")
    assert not rule_hits(source, "PRF001", "src/repro/sim/track.py")
    # String dtypes count too.
    assert rule_hits(
        'x = a.astype(dtype="float64")\n', "PRF001", "src/repro/sim/renderer.py"
    )


# ---------------------------------------------------------------------------
# suppression comments


def test_line_suppression():
    engine = LintEngine()
    source = "y = x == 1.5  # reprolint: disable=FLT001\n"
    findings, suppressed = engine.lint_source(source, count_suppressed=True)
    assert findings == []
    assert suppressed == 1


def test_line_suppression_only_covers_named_rule():
    source = "y = x == 1.5  # reprolint: disable=RNG001\n"
    assert rule_hits(source, "FLT001")


def test_file_suppression_on_standalone_comment():
    source = """
    # reprolint: disable=FLT001
    a = x == 1.5
    b = x == 2.5
    """
    engine = LintEngine()
    findings, suppressed = engine.lint_source(
        textwrap.dedent(source), count_suppressed=True
    )
    assert [f for f in findings if f.rule_id == "FLT001"] == []
    assert suppressed == 2


def test_suppress_all_keyword():
    source = "y = x == 1.5  # reprolint: disable=all\n"
    assert not lint(source)


def test_suppress_all_on_own_line_mid_file_covers_whole_file():
    # A standalone disable=all comment is file-wide no matter where it
    # sits: findings *above* it are suppressed too.
    source = """
    a = x == 1.5
    # reprolint: disable=all
    b = y == 2.5
    import os
    """
    engine = LintEngine()
    findings, suppressed = engine.lint_source(
        textwrap.dedent(source), count_suppressed=True
    )
    assert findings == []
    assert suppressed == 3  # two FLT001 + one IMP001


def test_suppress_multiple_ids_with_whitespace():
    source = (
        "import os\n"
        "y = x == 1.5  # reprolint: disable= FLT001 ,  RNG001\n"
    )
    engine = LintEngine()
    findings, suppressed = engine.lint_source(source, count_suppressed=True)
    # The comma list tolerates spaces; only the named line is covered.
    assert suppressed == 1
    assert {f.rule_id for f in findings} == {"IMP001"}


def test_suppress_unknown_rule_id_warns_but_still_lints():
    source = "y = x == 1.5  # reprolint: disable=NOPE999\n"
    engine = LintEngine()
    with pytest.warns(UserWarning, match="unknown rule id 'NOPE999'"):
        findings = engine.lint_source(source)
    # The unknown id suppresses nothing and does not crash the run.
    assert {f.rule_id for f in findings} == {"FLT001"}


# ---------------------------------------------------------------------------
# report and exit codes


def test_json_report_schema():
    engine = LintEngine()
    report = LintReport()
    report.findings = engine.lint_source("def f(a=[]):\n    return a\n")
    report.files_checked = 1
    document = json.loads(report.render_json())
    assert document["version"] == JSON_REPORT_VERSION
    assert document["summary"]["total"] == 1
    assert document["summary"]["by_rule"] == {"DEF001": 1}
    assert document["summary"]["exit_code"] == EXIT_FINDINGS
    (finding,) = document["findings"]
    assert set(finding) == {"rule", "severity", "path", "line", "col", "message"}
    assert finding["rule"] == "DEF001"
    assert finding["line"] >= 1


def test_exit_codes():
    engine = LintEngine()
    clean = LintReport()
    assert clean.exit_code() == EXIT_CLEAN

    findings = LintReport(findings=engine.lint_source("x = y == 0.5\n"))
    assert findings.exit_code() == EXIT_FINDINGS

    crash = LintReport(findings=engine.lint_source("def broken(:\n"))
    assert crash.crashed
    assert crash.exit_code() == EXIT_CRASH


# ---------------------------------------------------------------------------
# configuration


def test_config_select_and_ignore():
    source = "import os\ny = x == 1.5\n"
    only_flt = LintEngine(LintConfig(select=("FLT001",))).lint_source(source)
    assert {f.rule_id for f in only_flt} == {"FLT001"}
    no_flt = LintEngine(LintConfig(ignore=("FLT001",))).lint_source(source)
    assert "FLT001" not in {f.rule_id for f in no_flt}
    with pytest.raises(ValueError, match="unknown rule"):
        LintEngine(LintConfig(select=("NOPE999",)))


def test_config_exclude_patterns(tmp_path):
    (tmp_path / "examples").mkdir()
    (tmp_path / "examples" / "demo.py").write_text("y = x == 1.5\n")
    (tmp_path / "lib.py").write_text("y = x == 1.5\n")
    engine = LintEngine(LintConfig(exclude=("examples/*",)))
    report = engine.lint_paths([str(tmp_path)])
    assert report.files_excluded == 1
    assert report.files_checked == 1
    assert {f.rule_id for f in report.findings} == {"FLT001"}


def test_load_config_reads_pyproject(tmp_path):
    (tmp_path / "pyproject.toml").write_text(
        '[tool.reprolint]\nignore = ["FLT001"]\nexclude = ["examples/*"]\n'
    )
    nested = tmp_path / "src" / "pkg"
    nested.mkdir(parents=True)
    config = load_config(nested)
    assert config.ignore == ("FLT001",)
    assert config.exclude == ("examples/*",)
    assert Path(config.root) == tmp_path.resolve()


def test_exclude_patterns_match_absolute_paths_against_root(tmp_path):
    # `examples/*` must exclude the same files whether lint_paths gets a
    # relative or an absolute path: matching is against the POSIX path
    # relative to the config root, not the raw argument string.
    (tmp_path / "pyproject.toml").write_text(
        '[tool.reprolint]\nexclude = ["examples/*"]\n'
    )
    (tmp_path / "examples").mkdir()
    (tmp_path / "examples" / "demo.py").write_text("y = x == 1.5\n")
    (tmp_path / "lib.py").write_text("y = x == 1.5\n")

    engine = LintEngine(load_config(tmp_path))
    report = engine.lint_paths([str(tmp_path)])  # absolute argument
    assert report.files_excluded == 1
    assert report.files_checked == 1
    assert {Path(f.path).name for f in report.findings} == {"lib.py"}

    # The same absolute file passed directly is excluded too.
    direct = engine.lint_paths([str(tmp_path / "examples" / "demo.py")])
    assert direct.files_excluded == 1
    assert direct.files_checked == 0


# ---------------------------------------------------------------------------
# project rules (whole-program pass)


def make_project(tmp_path, files, pyproject):
    """Write a pyproject + ``src/pkg`` tree; return the package dir."""
    pkg = tmp_path / "src" / "pkg"
    pkg.mkdir(parents=True, exist_ok=True)
    for rel, text in files.items():
        target = pkg / rel
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(textwrap.dedent(text))
    (tmp_path / "pyproject.toml").write_text(textwrap.dedent(pyproject))
    return pkg


def project_report(tmp_path, files, pyproject):
    pkg = make_project(tmp_path, files, pyproject)
    return LintEngine(load_config(tmp_path)).lint_project(pkg)


def test_every_project_rule_is_registered_and_covered_here():
    # all_rules_by_id merges both registries without id collisions.
    merged = all_rules_by_id()
    assert set(project_rules_by_id()) == {
        "API003", "ARC001", "ARC002", "CAC001", "DED001", "OBS001",
        "RNG002", "RNG003",
    }
    assert set(rules_by_id()) | set(project_rules_by_id()) == set(merged)
    assert len(merged) == len(rules_by_id()) + len(project_rules_by_id())


def test_arc001_flags_undeclared_cross_layer_import(tmp_path):
    files = {
        "__init__.py": "",
        "a/__init__.py": "",
        "a/mod.py": "from pkg.b.mod import X\nY = X\n",
        "b/__init__.py": "",
        "b/mod.py": "X = 1\n",
    }
    violating = """
    [tool.reprolint]
    select = ["ARC001"]
    [tool.reprolint.layers]
    a = []
    b = []
    """
    report = project_report(tmp_path, files, violating)
    assert report.exit_code() == EXIT_FINDINGS
    (finding,) = report.findings
    assert finding.rule_id == "ARC001"
    assert "'a' may not import 'b'" in finding.message

    allowed = violating.replace("a = []", 'a = ["b"]')
    clean = project_report(tmp_path, files, allowed)
    assert clean.exit_code() == EXIT_CLEAN, clean.render_text()


def test_arc001_flags_layer_missing_from_contract(tmp_path):
    files = {
        "__init__.py": "",
        "a/__init__.py": "",
        "c/__init__.py": "",
        "c/mod.py": "import pkg.a\n",
    }
    pyproject = """
    [tool.reprolint]
    select = ["ARC001"]
    [tool.reprolint.layers]
    a = []
    """
    report = project_report(tmp_path, files, pyproject)
    (finding,) = report.findings
    assert "layer 'c' is not declared" in finding.message


def test_arc002_import_cycle_is_fatal(tmp_path):
    files = {
        "__init__.py": "",
        "a.py": "import pkg.b\n",
        "b.py": "import pkg.a\n",
    }
    pyproject = '[tool.reprolint]\nselect = ["ARC002"]\n'
    report = project_report(tmp_path, files, pyproject)
    assert report.crashed
    assert report.exit_code() == EXIT_CRASH
    (finding,) = report.findings
    assert finding.rule_id == "ARC002"
    assert "pkg.a -> pkg.b -> pkg.a" in finding.message

    # A lazy (function-scope) import is the sanctioned cycle break.
    files["b.py"] = "def late():\n    import pkg.a\n    return pkg.a\n"
    clean = project_report(tmp_path, files, pyproject)
    assert clean.exit_code() == EXIT_CLEAN, clean.render_text()


def test_ded001_dead_function_detection(tmp_path):
    files = {
        "__init__.py": "",
        "mod.py": """
        __all__ = ["used"]

        def used():
            return _helper()

        def _helper():
            return 1

        def _orphan():
            return 2

        def undeclared():
            return 3
        """,
    }
    pyproject = '[tool.reprolint]\nselect = ["DED001"]\n'
    report = project_report(tmp_path, files, pyproject)
    assert report.exit_code() == EXIT_FINDINGS
    messages = [f.message for f in report.sorted_findings()]
    assert len(messages) == 2
    assert "private function _orphan()" in messages[0]
    assert "undeclared() is never referenced" in messages[1]


def test_ded001_conservative_reference_sources(tmp_path):
    # Identifier-shaped string literals (registry keys, getattr) and
    # modules without __all__ keep the detector conservative.
    files = {
        "__init__.py": "",
        "mod.py": '__all__ = []\n\ndef fetch():\n    return 1\n',
        "reg.py": 'HANDLER = "fetch"\n',
        "open_surface.py": "def anything_public():\n    return 1\n",
    }
    pyproject = '[tool.reprolint]\nselect = ["DED001"]\n'
    report = project_report(tmp_path, files, pyproject)
    assert report.exit_code() == EXIT_CLEAN, report.render_text()


def test_api003_lockfile_missing_roundtrip_and_drift(tmp_path):
    files = {
        "__init__.py": (
            '__all__ = ["simulate"]\nfrom pkg.api import simulate\n'
        ),
        "api.py": (
            '__all__ = ["simulate"]\n\n\n'
            'def simulate(*, steps=1):\n'
            '    """Run."""\n'
            '    return steps\n'
        ),
    }
    pyproject = '[tool.reprolint]\nselect = ["API003"]\n'
    pkg = make_project(tmp_path, files, pyproject)
    config = load_config(tmp_path)

    missing = LintEngine(config).lint_project(pkg)
    assert missing.exit_code() == EXIT_FINDINGS
    assert "lockfile api_surface.json is missing" in missing.findings[0].message

    surface, _ = extract_api_surface(pkg)
    lock_path = tmp_path / "api_surface.json"
    assert write_lockfile(lock_path, surface) is True
    assert write_lockfile(lock_path, surface) is False  # idempotent

    clean = LintEngine(config).lint_project(pkg)
    assert clean.exit_code() == EXIT_CLEAN, clean.render_text()

    (pkg / "api.py").write_text(
        (pkg / "api.py").read_text().replace("steps=1", "steps=2")
    )
    drifted = LintEngine(config).lint_project(pkg)
    assert drifted.exit_code() == EXIT_FINDINGS
    assert "api.simulate drifted" in drifted.findings[0].message


def test_rng002_catches_aliased_numpy_random(tmp_path):
    files = {
        "__init__.py": "",
        "mod.py": (
            "from numpy import random\n"
            "from numpy.random import default_rng\n"
            "x = random.rand(3)\n"
            "r = default_rng(0)\n"
        ),
    }
    pyproject = '[tool.reprolint]\nselect = ["RNG002"]\n'
    report = project_report(tmp_path, files, pyproject)
    assert report.exit_code() == EXIT_FINDINGS
    resolved = [f.message for f in report.sorted_findings()]
    assert len(resolved) == 2
    assert "numpy.random.rand" in resolved[0]
    assert "numpy.random.default_rng" in resolved[1]

    # Textual np.random.* is RNG001 territory — no double report.
    textual = {
        "__init__.py": "",
        "mod.py": "import numpy as np\nx = np.random.rand(3)\n",
    }
    clean = project_report(tmp_path, textual, pyproject)
    assert clean.exit_code() == EXIT_CLEAN, clean.render_text()


def test_rng003_flags_reused_stream_literals(tmp_path):
    files = {
        "__init__.py": "",
        "rngmod.py": "def derive_rng(seed, stream):\n    return (seed, stream)\n",
        "one.py": (
            "from pkg.rngmod import derive_rng\n"
            'r = derive_rng(0, "imu")\n'
        ),
        "two.py": (
            "from pkg.rngmod import derive_rng\n"
            'r = derive_rng(0, stream="imu")\n'
        ),
    }
    pyproject = '[tool.reprolint]\nselect = ["RNG003"]\n'
    report = project_report(tmp_path, files, pyproject)
    assert report.exit_code() == EXIT_FINDINGS
    (finding,) = report.findings
    assert finding.rule_id == "RNG003"
    assert "'imu' is already derived at" in finding.message

    # Dynamic stream names are the sanctioned fan-out.
    files["two.py"] = (
        "from pkg.rngmod import derive_rng\n"
        "I = 1\n"
        'r = derive_rng(0, f"imu-{I}")\n'
    )
    clean = project_report(tmp_path, files, pyproject)
    assert clean.exit_code() == EXIT_CLEAN, clean.render_text()


def test_obs001_flags_literal_event_names(tmp_path):
    files = {
        "__init__.py": "",
        "mod.py": (
            "def emit_all(rec):\n"
            '    rec.emit("cycle.start", time_ms=0.0)\n'
        ),
    }
    pyproject = '[tool.reprolint]\nselect = ["OBS001"]\n'
    report = project_report(tmp_path, files, pyproject)
    assert report.exit_code() == EXIT_FINDINGS
    (finding,) = report.findings
    assert finding.rule_id == "OBS001"
    assert "'cycle.start'" in finding.message
    assert "repro.telemetry.events" in finding.message

    # Emitting through the registered constant is the sanctioned form.
    files["mod.py"] = (
        "CYCLE_START = 'cycle.start'\n"
        "def emit_all(rec):\n"
        "    rec.emit(CYCLE_START, time_ms=0.0)\n"
    )
    clean = project_report(tmp_path, files, pyproject)
    assert clean.exit_code() == EXIT_CLEAN, clean.render_text()


def test_cac001_flags_ad_hoc_cache_key_hashing(tmp_path):
    files = {
        "__init__.py": "",
        "mod.py": (
            "from pkg.utils.cache import config_hash\n"
            'key = config_hash({"seed": 1})\n'
        ),
        "utils/__init__.py": "",
        "utils/cache.py": "def config_hash(config):\n    return 'k'\n",
    }
    pyproject = '[tool.reprolint]\nselect = ["CAC001"]\n'
    report = project_report(tmp_path, files, pyproject)
    assert report.exit_code() == EXIT_FINDINGS
    (finding,) = report.findings
    assert finding.rule_id == "CAC001"
    assert "repro.cache.keys" in finding.message

    # Going through the sanctioned key constructor is clean.
    files["mod.py"] = (
        "from pkg.cache.keys import rollout_key, rollout_key_document\n"
        "doc = rollout_key_document(track=None, case='case1')\n"
        "key = rollout_key(doc)\n"
    )
    files["cache/__init__.py"] = ""
    files["cache/keys.py"] = (
        "from pkg.utils.cache import config_hash\n"
        "def rollout_key_document(**kwargs):\n    return dict(kwargs)\n"
        "def rollout_key(document):\n    return config_hash(document)\n"
    )
    clean = project_report(tmp_path, files, pyproject)
    assert clean.exit_code() == EXIT_CLEAN, clean.render_text()


def test_cac001_exempts_the_key_hash_and_manifest_modules(tmp_path):
    # The hash's home module, the manifest builder and the key module
    # are the three sanctioned call sites.
    files = {
        "__init__.py": "",
        "utils/__init__.py": "",
        "utils/cache.py": (
            "def config_hash(config):\n    return 'k'\n"
            "entry = config_hash({})\n"
        ),
        "telemetry/__init__.py": "",
        "telemetry/manifest.py": (
            "from pkg.utils.cache import config_hash\n"
            "h = config_hash({})\n"
        ),
        "cache/__init__.py": "",
        "cache/keys.py": (
            "from pkg.utils.cache import config_hash\n"
            "k = config_hash({})\n"
        ),
    }
    pyproject = '[tool.reprolint]\nselect = ["CAC001"]\n'
    report = project_report(tmp_path, files, pyproject)
    assert report.exit_code() == EXIT_CLEAN, report.render_text()


def test_obs001_exempts_the_schema_and_recorder_modules(tmp_path):
    # The registry module defines the literals and the recorder
    # validates against them — neither is an emit *site*.
    files = {
        "__init__.py": "",
        "telemetry/__init__.py": "",
        "telemetry/events.py": 'x = object().emit("run.manifest")\n',
        "telemetry/recorder.py": 'y = object().emit("cycle.end")\n',
    }
    pyproject = '[tool.reprolint]\nselect = ["OBS001"]\n'
    report = project_report(tmp_path, files, pyproject)
    assert report.exit_code() == EXIT_CLEAN, report.render_text()


def test_project_findings_honour_suppressions(tmp_path):
    files = {
        "__init__.py": "",
        "mod.py": "def _orphan():  # reprolint: disable=DED001\n    return 1\n",
    }
    pyproject = '[tool.reprolint]\nselect = ["DED001"]\n'
    report = project_report(tmp_path, files, pyproject)
    assert report.exit_code() == EXIT_CLEAN, report.render_text()
    assert report.suppressed == 1


# ---------------------------------------------------------------------------
# runtime contracts


@pytest.fixture()
def contracts_on():
    previous = set_contracts_enabled(True)
    yield
    set_contracts_enabled(previous)


def test_check_shapes_accepts_and_rejects(contracts_on):
    @check_shapes(frame=("H", "W", 3))
    def f(frame):
        return frame.sum()

    f(np.zeros((4, 6, 3)))
    with pytest.raises(ContractViolation, match="dim 2"):
        f(np.zeros((4, 6, 4)))
    with pytest.raises(ContractViolation, match="rank 3"):
        f(np.zeros((4, 6)))


def test_check_shapes_symbolic_dims_must_agree(contracts_on):
    @check_shapes(a=("N", "N"))
    def f(a):
        return a

    f(np.eye(3))
    with pytest.raises(ContractViolation, match="'N'"):
        f(np.zeros((2, 3)))


def test_check_shapes_rank_only_and_result(contracts_on):
    @check_shapes(x=2, result=("N",))
    def rowsum(x):
        return x.sum(axis=1)

    assert rowsum(np.ones((2, 3))).shape == (2,)

    @check_shapes(result=(2,))
    def bad_result():
        return np.zeros(3)

    with pytest.raises(ContractViolation, match="result"):
        bad_result()


def test_check_shapes_unknown_parameter_is_a_typeerror():
    with pytest.raises(TypeError, match="no parameter"):
        @check_shapes(nope=("N",))
        def f(x):
            return x


def test_check_finite_args_and_result(contracts_on):
    @check_finite("samples", result=True)
    def passthrough(samples):
        return samples

    passthrough([1.0, 2.0])
    with pytest.raises(ContractViolation, match="samples"):
        passthrough([1.0, float("nan")])

    @check_finite(result=True)
    def make_inf():
        return np.array([np.inf])

    with pytest.raises(ContractViolation, match="result"):
        make_inf()


def test_assert_finite_reports_name_and_count():
    with pytest.raises(ContractViolation, match="lateral.*2 non-finite"):
        assert_finite([np.nan, 1.0, np.inf], "lateral")
    assert_finite([], "empty is fine")
    assert issubclass(ContractViolation, ValueError)


def test_contracts_toggle_off(contracts_on):
    @check_finite("x")
    def f(x):
        return x

    set_contracts_enabled(False)
    assert f(float("nan")) != f(float("nan"))  # NaN passes straight through
    set_contracts_enabled(True)
    with pytest.raises(ContractViolation):
        f(float("nan"))


def test_contracts_compiled_out_with_env_zero():
    script = textwrap.dedent(
        """
        from repro.analysis.contracts import check_finite, check_shapes

        def f(x):
            return x

        assert check_finite("x")(f) is f
        assert check_shapes(x=("N",))(f) is f
        print("stripped")
        """
    )
    env = dict(os.environ, REPRO_CONTRACTS="0")
    env["PYTHONPATH"] = str(REPO_ROOT / "src") + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    proc = subprocess.run(
        [sys.executable, "-c", script],
        capture_output=True,
        text=True,
        env=env,
    )
    assert proc.returncode == 0, proc.stderr
    assert "stripped" in proc.stdout


def test_library_boundaries_are_contract_checked(contracts_on):
    from repro.metrics.qoc import mae
    from repro.nn.model import Sequential
    from repro.nn.layers import ReLU

    with pytest.raises(ContractViolation):
        mae([0.1, float("nan")])
    with pytest.raises(ContractViolation):
        Sequential(ReLU()).forward(np.array([[np.nan]]))


def test_perception_frame_shape_contract(contracts_on):
    from repro.perception.pipeline import PerceptionPipeline
    from repro.sim.camera import CameraModel

    pipeline = PerceptionPipeline(CameraModel(width=64, height=32))
    with pytest.raises(ContractViolation, match="rank 3"):
        pipeline.process(np.zeros((32, 64)))


# ---------------------------------------------------------------------------
# CLI


def test_cli_lint_exit_codes_and_json(tmp_path, capsys):
    from repro.__main__ import main

    bad = tmp_path / "bad.py"
    bad.write_text("def f(a=[]):\n    return a\n")
    good = tmp_path / "good.py"
    good.write_text("VALUE = 1\n")

    assert main(["lint", str(good)]) == EXIT_CLEAN
    capsys.readouterr()
    assert main(["lint", str(bad)]) == EXIT_FINDINGS
    assert "DEF001" in capsys.readouterr().out

    assert main(["lint", str(bad), "--format", "json"]) == EXIT_FINDINGS
    document = json.loads(capsys.readouterr().out)
    assert document["summary"]["by_rule"] == {"DEF001": 1}

    assert main(["lint", str(bad), "--ignore", "DEF001"]) == EXIT_CLEAN
    capsys.readouterr()

    assert main(["lint", "--list-rules"]) == EXIT_CLEAN
    listing = capsys.readouterr().out
    for rule_id, cls in all_rules_by_id().items():
        assert rule_id in listing
        assert cls.severity in listing
    # Each entry carries its scope and a one-line doc excerpt.
    assert "(project)" in listing and "(file)" in listing
    assert "architecture contract" in listing


# ---------------------------------------------------------------------------
# the tier-1 gate


def test_codebase_is_clean():
    """`python -m repro lint --project` stays at zero unsuppressed findings.

    This is the static-analysis analogue of the HiL regression
    benchmarks: any PR that introduces a violation — per-file rule or
    whole-program rule (architecture contract, import cycle, dead code,
    API lockfile drift, RNG-stream reuse) — fails tier-1 here.
    """
    config = load_config(REPO_ROOT)
    report = LintEngine(config).lint_project(SRC_TREE)
    assert report.files_checked > 80
    assert report.exit_code() == EXIT_CLEAN, "\n" + report.render_text()
