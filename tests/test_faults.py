"""Tests for repro.faults: plans, injectors, and closed-loop effects.

The load-bearing test here is the bit-identity regression: attaching an
empty :class:`FaultPlan` plus an idle :class:`MitigationConfig` must
leave the HiL traces bit-for-bit identical to a run without either —
the invariant that makes the fault subsystem safe to keep wired in.
"""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.core.reconfiguration import MitigationConfig
from repro.core.situation import situation_by_index
from repro.faults import (
    CLASSIFIER_FAILED,
    CLASSIFIER_OK,
    CLASSIFIER_WRONG,
    FAULT_PLAN_PRESETS,
    FaultInjector,
    FaultPlan,
    NULL_INJECTOR,
    ClassifierOutage,
    ClassifierTimeout,
    ClassifierWrongLabel,
    IspLatencySpike,
    PerceptionDropout,
    SensorBlackout,
    build_injector,
    parse_fault_spec,
    resolve_fault_plan,
)
from repro.hil.engine import HilConfig, HilEngine
from repro.sim.world import static_situation_track

FAST = dict(frame_width=192, frame_height=96)


def _run(case: str = "case3", sit: int = 1, length: float = 70.0, **kwargs):
    track = static_situation_track(situation_by_index(sit), length=length)
    config = HilConfig(seed=7, **FAST, **kwargs)
    return HilEngine(track, case, config=config).run()


# ---------------------------------------------------------------------------
# plans and parsing


class TestPlan:
    def test_parse_spec_window_and_params(self):
        spec = parse_fault_spec("timeout@1500:6000,classifier=road,probability=0.7")
        assert isinstance(spec, ClassifierTimeout)
        assert spec.start_ms == 1500.0 and spec.end_ms == 6000.0
        assert spec.classifier == "road"
        assert spec.probability == pytest.approx(0.7)

    def test_parse_spec_inf_window(self):
        spec = parse_fault_spec("outage@1500:inf")
        assert math.isinf(spec.end_ms)
        assert spec.active(1e12) and not spec.active(1499.9)

    @pytest.mark.parametrize(
        "text,match",
        [
            ("blackout", "expected 'kind@start:end"),
            ("wat@0:100", "unknown fault kind"),
            ("blackout@zero:100", "bad fault window"),
            ("blackout@0:100,nope=1", "bad parameter"),
            ("timeout@0:100,probability=1.5", "probability"),
            ("timeout@0:100,classifier=gps", "unknown classifier"),
            ("isp_corruption@0:100,stage=XX", "unknown ISP stage"),
            ("blackout@100:100", "end_ms must be > start_ms"),
        ],
    )
    def test_parse_spec_rejects(self, text, match):
        with pytest.raises(ValueError, match=match):
            parse_fault_spec(text)

    def test_plan_parse_multiple_and_truthiness(self):
        plan = FaultPlan.parse("blackout@0:100; dropout@200:300,probability=0.5")
        assert len(plan) == 2 and bool(plan)
        assert not FaultPlan.empty()
        assert FaultPlan.parse("  ") == FaultPlan.empty()

    def test_plan_rejects_non_specs(self):
        with pytest.raises(TypeError, match="not a FaultSpec"):
            FaultPlan(("blackout",))  # type: ignore[arg-type]

    def test_describe_lists_kinds_and_skips_empty_fields(self):
        plan = FaultPlan.parse("outage@1:2; timeout@1:2,classifier=lane")
        text = plan.describe()
        assert "outage @" in text and "classifier=lane" in text
        # The outage targets all classifiers (classifier="") — the empty
        # field must not render as "classifier=".
        assert "classifier=\n" not in text and not text.endswith("classifier=")
        assert FaultPlan.empty().describe() == "(empty plan)"

    def test_resolve_accepts_plan_preset_and_spec(self):
        plan = FAULT_PLAN_PRESETS["blackout"]
        assert resolve_fault_plan(plan) is plan
        assert resolve_fault_plan(None) == FaultPlan.empty()
        assert resolve_fault_plan("blackout") == plan
        parsed = resolve_fault_plan("blackout@2000:2800")
        assert parsed == plan
        with pytest.raises(ValueError, match="unknown fault plan preset"):
            resolve_fault_plan("nope")
        with pytest.raises(TypeError):
            resolve_fault_plan(42)  # type: ignore[arg-type]

    def test_presets_are_valid_plans(self):
        for name, plan in FAULT_PLAN_PRESETS.items():
            assert plan, name
            assert all(s.end_ms > s.start_ms for s in plan.specs)


# ---------------------------------------------------------------------------
# injector behaviour (no closed loop)


class TestInjector:
    def test_empty_plan_uses_shared_null_injector(self):
        assert build_injector(None) is NULL_INJECTOR
        assert build_injector(FaultPlan.empty()) is NULL_INJECTOR
        assert not NULL_INJECTOR.enabled

    def test_null_injector_hooks_are_identity(self):
        raw = np.ones((4, 4), dtype=np.float32)
        assert NULL_INJECTOR.corrupt_raw(0.0, raw) is raw
        assert NULL_INJECTOR.isp_tap(0.0) is None
        assert NULL_INJECTOR.extra_latency_ms(0.0) == 0.0
        assert NULL_INJECTOR.classifier_outcomes(0.0, ("road",)) is None
        assert NULL_INJECTOR.perception_dropout(0.0) is False
        assert NULL_INJECTOR.active_kinds(0.0) == ()

    def test_active_kinds_respects_windows(self):
        plan = FaultPlan.parse("blackout@100:200; latency@150:300,extra_ms=10")
        injector = build_injector(plan, seed=1)
        assert injector.active_kinds(50.0) == ()
        assert injector.active_kinds(120.0) == ("blackout",)
        assert injector.active_kinds(180.0) == ("blackout", "latency")
        assert injector.active_kinds(250.0) == ("latency",)

    def test_blackout_fails_every_classifier(self):
        injector = build_injector(FaultPlan((SensorBlackout(0.0, 100.0),)), seed=1)
        outcomes = injector.classifier_outcomes(50.0, ("road", "lane"))
        assert outcomes == {"road": CLASSIFIER_FAILED, "lane": CLASSIFIER_FAILED}
        assert injector.classifier_outcomes(150.0, ("road",)) is None

    def test_outage_targets_named_classifier_only(self):
        plan = FaultPlan((ClassifierOutage(0.0, 100.0, classifier="road"),))
        outcomes = build_injector(plan, seed=1).classifier_outcomes(
            10.0, ("road", "lane")
        )
        assert outcomes == {"road": CLASSIFIER_FAILED, "lane": CLASSIFIER_OK}

    def test_wrong_label_flips_to_a_different_value(self):
        from repro.core.situation import RoadLayout

        plan = FaultPlan((ClassifierWrongLabel(0.0, 100.0, classifier="road"),))
        injector = build_injector(plan, seed=1)
        outcomes = injector.classifier_outcomes(10.0, ("road",))
        assert outcomes == {"road": CLASSIFIER_WRONG}
        features = {"road": RoadLayout.STRAIGHT}
        flipped = injector.corrupt_features(10.0, features, ("road",))
        assert flipped["road"] != RoadLayout.STRAIGHT
        assert isinstance(flipped["road"], RoadLayout)
        # The input dict is never mutated.
        assert features["road"] is RoadLayout.STRAIGHT

    def test_probabilistic_faults_are_seed_deterministic(self):
        plan = FaultPlan(
            (
                ClassifierTimeout(0.0, math.inf, probability=0.5),
                PerceptionDropout(0.0, math.inf, probability=0.5),
            )
        )
        a, b = (build_injector(plan, seed=9) for _ in range(2))
        seq_a = [
            (a.classifier_outcomes(t, ("road",)), a.perception_dropout(t))
            for t in np.arange(0.0, 500.0, 33.0)
        ]
        seq_b = [
            (b.classifier_outcomes(t, ("road",)), b.perception_dropout(t))
            for t in np.arange(0.0, 500.0, 33.0)
        ]
        assert seq_a == seq_b
        outcomes = {o["road"] for o, _ in seq_a}
        assert CLASSIFIER_FAILED in outcomes and CLASSIFIER_OK in outcomes

    def test_latency_spikes_sum(self):
        plan = FaultPlan(
            (
                IspLatencySpike(0.0, 100.0, extra_ms=10.0),
                IspLatencySpike(50.0, 100.0, extra_ms=5.0),
            )
        )
        injector = build_injector(plan, seed=1)
        assert injector.extra_latency_ms(25.0) == pytest.approx(10.0)
        assert injector.extra_latency_ms(75.0) == pytest.approx(15.0)
        assert injector.extra_latency_ms(150.0) == 0.0

    def test_isp_tap_only_touches_named_stage(self):
        injector = build_injector(
            FaultPlan.parse("isp_corruption@0:100,stage=DN,strength=0.5"), seed=1
        )
        tap = injector.isp_tap(10.0)
        rgb = np.full((4, 4, 3), 0.5, dtype=np.float32)
        assert np.array_equal(tap("DM", rgb), rgb)
        assert not np.array_equal(tap("DN", rgb), rgb)
        assert injector.isp_tap(200.0) is None


# ---------------------------------------------------------------------------
# closed loop: bit identity and fault effects


class TestClosedLoop:
    def test_empty_plan_and_idle_mitigation_are_bit_identical(self):
        """The acceptance-criteria regression: an empty FaultPlan plus an
        attached-but-never-triggered MitigationConfig must not change a
        single bit of the HiL traces."""
        baseline = _run("case4", sit=8)
        wired = _run(
            "case4",
            sit=8,
            fault_plan=FaultPlan.empty(),
            mitigation=MitigationConfig(),
        )
        for field in ("time_s", "s", "lateral_offset", "y_l_true", "steering", "speed"):
            assert np.array_equal(getattr(baseline, field), getattr(wired, field)), field
        assert baseline.crashed == wired.crashed
        assert len(baseline.cycles) == len(wired.cycles)
        for before, after in zip(baseline.cycles, wired.cycles):
            assert before == after
        assert wired.degraded_cycles() == 0
        assert wired.fault_kinds() == ()

    def test_fault_runs_are_seed_deterministic(self):
        plan = resolve_fault_plan("stress")
        first = _run(fault_plan=plan, mitigation=MitigationConfig())
        second = _run(fault_plan=plan, mitigation=MitigationConfig())
        assert np.array_equal(first.lateral_offset, second.lateral_offset)
        assert first.cycles == second.cycles

    def test_cycles_record_active_fault_kinds(self):
        result = _run(fault_plan=FaultPlan.parse("banding@1000:2000"))
        in_window = [c for c in result.cycles if 1000.0 <= c.time_ms < 2000.0]
        assert in_window and all("banding" in c.faults for c in in_window)
        outside = [c for c in result.cycles if c.time_ms >= 2000.0]
        assert outside and all(c.faults == () for c in outside)
        assert result.fault_kinds() == ("banding",)

    def test_latency_spike_stretches_recorded_timing(self):
        # Straight situation + case3: nominal timing is constant across
        # the run, so any pre-fault cycle serves as the reference.
        spiked = _run(fault_plan=FaultPlan.parse("latency@1000:2000,extra_ms=25"))
        nominal = spiked.cycles[0]
        assert nominal.faults == ()
        hit = [c for c in spiked.cycles if "latency" in c.faults]
        assert hit
        for cycle in hit:
            assert cycle.period_ms == pytest.approx(nominal.period_ms + 25.0)
            assert cycle.delay_ms == pytest.approx(nominal.delay_ms + 25.0)

    def test_outage_without_mitigation_never_degrades(self):
        result = _run(fault_plan=FaultPlan.parse("outage@1000:inf"))
        assert result.degraded_cycles() == 0
        assert all(not c.degraded for c in result.cycles)

    def test_stale_watchdog_falls_back_to_safe_knobs(self):
        from repro.core.defaults import natural_roi

        mitigation = MitigationConfig(stale_after_ms=500.0)
        result = _run(
            fault_plan=FaultPlan.parse("outage@1000:inf"),
            mitigation=mitigation,
        )
        degraded = [c for c in result.cycles if c.degraded]
        assert degraded, "the watchdog should trip once identification is stale"
        # Staleness is measured from the last successful identification
        # (just before the outage starts), so nothing degrades before
        # the outage and everything does once it has run long enough.
        assert min(c.time_ms for c in degraded) >= 1000.0
        late = [c for c in result.cycles if c.time_ms >= 1000.0 + mitigation.stale_after_ms]
        assert late and all(c.degraded for c in late)
        situation = situation_by_index(1)
        for cycle in degraded:
            assert cycle.speed_kmph <= mitigation.conservative_speed_kmph
            assert cycle.roi == natural_roi(situation)

    def test_save_load_round_trips_fault_fields(self, tmp_path):
        result = _run(
            fault_plan=FaultPlan.parse("banding@1000:2000"),
            mitigation=MitigationConfig(stale_after_ms=500.0),
        )
        from repro.hil.record import HilResult

        path = result.save(str(tmp_path / "run.npz"))
        loaded = HilResult.load(str(path))
        assert loaded.fault_kinds() == result.fault_kinds()
        assert loaded.degraded_cycles() == result.degraded_cycles()
        assert [c.faults for c in loaded.cycles] == [c.faults for c in result.cycles]
