"""Tests for the core contribution: situations, knobs, cases, scheduling,
runtime reconfiguration."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.cases import CASES, case_config
from repro.core.defaults import (
    default_characterization,
    natural_roi,
    natural_speed_kmph,
)
from repro.core.knobs import SPEED_CHOICES_KMPH, KnobSetting, knob_space
from repro.core.reconfiguration import (
    OracleIdentifier,
    ReconfigurationManager,
)
from repro.core.scheduler import (
    CLASSIFIER_NAMES,
    EveryFrameScheme,
    VariableScheme,
)
from repro.core.situation import (
    LaneColor,
    LaneForm,
    RoadLayout,
    Scene,
    Situation,
    TABLE3_SITUATIONS,
    full_situation_space,
    situation_by_index,
)


class TestSituation:
    def test_table3_has_21_situations(self):
        assert len(TABLE3_SITUATIONS) == 21

    def test_situation_by_index_bounds(self):
        assert situation_by_index(1).describe() == "straight, white continuous, day"
        assert situation_by_index(21).describe() == "left, white dotted, night"
        with pytest.raises(ValueError):
            situation_by_index(0)
        with pytest.raises(ValueError):
            situation_by_index(22)

    def test_full_space_size(self):
        # 3 layouts x 2 colors x 3 forms x 5 scenes
        assert len(list(full_situation_space())) == 90

    def test_situations_hashable_and_unique(self):
        assert len(set(TABLE3_SITUATIONS)) == 21

    def test_config_round_trip(self):
        for situation in TABLE3_SITUATIONS:
            assert Situation.from_config(situation.to_config()) == situation

    def test_lane_label(self):
        assert situation_by_index(4).lane_label() == "yellow double"


class TestKnobs:
    def test_valid_setting(self):
        knobs = KnobSetting("S3", "ROI 2", 30.0)
        assert knobs.speed_mps == pytest.approx(30.0 / 3.6)

    def test_invalid_isp_rejected(self):
        with pytest.raises(ValueError):
            KnobSetting("S9", "ROI 1", 50.0)

    def test_invalid_roi_rejected(self):
        with pytest.raises(ValueError):
            KnobSetting("S0", "ROI 7", 50.0)

    def test_timing_derivation(self):
        knobs = KnobSetting("S3", "ROI 1", 50.0)
        timing = knobs.timing(CLASSIFIER_NAMES, dynamic_isp=True)
        assert timing.delay_ms == pytest.approx(23.1, abs=0.05)
        assert timing.period_ms == 25.0

    def test_knob_space_size(self):
        assert len(list(knob_space())) == 9 * 5 * len(SPEED_CHOICES_KMPH)

    def test_config_round_trip(self):
        knobs = KnobSetting("S2", "ROI 5", 30.0)
        assert KnobSetting.from_config(knobs.to_config()) == knobs


class TestDefaults:
    def test_natural_roi_mapping(self):
        assert natural_roi(situation_by_index(1)) == "ROI 1"
        assert natural_roi(situation_by_index(8)) == "ROI 2"
        assert natural_roi(situation_by_index(13)) == "ROI 3"
        assert natural_roi(situation_by_index(15)) == "ROI 4"
        assert natural_roi(situation_by_index(20)) == "ROI 5"

    def test_natural_speed(self):
        assert natural_speed_kmph(situation_by_index(1)) == 50.0
        assert natural_speed_kmph(situation_by_index(8)) == 30.0

    def test_default_table_covers_table3(self):
        table = default_characterization()
        assert set(table) == set(TABLE3_SITUATIONS)

    def test_dark_situation_uses_expensive_isp(self):
        table = default_characterization()
        assert table[situation_by_index(7)].isp == "S2"


class TestCases:
    def test_all_cases_present(self):
        assert set(CASES) == {
            "case1",
            "case2",
            "case3",
            "case4",
            "variable",
            "adaptive",
        }

    def test_case1_has_no_classifiers(self):
        assert case_config("case1").classifiers == ()

    def test_case_budgets(self):
        assert case_config("case2").classifier_budget() == ("road",)
        assert case_config("case3").classifier_budget() == ("road", "lane")
        assert len(case_config("case4").classifier_budget()) == 3
        # Variable: only one classifier per frame counts for tau.
        assert len(case_config("variable").classifier_budget()) == 1

    def test_unknown_case_raises(self):
        with pytest.raises(ValueError):
            case_config("case9")


class TestSchedulers:
    def test_every_frame_constant(self):
        scheme = EveryFrameScheme(("road", "lane"))
        assert scheme.classifiers_for_cycle(0.0) == ("road", "lane")
        assert scheme.classifiers_for_cycle(1234.0) == ("road", "lane")
        assert scheme.max_concurrent() == 2

    def test_every_frame_rejects_unknown(self):
        with pytest.raises(ValueError):
            EveryFrameScheme(("weather",))

    def test_variable_scheme_sequence(self):
        """Road every frame; lane then scene right after each window."""
        scheme = VariableScheme(window_ms=300.0)
        invocations = [scheme.classifiers_for_cycle(t) for t in range(0, 800, 25)]
        flat = [i[0] for i in invocations]
        assert flat[0] == "road"
        assert "lane" in flat and "scene" in flat
        lane_idx = flat.index("lane")
        assert flat[lane_idx + 1] == "scene"
        assert all(len(i) == 1 for i in invocations)

    def test_variable_scheme_road_dominates(self):
        scheme = VariableScheme(window_ms=300.0)
        flat = [scheme.classifiers_for_cycle(t)[0] for t in range(0, 3000, 25)]
        assert flat.count("road") > 0.8 * len(flat)

    def test_variable_reset_restarts_phase(self):
        scheme = VariableScheme(window_ms=300.0)
        first = [scheme.classifiers_for_cycle(t)[0] for t in range(0, 700, 25)]
        scheme.reset()
        second = [scheme.classifiers_for_cycle(t)[0] for t in range(0, 700, 25)]
        assert first == second

    def test_variable_rejects_bad_window(self):
        with pytest.raises(ValueError):
            VariableScheme(window_ms=0.0)


class TestOracleIdentifier:
    def test_perfect_oracle(self):
        oracle = OracleIdentifier(accuracy=1.0)
        situation = situation_by_index(8)
        out = oracle.identify(None, ("road", "lane", "scene"), situation)
        assert out["road"] == RoadLayout.RIGHT
        assert out["lane"] == (LaneColor.WHITE, LaneForm.CONTINUOUS)
        assert out["scene"] == Scene.DAY

    def test_partial_invocation(self):
        oracle = OracleIdentifier()
        out = oracle.identify(None, ("road",), situation_by_index(1))
        assert set(out) == {"road"}

    def test_noisy_oracle_flips_sometimes(self):
        oracle = OracleIdentifier(accuracy=0.5, seed=0)
        situation = situation_by_index(1)
        outputs = [
            oracle.identify(None, ("road",), situation)["road"] for _ in range(200)
        ]
        wrong = sum(1 for o in outputs if o is not RoadLayout.STRAIGHT)
        assert 50 < wrong < 150

    def test_invalid_accuracy_rejected(self):
        with pytest.raises(ValueError):
            OracleIdentifier(accuracy=0.0)


class TestReconfigurationManager:
    def _manager(self, case_name: str, **kwargs) -> ReconfigurationManager:
        manager = ReconfigurationManager(case_config(case_name), **kwargs)
        manager.reset(situation_by_index(1))
        return manager

    def test_requires_reset(self):
        manager = ReconfigurationManager(case_config("case1"))
        with pytest.raises(RuntimeError):
            _ = manager.believed

    def test_case1_fixed_knobs(self):
        manager = self._manager("case1")
        isp, invoked = manager.begin_cycle(0.0)
        decision = manager.decide(0.0, invoked)
        assert decision.roi == "ROI 1"
        assert decision.speed_kmph == 50.0
        assert decision.active_isp == "S0"
        assert invoked == ()

    def test_case2_coarse_roi_only(self):
        manager = self._manager("case2")
        manager.integrate_identification({"road": RoadLayout.RIGHT})
        decision = manager.decide(0.0, ("road",))
        assert decision.roi == "ROI 2"  # coarse: never ROI 3/5

    def test_case2_ignores_lane_classifier(self):
        manager = self._manager("case2")
        _, invoked = manager.begin_cycle(0.0)
        assert invoked == ("road",)

    def test_case3_fine_roi_for_dotted(self):
        manager = self._manager("case3")
        manager.integrate_identification(
            {
                "road": RoadLayout.LEFT,
                "lane": (LaneColor.WHITE, LaneForm.DOTTED),
            }
        )
        decision = manager.decide(0.0, ("road", "lane"))
        assert decision.roi == "ROI 5"

    def test_case3_keeps_full_isp(self):
        manager = self._manager("case3")
        manager.integrate_identification({"road": RoadLayout.LEFT})
        decision = manager.decide(0.0, ())
        assert decision.active_isp == "S0"

    def test_case4_isp_applies_next_cycle(self):
        table = default_characterization()
        manager = self._manager("case4", table=table)
        # Move into a dark situation: the ISP knob changes to S2, but
        # only from the next cycle.
        manager.begin_cycle(0.0)
        manager.integrate_identification({"scene": Scene.DARK})
        decision_now = manager.decide(0.0, ("scene",))
        assert decision_now.active_isp != "S2"
        isp_next, _ = manager.begin_cycle(25.0)
        assert isp_next == "S2"

    def test_isp_lag_zero_applies_immediately(self):
        manager = self._manager("case4", isp_apply_lag=0)
        manager.begin_cycle(0.0)
        manager.integrate_identification({"scene": Scene.DARK})
        decision = manager.decide(0.0, ("scene",))
        assert decision.active_isp == "S2"

    def test_speed_follows_layout(self):
        manager = self._manager("case2")
        manager.integrate_identification({"road": RoadLayout.LEFT})
        decision = manager.decide(0.0, ("road",))
        assert decision.speed_kmph == 30.0

    def test_timing_uses_case_budget(self):
        manager = self._manager("case3")
        decision = manager.decide(0.0, ())
        assert decision.timing.delay_ms == pytest.approx(35.6, abs=0.05)
        assert decision.timing.period_ms == 40.0

    def test_negative_lag_rejected(self):
        with pytest.raises(ValueError):
            ReconfigurationManager(case_config("case4"), isp_apply_lag=-1)

    def test_preview_is_side_effect_free(self):
        """A preview must not enqueue into the ISP apply pipeline.

        The HiL engine previews the manager before the first cycle to
        pick the initial speed; a decide() there used to enqueue a
        phantom ISP knob that begin_cycle popped one cycle early.
        """
        manager = self._manager("case4", isp_apply_lag=2)
        decision = manager.preview()
        assert manager._isp_queue == []
        assert manager.preview() == decision  # pure: stable under repetition
        # The first real cycle starts from the reset state, untouched.
        isp, _ = manager.begin_cycle(0.0)
        assert isp == decision.active_isp
        assert manager._isp_queue == []

    def test_preview_tracks_believed_situation(self):
        manager = self._manager("case2")
        manager.integrate_identification({"road": RoadLayout.RIGHT})
        decision = manager.preview()
        assert decision.roi == "ROI 2"
        assert decision.speed_kmph == 30.0
        assert manager._isp_queue == []

    def test_scene_fallback_independent_of_table_order(self):
        """An uncharacterized situation falls back to a same-scene entry;
        the pick must depend on the table contents, not insertion order."""
        dark_a = situation_by_index(7)
        dark_b = Situation(
            RoadLayout.LEFT, LaneColor.YELLOW, LaneForm.CONTINUOUS, Scene.DARK
        )
        assert dark_a.scene is dark_b.scene is Scene.DARK
        entry_a = (dark_a, KnobSetting(isp="S2", roi="ROI 1", speed_kmph=50.0))
        entry_b = (dark_b, KnobSetting(isp="S5", roi="ROI 4", speed_kmph=30.0))
        believed = Situation(
            RoadLayout.RIGHT, LaneColor.WHITE, LaneForm.DOTTED, Scene.DARK
        )
        picks = []
        for entries in ([entry_a, entry_b], [entry_b, entry_a]):
            manager = ReconfigurationManager(
                case_config("case4"), table=dict(entries)
            )
            manager.reset(situation_by_index(1))
            picks.append(manager._select_isp(believed))
        assert picks[0] == picks[1]
        # Deterministic winner: the same-scene entry whose config tuple
        # sorts first ('left...' < 'straight...').
        assert picks[0] == "S5"

    @pytest.mark.parametrize("lag", [0, 1, 2])
    def test_isp_switch_applies_exactly_lag_cycles_after_decision(self, lag):
        """Regression for the apply-lag phase contract (Sec. III-D).

        Runs the engine's per-cycle protocol (preview before the loop,
        then begin/integrate/decide per cycle) and asserts that the
        decision first carries the dark-scene ISP knob exactly ``lag``
        cycles after the cycle that identified the scene change.
        """
        manager = self._manager("case4", isp_apply_lag=lag)
        manager.preview()  # the engine's pre-loop query
        decided_cycle = 3
        applied_cycle = None
        for cycle in range(8):
            manager.begin_cycle(cycle * 25.0)
            if cycle == decided_cycle:
                manager.integrate_identification({"scene": Scene.DARK})
            decision = manager.decide(cycle * 25.0, ("scene",))
            if applied_cycle is None and decision.active_isp == "S2":
                applied_cycle = cycle
        assert applied_cycle == decided_cycle + lag
