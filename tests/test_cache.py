"""Tests for the content-addressed rollout cache (repro.cache).

Unit layer: sharded layout, LRU eviction, corruption-as-miss, the
``verify`` self-check, and the ``resolve_cache`` keyword mapping.
Integration layer: the multi-process stress (no torn files under
concurrent writers), the parent-write-back guarantee (a warm sweep
recomputes nothing), the stale ``.tmp`` sweep, the ``python -m repro
cache`` maintenance CLI, and the ``$REPRO_BATCH`` config-hash
regression — batching is an execution knob, never part of a rollout's
identity.
"""

from __future__ import annotations

import json
import multiprocessing
import os
import time

import numpy as np
import pytest

import repro.api
from repro.__main__ import main
from repro.cache import (
    CacheStats,
    RolloutCache,
    global_stats,
    kernel_identity_tag,
    resolve_cache,
    rollout_key,
    rollout_key_document,
)
from repro.core.characterization import CharacterizationConfig, characterize_situation
from repro.core.situation import situation_by_index
from repro.hil.record import CycleRecord, HilResult

QUICK = dict(situation=1, case="case1", seed=5, frame=(96, 48), length_m=40.0)

#: Tiny sweep for the warm-pass recompute check (4 closed-loop tasks).
TINY = CharacterizationConfig(
    isp_names=("S0", "S7"),
    speeds_kmph=(50.0,),
    track_length=70.0,
    prescreen_frames=6,
    max_isp_candidates=2,
    frame_width=192,
    frame_height=96,
    seed=5,
)


def tiny_result(entry: int) -> HilResult:
    """A deterministic synthetic trace for store-level tests."""
    n = 4 + entry % 3
    base = np.arange(n, dtype=np.float64)
    return HilResult(
        time_s=base * 0.04,
        s=base * 0.5 + entry,
        lateral_offset=np.sin(base + entry),
        y_l_true=np.cos(base + entry),
        steering=base * 0.01,
        speed=np.full(n, 50.0),
        cycles=[
            CycleRecord(
                time_ms=0.0, s=0.0, active_isp="S0", roi="ROI 1",
                speed_kmph=50.0, period_ms=40.0, delay_ms=36.0,
                invoked=("isp",), measurement_valid=True,
                y_l_measured=0.1, steering=0.0,
            )
        ],
        completed=True,
        manifest={"config_hash": f"{entry:024x}", "entry": entry},
    )


def tiny_document(entry: int) -> dict:
    return {"schema": 1, "kernel": "test", "entry": entry}


# ---------------------------------------------------------------------------
# store unit behaviour


class TestRolloutCacheStore:
    def test_entries_are_sharded_two_levels(self, tmp_path):
        store = RolloutCache(tmp_path, enabled=True)
        path = store.store(tiny_document(1), tiny_result(1))
        key = rollout_key(tiny_document(1))
        assert path == tmp_path / key[:2] / key[2:4] / f"{key}.npz"
        assert store.entries() == [path]

    def test_round_trip_and_counters(self, tmp_path):
        store = RolloutCache(tmp_path, enabled=True, count_global=False)
        assert store.load(tiny_document(2)) is None
        store.store(tiny_document(2), tiny_result(2))
        loaded = store.load(tiny_document(2))
        assert loaded is not None
        expected = tiny_result(2)
        assert loaded.time_s.tobytes() == expected.time_s.tobytes()
        assert loaded.cycles == expected.cycles
        assert loaded.manifest == expected.manifest
        assert store.stats.as_dict() == {
            "hits": 1, "misses": 1, "stores": 1, "evictions": 0,
        }

    def test_uncacheable_document_is_a_silent_noop(self, tmp_path):
        store = RolloutCache(tmp_path, enabled=True, count_global=False)
        assert store.load(None) is None
        assert store.store(None, tiny_result(0)) is None
        assert store.stats == CacheStats()

    def test_corrupt_entry_is_a_miss_and_a_verify_problem(self, tmp_path):
        store = RolloutCache(tmp_path, enabled=True, count_global=False)
        path = store.store(tiny_document(3), tiny_result(3))
        path.write_bytes(b"not an npz archive")
        assert store.load(tiny_document(3)) is None
        checked, problems = store.verify()
        assert checked == 1 and len(problems) == 1
        assert "unreadable" in problems[0]

    def test_verify_catches_entry_in_wrong_shard(self, tmp_path):
        store = RolloutCache(tmp_path, enabled=True, count_global=False)
        path = store.store(tiny_document(4), tiny_result(4))
        wrong = tmp_path / "zz" / "zz" / path.name
        wrong.parent.mkdir(parents=True)
        path.rename(wrong)
        checked, problems = store.verify()
        assert checked == 1 and len(problems) == 1
        assert "hashes to" in problems[0]

    def test_lru_eviction_protects_latest_store(self, tmp_path):
        entry_size = 0
        probe = RolloutCache(tmp_path / "probe", enabled=True)
        entry_size = probe.store(tiny_document(0), tiny_result(0)).stat().st_size
        store = RolloutCache(
            tmp_path / "store", max_bytes=int(entry_size * 2.5), enabled=True,
            count_global=False,
        )
        for entry in range(3):
            store.store(tiny_document(entry), tiny_result(entry))
            # mtime resolution can be coarse; keep the LRU order strict.
            time.sleep(0.02)
        assert len(store.entries()) == 2
        assert store.stats.evictions == 1
        assert store.load(tiny_document(0)) is None   # oldest evicted
        assert store.load(tiny_document(2)) is not None  # newest protected

    def test_clear_removes_everything(self, tmp_path):
        store = RolloutCache(tmp_path, enabled=True, count_global=False)
        for entry in range(3):
            store.store(tiny_document(entry), tiny_result(entry))
        assert store.clear() == 3
        assert store.entries() == [] and store.total_bytes() == 0

    def test_stale_tmp_is_swept_young_tmp_survives(self, tmp_path):
        store = RolloutCache(tmp_path, enabled=True, count_global=False)
        store.store(tiny_document(1), tiny_result(1))
        shard = store.entries()[0].parent
        stale = shard / "orphan.npz.tmp"
        stale.write_bytes(b"dead writer")
        os.utime(stale, (time.time() - 7200, time.time() - 7200))
        young = shard / "inflight.npz.tmp"
        young.write_bytes(b"live writer")
        store.store(tiny_document(2), tiny_result(2))
        assert not stale.exists()
        assert young.exists()


class TestResolveCache:
    def test_off_and_none_disable(self):
        assert resolve_cache(None) is None
        assert resolve_cache("off") is None

    def test_explicit_root(self, tmp_path):
        store = resolve_cache(tmp_path / "mine")
        assert store is not None and store.root == tmp_path / "mine"

    def test_auto_uses_default_root(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        store = resolve_cache("auto")
        assert store is not None and store.root == tmp_path / "rollouts"

    def test_no_cache_env_wins(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_NO_CACHE", "1")
        assert resolve_cache(tmp_path / "store") is None
        assert resolve_cache("auto") is None


# ---------------------------------------------------------------------------
# facade integration


class TestFacadeCache:
    def test_hit_is_byte_identical_including_manifest(self, tmp_path):
        store = tmp_path / "store"
        cold = repro.api.simulate(**QUICK, cache=store)
        warm = repro.api.simulate(**QUICK, cache=store)
        for field in ("time_s", "s", "lateral_offset", "y_l_true",
                      "steering", "speed"):
            assert getattr(cold, field).tobytes() == getattr(warm, field).tobytes()
        assert cold.cycles == warm.cycles
        # The stored manifest keeps the original run's wall clock, so
        # the hit manifest is equal *including* the volatile fields.
        assert cold.manifest == warm.manifest

    def test_key_document_carries_the_kernel_identity(self):
        from repro.hil.engine import HilConfig
        from repro.sim import static_situation_track

        track = static_situation_track(situation_by_index(1), length=40.0)
        document = rollout_key_document(
            track=track, case="case1", config=HilConfig()
        )
        assert document["kernel"] == kernel_identity_tag()
        assert document["schema"] == 1


# ---------------------------------------------------------------------------
# concurrency stress

_STRESS_ENTRIES = 12


def _stress_worker(args):
    """Interleave stores and loads of the full entry set in one store.

    Every observed hit must decode to the entry's exact deterministic
    bytes — a torn or partially visible file would fail the comparison
    or crash the npz parser, both of which report as failures.
    """
    root, worker_seed = args
    store = RolloutCache(root, enabled=True, count_global=False)
    order = np.random.default_rng(worker_seed).permutation(_STRESS_ENTRIES)
    failures = []
    for raw in order:
        entry = int(raw)
        store.store(tiny_document(entry), tiny_result(entry))
        loaded = store.load(tiny_document(entry))
        if loaded is None:
            failures.append(f"entry {entry}: miss right after store")
            continue
        expected = tiny_result(entry)
        if (
            loaded.time_s.tobytes() != expected.time_s.tobytes()
            or loaded.manifest != expected.manifest
        ):
            failures.append(f"entry {entry}: torn or mixed content")
    return failures


class TestConcurrencyStress:
    def test_parallel_writers_never_tear_entries(self, tmp_path):
        root = tmp_path / "shared-store"
        jobs = [(str(root), seed) for seed in range(4)]
        ctx = multiprocessing.get_context("fork")
        with ctx.Pool(processes=4) as pool:
            per_worker = pool.map(_stress_worker, jobs)
        assert [f for fails in per_worker for f in fails] == []
        store = RolloutCache(root, enabled=True, count_global=False)
        assert len(store.entries()) == _STRESS_ENTRIES
        checked, problems = store.verify()
        assert checked == _STRESS_ENTRIES and problems == []
        assert list(root.glob("**/*.tmp")) == []

    def test_warm_sweep_recomputes_nothing(self, tmp_path):
        """Parent-only write-back: a warm pooled sweep is all hits."""
        situation = situation_by_index(1)
        store_dir = tmp_path / "sweep-store"
        before = global_stats().snapshot()
        cold = characterize_situation(situation, TINY, jobs=2, cache=store_dir)
        after_cold = global_stats().since(before)
        assert after_cold.stores == after_cold.misses > 0
        warm = characterize_situation(situation, TINY, jobs=2, cache=store_dir)
        delta = global_stats().since(before).since(after_cold)
        assert delta.stores == 0 and delta.misses == 0
        assert delta.hits == after_cold.misses
        assert [(e.knobs, e.mae) for e in warm] == [
            (e.knobs, e.mae) for e in cold
        ]


# ---------------------------------------------------------------------------
# CLI maintenance + the tier-1 verify hook


class TestCacheCli:
    def _populate(self, tmp_path):
        root = tmp_path / "store"
        repro.api.simulate(**QUICK, cache=root)
        return root

    def test_stats_and_verify_ok(self, tmp_path, capsys):
        root = self._populate(tmp_path)
        assert main(["cache", "--dir", str(root)]) == 0
        out = capsys.readouterr().out
        assert "entries  1" in out
        assert main(["cache", "--verify", "--dir", str(root)]) == 0
        assert "OK" in capsys.readouterr().out

    def test_verify_fails_on_tampered_entry(self, tmp_path, capsys):
        root = self._populate(tmp_path)
        store = RolloutCache(root, enabled=True)
        entry = store.entries()[0]
        entry.rename(entry.with_name("0" * 24 + ".npz"))
        assert main(["cache", "--verify", "--dir", str(root)]) == 2
        captured = capsys.readouterr()
        assert "problem" in captured.out
        assert captured.err.strip() != ""

    def test_clear(self, tmp_path, capsys):
        root = self._populate(tmp_path)
        assert main(["cache", "--clear", "--dir", str(root)]) == 0
        assert "removed 1" in capsys.readouterr().out
        assert RolloutCache(root).entries() == []


class TestBatchIndependentConfigHash:
    def test_repro_batch_does_not_change_the_config_hash(
        self, capsys, monkeypatch
    ):
        """Regression: $REPRO_BATCH is an execution knob, not identity."""
        hashes = []
        for lanes in ("1", "4"):
            monkeypatch.setenv("REPRO_BATCH", lanes)
            assert main([
                "run", "--case", "case1", "--seed", "9",
                "--length", "40", "--frame", "96x48",
            ]) == 0
            out = capsys.readouterr().out
            line = [l for l in out.splitlines() if l.startswith("config hash ")]
            assert line, f"no config-hash line in output: {out!r}"
            hashes.append(line[0].split()[2])
        assert hashes[0] == hashes[1]
