"""Shared fixtures for the test suite.

Closed-loop and rendering tests use a small camera (160x80) to keep the
suite fast; geometry is resolution-independent by construction (the BEV
resampler works in ground metres), and the full-resolution behaviour is
covered by the benchmarks.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.situation import situation_by_index
from repro.sim.camera import CameraModel
from repro.sim.renderer import RoadSceneRenderer
from repro.sim.world import fig7_track, static_situation_track


@pytest.fixture(scope="session")
def small_camera() -> CameraModel:
    return CameraModel(width=160, height=80)


@pytest.fixture(scope="session")
def hil_camera() -> CameraModel:
    """The camera size used by closed-loop tests (kept small)."""
    return CameraModel(width=192, height=96)


@pytest.fixture(scope="session")
def day_track():
    return static_situation_track(situation_by_index(1), length=200.0)


@pytest.fixture(scope="session")
def dynamic_track():
    return fig7_track()


@pytest.fixture()
def day_renderer(small_camera, day_track):
    return RoadSceneRenderer(small_camera, day_track, seed=1)


@pytest.fixture(scope="session")
def rng():
    return np.random.default_rng(1234)
