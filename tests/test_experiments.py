"""Light tests of the experiment modules (full runs live in benchmarks/)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.situation import situation_by_index
from repro.experiments.common import format_table, full_scale
from repro.experiments.fig1 import PAPER_FIG1, DetectorPoint, format_fig1
from repro.experiments.fig6 import SituationCaseResult, format_fig6
from repro.experiments.fig7 import format_fig7, run_fig7
from repro.experiments.fig8 import PAPER_AGGREGATES, aggregate_improvements
from repro.experiments.table2 import format_table2, run_table2
from repro.experiments.table3 import PAPER_TABLE3
from repro.experiments.table5 import format_table5, run_table5


class TestCommon:
    def test_format_table_alignment(self):
        text = format_table(["a", "bb"], [["1", "222"], ["33", "4"]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert lines[0].startswith("a ")

    def test_full_scale_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_FULL", "1")
        assert full_scale()
        monkeypatch.setenv("REPRO_FULL", "0")
        assert not full_scale()


class TestFig1:
    def test_paper_points_cover_detectors(self):
        assert "sliding window (static)" in PAPER_FIG1
        assert PAPER_FIG1["sliding window (static)"]["accuracy"] == 0.52

    def test_format_handles_unknown_detector(self):
        point = DetectorPoint("novel", 0.9, 12.0, {})
        text = format_fig1([point])
        assert "novel" in text


class TestTable2:
    def test_runs_and_reports_all_knobs(self):
        data = run_table2(repeats=1)
        assert len(data["isp"]) == 9
        assert len(data["roi"]) == 5
        text = format_table2(data)
        assert "S0" in text and "ROI 5" in text

    def test_python_runtimes_positive(self):
        data = run_table2(repeats=1)
        assert all(row.python_ms > 0 for row in data["isp"])


class TestTable3Data:
    def test_paper_table_complete(self):
        assert set(PAPER_TABLE3) == set(range(1, 22))

    def test_paper_hard_situations_use_s2(self):
        assert PAPER_TABLE3[20][0] == "S2"
        assert PAPER_TABLE3[20][2][1] == 45


class TestTable5:
    def test_rows_and_format(self):
        rows = run_table5()
        assert {r.case.name for r in rows} == {
            "case1",
            "case2",
            "case3",
            "case4",
            "variable",
            "adaptive",
        }
        assert "case3" in format_table5(rows)


class TestFig7:
    def test_nine_rows(self):
        rows = run_fig7()
        assert len(rows) == 9
        assert "sector" in format_fig7(rows)


class TestFig6Formatting:
    def test_fail_marker(self):
        sit = situation_by_index(8)
        results = []
        for case, crashed in [
            ("case1", True),
            ("case2", False),
            ("case3", False),
            ("case4", False),
        ]:
            results.append(
                SituationCaseResult(
                    index=8,
                    situation=sit,
                    case=case,
                    mae=0.05,
                    crashed=crashed,
                    normalized=1.0,
                )
            )
        text = format_fig6(results)
        assert "FAIL" in text


class TestFig8Aggregates:
    def test_paper_aggregates_defined(self):
        assert PAPER_AGGREGATES[("case4", "case3")] == 0.30
        assert PAPER_AGGREGATES[("variable", "case3")] == 0.32

    def test_aggregate_improvements_math(self):
        from repro.experiments.fig8 import DynamicCaseResult
        from repro.hil.record import HilResult, SectorQoC

        def fake(mae_values):
            sectors = [
                SectorQoC(
                    sector=i + 1,
                    s_start=0,
                    s_end=1,
                    mae=m,
                    reached=True,
                    completed=True,
                )
                for i, m in enumerate(mae_values)
            ]
            result = HilResult(
                time_s=np.array([0.1]),
                s=np.array([1.0]),
                lateral_offset=np.zeros(1),
                y_l_true=np.zeros(1),
                steering=np.zeros(1),
                speed=np.zeros(1),
            )
            return DynamicCaseResult(case="x", result=result, sectors=sectors)

        results = {
            "case3": fake([0.02, 0.02]),
            "case4": fake([0.01, 0.01]),
        }
        aggregates = aggregate_improvements(results)
        assert aggregates[("case4", "case3")] == pytest.approx(0.5)


class TestFig8SeedMerging:
    def test_merge_sector_runs(self):
        from repro.experiments.fig8 import _merge_sector_runs
        from repro.hil.record import SectorQoC

        def sector(mae, reached=True, completed=True):
            return SectorQoC(
                sector=1, s_start=0, s_end=10, mae=mae,
                reached=reached, completed=completed,
            )

        merged = _merge_sector_runs(
            [[sector(0.02)], [sector(0.04)]]
        )
        assert merged[0].mae == pytest.approx(0.03)
        assert merged[0].completed

    def test_merge_completion_is_worst_case(self):
        from repro.experiments.fig8 import _merge_sector_runs
        from repro.hil.record import SectorQoC

        good = SectorQoC(1, 0, 10, 0.02, True, True)
        bad = SectorQoC(1, 0, 10, 0.05, True, False)
        merged = _merge_sector_runs([[good], [bad]])
        assert not merged[0].completed
        assert merged[0].reached

    def test_merge_handles_missing_mae(self):
        from repro.experiments.fig8 import _merge_sector_runs
        from repro.hil.record import SectorQoC

        none_mae = SectorQoC(1, 0, 10, None, False, False)
        merged = _merge_sector_runs([[none_mae], [none_mae]])
        assert merged[0].mae is None
