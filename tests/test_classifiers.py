"""Tests for datasets, classifier models and runtime identification.

Training tests use tiny datasets and few epochs: they verify learning
mechanics and plumbing; the full Table IV accuracies are produced by the
benchmark harness with the paper's dataset sizes.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.classifiers.dataset import (
    LANE_CLASSES,
    ROAD_CLASSES,
    SCENE_CLASSES,
    TABLE4_SPLITS,
    ClassifierDataset,
    DatasetConfig,
    block_downsample,
    generate_dataset,
    to_network_input,
)
from repro.classifiers.models import SituationClassifier, build_tiny_resnet
from repro.classifiers.runtime import CnnIdentifier
from repro.classifiers.train import train_classifier
from repro.core.situation import RoadLayout, situation_by_index
from repro.nn.trainer import TrainConfig


class TestDatasetConfig:
    def test_table4_split_sizes(self):
        assert TABLE4_SPLITS["road"] == (5866, 5353, 513)
        assert TABLE4_SPLITS["lane"] == (4781, 3939, 842)
        assert TABLE4_SPLITS["scene"] == (4703, 3892, 811)

    def test_resolved_sizes_default_to_table4(self):
        cfg = DatasetConfig("road")
        assert cfg.resolved_sizes() == (5353, 513)

    def test_input_shape(self):
        cfg = DatasetConfig("road", render_width=96, render_height=48, downsample=2)
        assert cfg.input_shape == (3, 24, 48)

    def test_unknown_classifier_rejected(self):
        with pytest.raises(ValueError):
            DatasetConfig("weather")

    def test_indivisible_downsample_rejected(self):
        with pytest.raises(ValueError):
            DatasetConfig("road", render_width=97, downsample=2)


class TestPreprocessing:
    def test_block_downsample_averages(self):
        img = np.arange(16, dtype=np.float32).reshape(4, 4, 1)
        out = block_downsample(img, 2)
        assert out.shape == (2, 2, 1)
        assert out[0, 0, 0] == pytest.approx((0 + 1 + 4 + 5) / 4)

    def test_block_downsample_factor_one_identity(self):
        img = np.random.default_rng(0).random((4, 4, 3)).astype(np.float32)
        np.testing.assert_array_equal(block_downsample(img, 1), img)

    def test_to_network_input_standardized(self):
        img = np.random.default_rng(0).random((8, 8, 3)).astype(np.float32)
        chw = to_network_input(img, 2)
        assert chw.shape == (3, 4, 4)
        assert chw.mean() == pytest.approx(0.0, abs=1e-5)
        assert chw.std() == pytest.approx(1.0, abs=1e-3)


class TestDatasetGeneration:
    @pytest.fixture(scope="class")
    def small_dataset(self) -> ClassifierDataset:
        return generate_dataset(DatasetConfig("road", n_train=60, n_val=24))

    def test_shapes(self, small_dataset):
        assert small_dataset.x_train.shape == (60, 3, 24, 48)
        assert small_dataset.y_train.shape == (60,)
        assert small_dataset.x_val.shape == (24, 3, 24, 48)

    def test_labels_are_balanced(self, small_dataset):
        labels = np.concatenate([small_dataset.y_train, small_dataset.y_val])
        counts = np.bincount(labels, minlength=3)
        assert counts.min() >= len(labels) // 3 - 1

    def test_deterministic_given_seed(self):
        cfg = DatasetConfig("scene", n_train=10, n_val=5, seed=3)
        a = generate_dataset(cfg)
        b = generate_dataset(cfg)
        np.testing.assert_array_equal(a.x_train, b.x_train)
        np.testing.assert_array_equal(a.y_train, b.y_train)

    def test_class_lists(self):
        assert len(ROAD_CLASSES) == 3
        assert len(LANE_CLASSES) == 4
        assert len(SCENE_CLASSES) == 5


class TestTraining:
    def test_learns_scene_from_small_data(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        cfg = DatasetConfig("scene", n_train=150, n_val=50)
        result = train_classifier(
            "scene", cfg, TrainConfig(epochs=5, lr=3e-3), use_cache=False
        )
        # Scene (brightness) separates quickly even at this scale.
        assert result.val_accuracy > 0.7

    def test_cache_round_trip(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        cfg = DatasetConfig("scene", n_train=30, n_val=10)
        tc = TrainConfig(epochs=1)
        first = train_classifier("scene", cfg, tc, use_cache=True)
        second = train_classifier("scene", cfg, tc, use_cache=True)
        assert not first.from_cache
        assert second.from_cache
        assert second.val_accuracy == pytest.approx(first.val_accuracy)

    def test_cached_model_predicts_identically(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        cfg = DatasetConfig("road", n_train=30, n_val=12)
        tc = TrainConfig(epochs=1)
        dataset = generate_dataset(cfg)
        first = train_classifier("road", cfg, tc, use_cache=True, dataset=dataset)
        second = train_classifier("road", cfg, tc, use_cache=True)
        x = dataset.x_val[0]
        np.testing.assert_allclose(
            first.classifier.predict_proba(x),
            second.classifier.predict_proba(x),
            atol=1e-6,
        )

    def test_mismatched_config_rejected(self):
        with pytest.raises(ValueError):
            train_classifier("road", DatasetConfig("lane"))


class TestInference:
    @pytest.fixture(scope="class")
    def classifier(self) -> SituationClassifier:
        model = build_tiny_resnet(3, seed=0)
        return SituationClassifier(
            "road", model, ROAD_CLASSES, input_shape=(3, 24, 48)
        )

    def test_predict_proba_normalized(self, classifier):
        x = np.random.default_rng(0).standard_normal((3, 24, 48)).astype(np.float32)
        probs = classifier.predict_proba(x)
        assert probs.shape == (3,)
        assert probs.sum() == pytest.approx(1.0)

    def test_predict_returns_class(self, classifier):
        x = np.zeros((3, 24, 48), dtype=np.float32)
        assert classifier.predict(x) in ROAD_CLASSES

    def test_wrong_input_shape_rejected(self, classifier):
        with pytest.raises(ValueError):
            classifier.predict_proba(np.zeros((3, 10, 10), dtype=np.float32))

    def test_predict_frame_downsamples(self, classifier):
        frame = np.random.default_rng(0).random((192, 384, 3)).astype(np.float32)
        assert classifier.predict_frame(frame) in ROAD_CLASSES

    def test_predict_frame_rejects_incompatible(self, classifier):
        frame = np.zeros((100, 384, 3), dtype=np.float32)
        with pytest.raises(ValueError):
            classifier.predict_frame(frame)

    def test_cnn_identifier_requires_all_three(self, classifier):
        with pytest.raises(ValueError):
            CnnIdentifier({"road": classifier})

    def test_cnn_identifier_partial_invocation(self, classifier):
        identifier = CnnIdentifier(
            {"road": classifier, "lane": classifier, "scene": classifier}
        )
        frame = np.random.default_rng(1).random((192, 384, 3)).astype(np.float32)
        out = identifier.identify(frame, ("road",), situation_by_index(1))
        assert set(out) == {"road"}
        assert out["road"] in ROAD_CLASSES
