"""Consistency checks of the shipped characterization table and its
interaction with the timing model and the controller designs."""

from __future__ import annotations

import pytest

from repro.control.gains import GainScheduler
from repro.control.switching import find_cqlf, verify_cqlf
from repro.core.cases import case_config
from repro.core.defaults import default_characterization
from repro.core.situation import RoadLayout, TABLE3_SITUATIONS
from repro.sim.vehicle import VehicleParams


class TestShippedTable:
    @pytest.fixture(scope="class")
    def table(self):
        return default_characterization()

    def test_every_situation_present(self, table):
        assert set(table) == set(TABLE3_SITUATIONS)

    def test_speed_rule(self, table):
        for situation, knobs in table.items():
            expected = 50.0 if situation.layout is RoadLayout.STRAIGHT else 30.0
            assert knobs.speed_kmph == expected

    def test_roi_family_matches_layout(self, table):
        for situation, knobs in table.items():
            if situation.layout is RoadLayout.STRAIGHT:
                assert knobs.roi == "ROI 1"
            elif situation.layout is RoadLayout.RIGHT:
                assert knobs.roi in ("ROI 2", "ROI 3")
            else:
                assert knobs.roi in ("ROI 4", "ROI 5")

    def test_timings_are_feasible(self, table):
        budget = case_config("case4").classifier_budget()
        for knobs in table.values():
            timing = knobs.timing(budget, dynamic_isp=True)
            assert 0 < timing.delay_ms <= timing.period_ms

    def test_all_design_points_stable_and_switchable(self, table):
        """Every (v, h, tau) the shipped table can demand admits a
        stable LQR, and the whole set shares a CQLF — the paper's
        switching-stability requirement holds for the shipped defaults."""
        scheduler = GainScheduler(VehicleParams())
        budget = case_config("case4").classifier_budget()
        for knobs in table.values():
            timing = knobs.timing(budget, dynamic_isp=True)
            gains = scheduler.gains_for(
                knobs.speed_mps, timing.period_s, timing.delay_s
            )
            assert gains.closed_loop_radius < 1.0
        modes = [g.a_closed for g in scheduler.cached_designs()]
        p = find_cqlf(modes)
        assert p is not None and verify_cqlf(p, modes)
