"""CLI smoke tests: argument parsing, exit codes, and output shape for
``python -m repro run / profile / inject / lint --project / graph /
request``, plus the uniform bad-input contract (exit 2, one stderr
line) shared by every command.

Each executing test uses the small test frame (192x96) and a short
track so the whole module stays tier-1 fast; the per-rule lint
behaviour has its own coverage in tests/test_analysis.py.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.__main__ import _parse_frame, build_parser, main

FRAME_ARGS = ["--frame", "192x96"]
REPO_ROOT = Path(__file__).resolve().parents[1]


# ---------------------------------------------------------------------------
# parsing


class TestParsing:
    def test_parse_frame(self):
        import argparse

        assert _parse_frame("384x192") == (384, 192)
        assert _parse_frame("") is None
        with pytest.raises(argparse.ArgumentTypeError, match="384x192"):
            _parse_frame("widexhigh")

    def test_run_defaults(self):
        args = build_parser().parse_args(["run"])
        assert args.situation == 1 and args.case == "case3"
        assert args.length == 150.0 and args.seed == 1
        assert args.frame is None and args.profile is False

    def test_inject_arguments(self):
        args = build_parser().parse_args(
            ["inject", "--faults", "stress", "--situation", "8",
             "--frame", "192x96", "--no-mitigation", "--compare"]
        )
        assert args.faults == "stress"
        assert args.situation == 8
        assert args.frame == (192, 96)
        assert args.no_mitigation and args.compare

    def test_inject_requires_faults(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            build_parser().parse_args(["inject"])
        assert excinfo.value.code == 2
        assert "--faults" in capsys.readouterr().err

    def test_bad_case_and_bad_frame_are_usage_errors(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            build_parser().parse_args(["run", "--case", "case9"])
        assert excinfo.value.code == 2
        with pytest.raises(SystemExit) as excinfo:
            build_parser().parse_args(["run", "--frame", "huge"])
        assert excinfo.value.code == 2
        capsys.readouterr()

    def test_unknown_command_is_a_usage_error(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["teleport"])
        assert excinfo.value.code == 2
        capsys.readouterr()


# ---------------------------------------------------------------------------
# execution and exit codes


class TestRunCommand:
    def test_clean_run_exits_zero(self, capsys):
        code = main(["run", "--length", "60", "--seed", "7", *FRAME_ARGS])
        out = capsys.readouterr().out
        assert code == 0
        assert "completed" in out and "MAE" in out

    def test_run_with_profile_prints_stage_table(self, capsys):
        code = main(
            ["run", "--length", "40", "--seed", "7", "--profile", *FRAME_ARGS]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "hil.control" in out


class TestTraceCommand:
    def _record(self, path, tmp_path, seed="7"):
        return main(
            ["run", "--length", "40", "--seed", seed, *FRAME_ARGS,
             "--telemetry", str(tmp_path / path)]
        )

    def test_run_telemetry_writes_a_trace(self, tmp_path, capsys):
        code = self._record("run.jsonl", tmp_path)
        out = capsys.readouterr().out
        assert code == 0
        assert "telemetry trace written to" in out
        assert (tmp_path / "run.jsonl").exists()

    def test_trace_show_summarizes(self, tmp_path, capsys):
        self._record("run.jsonl", tmp_path)
        capsys.readouterr()
        code = main(["trace", str(tmp_path / "run.jsonl"), "--show"])
        out = capsys.readouterr().out
        assert code == 0
        assert "config hash" in out
        assert "cycle.end" in out and "rng streams" in out

    def test_trace_json_dumps_manifest_and_events(self, tmp_path, capsys):
        self._record("run.jsonl", tmp_path)
        capsys.readouterr()
        code = main(["trace", str(tmp_path / "run.jsonl"), "--json"])
        document = json.loads(capsys.readouterr().out)
        assert code == 0
        assert "config_hash" in document["manifest"]
        assert document["events"][0]["event"] == "cycle.start"

    def test_trace_diff_identical_exits_zero(self, tmp_path, capsys):
        self._record("a.jsonl", tmp_path)
        self._record("b.jsonl", tmp_path)
        capsys.readouterr()
        code = main(
            ["trace", "--diff", str(tmp_path / "a.jsonl"),
             str(tmp_path / "b.jsonl")]
        )
        assert code == 0
        assert "identical" in capsys.readouterr().out

    def test_trace_diff_divergent_exits_two(self, tmp_path, capsys):
        self._record("a.jsonl", tmp_path)
        self._record("c.jsonl", tmp_path, seed="8")
        capsys.readouterr()
        code = main(
            ["trace", "--diff", str(tmp_path / "a.jsonl"),
             str(tmp_path / "c.jsonl")]
        )
        assert code == 2
        assert "event" in capsys.readouterr().out

    def test_trace_without_path_or_diff_is_an_error(self, capsys):
        code = main(["trace"])
        assert code == 2
        assert "give a trace path" in capsys.readouterr().err


class TestProfileCommand:
    def test_profile_prints_measured_vs_modeled(self, capsys):
        code = main(["profile", "--length", "40", "--seed", "7", *FRAME_ARGS])
        out = capsys.readouterr().out
        assert code == 0
        assert "model ms" in out and "hil.pr" in out


class TestInjectCommand:
    def test_inject_reports_plan_and_exits_zero(self, capsys):
        code = main(
            ["inject", "--faults", "banding@1000:2000", "--length", "60",
             "--seed", "7", *FRAME_ARGS]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "banding @" in out          # the plan description
        assert "mitigated" in out
        assert "faults seen: banding" in out

    def test_compare_runs_both_arms(self, capsys):
        code = main(
            ["inject", "--faults", "banding@1000:2000", "--length", "60",
             "--seed", "7", "--compare", *FRAME_ARGS]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "unmitigated" in out and "mitigated" in out

    def test_crash_exits_one(self, capsys):
        # A permanent sensor blackout in a turn: the vehicle departs the
        # lane once the curve starts and the run must report failure.
        code = main(
            ["inject", "--faults", "blackout@0:inf", "--situation", "8",
             "--length", "100", "--seed", "7", "--no-mitigation", *FRAME_ARGS]
        )
        out = capsys.readouterr().out
        assert code == 1
        assert "CRASHED" in out

    def test_unknown_preset_exits_two(self, capsys):
        code = main(["inject", "--faults", "gremlins", *FRAME_ARGS])
        captured = capsys.readouterr()
        assert code == 2
        assert "unknown fault plan preset" in captured.err


class TestRequestCommand:
    def test_request_health_and_simulate_round_trip(self, tmp_path, capsys):
        from repro.service.server import ServerThread

        with ServerThread(
            socket_path=str(tmp_path / "svc.sock"), workers=1
        ) as thread:
            socket_args = ["--socket", thread.connect_kwargs["socket"]]
            code = main(["request", "health", *socket_args])
            health_out = capsys.readouterr().out
            params = json.dumps(
                {"seed": 7, "length_m": 40.0, "frame": [96, 48]}
            )
            code_sim = main(
                ["request", "simulate", "--params", params, *socket_args]
            )
            sim_out = capsys.readouterr().out
        assert code == 0 and "status" in health_out
        assert code_sim == 0 and "completed" in sim_out and "MAE" in sim_out

    def test_params_must_be_a_json_object(self, capsys):
        code = main(["request", "simulate", "--params", "[1,2]",
                     "--socket", "irrelevant.sock"])
        assert code == 2
        assert "JSON object" in capsys.readouterr().err


# ---------------------------------------------------------------------------
# the uniform bad-input contract: exit 2, one line on stderr


class TestBadInputExitsTwo:
    @pytest.mark.parametrize(
        "argv",
        [
            ["run", "--length", "-5", *FRAME_ARGS],
            ["characterize", "--situation", "99"],
            ["trace", "/nonexistent/trace.jsonl", "--show"],
            ["request", "health", "--socket", "/nonexistent/svc.sock"],
        ],
        ids=["run", "characterize", "trace", "request"],
    )
    def test_bad_user_input_exits_two_with_one_stderr_line(
        self, argv, capsys
    ):
        # Every command funnels user-input defects (ValueError,
        # ServiceError, OSError) through the same handler in main():
        # exit code 2 and exactly one "repro <command>: ..." line on
        # stderr, never a traceback.
        code = main(argv)
        captured = capsys.readouterr()
        assert code == 2
        lines = captured.err.strip().splitlines()
        assert len(lines) == 1
        assert lines[0].startswith(f"repro {argv[0]}: ")


# ---------------------------------------------------------------------------
# project lint and graph


class TestProjectLintCommand:
    def test_lint_project_is_clean_on_shipped_tree(self, capsys):
        # The lint-project tier-1 session: the whole-program pass over
        # src/repro must exit clean (architecture contract, import
        # cycles, dead code, API lockfile, RNG streams all green).
        code = main(
            ["lint", "--project", str(REPO_ROOT / "src" / "repro"),
             "--format", "json"]
        )
        document = json.loads(capsys.readouterr().out)
        assert code == 0, document
        assert document["summary"]["exit_code"] == 0
        assert document["summary"]["files_checked"] > 80

    def test_lint_project_flags_a_violating_tree(self, tmp_path, capsys):
        pkg = tmp_path / "src" / "pkg"
        pkg.mkdir(parents=True)
        (pkg / "__init__.py").write_text("")
        (pkg / "a.py").write_text("import pkg.b\n")
        (pkg / "b.py").write_text("import pkg.a\n")
        (tmp_path / "pyproject.toml").write_text(
            '[tool.reprolint]\nselect = ["ARC002"]\n'
        )
        code = main(["lint", "--project", str(pkg)])
        assert code == 2  # import cycles are fatal
        assert "ARC002" in capsys.readouterr().out


class TestGraphCommand:
    def _project(self, tmp_path):
        pkg = tmp_path / "src" / "pkg"
        pkg.mkdir(parents=True)
        (pkg / "__init__.py").write_text("")
        (pkg / "api.py").write_text(
            '__all__ = ["run"]\n\n\n'
            'def run(*, steps=1):\n'
            '    """Run."""\n'
            "    return steps\n"
        )
        (tmp_path / "pyproject.toml").write_text("[tool.reprolint]\n")
        return pkg

    def test_update_lockfile_is_idempotent(self, tmp_path, capsys):
        self._project(tmp_path)
        root = ["--root", str(tmp_path)]
        assert main(["graph", *root, "--update-lockfile"]) == 0
        assert "updated" in capsys.readouterr().out
        lockfile = tmp_path / "api_surface.json"
        first = lockfile.read_text()
        assert main(["graph", *root, "--update-lockfile"]) == 0
        assert "up to date" in capsys.readouterr().out
        assert lockfile.read_text() == first
        assert "run" in json.loads(first)["api"]

    def test_graph_text_dot_and_json_modes(self, capsys):
        root = ["--root", str(REPO_ROOT)]
        assert main(["graph", *root]) == 0
        text = capsys.readouterr().out
        assert "repro:" in text and "modules" in text

        assert main(["graph", *root, "--dot"]) == 0
        dot = capsys.readouterr().out
        assert dot.startswith('digraph "repro"')
        assert '"hil" -> "perception";' in dot

        assert main(["graph", *root, "--json"]) == 0
        document = json.loads(capsys.readouterr().out)
        assert document["package"] == "repro"
        assert "repro.hil.engine" in document["modules"]
        assert "utils" in document["layers"]["metrics"]

    def test_graph_modes_are_mutually_exclusive(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            build_parser().parse_args(["graph", "--dot", "--json"])
        assert excinfo.value.code == 2
        capsys.readouterr()

    def test_shipped_lockfile_is_current(self, capsys):
        # `graph --update-lockfile` on the repo itself is a no-op: the
        # committed api_surface.json matches the extracted surface.
        before = (REPO_ROOT / "api_surface.json").read_text()
        assert main(
            ["graph", "--root", str(REPO_ROOT), "--update-lockfile"]
        ) == 0
        assert "up to date" in capsys.readouterr().out
        assert (REPO_ROOT / "api_surface.json").read_text() == before
