"""CLI smoke tests: argument parsing, exit codes, and output shape for
``python -m repro run / profile / inject``.

Each executing test uses the small test frame (192x96) and a short
track so the whole module stays tier-1 fast; the lint subcommand has
its own coverage in tests/test_analysis.py.
"""

from __future__ import annotations

import pytest

from repro.__main__ import _parse_frame, build_parser, main

FRAME_ARGS = ["--frame", "192x96"]


# ---------------------------------------------------------------------------
# parsing


class TestParsing:
    def test_parse_frame(self):
        import argparse

        assert _parse_frame("384x192") == (384, 192)
        assert _parse_frame("") is None
        with pytest.raises(argparse.ArgumentTypeError, match="384x192"):
            _parse_frame("widexhigh")

    def test_run_defaults(self):
        args = build_parser().parse_args(["run"])
        assert args.situation == 1 and args.case == "case3"
        assert args.length == 150.0 and args.seed == 1
        assert args.frame is None and args.profile is False

    def test_inject_arguments(self):
        args = build_parser().parse_args(
            ["inject", "--faults", "stress", "--situation", "8",
             "--frame", "192x96", "--no-mitigation", "--compare"]
        )
        assert args.faults == "stress"
        assert args.situation == 8
        assert args.frame == (192, 96)
        assert args.no_mitigation and args.compare

    def test_inject_requires_faults(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            build_parser().parse_args(["inject"])
        assert excinfo.value.code == 2
        assert "--faults" in capsys.readouterr().err

    def test_bad_case_and_bad_frame_are_usage_errors(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            build_parser().parse_args(["run", "--case", "case9"])
        assert excinfo.value.code == 2
        with pytest.raises(SystemExit) as excinfo:
            build_parser().parse_args(["run", "--frame", "huge"])
        assert excinfo.value.code == 2
        capsys.readouterr()

    def test_unknown_command_is_a_usage_error(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["teleport"])
        assert excinfo.value.code == 2
        capsys.readouterr()


# ---------------------------------------------------------------------------
# execution and exit codes


class TestRunCommand:
    def test_clean_run_exits_zero(self, capsys):
        code = main(["run", "--length", "60", "--seed", "7", *FRAME_ARGS])
        out = capsys.readouterr().out
        assert code == 0
        assert "completed" in out and "MAE" in out

    def test_run_with_profile_prints_stage_table(self, capsys):
        code = main(
            ["run", "--length", "40", "--seed", "7", "--profile", *FRAME_ARGS]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "hil.control" in out


class TestProfileCommand:
    def test_profile_prints_measured_vs_modeled(self, capsys):
        code = main(["profile", "--length", "40", "--seed", "7", *FRAME_ARGS])
        out = capsys.readouterr().out
        assert code == 0
        assert "model ms" in out and "hil.pr" in out


class TestInjectCommand:
    def test_inject_reports_plan_and_exits_zero(self, capsys):
        code = main(
            ["inject", "--faults", "banding@1000:2000", "--length", "60",
             "--seed", "7", *FRAME_ARGS]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "banding @" in out          # the plan description
        assert "mitigated" in out
        assert "faults seen: banding" in out

    def test_compare_runs_both_arms(self, capsys):
        code = main(
            ["inject", "--faults", "banding@1000:2000", "--length", "60",
             "--seed", "7", "--compare", *FRAME_ARGS]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "unmitigated" in out and "mitigated" in out

    def test_crash_exits_one(self, capsys):
        # A permanent sensor blackout in a turn: the vehicle departs the
        # lane once the curve starts and the run must report failure.
        code = main(
            ["inject", "--faults", "blackout@0:inf", "--situation", "8",
             "--length", "100", "--seed", "7", "--no-mitigation", *FRAME_ARGS]
        )
        out = capsys.readouterr().out
        assert code == 1
        assert "CRASHED" in out

    def test_unknown_preset_exits_two(self, capsys):
        code = main(["inject", "--faults", "gremlins", *FRAME_ARGS])
        captured = capsys.readouterr()
        assert code == 2
        assert "unknown fault plan preset" in captured.err
