"""Tests for QoC and detection-accuracy metrics."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.metrics.accuracy import DetectionSample, detection_accuracy
from repro.metrics.qoc import mae, max_abs, normalize_to, rmse


class TestQoc:
    def test_mae_definition(self):
        assert mae([1.0, -1.0, 2.0]) == pytest.approx(4.0 / 3.0)

    def test_mae_empty_rejected(self):
        with pytest.raises(ValueError):
            mae([])

    def test_rmse_dominates_mae(self):
        samples = [0.1, -0.5, 2.0, 0.0]
        assert rmse(samples) >= mae(samples)

    def test_max_abs(self):
        assert max_abs([-3.0, 2.0]) == 3.0

    def test_normalize_to(self):
        out = normalize_to([2.0, 4.0], 2.0)
        np.testing.assert_allclose(out, [1.0, 2.0])

    def test_normalize_rejects_zero_reference(self):
        with pytest.raises(ValueError):
            normalize_to([1.0], 0.0)

    @given(st.lists(st.floats(min_value=-10, max_value=10), min_size=1, max_size=30))
    @settings(max_examples=50, deadline=None)
    def test_mae_nonnegative_and_bounded(self, samples):
        value = mae(samples)
        assert 0.0 <= value <= max(abs(s) for s in samples) + 1e-12

    @given(
        st.lists(st.floats(min_value=-5, max_value=5), min_size=1, max_size=20),
        st.floats(min_value=0.1, max_value=5.0),
    )
    @settings(max_examples=40, deadline=None)
    def test_mae_scales_linearly(self, samples, factor):
        scaled = [s * factor for s in samples]
        assert mae(scaled) == pytest.approx(factor * mae(samples), rel=1e-9)


class TestDetectionAccuracy:
    def test_perfect_detections(self):
        samples = [DetectionSample(0.1, 0.1, True)] * 5
        assert detection_accuracy(samples) == 1.0

    def test_invalid_counts_as_miss(self):
        samples = [
            DetectionSample(0.0, 0.0, True),
            DetectionSample(0.0, 0.0, False),
        ]
        assert detection_accuracy(samples) == 0.5

    def test_tolerance_boundary(self):
        inside = DetectionSample(0.3, 0.0, True)
        outside = DetectionSample(0.31, 0.0, True)
        assert inside.correct(tolerance=0.3)
        assert not outside.correct(tolerance=0.3)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            detection_accuracy([])
