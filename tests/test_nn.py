"""Tests for the numpy NN framework: layers, losses, optimizers, training."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.nn.layers import (
    BatchNorm2D,
    Conv2D,
    Dense,
    Flatten,
    GlobalAvgPool2D,
    MaxPool2D,
    Parameter,
    ReLU,
)
from repro.nn.losses import softmax, softmax_cross_entropy
from repro.nn.model import ResidualBlock, Sequential
from repro.nn.optim import SGD, Adam
from repro.nn.serialize import load_state, model_state
from repro.nn.trainer import TrainConfig, Trainer
from repro.utils.rng import derive_rng

RNG = derive_rng(0, "nn-tests")


def _numeric_grad(fn, param: Parameter, index, eps: float = 1e-3) -> float:
    orig = param.value[index]
    param.value[index] = orig + eps
    hi = fn()
    param.value[index] = orig - eps
    lo = fn()
    param.value[index] = orig
    return (hi - lo) / (2 * eps)


class TestGradients:
    """Backprop matches numeric differentiation for every layer type."""

    def _check(self, net, x, y, param_idx=0, index=None):
        logits = net.forward(x, training=True)
        loss, grad = softmax_cross_entropy(logits, y)
        for p in net.parameters():
            p.zero_grad()
        net.backward(grad)
        param = net.parameters()[param_idx]
        if index is None:
            index = np.unravel_index(
                np.argmax(np.abs(param.grad)), param.grad.shape
            )

        def loss_fn():
            out = net.forward(x, training=True)
            return softmax_cross_entropy(out, y)[0]

        numeric = _numeric_grad(loss_fn, param, index)
        analytic = param.grad[index]
        assert analytic == pytest.approx(numeric, rel=0.05, abs=1e-4)

    def test_dense(self):
        net = Sequential(Flatten(), Dense(12, 4, RNG))
        x = RNG.standard_normal((6, 3, 2, 2)).astype(np.float32)
        y = RNG.integers(0, 4, 6)
        self._check(net, x, y)

    def test_conv(self):
        net = Sequential(Conv2D(2, 3, 3, RNG), GlobalAvgPool2D(), Dense(3, 3, RNG))
        x = RNG.standard_normal((4, 2, 8, 8)).astype(np.float32)
        y = RNG.integers(0, 3, 4)
        self._check(net, x, y)

    def test_conv_without_bias(self):
        net = Sequential(
            Conv2D(2, 3, 3, RNG, bias=False), GlobalAvgPool2D(), Dense(3, 3, RNG)
        )
        x = RNG.standard_normal((4, 2, 8, 8)).astype(np.float32)
        y = RNG.integers(0, 3, 4)
        self._check(net, x, y)

    def test_batchnorm(self):
        net = Sequential(
            Conv2D(2, 3, 3, RNG),
            BatchNorm2D(3),
            ReLU(),
            GlobalAvgPool2D(),
            Dense(3, 3, RNG),
        )
        x = RNG.standard_normal((8, 2, 6, 6)).astype(np.float32)
        y = RNG.integers(0, 3, 8)
        # check the batchnorm gamma (parameter index 2)
        self._check(net, x, y, param_idx=2, index=(1,))

    def test_maxpool_and_residual(self):
        net = Sequential(
            Conv2D(2, 4, 3, RNG),
            MaxPool2D(2),
            ResidualBlock(4, 6, RNG),
            GlobalAvgPool2D(),
            Dense(6, 3, RNG),
        )
        x = RNG.standard_normal((4, 2, 8, 8)).astype(np.float32)
        y = RNG.integers(0, 3, 4)
        self._check(net, x, y)


class TestLayers:
    def test_conv_output_shape(self):
        conv = Conv2D(3, 8, 3, RNG)
        out = conv.forward(np.zeros((2, 3, 10, 12), dtype=np.float32))
        assert out.shape == (2, 8, 10, 12)

    def test_conv_stride(self):
        conv = Conv2D(3, 8, 3, RNG, stride=2, padding=1)
        out = conv.forward(np.zeros((2, 3, 10, 12), dtype=np.float32))
        assert out.shape == (2, 8, 5, 6)

    def test_relu_zeros_negative(self):
        relu = ReLU()
        out = relu.forward(np.array([[-1.0, 2.0]]), training=True)
        np.testing.assert_array_equal(out, [[0.0, 2.0]])
        grad = relu.backward(np.array([[1.0, 1.0]]))
        np.testing.assert_array_equal(grad, [[0.0, 1.0]])

    def test_maxpool_values(self):
        pool = MaxPool2D(2)
        x = np.arange(16, dtype=np.float32).reshape(1, 1, 4, 4)
        out = pool.forward(x)
        np.testing.assert_array_equal(out[0, 0], [[5, 7], [13, 15]])

    def test_maxpool_rejects_indivisible(self):
        with pytest.raises(ValueError):
            MaxPool2D(2).forward(np.zeros((1, 1, 5, 4), dtype=np.float32))

    def test_global_avg_pool(self):
        gap = GlobalAvgPool2D()
        x = np.ones((2, 3, 4, 4), dtype=np.float32)
        np.testing.assert_allclose(gap.forward(x), np.ones((2, 3)))

    def test_batchnorm_normalizes_in_training(self):
        bn = BatchNorm2D(2)
        x = (RNG.standard_normal((16, 2, 8, 8)) * 3 + 5).astype(np.float32)
        out = bn.forward(x, training=True)
        assert out.mean() == pytest.approx(0.0, abs=1e-4)
        assert out.std() == pytest.approx(1.0, abs=1e-2)

    def test_batchnorm_inference_uses_running_stats(self):
        bn = BatchNorm2D(1)
        x = (RNG.standard_normal((64, 1, 4, 4)) + 2.0).astype(np.float32)
        for _ in range(60):
            bn.forward(x, training=True)
        out = bn.forward(x, training=False)
        assert out.mean() == pytest.approx(0.0, abs=0.1)

    def test_sequential_rejects_empty(self):
        with pytest.raises(ValueError):
            Sequential()

    def test_residual_projection_on_channel_change(self):
        block = ResidualBlock(4, 8, RNG)
        assert block.projection is not None
        block_same = ResidualBlock(4, 4, RNG)
        assert block_same.projection is None


class TestInferenceFastPath:
    """Float32 end-to-end inference and conv+BN fusion."""

    def _tiny_model(self, seed: int = 0):
        from repro.classifiers.models import build_tiny_resnet

        return build_tiny_resnet(4, seed=seed)

    def test_parameters_are_float32_at_source(self):
        model = self._tiny_model()
        for p in model.parameters():
            assert p.value.dtype == np.float32, p.name

    def test_no_float64_in_forward_pass(self):
        # Step through the exact layer chain Sequential.forward runs
        # and assert every intermediate activation stays float32.
        model = self._tiny_model()
        x = RNG.standard_normal((2, 3, 8, 16)).astype(np.float32)
        for layer in model.layers:
            x = layer.forward(x, training=False)
            assert x.dtype == np.float32, type(layer).__name__
        fused = model.fuse()
        x = RNG.standard_normal((2, 3, 8, 16)).astype(np.float32)
        for layer in fused.layers:
            x = layer.forward(x, training=False)
            assert x.dtype == np.float32, type(layer).__name__

    def test_fuse_removes_batchnorms(self):
        from repro.nn.model import FusedResidualBlock

        model = self._tiny_model()
        fused = model.fuse()

        def walk(seq):
            for layer in seq.layers:
                if isinstance(layer, Sequential):
                    yield from walk(layer)
                elif isinstance(layer, FusedResidualBlock):
                    yield layer.conv1
                    yield layer.conv2
                else:
                    yield layer
        assert any(isinstance(l, BatchNorm2D) for l in model.layers) or any(
            isinstance(l, ResidualBlock) for l in model.layers
        )
        assert not any(isinstance(l, BatchNorm2D) for l in walk(fused))

    def test_fused_model_refuses_training(self):
        fused = self._tiny_model().fuse()
        x = RNG.standard_normal((1, 3, 8, 16)).astype(np.float32)
        with pytest.raises(RuntimeError):
            fused.forward(x, training=True)

    def test_fuse_does_not_mutate_original(self):
        model = self._tiny_model()
        x = RNG.standard_normal((1, 3, 8, 16)).astype(np.float32)
        before = model.forward(x).copy()
        model.fuse()
        np.testing.assert_array_equal(model.forward(x), before)


class TestLosses:
    def test_softmax_rows_sum_to_one(self):
        logits = RNG.standard_normal((5, 7))
        probs = softmax(logits)
        np.testing.assert_allclose(probs.sum(axis=1), 1.0, atol=1e-9)

    def test_softmax_stable_for_large_logits(self):
        probs = softmax(np.array([[1e4, 0.0]]))
        assert np.all(np.isfinite(probs))

    def test_cross_entropy_perfect_prediction(self):
        logits = np.array([[100.0, 0.0], [0.0, 100.0]])
        loss, grad = softmax_cross_entropy(logits, np.array([0, 1]))
        assert loss == pytest.approx(0.0, abs=1e-6)
        np.testing.assert_allclose(grad, 0.0, atol=1e-6)

    def test_cross_entropy_grad_sums_to_zero(self):
        logits = RNG.standard_normal((6, 4))
        _, grad = softmax_cross_entropy(logits, RNG.integers(0, 4, 6))
        np.testing.assert_allclose(grad.sum(axis=1), 0.0, atol=1e-7)

    def test_label_shape_mismatch(self):
        with pytest.raises(ValueError):
            softmax_cross_entropy(np.zeros((3, 2)), np.zeros(4, dtype=int))


class TestOptimizers:
    def _quadratic_param(self):
        return Parameter(np.array([5.0], dtype=np.float32))

    def test_sgd_converges_on_quadratic(self):
        p = self._quadratic_param()
        opt = SGD([p], lr=0.1, momentum=0.5)
        for _ in range(120):
            p.grad[...] = 2 * p.value
            opt.step()
        assert abs(p.value[0]) < 1e-3

    def test_adam_converges_on_quadratic(self):
        p = self._quadratic_param()
        opt = Adam([p], lr=0.3)
        for _ in range(200):
            p.grad[...] = 2 * p.value
            opt.step()
        assert abs(p.value[0]) < 1e-2

    def test_weight_decay_shrinks(self):
        p = Parameter(np.array([1.0], dtype=np.float32))
        opt = SGD([p], lr=0.1, momentum=0.0, weight_decay=1.0)
        p.grad[...] = 0.0
        opt.step()
        assert p.value[0] < 1.0

    def test_zero_grad(self):
        p = Parameter(np.ones(3))
        p.grad[...] = 5.0
        SGD([p]).zero_grad()
        np.testing.assert_array_equal(p.grad, 0.0)

    def test_invalid_lr(self):
        with pytest.raises(ValueError):
            Adam([Parameter(np.ones(1))], lr=0.0)


class TestTrainerAndSerialization:
    def _toy_problem(self, n=256):
        rng = derive_rng(3, "toy")
        x = rng.standard_normal((n, 2, 8, 8)).astype(np.float32)
        # Label = which channel is brighter (survives global pooling).
        y = (x[:, 0].mean(axis=(1, 2)) > x[:, 1].mean(axis=(1, 2))).astype(np.int64)
        return x, y

    def _toy_net(self):
        rng = derive_rng(4, "toy-net")
        return Sequential(
            Conv2D(2, 4, 3, rng), ReLU(), GlobalAvgPool2D(), Dense(4, 2, rng)
        )

    def test_training_improves_accuracy(self):
        x, y = self._toy_problem()
        net = self._toy_net()
        trainer = Trainer(net, TrainConfig(epochs=6, batch_size=32, lr=5e-3))
        report = trainer.fit(x[:200], y[:200], x[200:], y[200:])
        assert report.train_accuracy[-1] > report.train_accuracy[0]
        assert report.final_val_accuracy > 0.7

    def test_early_stop(self):
        x, y = self._toy_problem()
        net = self._toy_net()
        trainer = Trainer(
            net, TrainConfig(epochs=50, batch_size=32, lr=5e-3, early_stop_accuracy=0.5)
        )
        report = trainer.fit(x[:200], y[:200], x[200:], y[200:])
        assert report.epochs_run < 50

    def test_state_round_trip(self):
        net = self._toy_net()
        x = RNG.standard_normal((4, 2, 8, 8)).astype(np.float32)
        before = net.forward(x)
        state = model_state(net)
        clone = self._toy_net()
        load_state(clone, state)
        np.testing.assert_allclose(clone.forward(x), before, atol=1e-6)

    def test_load_state_shape_mismatch(self):
        net = self._toy_net()
        state = model_state(net)
        key = next(iter(state))
        state[key] = np.zeros((1, 1))
        with pytest.raises(ValueError):
            load_state(self._toy_net(), state)

    def test_invalid_train_config(self):
        with pytest.raises(ValueError):
            TrainConfig(epochs=0)
