"""Property-based fuzz tests for the wire codecs and the rollout cache.

Two codec families carry results between processes, and both promise
bit-identity: the service wire protocol (:mod:`repro.service.protocol`)
and the rollout cache key/entry layer (:mod:`repro.cache`).  These
tests drive both with randomized-but-seeded payloads — NaN/inf floats,
empty arrays, unicode op params — and assert the round trip is exact.
The adversarial half feeds malformed envelopes to the decoders and
requires a *typed* :class:`~repro.service.errors.ServiceError` every
time: a traceback from a hostile line is a framing bug.

Float equality here means bitwise for finite and infinite values;
NaN payloads survive as NaN but JSON's ``NaN`` token canonicalizes the
sign/payload bits, so NaN positions are compared as a mask.
"""

from __future__ import annotations

import json

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cache import (
    RolloutCache,
    rollout_key,
    rollout_key_document,
)
from repro.hil.record import CycleRecord, HilResult
from repro.service import protocol
from repro.service.errors import ServiceError

# -- strategies -------------------------------------------------------------

#: float64 payloads including NaN, +/-inf and signed zeros.
wire_floats = st.floats(allow_nan=True, allow_infinity=True, width=64)

#: Array payloads: empty through small 1-D float64.
float_arrays = st.lists(wire_floats, min_size=0, max_size=8).map(
    lambda values: np.asarray(values, dtype=np.float64)
)

#: Unicode as it appears in op params (identifiers, fault kinds, ...).
unicode_text = st.text(min_size=0, max_size=20)

#: Arbitrary JSON documents, for the adversarial envelope fuzz.
json_documents = st.recursive(
    st.none()
    | st.booleans()
    | st.integers(min_value=-(2**53), max_value=2**53)
    | st.floats(allow_nan=False, allow_infinity=False)
    | unicode_text,
    lambda children: st.lists(children, max_size=4)
    | st.dictionaries(unicode_text, children, max_size=4),
    max_leaves=12,
)


def assert_floats_equal(expected, actual, label):
    """Bitwise equality for finite/inf entries, masked equality for NaN."""
    expected = np.asarray(expected, dtype=np.float64)
    actual = np.asarray(actual, dtype=np.float64)
    assert expected.shape == actual.shape, f"{label}: shape differs"
    exp_nan = np.isnan(expected)
    act_nan = np.isnan(actual)
    assert (exp_nan == act_nan).all(), f"{label}: NaN positions differ"
    assert expected[~exp_nan].tobytes() == actual[~act_nan].tobytes(), (
        f"{label}: non-NaN bits differ"
    )


def make_result(arrays, cycle_text, crashed, crash_s, manifest_text):
    """A synthetic :class:`HilResult` from fuzzed parts."""
    time_s, s, offset, y_l, steering, speed = arrays
    cycles = [
        CycleRecord(
            time_ms=0.0,
            s=0.0,
            active_isp=cycle_text,
            roi=cycle_text[::-1],
            speed_kmph=50.0,
            period_ms=40.0,
            delay_ms=36.0,
            invoked=(cycle_text,) if cycle_text else (),
            measurement_valid=True,
            y_l_measured=0.25,
            steering=-0.125,
            faults=(cycle_text,) if cycle_text else (),
        )
    ]
    return HilResult(
        time_s=time_s,
        s=s,
        lateral_offset=offset,
        y_l_true=y_l,
        steering=steering,
        speed=speed,
        cycles=cycles,
        crashed=crashed,
        crash_s=crash_s,
        completed=not crashed,
        manifest={"config_hash": "f" * 24, "note": manifest_text},
    )


result_strategy = st.builds(
    make_result,
    st.tuples(*[float_arrays] * 6),
    unicode_text,
    st.booleans(),
    st.none() | st.floats(allow_nan=False, allow_infinity=False),
    unicode_text,
)


# -- wire protocol round trips ----------------------------------------------


class TestHilResultPayloadRoundTrip:
    @given(result_strategy)
    @settings(max_examples=40, deadline=None)
    def test_payload_codec_is_lossless(self, result):
        # Through the full wire framing, not just the payload dicts:
        # encode -> bytes -> decode, as a served response travels.
        payload = protocol.work_result_to_payload(
            protocol.OP_SIMULATE, result=result
        )
        line = protocol.encode_response(
            protocol.ok_response(request_id="f1", op=protocol.OP_SIMULATE,
                                 result=payload)
        )
        envelope = protocol.decode_response(line)
        decoded = protocol.work_result_from_payload(envelope["result"])
        for field in ("time_s", "s", "lateral_offset", "y_l_true",
                      "steering", "speed"):
            assert_floats_equal(
                getattr(result, field), getattr(decoded, field), field
            )
        assert decoded.cycles == result.cycles
        assert decoded.crashed == result.crashed
        assert decoded.crash_s == result.crash_s
        assert decoded.completed == result.completed
        assert decoded.manifest == result.manifest

    @given(st.lists(result_strategy, min_size=0, max_size=3))
    @settings(max_examples=15, deadline=None)
    def test_result_list_payloads_keep_order(self, results):
        payload = protocol.work_result_to_payload(
            protocol.OP_SIMULATE, result=results
        )
        decoded = protocol.work_result_from_payload(
            json.loads(protocol.encode_response(
                protocol.ok_response(request_id="f2",
                                     op=protocol.OP_SIMULATE, result=payload)
            ))["result"]
        )
        assert len(decoded) == len(results)
        for expected, actual in zip(results, decoded):
            assert_floats_equal(expected.time_s, actual.time_s, "time_s")
            assert actual.cycles == expected.cycles


class TestRequestCodecRoundTrip:
    @given(
        st.sampled_from(sorted(protocol.ALL_OPS)),
        st.text(min_size=1, max_size=24),
        st.dictionaries(
            st.text(min_size=1, max_size=12), json_documents, max_size=4
        ),
        st.none() | st.floats(min_value=0.001, max_value=1e6),
    )
    @settings(max_examples=60, deadline=None)
    def test_round_trip_preserves_unicode_params(
        self, op, request_id, params, deadline_ms
    ):
        line = protocol.encode_request(
            op=op, request_id=request_id, params=params,
            deadline_ms=deadline_ms,
        )
        request = protocol.decode_request(line)
        assert request.op == op
        assert request.request_id == request_id
        assert request.params == params
        if deadline_ms is None:
            assert request.deadline_ms is None
        else:
            assert request.deadline_ms == pytest.approx(float(deadline_ms))


class TestMalformedEnvelopes:
    """Hostile bytes/documents must fail typed, never with a traceback."""

    @given(st.binary(max_size=64))
    @settings(max_examples=80, deadline=None)
    def test_arbitrary_bytes_yield_service_errors(self, line):
        with pytest.raises(ServiceError):
            protocol.decode_request(line)
        with pytest.raises(ServiceError):
            protocol.decode_response(line)

    @given(json_documents)
    @settings(max_examples=80, deadline=None)
    def test_arbitrary_json_yields_service_errors_or_requests(self, document):
        line = json.dumps(document)
        try:
            request = protocol.decode_request(line)
        except ServiceError:
            return
        # The only lines that parse are real envelopes.
        assert request.op in protocol.ALL_OPS
        assert isinstance(request.request_id, str) and request.request_id

    @given(json_documents)
    @settings(max_examples=80, deadline=None)
    def test_mutated_envelopes_never_traceback(self, junk):
        document = {"v": protocol.PROTOCOL_VERSION, "op": junk, "id": junk,
                    "params": junk, "deadline_ms": junk}
        try:
            request = protocol.decode_request(json.dumps(document))
        except ServiceError:
            return
        assert request.op in protocol.ALL_OPS


# -- cache key + store properties -------------------------------------------


def _make_document(situation_index, case, seed, width, height):
    from repro.core.situation import situation_by_index
    from repro.hil.engine import HilConfig
    from repro.sim import static_situation_track

    track = static_situation_track(
        situation_by_index(situation_index), length=40.0
    )
    config = HilConfig(seed=seed, frame_width=width, frame_height=height)
    return rollout_key_document(track=track, case=case, config=config)


class TestCacheKeyProperties:
    @given(
        st.integers(min_value=1, max_value=21),
        st.sampled_from(["case1", "case2", "case3", "case4"]),
        st.integers(min_value=0, max_value=2**31 - 1),
        st.integers(min_value=16, max_value=128),
        st.integers(min_value=16, max_value=128),
    )
    @settings(max_examples=25, deadline=None)
    def test_documents_are_pure_json_and_hash_stably(
        self, situation_index, case, seed, width, height
    ):
        document = _make_document(situation_index, case, seed, width, height)
        assert document is not None
        # The exact invariant `cache --verify` relies on: the document
        # survives a JSON round trip and re-hashes to the same address.
        round_tripped = json.loads(json.dumps(document, sort_keys=True))
        assert rollout_key(round_tripped) == rollout_key(document)

    @given(
        st.integers(min_value=1, max_value=21),
        st.sampled_from(["case1", "case2", "case3", "case4"]),
        st.integers(min_value=0, max_value=2**16),
    )
    @settings(max_examples=25, deadline=None)
    def test_case_spellings_canonicalize_to_one_key(
        self, situation_index, case, seed
    ):
        from repro.core.cases import case_config

        by_name = _make_document(situation_index, case, seed, 96, 48)
        by_instance_doc = _make_document(
            situation_index, case_config(case), seed, 96, 48
        )
        assert rollout_key(by_name) == rollout_key(by_instance_doc)

    @given(
        st.integers(min_value=0, max_value=2**16),
        st.integers(min_value=0, max_value=2**16),
    )
    @settings(max_examples=25, deadline=None)
    def test_distinct_seeds_get_distinct_keys(self, seed_a, seed_b):
        doc_a = _make_document(1, "case1", seed_a, 96, 48)
        doc_b = _make_document(1, "case1", seed_b, 96, 48)
        if seed_a == seed_b:
            assert rollout_key(doc_a) == rollout_key(doc_b)
        else:
            assert rollout_key(doc_a) != rollout_key(doc_b)

    def test_uncacheable_inputs_return_none(self):
        from repro.core.reconfiguration import OracleIdentifier
        from repro.core.situation import situation_by_index
        from repro.hil.engine import HilConfig
        from repro.sim import static_situation_track

        track = static_situation_track(situation_by_index(1), length=40.0)
        assert rollout_key_document(
            track=track, case="case1", config=HilConfig(profile=True)
        ) is None
        assert rollout_key_document(
            track=track, case="case1", identifier=OracleIdentifier()
        ) is None
        assert rollout_key_document(track=track, case=object()) is None


class TestStoreRoundTripFuzz:
    @given(result_strategy, st.integers(min_value=0, max_value=2**31))
    @settings(max_examples=10, deadline=None)
    def test_store_round_trip_is_bitwise(self, tmp_path_factory, result, nonce):
        store = RolloutCache(
            tmp_path_factory.mktemp("fuzz-store"),
            enabled=True,
            count_global=False,
        )
        document = {"schema": 1, "kernel": "fuzz", "nonce": nonce}
        store.store(document, result)
        loaded = store.load(document)
        assert loaded is not None
        for field in ("time_s", "s", "lateral_offset", "y_l_true",
                      "steering", "speed"):
            assert_floats_equal(
                getattr(result, field), getattr(loaded, field), field
            )
        assert loaded.cycles == result.cycles
        assert loaded.manifest == result.manifest
        checked, problems = store.verify()
        assert checked >= 1 and problems == []
