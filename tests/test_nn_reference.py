"""Conv2D against a naive reference implementation, and related checks."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.nn.layers import BatchNorm2D, Conv2D, fuse_conv_bn
from repro.utils.rng import derive_rng

RNG = derive_rng(0, "nn-ref")


def naive_conv2d(x, w, b, stride, pad):
    """Direct nested-loop convolution (the obviously-correct oracle)."""
    n, c, h, width = x.shape
    out_c, fan_in = w.shape
    k = int(np.sqrt(fan_in // c))
    xp = np.pad(x, ((0, 0), (0, 0), (pad, pad), (pad, pad)))
    out_h = (h + 2 * pad - k) // stride + 1
    out_w = (width + 2 * pad - k) // stride + 1
    out = np.zeros((n, out_c, out_h, out_w), dtype=np.float64)
    kernels = w.reshape(out_c, c, k, k)
    for ni in range(n):
        for oc in range(out_c):
            for i in range(out_h):
                for j in range(out_w):
                    patch = xp[
                        ni,
                        :,
                        i * stride : i * stride + k,
                        j * stride : j * stride + k,
                    ]
                    out[ni, oc, i, j] = np.sum(patch * kernels[oc])
            if b is not None:
                out[ni, oc] += b[oc]
    return out


class TestConvAgainstReference:
    @pytest.mark.parametrize(
        "cin,cout,k,stride,pad,h,w",
        [
            (1, 1, 3, 1, 1, 6, 6),
            (2, 3, 3, 1, 1, 5, 7),
            (3, 2, 3, 2, 1, 8, 8),
            (2, 4, 1, 1, 0, 4, 4),
            (1, 2, 5, 1, 2, 9, 9),
        ],
    )
    def test_forward_matches_naive(self, cin, cout, k, stride, pad, h, w):
        conv = Conv2D(cin, cout, k, RNG, stride=stride, padding=pad)
        x = RNG.standard_normal((2, cin, h, w)).astype(np.float32)
        fast = conv.forward(x)
        slow = naive_conv2d(
            x.astype(np.float64),
            conv.w.value.astype(np.float64),
            None if conv.b is None else conv.b.value.astype(np.float64),
            stride,
            pad,
        )
        np.testing.assert_allclose(fast, slow, rtol=1e-4, atol=1e-5)

    @given(st.integers(min_value=1, max_value=3), st.integers(min_value=1, max_value=4))
    @settings(max_examples=15, deadline=None)
    def test_forward_matches_naive_random_channels(self, cin, cout):
        conv = Conv2D(cin, cout, 3, RNG)
        x = RNG.standard_normal((1, cin, 6, 6)).astype(np.float32)
        fast = conv.forward(x)
        slow = naive_conv2d(
            x.astype(np.float64), conv.w.value.astype(np.float64),
            conv.b.value.astype(np.float64), 1, 1,
        )
        np.testing.assert_allclose(fast, slow, rtol=1e-4, atol=1e-5)

    def test_input_gradient_matches_numeric(self):
        conv = Conv2D(2, 3, 3, RNG)
        x = RNG.standard_normal((2, 2, 5, 5)).astype(np.float32)
        out = conv.forward(x, training=True)
        grad_out = RNG.standard_normal(out.shape).astype(np.float32)
        grad_in = conv.backward(grad_out)

        def loss(inp):
            return float((conv.forward(inp, training=True) * grad_out).sum())

        eps = 1e-2
        idx = (1, 0, 2, 3)
        bumped = x.copy()
        bumped[idx] += eps
        dipped = x.copy()
        dipped[idx] -= eps
        numeric = (loss(bumped) - loss(dipped)) / (2 * eps)
        assert grad_in[idx] == pytest.approx(numeric, rel=0.02, abs=1e-3)


class TestFusedAgainstUnfused:
    """The deployment (fused) path must match the training graph."""

    def _nontrivial_bn(self, channels: int) -> BatchNorm2D:
        bn = BatchNorm2D(channels)
        bn.gamma.value[:] = RNG.uniform(0.5, 1.5, channels).astype(np.float32)
        bn.beta.value[:] = RNG.standard_normal(channels).astype(np.float32)
        bn.running_mean[:] = RNG.standard_normal(channels).astype(np.float32)
        bn.running_var[:] = RNG.uniform(0.2, 2.0, channels).astype(np.float32)
        return bn

    @pytest.mark.parametrize("bias", [True, False])
    def test_fuse_conv_bn_matches_sequential_pair(self, bias):
        conv = Conv2D(3, 6, 3, RNG, bias=bias)
        bn = self._nontrivial_bn(6)
        x = RNG.standard_normal((2, 3, 8, 10)).astype(np.float32)
        reference = bn.forward(conv.forward(x))
        fused = fuse_conv_bn(conv, bn)
        out = fused.forward(x)
        assert out.dtype == np.float32
        np.testing.assert_allclose(out, reference, atol=1e-4, rtol=0)

    def test_fuse_conv_bn_against_naive_oracle(self):
        # The folded weights themselves, not just the composition: the
        # fused conv run through the nested-loop oracle must match
        # conv -> BN computed in float64.
        conv = Conv2D(2, 4, 3, RNG, bias=False)
        bn = self._nontrivial_bn(4)
        x = RNG.standard_normal((1, 2, 6, 6)).astype(np.float32)
        fused = fuse_conv_bn(conv, bn)
        oracle = naive_conv2d(
            x.astype(np.float64),
            fused.w.value.astype(np.float64),
            fused.b.value.astype(np.float64),
            1,
            1,
        )
        conv_out = naive_conv2d(
            x.astype(np.float64), conv.w.value.astype(np.float64), None, 1, 1
        )
        scale = bn.gamma.value / np.sqrt(bn.running_var + bn.eps)
        shift = bn.beta.value - bn.running_mean * scale
        reference = conv_out * scale[None, :, None, None] + shift[
            None, :, None, None
        ]
        np.testing.assert_allclose(oracle, reference, atol=1e-4, rtol=0)

    def test_full_model_fused_matches_unfused(self):
        from repro.classifiers.models import build_tiny_resnet

        model = build_tiny_resnet(5, seed=3)
        fused = model.fuse()
        x = RNG.standard_normal((4, 3, 24, 48)).astype(np.float32)
        reference = model.forward(x)
        out = fused.forward(x)
        assert out.dtype == np.float32
        np.testing.assert_allclose(out, reference, atol=1e-4, rtol=0)
