"""Tests for the IMU model and the ASCII debug helpers."""

from __future__ import annotations

import numpy as np
import pytest

from repro.perception.debug import frame_to_text, mask_to_text, track_to_text
from repro.sim.geometry import Pose2D
from repro.sim.imu import ImuModel, ImuSpec
from repro.sim.vehicle import VehicleState
from repro.sim.world import fig7_track


class TestImuModel:
    def _state(self) -> VehicleState:
        return VehicleState(
            pose=Pose2D(0, 0, 0), lateral_velocity=0.5, yaw_rate=0.1, steer=0.05
        )

    def test_zero_noise_is_exact(self):
        spec = ImuSpec(0.0, 0.0, 0.0, 0.0)
        imu = ImuModel(spec)
        v_y, r, steer = imu.sample(self._state(), 0.005)
        assert (v_y, r, steer) == (0.5, 0.1, 0.05)

    def test_noise_statistics(self):
        imu = ImuModel(ImuSpec(yaw_rate_bias_walk=0.0), seed=1)
        state = self._state()
        samples = np.array([imu.sample(state, 0.005) for _ in range(800)])
        assert samples[:, 0].mean() == pytest.approx(0.5, abs=0.01)
        assert samples[:, 0].std() == pytest.approx(
            ImuSpec().lateral_velocity_noise, rel=0.2
        )

    def test_bias_walks(self):
        imu = ImuModel(ImuSpec(yaw_rate_noise=0.0, yaw_rate_bias_walk=0.01), seed=2)
        state = self._state()
        first = imu.sample(state, 1.0)[1]
        for _ in range(200):
            last = imu.sample(state, 1.0)[1]
        assert last != pytest.approx(first, abs=1e-9)

    def test_reset_clears_bias(self):
        imu = ImuModel(ImuSpec(yaw_rate_noise=0.0, yaw_rate_bias_walk=0.05), seed=3)
        for _ in range(50):
            imu.sample(self._state(), 1.0)
        imu.reset()
        assert imu._yaw_bias == 0.0

    def test_negative_spec_rejected(self):
        with pytest.raises(ValueError):
            ImuSpec(lateral_velocity_noise=-1.0)

    def test_engine_with_imu_noise_stays_stable(self):
        from repro.core.situation import situation_by_index
        from repro.hil import HilConfig, HilEngine
        from repro.sim import static_situation_track

        track = static_situation_track(situation_by_index(1), length=80.0)
        config = HilConfig(
            seed=7, frame_width=192, frame_height=96, imu_noise=True
        )
        result = HilEngine(track, "case1", config=config).run()
        assert not result.crashed


class TestDebugHelpers:
    def test_mask_to_text_marks_pixels(self):
        mask = np.zeros((8, 8), dtype=bool)
        mask[:, 3] = True
        text = mask_to_text(mask)
        assert "#" in text and "." in text

    def test_mask_rejects_bad_dims(self):
        with pytest.raises(ValueError):
            mask_to_text(np.zeros(4, dtype=bool))

    def test_frame_to_text_shapes(self):
        frame = np.random.default_rng(0).random((64, 128, 3)).astype(np.float32)
        text = frame_to_text(frame, max_width=40, max_height=10)
        lines = text.splitlines()
        assert len(lines) <= 11
        assert all(len(line) <= 43 for line in lines)

    def test_frame_to_text_grayscale(self):
        frame = np.zeros((16, 16), dtype=np.float32)
        frame[:, 8:] = 1.0
        text = frame_to_text(frame)
        assert "@" in text and " " in text

    def test_track_to_text_contains_sectors(self):
        track = fig7_track()
        text = track_to_text(track, vehicle_s=10.0)
        assert "X" in text
        assert "1" in text and "9" in text
