"""Tests for the nonlinear vehicle model."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.geometry import Pose2D
from repro.sim.vehicle import Vehicle, VehicleParams, VehicleState

PARAMS = VehicleParams()


def _vehicle(speed: float = 13.9) -> Vehicle:
    return Vehicle(PARAMS, VehicleState(pose=Pose2D(0, 0, 0), speed=speed))


class TestVehicle:
    def test_straight_line_no_steer(self):
        vehicle = _vehicle()
        for _ in range(200):
            vehicle.step(0.005, 0.0)
        state = vehicle.state
        assert state.pose.y == pytest.approx(0.0, abs=1e-9)
        assert state.pose.x == pytest.approx(13.9, rel=0.01)

    def test_left_steer_turns_left(self):
        vehicle = _vehicle()
        for _ in range(400):
            vehicle.step(0.005, 0.1)
        assert vehicle.state.pose.y > 0.5
        assert vehicle.state.pose.heading > 0.05

    def test_right_steer_mirrors_left(self):
        left = _vehicle()
        right = _vehicle()
        for _ in range(300):
            left.step(0.005, 0.08)
            right.step(0.005, -0.08)
        assert left.state.pose.y == pytest.approx(-right.state.pose.y, abs=1e-6)

    def test_steady_state_yaw_rate_matches_kinematics(self):
        """At low speed the yaw rate approaches v * delta / L."""
        vehicle = _vehicle(speed=5.0)
        delta = 0.05
        for _ in range(1200):
            vehicle.step(0.005, delta)
        expected = 5.0 * delta / PARAMS.wheelbase
        assert vehicle.state.yaw_rate == pytest.approx(expected, rel=0.15)

    def test_steering_saturation(self):
        vehicle = _vehicle()
        for _ in range(1000):
            vehicle.step(0.005, 10.0)
        assert vehicle.state.steer <= PARAMS.steer_limit + 1e-9

    def test_steering_rate_limit(self):
        vehicle = _vehicle()
        vehicle.step(0.005, PARAMS.steer_limit)
        assert vehicle.state.steer <= PARAMS.steer_rate_limit * 0.005 + 1e-9

    def test_steering_lag_first_order(self):
        vehicle = _vehicle()
        command = 0.05
        for _ in range(int(PARAMS.steer_lag / 0.005)):
            vehicle.step(0.005, command)
        # After one time constant: ~63 % of the command (rate limit
        # is inactive at this amplitude).
        assert vehicle.state.steer == pytest.approx(command * 0.63, rel=0.15)

    def test_speed_tracking_rate_limited(self):
        vehicle = _vehicle(speed=13.9)
        vehicle.set_target_speed(8.33)
        vehicle.step(0.5, 0.0)
        assert vehicle.state.speed == pytest.approx(
            13.9 - PARAMS.accel_limit * 0.5, rel=0.01
        )

    def test_speed_floor(self):
        with pytest.raises(ValueError):
            _vehicle().set_target_speed(0.1)

    def test_clone_is_independent(self):
        vehicle = _vehicle()
        twin = vehicle.clone()
        vehicle.step(0.005, 0.2)
        assert twin.state.pose.x == 0.0

    def test_rejects_nonpositive_dt(self):
        with pytest.raises(ValueError):
            _vehicle().step(0.0, 0.0)

    @given(
        st.floats(min_value=-0.3, max_value=0.3),
        st.floats(min_value=6.0, max_value=15.0),
    )
    @settings(max_examples=30, deadline=None)
    def test_energy_bounded_states(self, steer, speed):
        """No finite-escape: states stay bounded over a short horizon."""
        vehicle = _vehicle(speed=speed)
        for _ in range(200):
            state = vehicle.step(0.005, steer)
        assert abs(state.lateral_velocity) < 10.0
        assert abs(state.yaw_rate) < 5.0

    def test_params_validation(self):
        with pytest.raises(ValueError):
            VehicleParams(mass=-1.0)


class TestStepBatch:
    def test_bitwise_matches_scalar_step(self):
        """Each lane of the stacked update equals its own serial step."""
        rng = np.random.default_rng(3)
        lanes = 5
        vehicles = []
        for _ in range(lanes):
            state = VehicleState(
                pose=Pose2D(rng.normal(), rng.normal(), rng.uniform(-3, 3)),
                lateral_velocity=rng.normal() * 0.3,
                yaw_rate=rng.normal() * 0.2,
                steer=rng.uniform(-0.3, 0.3),
                speed=rng.uniform(5.0, 25.0),
            )
            vehicle = Vehicle(PARAMS, state)
            vehicle.target_speed = rng.uniform(5.0, 25.0)
            vehicles.append(vehicle)
        state = np.array(
            [
                [
                    v.state.pose.x,
                    v.state.pose.y,
                    v.state.pose.heading,
                    v.state.lateral_velocity,
                    v.state.yaw_rate,
                ]
                for v in vehicles
            ]
        )
        speed = np.array([v.state.speed for v in vehicles])
        steer = np.array([v.state.steer for v in vehicles])
        target = np.array([v.target_speed for v in vehicles])
        for _ in range(250):
            u = rng.uniform(-0.6, 0.6, lanes)
            state, speed, steer = Vehicle.step_batch(
                PARAMS, 0.005, state, speed, steer, target, u
            )
            for k, vehicle in enumerate(vehicles):
                s = vehicle.step(0.005, u[k])
                assert (
                    s.pose.x,
                    s.pose.y,
                    s.pose.heading,
                    s.lateral_velocity,
                    s.yaw_rate,
                    s.steer,
                    s.speed,
                ) == (
                    state[k, 0],
                    state[k, 1],
                    state[k, 2],
                    state[k, 3],
                    state[k, 4],
                    steer[k],
                    speed[k],
                )

    def test_saturations_active_in_batch(self):
        """Steer and accel limits clamp stacked lanes like scalars."""
        state = np.zeros((2, 5))
        speed = np.array([5.0, 20.0])
        steer = np.array([0.0, 0.0])
        target = np.array([25.0, 5.0])
        command = np.array([5.0, -5.0])  # far past steer_limit
        new_state, new_speed, new_steer = Vehicle.step_batch(
            PARAMS, 0.005, state, speed, steer, target, command
        )
        assert np.all(np.abs(new_steer) <= PARAMS.steer_limit)
        assert np.all(np.abs(new_speed - speed) <= PARAMS.accel_limit * 0.005 + 1e-12)
        assert new_state.shape == (2, 5)
