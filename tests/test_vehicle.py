"""Tests for the nonlinear vehicle model."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.geometry import Pose2D
from repro.sim.vehicle import Vehicle, VehicleParams, VehicleState

PARAMS = VehicleParams()


def _vehicle(speed: float = 13.9) -> Vehicle:
    return Vehicle(PARAMS, VehicleState(pose=Pose2D(0, 0, 0), speed=speed))


class TestVehicle:
    def test_straight_line_no_steer(self):
        vehicle = _vehicle()
        for _ in range(200):
            vehicle.step(0.005, 0.0)
        state = vehicle.state
        assert state.pose.y == pytest.approx(0.0, abs=1e-9)
        assert state.pose.x == pytest.approx(13.9, rel=0.01)

    def test_left_steer_turns_left(self):
        vehicle = _vehicle()
        for _ in range(400):
            vehicle.step(0.005, 0.1)
        assert vehicle.state.pose.y > 0.5
        assert vehicle.state.pose.heading > 0.05

    def test_right_steer_mirrors_left(self):
        left = _vehicle()
        right = _vehicle()
        for _ in range(300):
            left.step(0.005, 0.08)
            right.step(0.005, -0.08)
        assert left.state.pose.y == pytest.approx(-right.state.pose.y, abs=1e-6)

    def test_steady_state_yaw_rate_matches_kinematics(self):
        """At low speed the yaw rate approaches v * delta / L."""
        vehicle = _vehicle(speed=5.0)
        delta = 0.05
        for _ in range(1200):
            vehicle.step(0.005, delta)
        expected = 5.0 * delta / PARAMS.wheelbase
        assert vehicle.state.yaw_rate == pytest.approx(expected, rel=0.15)

    def test_steering_saturation(self):
        vehicle = _vehicle()
        for _ in range(1000):
            vehicle.step(0.005, 10.0)
        assert vehicle.state.steer <= PARAMS.steer_limit + 1e-9

    def test_steering_rate_limit(self):
        vehicle = _vehicle()
        vehicle.step(0.005, PARAMS.steer_limit)
        assert vehicle.state.steer <= PARAMS.steer_rate_limit * 0.005 + 1e-9

    def test_steering_lag_first_order(self):
        vehicle = _vehicle()
        command = 0.05
        for _ in range(int(PARAMS.steer_lag / 0.005)):
            vehicle.step(0.005, command)
        # After one time constant: ~63 % of the command (rate limit
        # is inactive at this amplitude).
        assert vehicle.state.steer == pytest.approx(command * 0.63, rel=0.15)

    def test_speed_tracking_rate_limited(self):
        vehicle = _vehicle(speed=13.9)
        vehicle.set_target_speed(8.33)
        vehicle.step(0.5, 0.0)
        assert vehicle.state.speed == pytest.approx(
            13.9 - PARAMS.accel_limit * 0.5, rel=0.01
        )

    def test_speed_floor(self):
        with pytest.raises(ValueError):
            _vehicle().set_target_speed(0.1)

    def test_clone_is_independent(self):
        vehicle = _vehicle()
        twin = vehicle.clone()
        vehicle.step(0.005, 0.2)
        assert twin.state.pose.x == 0.0

    def test_rejects_nonpositive_dt(self):
        with pytest.raises(ValueError):
            _vehicle().step(0.0, 0.0)

    @given(
        st.floats(min_value=-0.3, max_value=0.3),
        st.floats(min_value=6.0, max_value=15.0),
    )
    @settings(max_examples=30, deadline=None)
    def test_energy_bounded_states(self, steer, speed):
        """No finite-escape: states stay bounded over a short horizon."""
        vehicle = _vehicle(speed=speed)
        for _ in range(200):
            state = vehicle.step(0.005, steer)
        assert abs(state.lateral_velocity) < 10.0
        assert abs(state.yaw_rate) < 5.0

    def test_params_validation(self):
        with pytest.raises(ValueError):
            VehicleParams(mass=-1.0)
