"""Tests for the scoped stage profiler and the scratch-buffer pool."""

from __future__ import annotations

import numpy as np
import pytest

from repro.utils import profiling
from repro.utils.profiling import (
    NULL_SPAN,
    Profiler,
    activated,
    format_stage_table,
    profile,
)
from repro.utils.scratch import ScratchCache


@pytest.fixture(autouse=True)
def _no_global_profiler():
    """Isolate each test from any env-activated global profiler."""
    previous = profiling.deactivate()
    yield
    if previous is not None:
        profiling.activate(previous)


class TestDisabledPath:
    def test_disabled_profile_returns_shared_noop(self):
        # The whole no-overhead claim: with no active profiler, every
        # profile() call hands back the *same* object — nothing is
        # allocated per call, nothing is recorded.
        assert profile("isp.tone_map") is NULL_SPAN
        assert profile("hil.render") is profile("hil.pr") is NULL_SPAN

    def test_null_span_is_inert_context_manager(self):
        with profile("anything") as span:
            assert span is NULL_SPAN

    def test_disabled_path_records_nothing(self):
        profiler = Profiler()
        with profile("stage"):
            pass
        assert profiler.stats() == {}


class TestEnabledAggregation:
    def test_span_records_count_total_mean_p95(self):
        profiler = Profiler()
        with activated(profiler):
            for _ in range(5):
                with profile("stage.a"):
                    pass
            with profile("stage.b"):
                pass
        stats = profiler.stats()
        assert list(stats) == ["stage.a", "stage.b"]
        a = stats["stage.a"]
        assert a.count == 5
        assert a.total_ms >= 0.0
        assert a.mean_ms == pytest.approx(a.total_ms / 5)
        assert a.p95_ms >= 0.0

    def test_record_is_exact(self):
        profiler = Profiler()
        for ms in (1.0, 2.0, 3.0, 4.0):
            profiler.record("x", ms / 1e3)
        stats = profiler.stats()["x"]
        assert stats.count == 4
        assert stats.total_ms == pytest.approx(10.0)
        assert stats.mean_ms == pytest.approx(2.5)

    def test_sample_cap_keeps_count_and_total(self):
        profiler = Profiler()
        cap = Profiler.MAX_SAMPLES
        profiler._samples["x"] = [0.001] * cap
        profiler._count["x"] = cap
        profiler._total["x"] = 0.001 * cap
        profiler.record("x", 0.001)
        assert len(profiler._samples["x"]) == cap  # bounded
        assert profiler.stats()["x"].count == cap + 1  # still counted

    def test_reset_clears_everything(self):
        profiler = Profiler()
        profiler.record("x", 0.001)
        profiler.reset()
        assert profiler.stats() == {}

    def test_activated_restores_previous(self):
        outer, inner = Profiler(), Profiler()
        with activated(outer):
            with activated(inner):
                assert profiling.get_active() is inner
            assert profiling.get_active() is outer
        assert profiling.get_active() is None

    def test_activated_none_is_passthrough(self):
        with activated(None):
            assert profiling.get_active() is None
            assert profile("x") is NULL_SPAN


class TestStageTable:
    def test_table_contains_labels_and_model_column(self):
        profiler = Profiler()
        profiler.record("hil.pr", 0.004)
        text = format_stage_table(profiler.stats(), modeled_ms={"hil.pr": 3.0})
        assert "hil.pr" in text
        assert "model ms" in text
        assert "3.000" in text

    def test_table_dashes_unmodeled_rows(self):
        profiler = Profiler()
        profiler.record("hil.render", 0.001)
        text = format_stage_table(profiler.stats(), modeled_ms={"hil.pr": 3.0})
        assert text.splitlines()[1].rstrip().endswith("-")


class TestScratchCache:
    def test_same_key_returns_same_buffer(self):
        cache = ScratchCache()
        a = cache.get("buf", (4, 4))
        b = cache.get("buf", (4, 4))
        assert a is b
        assert a.dtype == np.float32

    def test_distinct_shape_dtype_or_tag_are_distinct(self):
        cache = ScratchCache()
        base = cache.get("buf", (4, 4))
        assert cache.get("buf", (4, 5)) is not base
        assert cache.get("buf", (4, 4), np.float64) is not base
        assert cache.get("other", (4, 4)) is not base

    def test_lru_bound_evicts_oldest(self):
        cache = ScratchCache(max_entries=2)
        a = cache.get("a", (2,))
        cache.get("b", (2,))
        cache.get("a", (2,))  # refresh a: b is now the oldest
        cache.get("c", (2,))  # evicts b
        assert len(cache) == 2
        assert cache.get("a", (2,)) is a  # survived as most-recent

    def test_zero_fills_on_creation_only(self):
        # Documented contract: zero=True buffers start zero-filled but
        # are NOT re-zeroed on reuse — callers must fully overwrite the
        # region they read (the conv pad buffer's borders stay zero
        # because nobody ever writes them).
        cache = ScratchCache()
        buf = cache.get("z", (3,), zero=True)
        assert np.array_equal(buf, np.zeros(3, dtype=np.float32))
        buf[:] = 7.0
        again = cache.get("z", (3,), zero=True)
        assert again is buf
        assert np.array_equal(again, np.full(3, 7.0, dtype=np.float32))
