"""Additional coverage: formatting helpers, CLI parsing, edge cases."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.situation import situation_by_index
from repro.experiments.table3 import PAPER_TABLE3, Table3Row, format_table3
from repro.perception.roi import roi_preset
from repro.perception.sliding_window import find_lane_pixels
from repro.sim.geometry import Pose2D
from repro.sim.renderer import RenderOptions, RoadSceneRenderer
from repro.sim.track import TrackSegment


class TestTable3Formatting:
    def test_format_includes_both_columns(self):
        from repro.core.knobs import KnobSetting

        situation = situation_by_index(1)
        row = Table3Row(
            index=1,
            situation=situation,
            knobs=KnobSetting("S5", "ROI 1", 50.0),
            period_ms=25.0,
            delay_ms=22.9,
            paper_isp="S3",
            paper_roi="ROI 1",
            paper_vht=(50, 25, 23.1),
        )
        text = format_table3([row])
        assert "S5 ROI 1 [50, 25, 22.9]" in text
        assert "S3 ROI 1 [50, 25, 23.1]" in text

    def test_paper_table_h_values_are_step_multiples(self):
        for _, _, (v, h, tau) in PAPER_TABLE3.values():
            assert h % 5 == 0
            assert tau <= h


class TestCliParsing:
    def test_all_subcommands_parse(self):
        from repro.__main__ import build_parser

        parser = build_parser()
        for argv in (
            ["run"],
            ["track", "--cases", "case1,case3"],
            ["characterize", "--situation", "20"],
            ["train", "--no-cache"],
            ["sensitivity", "--samples", "4"],
            ["report", "--output", "x.md", "--skip-dynamic"],
        ):
            args = parser.parse_args(argv)
            assert callable(args.func)

    def test_unknown_case_rejected_by_parser(self):
        from repro.__main__ import build_parser

        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--case", "case9"])


class TestSlidingWindowHintEdges:
    def test_hint_outside_grid_ignored(self):
        mask = np.zeros((96, 128), dtype=bool)
        mask[:, 96:98] = True
        res = 4.8 / 128
        pixels = find_lane_pixels(mask, res, base_hints=(50.0, None))
        # An absurd hint cannot produce a base; the expected-position
        # fallback is not used for hinted lines, so left is dropped...
        # unless the histogram near the hint (clamped) catches the line.
        assert pixels.n_left >= 0  # must not raise

    def test_both_hints_none_equals_no_hints(self):
        mask = np.zeros((96, 128), dtype=bool)
        mask[:, 96:98] = True
        mask[:, 30:32] = True
        res = 4.8 / 128
        plain = find_lane_pixels(mask, res)
        hinted = find_lane_pixels(mask, res, base_hints=(None, None))
        assert plain.n_left == hinted.n_left
        assert plain.n_right == hinted.n_right


class TestRendererOptions:
    def test_noise_flag_controls_determinism(self, small_camera, day_track):
        quiet = RoadSceneRenderer(
            small_camera, day_track, options=RenderOptions(noise=False), seed=1
        )
        noisy = RoadSceneRenderer(
            small_camera, day_track, options=RenderOptions(noise=True), seed=1
        )
        pose = day_track.pose_at(30.0)
        a = quiet.render_raw(pose)
        b = noisy.render_raw(pose)
        assert not np.array_equal(a, b)

    def test_lane_width_option_moves_markings(self, small_camera, day_track):
        wide = RoadSceneRenderer(
            small_camera,
            day_track,
            options=RenderOptions(noise=False, lane_width=5.0),
            seed=1,
        )
        normal = RoadSceneRenderer(
            small_camera, day_track, options=RenderOptions(noise=False), seed=1
        )
        pose = day_track.pose_at(30.0)
        assert not np.array_equal(
            wide.render_rgb(pose), normal.render_rgb(pose)
        )


class TestTrackSegmentExtrapolation:
    def test_locate_before_start(self):
        seg = TrackSegment(Pose2D(0, 0, 0), 50.0, 0.0, situation_by_index(1), 0.0)
        s, d = seg.locate(np.array([[-5.0, 0.0]]))
        assert s[0] == pytest.approx(-5.0)

    def test_pose_extrapolates_past_end(self):
        seg = TrackSegment(Pose2D(0, 0, 0), 50.0, 1 / 60.0, situation_by_index(1), 0.0)
        pose = seg.pose_at(60.0)  # beyond the 50 m segment
        s, d = seg.locate(pose.position()[None])
        assert s[0] == pytest.approx(60.0, abs=1e-6)
        assert d[0] == pytest.approx(0.0, abs=1e-9)


class TestRoiMetadata:
    def test_paper_trapezoids_kept(self):
        for name in ("ROI 1", "ROI 2", "ROI 3", "ROI 4", "ROI 5"):
            preset = roi_preset(name)
            assert len(preset.paper_trapezoid) == 4

    def test_to_config_round_trips_fields(self):
        preset = roi_preset("ROI 3")
        config = preset.to_config()
        assert config["name"] == "ROI 3"
        assert config["half_width"] == preset.half_width
        assert config["x_near"] == preset.x_near
