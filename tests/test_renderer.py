"""Tests for the camera model, sensor and road-scene renderer."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.situation import Scene, situation_by_index
from repro.sim.camera import CameraModel
from repro.sim.geometry import Pose2D
from repro.sim.photometry import SCENE_PHOTOMETRY, photometry_for
from repro.sim.renderer import RenderOptions, RoadSceneRenderer
from repro.sim.sensor import add_sensor_noise, bayer_channel_masks, mosaic
from repro.sim.world import static_situation_track


class TestCameraModel:
    def test_ground_map_shapes(self, small_camera):
        gm = small_camera.ground_map()
        assert gm.forward.shape == (small_camera.height, small_camera.width)
        assert gm.on_ground.dtype == bool

    def test_ground_points_are_in_front(self, small_camera):
        gm = small_camera.ground_map()
        assert np.all(gm.forward[gm.on_ground] >= small_camera.min_distance)
        assert np.all(gm.forward[gm.on_ground] <= small_camera.max_distance)

    def test_no_ground_above_horizon(self, small_camera):
        gm = small_camera.ground_map()
        horizon = small_camera.horizon_row()
        assert not gm.on_ground[: max(horizon, 0)].any()

    def test_projection_round_trip(self, small_camera):
        gm = small_camera.ground_map()
        rows, cols = np.nonzero(gm.on_ground)
        take = slice(0, None, 97)
        fwd = gm.forward[rows[take], cols[take]]
        lat = gm.lateral[rows[take], cols[take]]
        u, v = small_camera.project(fwd, lat)
        np.testing.assert_allclose(u, cols[take], atol=0.1)
        np.testing.assert_allclose(v, rows[take], atol=0.1)

    def test_center_pixel_looks_straight(self, small_camera):
        gm = small_camera.ground_map()
        col = small_camera.width // 2
        rows = np.nonzero(gm.on_ground[:, col])[0]
        lat = gm.lateral[rows, col]
        fwd = gm.forward[rows, col]
        # The column sits half a pixel off the optical center, so the
        # lateral offset grows linearly with distance; bound the angle.
        assert np.all(np.abs(lat) < 0.01 * fwd + 0.02)

    def test_scaled_keeps_field_of_view(self):
        cam = CameraModel(width=512, height=256)
        half = cam.scaled(256, 128)
        # Same ray direction at the image corner -> same ground point.
        gm_full = cam.ground_map()
        gm_half = half.ground_map()
        assert gm_full.forward[255, 0] == pytest.approx(
            gm_half.forward[127, 0], rel=0.05
        )

    def test_invalid_sizes_rejected(self):
        with pytest.raises(ValueError):
            CameraModel(width=0, height=10)


class TestSensor:
    def test_bayer_masks_partition(self):
        r, g, b = bayer_channel_masks(6, 8)
        total = r.astype(int) + g.astype(int) + b.astype(int)
        assert np.all(total == 1)
        assert g.sum() == 2 * r.sum() == 2 * b.sum()

    def test_mosaic_picks_correct_channels(self):
        rgb = np.zeros((4, 4, 3), dtype=np.float32)
        rgb[..., 0] = 1.0
        rgb[..., 1] = 2.0
        rgb[..., 2] = 3.0
        raw = mosaic(rgb)
        assert raw[0, 0] == 1.0  # R
        assert raw[0, 1] == 2.0  # G
        assert raw[1, 0] == 2.0  # G
        assert raw[1, 1] == 3.0  # B

    def test_mosaic_rejects_bad_shape(self):
        with pytest.raises(ValueError):
            mosaic(np.zeros((4, 4)))

    def test_noise_zero_levels_is_identity(self, rng):
        raw = rng.random((8, 8)).astype(np.float32)
        out = add_sensor_noise(raw, np.random.default_rng(0), 0.0, 0.0)
        np.testing.assert_allclose(out, raw)

    def test_noise_clips_to_unit_interval(self):
        raw = np.ones((16, 16), dtype=np.float32)
        out = add_sensor_noise(raw, np.random.default_rng(0), 0.5, 0.5)
        assert out.min() >= 0.0 and out.max() <= 1.0

    def test_noise_rejects_negative_levels(self):
        with pytest.raises(ValueError):
            add_sensor_noise(np.zeros((2, 2)), np.random.default_rng(0), -0.1, 0.0)

    @given(st.floats(min_value=0.0, max_value=0.05))
    @settings(max_examples=20, deadline=None)
    def test_noise_scale_bounded(self, level):
        raw = np.full((32, 32), 0.5, dtype=np.float32)
        out = add_sensor_noise(raw, np.random.default_rng(1), level, 0.0)
        # 6-sigma bound on the deviation of the mean.
        assert abs(float(out.mean()) - 0.5) < max(6 * level / 32, 1e-6)


class TestPhotometry:
    def test_all_scenes_registered(self):
        for scene in Scene:
            assert photometry_for(scene) is SCENE_PHOTOMETRY[scene]

    def test_day_is_brightest(self):
        day = photometry_for(Scene.DAY).exposure
        for scene in (Scene.NIGHT, Scene.DARK, Scene.DAWN, Scene.DUSK):
            assert photometry_for(scene).exposure < day

    def test_dark_noisier_than_day(self):
        assert (
            photometry_for(Scene.DARK).read_noise
            > photometry_for(Scene.DAY).read_noise
        )


class TestRenderer:
    def test_rgb_shape_and_range(self, day_renderer, day_track, small_camera):
        rgb = day_renderer.render_rgb(day_track.pose_at(30.0))
        assert rgb.shape == (small_camera.height, small_camera.width, 3)
        assert rgb.dtype == np.float32
        assert rgb.min() >= 0.0 and rgb.max() <= 1.0

    def test_raw_is_bayer_plane(self, day_renderer, day_track, small_camera):
        raw = day_renderer.render_raw(day_track.pose_at(30.0))
        assert raw.shape == (small_camera.height, small_camera.width)

    def test_lane_markings_visible(self, day_renderer, day_track, small_camera):
        """The left (continuous) marking must produce bright pixels on
        the left half of the lower image."""
        rgb = day_renderer.render_rgb(day_track.pose_at(30.0))
        lower = rgb[small_camera.height // 2 :, : small_camera.width // 2]
        road_level = np.median(lower)
        assert lower.max() > road_level + 0.2

    def test_night_darker_than_day(self, day_renderer, day_track):
        pose = day_track.pose_at(30.0)
        day = day_renderer.render_rgb(pose, Scene.DAY)
        night = day_renderer.render_rgb(pose, Scene.NIGHT)
        assert night.mean() < day.mean() * 0.6

    def test_scene_from_track_sector(self, small_camera, dynamic_track):
        renderer = RoadSceneRenderer(small_camera, dynamic_track, seed=0)
        # Sector 9 of the Fig. 7 track is dark.
        pose = dynamic_track.pose_at(850.0)
        assert renderer.scene_at(pose) == Scene.DARK

    def test_noise_disabled_is_deterministic(self, small_camera, day_track):
        options = RenderOptions(noise=False)
        r1 = RoadSceneRenderer(small_camera, day_track, options=options, seed=0)
        r2 = RoadSceneRenderer(small_camera, day_track, options=options, seed=99)
        pose = day_track.pose_at(25.0)
        np.testing.assert_array_equal(r1.render_raw(pose), r2.render_raw(pose))

    def test_dotted_lane_has_gaps(self, small_camera):
        """A dotted marking must disappear in dash gaps along s."""
        situation = situation_by_index(2)  # straight, white dotted
        track = static_situation_track(situation, length=300.0)
        renderer = RoadSceneRenderer(
            small_camera, track, options=RenderOptions(noise=False), seed=0
        )
        # Left half max brightness at many longitudinal offsets: with a
        # dotted left lane it must vary strongly (dash vs gap).
        maxima = []
        for s in np.arange(30.0, 70.0, 1.5):
            rgb = renderer.render_rgb(track.pose_at(float(s)), Scene.DAY)
            strip = rgb[small_camera.height * 2 // 3 :, : small_camera.width // 2]
            maxima.append(float(strip.max()))
        maxima = np.array(maxima)
        assert maxima.max() - maxima.min() > 0.2

    def test_yellow_lane_is_yellow(self, small_camera):
        situation = situation_by_index(3)  # yellow continuous
        track = static_situation_track(situation, length=200.0)
        renderer = RoadSceneRenderer(
            small_camera, track, options=RenderOptions(noise=False), seed=0
        )
        rgb = renderer.render_rgb(track.pose_at(30.0), Scene.DAY)
        lower_left = rgb[small_camera.height // 2 :, : small_camera.width // 2]
        # Find the brightest pixel: it should be the marking, with R >> B.
        idx = np.unravel_index(
            np.argmax(lower_left[..., 0] + lower_left[..., 1]), lower_left.shape[:2]
        )
        pixel = lower_left[idx]
        assert pixel[0] > 2.0 * pixel[2]
