"""Tests for the extension components: Monte-Carlo sensitivity,
event-triggered invocation, LQG-in-the-loop, CLI and report plumbing."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.cases import case_config
from repro.core.scheduler import EventTriggeredScheme
from repro.core.sensitivity import (
    MonteCarloSample,
    SensitivityConfig,
    SensitivityReport,
    _main_effect,
    knob_sensitivity,
)
from repro.core.situation import situation_by_index


class TestMainEffect:
    def test_fully_explained_variance(self):
        values = np.array([1.0, 1.0, 5.0, 5.0])
        groups = ["a", "a", "b", "b"]
        assert _main_effect(values, groups) == pytest.approx(1.0)

    def test_no_effect(self):
        values = np.array([1.0, 5.0, 1.0, 5.0])
        groups = ["a", "a", "b", "b"]
        assert _main_effect(values, groups) == pytest.approx(0.0)

    def test_constant_values_zero(self):
        assert _main_effect(np.ones(4), ["a", "b", "a", "b"]) == 0.0

    def test_partial_effect_bounded(self):
        rng = np.random.default_rng(0)
        values = np.concatenate([rng.normal(0, 1, 50), rng.normal(1, 1, 50)])
        groups = ["a"] * 50 + ["b"] * 50
        effect = _main_effect(values, groups)
        assert 0.0 < effect < 1.0


class TestKnobSensitivity:
    def test_small_study_runs(self):
        config = SensitivityConfig(
            n_samples=4,
            isp_names=("S0", "S7"),
            roi_names=("ROI 1",),
            speeds_kmph=(50.0,),
            track_length=60.0,
        )
        report = knob_sensitivity(situation_by_index(1), config)
        assert len(report.samples) == 4
        assert set(report.main_effect) == {"isp", "roi", "speed"}
        assert len(report.ranked_knobs()) == 3

    def test_crash_penalty(self):
        sample = MonteCarloSample(
            knobs=None, mae=0.02, crashed=True  # type: ignore[arg-type]
        )
        assert sample.effective_mae == 1.0


class TestEventTriggeredScheme:
    def test_road_by_default(self):
        scheme = EventTriggeredScheme(max_staleness_ms=1e9)
        scheme.classifiers_for_cycle(0.0)  # first cycle may refresh
        scheme.classifiers_for_cycle(25.0)
        assert scheme.classifiers_for_cycle(50.0) == ("road",)

    def test_burst_on_believed_change(self):
        scheme = EventTriggeredScheme(max_staleness_ms=1e9)
        for t in (0.0, 25.0, 50.0):
            scheme.classifiers_for_cycle(t)
        scheme.observe(believed_changed=True, measurement_valid=True)
        assert scheme.classifiers_for_cycle(75.0) == ("lane",)
        assert scheme.classifiers_for_cycle(100.0) == ("scene",)
        assert scheme.classifiers_for_cycle(125.0) == ("road",)

    def test_burst_on_miss_streak(self):
        scheme = EventTriggeredScheme(max_staleness_ms=1e9, miss_threshold=2)
        for t in (0.0, 25.0):
            scheme.classifiers_for_cycle(t)
        scheme.observe(False, False)
        assert scheme.classifiers_for_cycle(50.0) == ("road",)
        scheme.observe(False, False)  # second consecutive miss
        assert scheme.classifiers_for_cycle(75.0) == ("lane",)

    def test_staleness_fallback(self):
        scheme = EventTriggeredScheme(max_staleness_ms=100.0)
        scheme.classifiers_for_cycle(0.0)  # refresh at t=0
        scheme.classifiers_for_cycle(25.0)
        assert scheme.classifiers_for_cycle(150.0) == ("lane",)

    def test_single_classifier_budget(self):
        assert EventTriggeredScheme().max_concurrent() == 1

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            EventTriggeredScheme(max_staleness_ms=0.0)
        with pytest.raises(ValueError):
            EventTriggeredScheme(miss_threshold=0)


class TestAdaptiveCase:
    def test_adaptive_case_registered(self):
        case = case_config("adaptive")
        assert case.invocation == "event"
        assert case.variable_invocation
        assert case.classifier_budget() == ("road",)

    def test_invalid_invocation_rejected(self):
        from repro.core.cases import CaseConfig

        with pytest.raises(ValueError):
            CaseConfig(
                name="bad",
                classifiers=("road",),
                adapt_roi_coarse=True,
                adapt_roi_fine=True,
                adapt_speed=True,
                adapt_isp=True,
                invocation="sometimes",
            )


class TestLqgInLoop:
    def test_lqg_engine_runs_and_is_stable(self):
        from repro.hil import HilConfig, HilEngine
        from repro.sim import static_situation_track

        track = static_situation_track(situation_by_index(1), length=80.0)
        config = HilConfig(
            seed=7, frame_width=192, frame_height=96, use_lqg=True
        )
        result = HilEngine(track, "case3", config=config).run()
        assert not result.crashed
        assert result.mae(skip_time_s=2.0) < 0.15


class TestCli:
    def test_parser_builds(self):
        from repro.__main__ import build_parser

        parser = build_parser()
        args = parser.parse_args(["run", "--situation", "2", "--case", "case1"])
        assert args.situation == 2

    def test_run_command_executes(self, capsys):
        from repro.__main__ import main

        code = main(
            ["run", "--situation", "1", "--case", "case1", "--length", "60"]
        )
        out = capsys.readouterr().out
        assert "MAE" in out
        assert code in (0, 1)

    def test_sensitivity_command(self, capsys):
        from repro.__main__ import main

        code = main(["sensitivity", "--situation", "1", "--samples", "2"])
        assert code == 0
        assert "variance share" in capsys.readouterr().out
