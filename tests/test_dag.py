"""Tests for the task-DAG scheduler."""

from __future__ import annotations

import pytest

from repro.platform.dag import DagTask, TaskDag, dag_delay_ms, lkas_dag
from repro.platform.resources import Resource
from repro.platform.schedule import pipeline_timing


class TestTaskDag:
    def test_chain_makespan_is_sum(self):
        dag = TaskDag()
        dag.add_task(DagTask("a", Resource.GPU, 2.0))
        dag.add_task(DagTask("b", Resource.CPU, 3.0))
        dag.add_dependency("a", "b")
        _, makespan = dag.schedule()
        assert makespan == pytest.approx(5.0)

    def test_parallel_on_distinct_resources(self):
        dag = TaskDag()
        dag.add_task(DagTask("gpu", Resource.GPU, 4.0))
        dag.add_task(DagTask("cpu", Resource.CPU, 3.0))
        _, makespan = dag.schedule()
        assert makespan == pytest.approx(4.0)

    def test_same_resource_serializes(self):
        dag = TaskDag()
        dag.add_task(DagTask("a", Resource.GPU, 4.0))
        dag.add_task(DagTask("b", Resource.GPU, 3.0))
        _, makespan = dag.schedule()
        assert makespan == pytest.approx(7.0)

    def test_cycle_rejected(self):
        dag = TaskDag()
        dag.add_task(DagTask("a", Resource.GPU, 1.0))
        dag.add_task(DagTask("b", Resource.GPU, 1.0))
        dag.add_dependency("a", "b")
        with pytest.raises(ValueError, match="cycle"):
            dag.add_dependency("b", "a")

    def test_duplicate_task_rejected(self):
        dag = TaskDag()
        dag.add_task(DagTask("a", Resource.GPU, 1.0))
        with pytest.raises(ValueError, match="duplicate"):
            dag.add_task(DagTask("a", Resource.CPU, 1.0))

    def test_unknown_dependency_rejected(self):
        dag = TaskDag()
        dag.add_task(DagTask("a", Resource.GPU, 1.0))
        with pytest.raises(ValueError, match="unknown"):
            dag.add_dependency("a", "zzz")

    def test_critical_path_of_chain(self):
        dag = lkas_dag("S0", ("road",))
        path = dag.critical_path()
        assert path[0] == "isp/S0"
        assert path[-1] == "control"


class TestLkasDag:
    def test_sequential_matches_chain_model(self):
        """Without overlap the DAG reproduces the chain-model tau."""
        for isp in ("S0", "S3"):
            for clfs in ((), ("road",), ("road", "lane", "scene")):
                dag = lkas_dag(isp, clfs, overlap_scene=False)
                chain = pipeline_timing(isp, clfs).delay_ms
                assert dag_delay_ms(dag) == pytest.approx(chain, abs=1e-9)

    def test_scene_overlap_saves_gpu_time(self):
        """Overlapping the scene classifier with CPU perception shortens
        the cycle by up to min(scene runtime, PR runtime)."""
        chain = dag_delay_ms(lkas_dag("S3", ("road", "lane", "scene")))
        overlapped = dag_delay_ms(
            lkas_dag("S3", ("road", "lane", "scene"), overlap_scene=True)
        )
        assert overlapped < chain
        # PR (3.0 ms CPU) hides up to 3.0 ms of the 5.5 ms scene task.
        assert chain - overlapped == pytest.approx(3.0, abs=0.01)

    def test_overlap_without_scene_changes_nothing(self):
        plain = dag_delay_ms(lkas_dag("S0", ("road", "lane")))
        overlapped = dag_delay_ms(
            lkas_dag("S0", ("road", "lane"), overlap_scene=True)
        )
        assert plain == pytest.approx(overlapped)
