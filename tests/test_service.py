"""Tests for the sensing service (repro.service).

Unit layer: the versioned wire protocol (request/response envelopes,
typed decode errors, lossless result payload codecs).  Integration
layer: a real :class:`~repro.service.server.ServerThread` + the
:func:`repro.api.connect` client, pinning the scheduling contract —
served results bit-identical to the in-process facade, bounded
admission with typed ``queue_full`` rejection, per-request deadlines
(queued and in-flight), cooperative cancel, and the graceful drain that
delivers every admitted result before closing.

Every run uses the tiny 96x48 frame; the "slow" job is a 300 m sector
(~2 s) so inline control operations have a wide window to observe the
in-flight state deterministically.
"""

from __future__ import annotations

import json
import socket as socketlib
import time

import numpy as np
import pytest

import repro.api
from repro.service import protocol
from repro.service.errors import (
    BadRequestError,
    DeadlineExceededError,
    QueueFullError,
    RequestCancelledError,
    RequestNotFoundError,
    ServiceError,
    ShuttingDownError,
    UnknownOperationError,
    UnsupportedVersionError,
    error_for_code,
)
from repro.service.server import SensingServer, ServerThread

FRAME = (96, 48)
QUICK = dict(length_m=40.0, frame=FRAME)
SLOW = dict(length_m=300.0, frame=FRAME)


# ---------------------------------------------------------------------------
# protocol: request/response envelopes


class TestRequestCodec:
    def test_round_trip(self):
        line = protocol.encode_request(
            op=protocol.OP_SIMULATE,
            request_id="c1",
            params={"seed": 7},
            deadline_ms=250,
        )
        assert line.endswith(b"\n") and line.count(b"\n") == 1
        request = protocol.decode_request(line)
        assert request.op == protocol.OP_SIMULATE
        assert request.request_id == "c1"
        assert request.params == {"seed": 7}
        assert request.deadline_ms == 250.0

    def test_defaults(self):
        request = protocol.decode_request(
            protocol.encode_request(op=protocol.OP_HEALTH, request_id="c2")
        )
        assert request.params == {} and request.deadline_ms is None

    def test_wrong_version_is_rejected_with_request_id(self):
        line = json.dumps({"v": 99, "op": "health", "id": "c3"})
        with pytest.raises(UnsupportedVersionError) as excinfo:
            protocol.decode_request(line)
        assert excinfo.value.code == protocol.ERR_UNSUPPORTED_VERSION
        assert excinfo.value.request_id == "c3"

    def test_malformed_lines_are_bad_requests(self):
        for line in [b"not json\n", b"[1,2]\n", b'{"v":1,"op":"simulate"}\n']:
            with pytest.raises(BadRequestError):
                protocol.decode_request(line)

    def test_unknown_op_and_bad_deadline(self):
        with pytest.raises(UnknownOperationError):
            protocol.decode_request(
                json.dumps({"v": 1, "op": "teleport", "id": "c4"})
            )
        for deadline in [0, -5, True, "soon"]:
            with pytest.raises(BadRequestError):
                protocol.decode_request(
                    json.dumps(
                        {"v": 1, "op": "health", "id": "c5",
                         "deadline_ms": deadline}
                    )
                )

    def test_response_round_trip_and_version_check(self):
        ok = protocol.decode_response(
            protocol.encode_response(
                protocol.ok_response(
                    request_id="c6", op=protocol.OP_HEALTH, result={"a": 1}
                )
            )
        )
        assert ok["ok"] is True and ok["result"] == {"a": 1}
        err = protocol.decode_response(
            protocol.encode_response(
                protocol.error_response(
                    request_id=None,
                    code=protocol.ERR_QUEUE_FULL,
                    message="full",
                )
            )
        )
        assert err["ok"] is False
        assert err["error"]["code"] == protocol.ERR_QUEUE_FULL
        with pytest.raises(UnsupportedVersionError):
            protocol.decode_response(json.dumps({"v": 2, "ok": True}))
        with pytest.raises(BadRequestError):
            protocol.decode_response(json.dumps({"v": 1}))

    def test_error_for_code_maps_every_wire_code(self):
        for code in protocol.ERROR_CODES:
            error = error_for_code(code=code, message="x")
            assert isinstance(error, ServiceError)
            assert error.code == code
        # Unknown codes degrade to the base class, code preserved.
        assert error_for_code(code="novel_code", message="x").code == "novel_code"


# ---------------------------------------------------------------------------
# protocol: payload codecs (bit-identity across an actual encode/decode)


@pytest.fixture(scope="module")
def direct_result():
    return repro.api.simulate(seed=7, **QUICK)


def assert_hil_results_identical(served, direct):
    """Bit-for-bit equality, manifest compared minus the volatile
    wall-clock timestamps (the same fields ``diff_traces`` ignores)."""
    for name in (
        "time_s", "s", "lateral_offset", "y_l_true", "steering", "speed"
    ):
        a, b = getattr(served, name), getattr(direct, name)
        assert a.dtype == b.dtype == np.float64
        assert np.array_equal(a, b), f"{name} diverged across the wire"
    assert served.cycles == direct.cycles
    assert served.crashed == direct.crashed
    assert served.crash_s == direct.crash_s
    assert served.completed == direct.completed
    strip = lambda manifest: {
        key: value
        for key, value in manifest.items()
        if key != "wall_clock"
    }
    assert strip(served.manifest) == strip(direct.manifest)


class TestPayloadCodec:
    def test_hil_result_survives_the_wire_bit_identical(self, direct_result):
        line = protocol.encode_response(
            protocol.ok_response(
                request_id="c1",
                op=protocol.OP_SIMULATE,
                result=protocol.work_result_to_payload(
                    protocol.OP_SIMULATE, result=direct_result
                ),
            )
        )
        decoded = protocol.work_result_from_payload(
            protocol.decode_response(line)["result"]
        )
        assert_hil_results_identical(decoded, direct_result)

    def test_control_payloads_pass_through(self):
        assert protocol.work_result_from_payload({"status": "ok"}) == {
            "status": "ok"
        }
        assert protocol.work_result_from_payload(None) is None


# ---------------------------------------------------------------------------
# integration: a live server on a background thread


def _server(tmp_path, **kwargs):
    kwargs.setdefault("socket_path", str(tmp_path / "svc.sock"))
    kwargs.setdefault("workers", 1)
    return ServerThread(**kwargs)


def _connect(thread, **kwargs):
    return repro.api.connect(**thread.connect_kwargs, **kwargs)


def _wait_for(client, predicate, what, timeout=20.0):
    """Poll ``health`` until *predicate* holds (inline ops stay fast
    even while a worker is busy)."""
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        health = client.health()
        if predicate(health):
            return health
        time.sleep(0.02)
    raise AssertionError(f"server never reached state: {what}")


class TestServedSimulate:
    def test_bit_identical_to_direct_facade_call(self, tmp_path, direct_result):
        with _server(tmp_path) as thread, _connect(thread) as client:
            served = client.simulate(seed=7, **QUICK)
        assert_hil_results_identical(served, direct_result)

    def test_seed_list_runs_a_monte_carlo_batch_in_seed_order(self, tmp_path):
        seeds = [3, 5]
        direct = repro.api.simulate(seed=seeds, **QUICK)
        with _server(tmp_path) as thread, _connect(thread) as client:
            served = client.simulate(seed=seeds, **QUICK)
        assert isinstance(served, list) and len(served) == len(seeds)
        for one_served, one_direct in zip(served, direct):
            assert_hil_results_identical(one_served, one_direct)

    def test_profile_op_rebuilds_the_report(self, tmp_path):
        with _server(tmp_path) as thread, _connect(thread) as client:
            report = client.request(
                protocol.OP_PROFILE,
                params={"seed": 7, "length_m": 40.0, "frame": list(FRAME)},
            )
        assert report.result.completed
        assert "hil.control" in report.modeled_ms

    def test_inject_op_applies_the_fault_plan(self, tmp_path):
        with _server(tmp_path) as thread, _connect(thread) as client:
            result = client.request(
                protocol.OP_INJECT,
                params={
                    "faults": "banding@1000:2000",
                    "seed": 7,
                    "length_m": 60.0,
                    "frame": list(FRAME),
                },
            )
        faults_seen = {
            fault for cycle in result.cycles for fault in cycle.faults
        }
        assert "banding" in faults_seen


class TestAdmissionControl:
    def test_queue_full_is_a_typed_immediate_rejection(self, tmp_path):
        with _server(tmp_path, queue_limit=1) as thread, \
                _connect(thread) as client:
            slow = client.submit(protocol.OP_SIMULATE,
                                 params={"seed": 3, **SLOW})
            _wait_for(
                client,
                lambda h: h["in_flight"] == 1 and h["queue_depth"] == 0,
                "slow job in flight",
            )
            queued = client.submit(protocol.OP_SIMULATE,
                                   params={"seed": 5, **QUICK})
            _wait_for(
                client, lambda h: h["queue_depth"] == 1, "one job queued"
            )
            rejected = client.submit(protocol.OP_SIMULATE,
                                     params={"seed": 9, **QUICK})
            with pytest.raises(QueueFullError):
                client.result(rejected, timeout=10.0)
            stats = client.stats()
            assert stats["counters"]["service.rejected.queue_full"] == 1
            # The admitted requests are untouched by the rejection.
            assert client.result(slow, timeout=60.0).completed
            assert client.result(queued, timeout=60.0).completed

    def test_unknown_params_and_missing_required_are_bad_requests(
        self, tmp_path
    ):
        with _server(tmp_path) as thread, _connect(thread) as client:
            with pytest.raises(BadRequestError, match="bogus"):
                client.request(protocol.OP_SIMULATE, params={"bogus": 1})
            with pytest.raises(BadRequestError, match="faults"):
                client.request(protocol.OP_INJECT, params={"seed": 7})

    def test_garbage_line_gets_a_typed_error_response(self, tmp_path):
        with _server(tmp_path) as thread:
            with socketlib.socket(
                socketlib.AF_UNIX, socketlib.SOCK_STREAM
            ) as raw:
                raw.connect(thread.connect_kwargs["socket"])
                raw.sendall(b"this is not json\n")
                response = json.loads(raw.makefile("rb").readline())
        assert response["ok"] is False
        assert response["error"]["code"] == protocol.ERR_BAD_REQUEST
        assert response["id"] is None


class TestDeadlines:
    def test_deadline_expiring_while_queued_skips_execution(self, tmp_path):
        with _server(tmp_path) as thread, _connect(thread) as client:
            slow = client.submit(protocol.OP_SIMULATE,
                                 params={"seed": 3, **SLOW})
            _wait_for(
                client, lambda h: h["in_flight"] == 1, "slow job in flight"
            )
            doomed = client.submit(
                protocol.OP_SIMULATE,
                params={"seed": 5, **QUICK},
                deadline_ms=50,
            )
            with pytest.raises(DeadlineExceededError, match="never executed"):
                client.result(doomed, timeout=60.0)
            stats = client.stats()
            assert stats["counters"]["service.rejected.deadline"] == 1
            assert client.result(slow, timeout=60.0).completed

    def test_deadline_expiring_in_flight_abandons_the_worker(self, tmp_path):
        with _server(tmp_path) as thread, _connect(thread) as client:
            with pytest.raises(DeadlineExceededError, match="abandoned"):
                client.simulate(seed=3, deadline_ms=300, timeout=60.0, **SLOW)
            stats = client.stats()
            assert stats["counters"]["service.abandoned.deadline"] == 1
            # The slot is reclaimed: the server still completes new work.
            assert client.simulate(seed=7, timeout=60.0, **QUICK).completed


class TestCancellation:
    def test_queued_request_is_cancellable(self, tmp_path):
        with _server(tmp_path) as thread, _connect(thread) as client:
            slow = client.submit(protocol.OP_SIMULATE,
                                 params={"seed": 3, **SLOW})
            _wait_for(
                client, lambda h: h["in_flight"] == 1, "slow job in flight"
            )
            queued = client.submit(protocol.OP_SIMULATE,
                                   params={"seed": 5, **QUICK})
            assert client.cancel(queued) == {"cancelled": queued}
            with pytest.raises(RequestCancelledError):
                client.result(queued, timeout=60.0)
            assert client.result(slow, timeout=60.0).completed

    def test_cancel_of_unknown_request_is_not_found(self, tmp_path):
        with _server(tmp_path) as thread, _connect(thread) as client:
            with pytest.raises(RequestNotFoundError):
                client.cancel("never-submitted")


class TestGracefulDrain:
    def test_drain_delivers_every_admitted_result(self, tmp_path):
        stats_path = tmp_path / "service-stats.json"
        socket_path = tmp_path / "svc.sock"
        with _server(
            tmp_path,
            socket_path=str(socket_path),
            stats_path=str(stats_path),
        ) as thread, _connect(thread) as client:
            slow = client.submit(protocol.OP_SIMULATE,
                                 params={"seed": 3, **SLOW})
            _wait_for(
                client, lambda h: h["in_flight"] == 1, "slow job in flight"
            )
            queued = [
                client.submit(
                    protocol.OP_SIMULATE, params={"seed": seed, **QUICK}
                )
                for seed in (5, 9)
            ]
            assert client.shutdown() == {"draining": True}
            _wait_for(
                client, lambda h: h["status"] == "draining", "draining"
            )
            late = client.submit(protocol.OP_SIMULATE,
                                 params={"seed": 11, **QUICK})
            with pytest.raises(ShuttingDownError):
                client.result(late, timeout=60.0)
            # Everything admitted before the drain still completes, and
            # the responses arrive before the server closes.
            assert client.result(slow, timeout=120.0).completed
            for request_id in queued:
                assert client.result(request_id, timeout=120.0).completed
        # The drain flushed the final metrics snapshot atomically and
        # removed the socket file.
        assert not socket_path.exists()
        stats = json.loads(stats_path.read_text())
        assert stats["counters"]["service.completed"] == 3
        assert stats["counters"]["service.rejected.shutting_down"] == 1
        assert stats["gauges"]["service.queue_depth"] == 0
        assert stats["gauges"]["service.in_flight"] == 0
        assert "service.latency_ms.simulate" in stats["histograms"]


class TestObservability:
    def test_health_and_stats_shapes(self, tmp_path):
        with _server(tmp_path, queue_limit=4) as thread, \
                _connect(thread) as client:
            health = client.health()
            assert health["status"] == "ok"
            assert health["protocol"] == protocol.PROTOCOL_VERSION
            assert health["workers"] == 1
            assert health["queue_limit"] == 4
            assert client.simulate(seed=7, timeout=60.0, **QUICK).completed
            stats = client.stats()
        assert stats["counters"]["service.admitted"] == 1
        assert stats["counters"]["service.completed"] == 1
        assert stats["counters"]["service.op.simulate"] == 1
        summary = stats["histograms"]["service.latency_ms.simulate"]
        assert summary["count"] == 1
        assert summary["p95"] >= summary["mean"] * 0.5

    def test_served_cache_hits_are_identical_and_counted(self, tmp_path):
        store = tmp_path / "store"
        with _server(tmp_path) as thread, _connect(thread) as client:
            cold = client.simulate(
                seed=11, cache=str(store), timeout=60.0, **QUICK
            )
            warm = client.simulate(
                seed=11, cache=str(store), timeout=60.0, **QUICK
            )
            uncached = client.simulate(seed=11, timeout=60.0, **QUICK)
            stats = client.stats()
        for field in ("time_s", "s", "lateral_offset", "y_l_true",
                      "steering", "speed"):
            arrays = [getattr(r, field) for r in (cold, warm, uncached)]
            assert arrays[0].tobytes() == arrays[1].tobytes()
            assert arrays[0].tobytes() == arrays[2].tobytes()
        assert cold.manifest == warm.manifest
        counters = stats["counters"]
        assert counters["service.cache.misses"] == 1
        assert counters["service.cache.stores"] == 1
        assert counters["service.cache.hits"] == 1
        # The uncached request contributed nothing to the cache tallies.
        assert counters["service.op.simulate"] == 3


class TestConstruction:
    def test_server_requires_exactly_one_transport(self):
        with pytest.raises(ValueError, match="transport"):
            SensingServer()
        with pytest.raises(ValueError, match="transport"):
            SensingServer(socket_path="x.sock", host="127.0.0.1", port=0)
        with pytest.raises(ValueError, match="queue_limit"):
            SensingServer(socket_path="x.sock", queue_limit=0)

    def test_connect_requires_exactly_one_transport(self):
        with pytest.raises(ValueError, match="transport"):
            repro.api.connect()
        with pytest.raises(ValueError, match="transport"):
            repro.api.connect(socket="x.sock", tcp="h:1")

    def test_tcp_transport_round_trips(self, tmp_path):
        with ServerThread(host="127.0.0.1", port=0, workers=1) as thread:
            assert thread.connect_kwargs.keys() == {"tcp"}
            with _connect(thread) as client:
                assert client.health()["status"] == "ok"
