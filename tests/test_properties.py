"""Cross-cutting property-based tests on core invariants."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.situation import situation_by_index
from repro.isp.pipeline import IspPipeline
from repro.perception.threshold import ThresholdParams, dynamic_threshold
from repro.platform.schedule import period_for_delay, pipeline_timing
from repro.sim.geometry import Pose2D
from repro.sim.track import SectorSpec, Track
from repro.utils.rng import derive_rng

SIT = situation_by_index(1)


class TestThresholdProperties:
    @given(
        st.floats(min_value=0.15, max_value=0.6),   # road level
        st.floats(min_value=0.25, max_value=0.55),  # line contrast
        st.integers(min_value=4, max_value=58),     # line column
    )
    @settings(max_examples=40, deadline=None)
    def test_bright_line_on_uniform_road_is_detected(self, road, contrast, col):
        bev = np.full((48, 64, 3), road, dtype=np.float32)
        bev[:, col : col + 2] = min(road + contrast, 1.0)
        mask = dynamic_threshold(bev)
        assert mask[:, col : col + 2].mean() > 0.5
        off = np.ones(64, dtype=bool)
        off[max(col - 1, 0) : col + 3] = False
        assert mask[:, off].mean() < 0.05

    @given(st.floats(min_value=0.5, max_value=2.0))
    @settings(max_examples=25, deadline=None)
    def test_exposure_scaling_invariance(self, gain):
        """The robust threshold is (nearly) invariant to global gain as
        long as the absolute floor is respected."""
        rng = derive_rng(5, "thr")
        bev = np.full((48, 64, 3), 0.3, dtype=np.float32)
        bev += 0.01 * rng.standard_normal(bev.shape).astype(np.float32)
        bev[:, 20:22] = 0.8
        base = dynamic_threshold(np.clip(bev, 0, 1))
        scaled = dynamic_threshold(np.clip(bev * gain, 0, 1))
        agreement = (base == scaled).mean()
        assert agreement > 0.97

    def test_mask_subset_of_valid(self):
        rng = derive_rng(6, "thr2")
        bev = rng.random((32, 40, 3)).astype(np.float32)
        valid = np.zeros((32, 40), dtype=bool)
        valid[:, :20] = True
        mask = dynamic_threshold(bev, ThresholdParams(), valid=valid)
        assert not mask[~valid].any()


class TestIspProperties:
    @given(st.integers(min_value=0, max_value=8))
    @settings(max_examples=9, deadline=None)
    def test_output_bounded_for_every_config(self, idx):
        rng = derive_rng(idx, "isp-prop")
        raw = rng.random((24, 24)).astype(np.float32)
        out = IspPipeline(f"S{idx}").process(raw)
        assert out.min() >= 0.0 and out.max() <= 1.0
        assert np.all(np.isfinite(out))

    @given(st.floats(min_value=0.05, max_value=0.95))
    @settings(max_examples=20, deadline=None)
    def test_demosaic_preserves_flat_level(self, level):
        from repro.isp.stages import demosaic

        raw = np.full((16, 16), level, dtype=np.float32)
        out = demosaic(raw)
        np.testing.assert_allclose(out, level, atol=1e-5)


class TestScheduleProperties:
    @given(st.floats(min_value=0.1, max_value=200.0))
    @settings(max_examples=60, deadline=None)
    def test_period_covers_delay(self, delay):
        period = period_for_delay(delay)
        assert period >= delay - 1e-9
        assert period % 5.0 == pytest.approx(0.0, abs=1e-9)
        assert period - delay < 5.0 + 1e-9

    @given(
        st.sampled_from([f"S{i}" for i in range(9)]),
        st.sets(st.sampled_from(["road", "lane", "scene"])),
        st.booleans(),
    )
    @settings(max_examples=40, deadline=None)
    def test_timing_monotone_in_classifiers(self, isp, classifiers, dynamic):
        base = pipeline_timing(isp, (), dynamic_isp=dynamic)
        with_clf = pipeline_timing(isp, tuple(classifiers), dynamic_isp=dynamic)
        assert with_clf.delay_ms >= base.delay_ms
        assert with_clf.period_ms >= base.period_ms
        assert with_clf.delay_ms <= with_clf.period_ms


class TestTrackProperties:
    @given(
        st.lists(
            st.tuples(
                st.floats(min_value=20.0, max_value=80.0),
                st.floats(min_value=-1 / 45.0, max_value=1 / 45.0),
            ),
            min_size=1,
            max_size=5,
        ),
        st.floats(min_value=0.05, max_value=0.95),
        st.floats(min_value=-1.5, max_value=1.5),
    )
    @settings(max_examples=40, deadline=None)
    def test_frenet_round_trip_on_random_tracks(self, specs, frac, d):
        track = Track.from_sections(
            [SectorSpec(length, curv, SIT) for length, curv in specs],
            Pose2D(0.0, 0.0, 0.3),
        )
        s = frac * track.length
        pose = track.pose_at(s, d)
        s_found, d_found = track.frenet(pose.x, pose.y, s_hint=s)
        assert s_found == pytest.approx(s, abs=1e-5)
        assert d_found == pytest.approx(d, abs=1e-5)

    @given(st.floats(min_value=0.0, max_value=1.0))
    @settings(max_examples=30, deadline=None)
    def test_curvature_matches_segment(self, frac):
        from repro.sim.world import fig7_track

        track = fig7_track()
        s = min(frac * track.length, track.length - 1e-6)
        seg = track.segments[int(track.segment_index_at(s))]
        assert track.curvature_at(s) == seg.curvature


class TestVehicleControllerProperties:
    @given(
        st.floats(min_value=-0.4, max_value=0.4),
        st.floats(min_value=-0.05, max_value=0.05),
    )
    @settings(max_examples=30, deadline=None)
    def test_controller_output_saturated(self, y_l, eps):
        from repro.control.controller import LaneKeepingController
        from repro.control.lqr import design_lqr
        from repro.perception.pipeline import PerceptionResult
        from repro.sim.vehicle import VehicleParams

        gains = design_lqr(VehicleParams(), 13.9, 0.025, 0.0246)
        controller = LaneKeepingController(gains, steer_limit=0.55)
        measurement = PerceptionResult(
            y_l=y_l, epsilon_l=eps, curvature=0.0, valid=True,
            lines_used=2, n_pixels=50,
        )
        u = controller.step(measurement, 0.0, 0.0, 0.0)
        assert -0.55 <= u <= 0.55

    @given(st.floats(min_value=0.1, max_value=0.5))
    @settings(max_examples=10, deadline=None)
    def test_closed_loop_contraction(self, y0):
        """The designed closed loop contracts any initial y_L offset."""
        from repro.control.lqr import design_lqr
        from repro.sim.vehicle import VehicleParams

        gains = design_lqr(VehicleParams(), 13.9, 0.025, 0.0246)
        z = np.zeros(6)
        z[2] = y0
        for _ in range(800):
            z = gains.a_closed @ z
        assert abs(z[2]) < 1e-4 * max(y0, 0.1)
