"""Tests for the design-time characterization flow (reduced scale)."""

from __future__ import annotations

import pytest

from repro.core.characterization import (
    CharacterizationConfig,
    characterize,
    characterize_situation,
    prescreen_isp,
    roi_candidates,
    _collect_outcomes,
    _select_isp_candidates,
)
from repro.core.situation import situation_by_index
from repro.utils.parallel import TaskFailure

#: Tiny sweep: 2 ISP candidates max, one speed, short track.
TINY = CharacterizationConfig(
    isp_names=("S0", "S7"),
    speeds_kmph=(50.0,),
    track_length=70.0,
    prescreen_frames=10,
    max_isp_candidates=2,
    seed=5,
)

#: Same sweep at reduced camera fidelity: fast enough to run the whole
#: characterization twice (serial and parallel) inside tier-1.
TINY_FAST = CharacterizationConfig(
    isp_names=("S0", "S7"),
    speeds_kmph=(50.0,),
    track_length=70.0,
    prescreen_frames=6,
    max_isp_candidates=2,
    frame_width=192,
    frame_height=96,
    seed=5,
)


class TestRoiCandidates:
    def test_straight(self):
        assert roi_candidates(situation_by_index(1)) == ["ROI 1"]

    def test_right_turn(self):
        assert roi_candidates(situation_by_index(8)) == ["ROI 2", "ROI 3"]

    def test_left_turn(self):
        assert roi_candidates(situation_by_index(15)) == ["ROI 4", "ROI 5"]


class TestPrescreen:
    def test_returns_all_candidates(self):
        results = prescreen_isp(situation_by_index(1), TINY)
        assert [isp for isp, _ in results] == ["S0", "S7"]
        assert all(0.0 <= bad <= 1.0 for _, bad in results)

    def test_candidate_selection_prefers_cheap(self):
        # S7 (3.1 ms) detectable -> must be first candidate (cheapest).
        chosen = _select_isp_candidates([("S0", 0.0), ("S7", 0.0)], TINY)
        assert chosen[0] == "S7"

    def test_candidate_selection_falls_back_when_none_detectable(self):
        chosen = _select_isp_candidates([("S0", 0.9), ("S7", 0.8)], TINY)
        assert chosen == ["S7"]


class TestCharacterizeSituation:
    @pytest.fixture(scope="class")
    def evaluations(self):
        return characterize_situation(situation_by_index(1), TINY)

    def test_crashes_ranked_last(self, evaluations):
        crashed_flags = [e.crashed for e in evaluations]
        # once a crashed entry appears, everything after is crashed too
        if True in crashed_flags:
            first_crash = crashed_flags.index(True)
            assert all(crashed_flags[first_crash:])

    def test_non_crashing_config_exists(self, evaluations):
        assert not evaluations[0].crashed

    def test_tie_break_prefers_fast_design(self, evaluations):
        """Among QoC ties the winner has the fastest design point."""
        best = evaluations[0]
        band = min(e.mae for e in evaluations if not e.crashed)
        band = band * 1.15 + 0.002
        tied = [e for e in evaluations if not e.crashed and e.mae <= band]
        assert best.period_ms == min(e.period_ms for e in tied)

    def test_timing_attached(self, evaluations):
        best = evaluations[0]
        assert best.period_ms >= best.delay_ms > 0


class TestCharacterizeTable:
    def test_cached_round_trip(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        situations = [situation_by_index(1)]
        first = characterize(situations, TINY, use_cache=True)
        second = characterize(situations, TINY, use_cache=True)
        assert first == second
        assert situations[0] in first


class TestParallelDeterminism:
    """The sweep's central contract: workers never change the result."""

    def test_characterize_jobs2_bit_identical_to_serial(self, tmp_path, monkeypatch):
        situations = [situation_by_index(1)]
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "serial"))
        serial = characterize(situations, TINY_FAST, use_cache=True, jobs=1)
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "pool"))
        pooled = characterize(situations, TINY_FAST, use_cache=True, jobs=2)
        assert pooled == serial

    def test_prescreen_jobs2_matches_serial(self):
        situation = situation_by_index(1)
        serial = prescreen_isp(situation, TINY_FAST, jobs=1)
        pooled = prescreen_isp(situation, TINY_FAST, jobs=2)
        assert pooled == serial


class TestFailureCollection:
    def test_all_failed_raises(self):
        situation = situation_by_index(1)
        failures = [TaskFailure(index=0, item=None, error="boom")]
        with pytest.raises(RuntimeError, match="every knob evaluation failed"):
            _collect_outcomes(failures, situation)

    def test_partial_failure_keeps_survivors(self):
        situation = situation_by_index(1)
        survivor = object()
        kept = _collect_outcomes(
            [TaskFailure(index=0, item=None, error="boom"), survivor], situation
        )
        assert kept == [survivor]
