"""Tests for planar geometry and the track substrate."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.situation import situation_by_index
from repro.sim.geometry import Pose2D, rotation_matrix, wrap_angle
from repro.sim.track import SectorSpec, Track, TrackSegment
from repro.sim.world import (
    DEFAULT_TURN_RADIUS,
    fig7_sector_situations,
    fig7_track,
    layout_curvature,
    static_situation_track,
)

SIT = situation_by_index(1)


class TestWrapAngle:
    def test_identity_in_range(self):
        assert wrap_angle(0.5) == pytest.approx(0.5)

    def test_wraps_large_positive(self):
        assert wrap_angle(3 * np.pi) == pytest.approx(np.pi)

    def test_wraps_large_negative(self):
        assert wrap_angle(-3 * np.pi) == pytest.approx(np.pi)

    @given(st.floats(min_value=-50.0, max_value=50.0))
    @settings(max_examples=100, deadline=None)
    def test_result_in_interval(self, angle):
        wrapped = wrap_angle(angle)
        assert -np.pi < wrapped <= np.pi

    @given(st.floats(min_value=-20.0, max_value=20.0))
    @settings(max_examples=60, deadline=None)
    def test_wrap_preserves_direction(self, angle):
        wrapped = wrap_angle(angle)
        assert np.cos(wrapped) == pytest.approx(np.cos(angle), abs=1e-9)
        assert np.sin(wrapped) == pytest.approx(np.sin(angle), abs=1e-9)

    def test_vectorized(self):
        out = wrap_angle(np.array([0.0, 2 * np.pi, -2 * np.pi]))
        np.testing.assert_allclose(out, [0.0, 0.0, 0.0], atol=1e-12)


class TestPose2D:
    def test_forward_left_orthogonal(self):
        pose = Pose2D(1.0, 2.0, 0.7)
        assert pose.forward() @ pose.left() == pytest.approx(0.0, abs=1e-12)

    def test_transform_round_trip(self):
        pose = Pose2D(3.0, -1.0, 1.2)
        pts = np.array([[1.0, 2.0], [-0.5, 0.25]])
        back = pose.transform_to_local(pose.transform_to_world(pts))
        np.testing.assert_allclose(back, pts, atol=1e-12)

    def test_advanced_moves_forward(self):
        pose = Pose2D(0.0, 0.0, 0.0).advanced(2.0, 1.0)
        assert (pose.x, pose.y) == pytest.approx((2.0, 1.0))

    def test_rotation_matrix_orthonormal(self):
        rot = rotation_matrix(0.3)
        np.testing.assert_allclose(rot @ rot.T, np.eye(2), atol=1e-12)


class TestTrackSegment:
    def test_straight_locate(self):
        seg = TrackSegment(Pose2D(0, 0, 0), 100.0, 0.0, SIT, 0.0)
        s, d = seg.locate(np.array([[10.0, 2.0]]))
        assert s[0] == pytest.approx(10.0)
        assert d[0] == pytest.approx(2.0)

    def test_arc_locate_on_centerline(self):
        seg = TrackSegment(Pose2D(0, 0, 0), 50.0, 1.0 / 40.0, SIT, 0.0)
        pose = seg.pose_at(30.0)
        s, d = seg.locate(pose.position()[None])
        assert s[0] == pytest.approx(30.0, abs=1e-9)
        assert d[0] == pytest.approx(0.0, abs=1e-9)

    def test_arc_positive_curvature_turns_left(self):
        seg = TrackSegment(Pose2D(0, 0, 0), 50.0, 1.0 / 40.0, SIT, 0.0)
        end = seg.end_pose()
        assert end.heading > 0  # heading increased = left turn
        assert end.y > 0

    def test_arc_lateral_sign(self):
        # A point left of the travel direction has positive d.
        seg = TrackSegment(Pose2D(0, 0, 0), 50.0, -1.0 / 60.0, SIT, 0.0)
        pose = seg.pose_at(20.0)
        left_point = pose.position() + 1.0 * pose.left()
        _, d = seg.locate(left_point[None])
        assert d[0] == pytest.approx(1.0, abs=1e-9)

    def test_end_pose_continuity(self):
        seg = TrackSegment(Pose2D(1, 2, 0.3), 80.0, 1 / 70.0, SIT, 0.0)
        end_a = seg.pose_at(80.0)
        end_b = seg.end_pose()
        assert end_a.as_tuple() == pytest.approx(end_b.as_tuple())

    def test_rejects_nonpositive_length(self):
        with pytest.raises(ValueError):
            TrackSegment(Pose2D(0, 0, 0), 0.0, 0.0, SIT, 0.0)

    @given(
        st.floats(min_value=-1 / 30.0, max_value=1 / 30.0),
        st.floats(min_value=1.0, max_value=70.0),
        st.floats(min_value=-2.0, max_value=2.0),
    )
    @settings(max_examples=60, deadline=None)
    def test_locate_inverts_pose_at(self, curvature, s_local, d):
        seg = TrackSegment(Pose2D(0, 0, 0.2), 80.0, curvature, SIT, 0.0)
        pose = seg.pose_at(s_local)
        point = pose.position() + d * pose.left()
        s_found, d_found = seg.locate(point[None])
        assert s_found[0] == pytest.approx(s_local, abs=1e-6)
        assert d_found[0] == pytest.approx(d, abs=1e-6)


class TestTrack:
    def test_from_sections_chains_lengths(self):
        track = Track.from_sections(
            [SectorSpec(50.0, 0.0, SIT), SectorSpec(30.0, 1 / 60.0, SIT)]
        )
        assert track.length == pytest.approx(80.0)

    def test_segments_are_continuous(self, dynamic_track):
        for first, second in zip(dynamic_track.segments, dynamic_track.segments[1:]):
            end = first.end_pose()
            start = second.start
            assert end.as_tuple() == pytest.approx(start.as_tuple(), abs=1e-9)

    def test_curvature_at_vectorized(self, dynamic_track):
        s = np.array([10.0, 150.0])
        kappa = dynamic_track.curvature_at(s)
        assert kappa[0] == 0.0
        assert kappa[1] == pytest.approx(-1.0 / DEFAULT_TURN_RADIUS)

    def test_situation_at_sector_boundaries(self, dynamic_track):
        situations = fig7_sector_situations()
        for seg, expected in zip(dynamic_track.segments, situations):
            mid = (seg.s_start + seg.s_end) / 2
            assert dynamic_track.situation_at(mid) == expected

    def test_frenet_round_trip(self, dynamic_track):
        pose = dynamic_track.pose_at(321.0, 0.8)
        s, d = dynamic_track.frenet(pose.x, pose.y, s_hint=320.0)
        assert s == pytest.approx(321.0, abs=1e-6)
        assert d == pytest.approx(0.8, abs=1e-6)

    def test_locate_points_marks_window(self, dynamic_track):
        pose = dynamic_track.pose_at(50.0)
        pts = np.array([pose.position(), [1e6, 1e6]])
        s, d, valid = dynamic_track.locate_points(pts, (0.0, 120.0))
        assert valid[0]
        assert s[0] == pytest.approx(50.0, abs=1e-6)

    def test_pose_at_lateral_offset(self, dynamic_track):
        center = dynamic_track.pose_at(40.0)
        left = dynamic_track.pose_at(40.0, 1.5)
        assert np.hypot(left.x - center.x, left.y - center.y) == pytest.approx(1.5)

    def test_empty_track_rejected(self):
        with pytest.raises(ValueError):
            Track([])


class TestWorld:
    def test_fig7_has_nine_sectors(self, dynamic_track):
        assert len(dynamic_track.segments) == 9

    def test_fig7_scene_transition_night_to_dark(self, dynamic_track):
        scenes = [seg.situation.scene.value for seg in dynamic_track.segments]
        assert scenes[-2:] == ["night", "dark"]

    def test_layout_curvature_signs(self):
        from repro.core.situation import RoadLayout

        assert layout_curvature(RoadLayout.STRAIGHT) == 0.0
        assert layout_curvature(RoadLayout.LEFT) > 0
        assert layout_curvature(RoadLayout.RIGHT) < 0

    def test_static_track_caps_arc_length(self):
        situation = situation_by_index(8)  # right turn
        track = static_situation_track(situation, length=1000.0, lead_in=35.0)
        assert track.length <= 35.0 + 0.75 * np.pi * DEFAULT_TURN_RADIUS + 1e-9

    def test_turn_track_has_straight_lead_in(self):
        situation = situation_by_index(8)
        track = static_situation_track(situation, lead_in=35.0)
        assert track.segments[0].curvature == 0.0
        from repro.core.situation import RoadLayout

        assert track.segments[0].situation.layout is RoadLayout.STRAIGHT
        assert track.segments[0].situation.scene == situation.scene
        assert track.segments[1].curvature != 0.0

    def test_static_track_straight_keeps_length(self):
        track = static_situation_track(SIT, length=500.0)
        assert track.length == pytest.approx(500.0)


class TestFrenetBatch:
    def _mixed_track(self):
        return Track.from_sections(
            [
                SectorSpec(30.0, 0.0, SIT),
                SectorSpec(25.0, 0.02, SIT),
                SectorSpec(20.0, -0.03, SIT),
                SectorSpec(30.0, 0.0, SIT),
                SectorSpec(15.0, 0.01, SIT),
            ]
        )

    def test_bitwise_matches_scalar_frenet(self):
        """Every stacked projection equals frenet() on that point alone."""
        track = self._mixed_track()
        rng = np.random.default_rng(9)
        n = 400
        ss = rng.uniform(0.0, track.length, n)
        xs = np.empty(n)
        ys = np.empty(n)
        for i, s in enumerate(ss):
            pose = track.pose_at(s, rng.normal() * 1.5)
            xs[i], ys[i] = pose.x, pose.y
        hints = np.clip(ss + rng.normal(0.0, 2.0, n), 0.0, track.length)
        bs, bd = track.frenet_batch(xs, ys, hints)
        for i in range(n):
            s_ref, d_ref = track.frenet(xs[i], ys[i], s_hint=hints[i])
            assert s_ref == bs[i]
            assert d_ref == bd[i]

    def test_single_segment_track(self):
        track = Track.from_sections([SectorSpec(50.0, 0.0, SIT)])
        xs = np.array([5.0, 20.0, 49.0])
        ys = np.array([0.5, -1.0, 0.0])
        hints = np.array([5.0, 20.0, 49.0])
        bs, bd = track.frenet_batch(xs, ys, hints)
        for i in range(3):
            s_ref, d_ref = track.frenet(xs[i], ys[i], s_hint=hints[i])
            assert s_ref == bs[i]
            assert d_ref == bd[i]

    def test_extrapolation_beyond_track_ends(self):
        """Points off both track ends project like the scalar path."""
        track = self._mixed_track()
        xs = np.array([-3.0, 0.0])
        ys = np.array([0.2, 0.0])
        hints = np.array([0.0, track.length])
        end = track.pose_at(track.length).position() + np.array([1.0, 0.0])
        xs[1], ys[1] = end[0], end[1]
        bs, bd = track.frenet_batch(xs, ys, hints)
        for i in range(2):
            s_ref, d_ref = track.frenet(xs[i], ys[i], s_hint=hints[i])
            assert s_ref == bs[i]
            assert d_ref == bd[i]
