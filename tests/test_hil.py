"""Integration tests for the closed-loop HiL engine.

These use a reduced camera (192x96) and short tracks; behaviour at the
default fidelity is exercised by the benchmarks.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.situation import Scene, situation_by_index
from repro.hil.engine import HilConfig, HilEngine
from repro.hil.record import HilResult
from repro.sim.geometry import Pose2D
from repro.sim.track import SectorSpec, Track
from repro.sim.world import fig7_track, static_situation_track

FAST = dict(frame_width=192, frame_height=96)


def _run(case: str, sit_index: int = 1, length: float = 80.0, **kwargs):
    track = static_situation_track(situation_by_index(sit_index), length=length)
    config = HilConfig(seed=7, **FAST, **kwargs)
    return HilEngine(track, case, config=config).run(), track


class TestHilEngine:
    def test_straight_day_case1_regulates(self):
        result, _ = _run("case1")
        assert result.completed and not result.crashed
        # Starts 0.2 m off-center and must end close to the centerline.
        assert abs(result.lateral_offset[-1]) < 0.15
        assert result.mae(skip_time_s=2.0) < 0.10

    def test_cycles_recorded_at_case_period(self):
        result, _ = _run("case1")
        times = [c.time_ms for c in result.cycles]
        diffs = np.diff(times)
        assert np.all(diffs == 25.0)  # case 1: h = 25 ms

    def test_case3_runs_slower_cycles(self):
        result, _ = _run("case3")
        diffs = np.diff([c.time_ms for c in result.cycles])
        assert np.all(diffs == 40.0)  # case 3: h = 40 ms

    def test_case2_invokes_only_road(self):
        result, _ = _run("case2")
        invoked = {c.invoked for c in result.cycles}
        assert invoked == {("road",)}

    def test_variable_scheme_one_classifier_per_cycle(self):
        result, _ = _run("variable", length=120.0)
        assert all(len(c.invoked) == 1 for c in result.cycles)
        names = {c.invoked[0] for c in result.cycles}
        assert names == {"road", "lane", "scene"}

    def test_case4_switches_isp_per_scene(self):
        """On the dark situation, case 4 must settle on the S2 knob."""
        result, _ = _run("case4", sit_index=7)
        assert result.cycles[-1].active_isp == "S2"

    def test_case1_never_reconfigures(self):
        result, _ = _run("case1", sit_index=8)
        assert {c.active_isp for c in result.cycles} == {"S0"}
        assert {c.roi for c in result.cycles} == {"ROI 1"}

    def test_speed_knob_on_turn(self):
        result, _ = _run("case2", sit_index=8, length=120.0)
        assert result.cycles[-1].speed_kmph == 30.0
        # The vehicle must actually slow down towards the knob value.
        assert result.speed[-1] == pytest.approx(30.0 / 3.6, abs=0.3)

    def test_crash_detection_cuts_run(self):
        """Starting outside the lane with an outward heading crashes."""
        track = static_situation_track(situation_by_index(1), length=120.0)
        config = HilConfig(
            seed=7, initial_offset_m=1.9, initial_heading_err=0.15, **FAST
        )
        result = HilEngine(track, "case1", config=config).run()
        assert result.crashed
        assert result.crash_s is not None

    def test_result_arrays_consistent(self):
        result, _ = _run("case1")
        n = result.time_s.size
        for arr in (result.s, result.lateral_offset, result.y_l_true, result.steering):
            assert arr.size == n
        assert np.all(np.diff(result.s) > -1e-6)  # monotone progress

    def test_seed_reproducibility(self):
        a, _ = _run("case1")
        b, _ = _run("case1")
        np.testing.assert_array_equal(a.y_l_true, b.y_l_true)

    def test_max_time_cutoff(self):
        track = static_situation_track(situation_by_index(1), length=500.0)
        config = HilConfig(seed=7, max_sim_time_s=1.0, **FAST)
        result = HilEngine(track, "case1", config=config).run()
        assert not result.completed
        assert result.duration_s() <= 1.0 + 1e-9

    def test_profiling_does_not_change_the_trace(self):
        """Acceptance: bit-identical traces with profiling on and off."""
        base, _ = _run("case4", length=60.0)
        profiled, _ = _run("case4", length=60.0, profile=True)
        assert base.profile is None
        assert profiled.profile is not None
        for attr in ("time_s", "s", "lateral_offset", "y_l_true", "steering",
                     "speed"):
            np.testing.assert_array_equal(
                getattr(base, attr), getattr(profiled, attr)
            )
        assert [c.__dict__ for c in base.cycles] == [
            c.__dict__ for c in profiled.cycles
        ]

    def test_profile_stats_cover_every_cycle(self):
        result, _ = _run("case4", length=60.0, profile=True)
        n = len(result.cycles)
        for label in ("hil.render", "hil.isp", "hil.pr", "hil.control"):
            assert result.profile[label].count == n
        # ISP sub-stages are profiled too (nested spans).
        assert any(label.startswith("isp.") for label in result.profile)
        assert "hil.isp" in result.profile_table()
        # Off by default: the disabled path reports nothing.
        assert _run("case4", length=60.0)[0].profile_table() == ""


class TestIspApplyLag:
    """End-to-end regression for the ISP apply-lag phase contract."""

    @staticmethod
    def _day_to_dark_track() -> Track:
        day = situation_by_index(1)    # straight, white continuous, day
        dark = situation_by_index(7)   # straight, white continuous, dark
        return Track.from_sections(
            [SectorSpec(60.0, 0.0, day), SectorSpec(60.0, 0.0, dark)],
            Pose2D(0.0, 0.0, 0.0),
        )

    @pytest.mark.parametrize("lag", [0, 1, 2])
    def test_switch_lands_exactly_lag_cycles_after_decision(self, lag):
        track = self._day_to_dark_track()
        config = HilConfig(seed=7, isp_apply_lag=lag, **FAST)
        result = HilEngine(track, "case4", config=config).run()
        cycles = result.cycles
        # The oracle (accuracy 1.0) identifies the dark scene on the
        # first cycle sampled past the sector boundary: that cycle's
        # decide() is where the ISP switch is decided.
        decided = next(
            i
            for i, c in enumerate(cycles)
            if track.situation_at(c.s).scene is Scene.DARK and "scene" in c.invoked
        )
        applied = next(i for i, c in enumerate(cycles) if c.active_isp == "S2")
        assert cycles[decided - 1].active_isp != "S2"
        assert applied == decided + lag


class TestSectorQoC:
    def test_sector_aggregation_on_dynamic_track(self):
        track = fig7_track()
        config = HilConfig(seed=7, max_sim_time_s=12.0, **FAST)
        result = HilEngine(track, "case3", config=config).run()
        sectors = result.sector_qoc(track)
        assert len(sectors) == 9
        assert sectors[0].reached
        assert sectors[0].mae is not None
        # The 12 s budget cannot finish the 890 m track.
        assert not sectors[-1].reached

    def test_crash_marks_sector_failed(self):
        track = fig7_track()
        config = HilConfig(
            seed=7, initial_offset_m=1.9, initial_heading_err=0.15, **FAST
        )
        result = HilEngine(track, "case1", config=config).run()
        sectors = result.sector_qoc(track)
        assert result.crashed
        assert sectors[0].failed

    def test_mae_skip_window(self):
        result, _ = _run("case1")
        assert result.mae(skip_time_s=2.0) <= result.mae(skip_time_s=0.0) + 1e-9


class TestHilResultHelpers:
    def test_empty_skip_falls_back(self):
        result = HilResult(
            time_s=np.array([0.1, 0.2]),
            s=np.array([1.0, 2.0]),
            lateral_offset=np.array([0.1, 0.2]),
            y_l_true=np.array([0.1, -0.1]),
            steering=np.zeros(2),
            speed=np.zeros(2),
        )
        assert result.mae(skip_time_s=10.0) == pytest.approx(0.1)

    def test_max_offset(self):
        result = HilResult(
            time_s=np.array([0.1]),
            s=np.array([1.0]),
            lateral_offset=np.array([-0.7]),
            y_l_true=np.array([0.0]),
            steering=np.zeros(1),
            speed=np.zeros(1),
        )
        assert result.max_offset() == pytest.approx(0.7)

    @staticmethod
    def _empty_result() -> HilResult:
        return HilResult(
            time_s=np.array([]),
            s=np.array([]),
            lateral_offset=np.array([]),
            y_l_true=np.array([]),
            steering=np.array([]),
            speed=np.array([]),
        )

    def test_empty_trace_max_offset_is_zero(self):
        assert self._empty_result().max_offset() == 0.0

    def test_empty_trace_mae_raises(self):
        with pytest.raises(ValueError, match="empty trace"):
            self._empty_result().mae()

    def test_empty_trace_duration_is_zero(self):
        assert self._empty_result().duration_s() == 0.0

    def test_sector_qoc_matches_qoc_helper(self):
        """Per-sector MAE must agree with metrics.qoc.mae on the slice."""
        from repro.metrics.qoc import mae as qoc_mae

        track = static_situation_track(situation_by_index(1), length=80.0)
        config = HilConfig(seed=7, **FAST)
        result = HilEngine(track, "case1", config=config).run()
        sector = result.sector_qoc(track)[0]
        sel = (result.s >= sector.s_start) & (result.s < sector.s_end)
        assert sector.mae == pytest.approx(qoc_mae(result.y_l_true[sel]))


class TestTraceSerialization:
    def test_save_load_round_trip(self, tmp_path):
        result, _ = _run("case2", length=60.0)
        path = tmp_path / "trace.npz"
        result.save(str(path))
        loaded = HilResult.load(str(path))
        np.testing.assert_array_equal(loaded.y_l_true, result.y_l_true)
        np.testing.assert_array_equal(loaded.s, result.s)
        assert loaded.crashed == result.crashed
        assert loaded.completed == result.completed
        assert len(loaded.cycles) == len(result.cycles)
        assert loaded.cycles[0].invoked == result.cycles[0].invoked
        assert loaded.mae(2.0) == pytest.approx(result.mae(2.0))

    def test_save_appends_npz_suffix_and_reports_it(self, tmp_path):
        """np.savez appends .npz to suffix-less paths; save() must
        return the path of the file actually written."""
        result, _ = _run("case2", length=60.0)
        returned = result.save(str(tmp_path / "trace"))
        assert returned == tmp_path / "trace.npz"
        assert returned.exists()
        assert not (tmp_path / "trace").exists()
        loaded = HilResult.load(str(returned))
        np.testing.assert_array_equal(loaded.s, result.s)

    def test_save_is_atomic_under_a_mid_write_crash(self, tmp_path, monkeypatch):
        """A crash during serialization must leave no file at the
        target path and no temp debris — and must not clobber a
        previous good save."""
        import repro.hil.record as record_module

        result, _ = _run("case2", length=60.0)
        target = tmp_path / "trace.npz"
        result.save(str(target))
        good_bytes = target.read_bytes()

        def exploding_savez(handle, **payload):
            handle.write(b"partial garbage")
            raise RuntimeError("disk full")

        monkeypatch.setattr(record_module.np, "savez", exploding_savez)
        with pytest.raises(RuntimeError, match="disk full"):
            result.save(str(target))
        assert target.read_bytes() == good_bytes
        assert list(tmp_path.iterdir()) == [target]

    def test_round_trip_pins_every_field(self, tmp_path):
        """Exact round-trip of crash_s=None, per-cycle faults, and
        degraded=True — the fields a crashy mitigated run exercises."""
        from repro.faults import resolve_fault_plan
        from repro.core.reconfiguration import MitigationConfig

        result, _ = _run(
            "case3",
            length=60.0,
            fault_plan=resolve_fault_plan("classifier-outage"),
            mitigation=MitigationConfig(),
        )
        assert result.crash_s is None
        assert any(c.faults for c in result.cycles)
        assert any(c.degraded for c in result.cycles)
        loaded = HilResult.load(str(result.save(str(tmp_path / "t.npz"))))

        for name in ("time_s", "s", "lateral_offset", "y_l_true",
                     "steering", "speed"):
            np.testing.assert_array_equal(
                getattr(loaded, name), getattr(result, name)
            )
        assert loaded.crashed == result.crashed
        assert loaded.crash_s is None
        assert loaded.completed == result.completed
        assert loaded.cycles == result.cycles
        assert loaded.manifest == result.manifest
        # profile is ephemeral observability data, never persisted.
        assert loaded.profile is None

    def test_save_persists_the_run_manifest(self, tmp_path):
        result, _ = _run("case2", length=60.0)
        assert result.manifest is not None
        assert result.manifest["package_version"]
        assert "camera-noise" in result.manifest["rng_streams"]
        loaded = HilResult.load(str(result.save(str(tmp_path / "m.npz"))))
        assert loaded.manifest == result.manifest
