"""Tests for the control substrate: model, discretization, LQR, CQLF."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from scipy.linalg import expm

from repro.control.controller import LaneKeepingController
from repro.control.discretize import discretize_with_delay
from repro.control.gains import GainScheduler
from repro.control.lqg import KalmanLaneEstimator, design_kalman_gain
from repro.control.lqr import LqrWeights, design_lqr
from repro.control.model import lateral_model, understeer_feedforward
from repro.control.switching import cqlf_margin, find_cqlf, verify_cqlf
from repro.perception.pipeline import PerceptionResult
from repro.sim.vehicle import VehicleParams

PARAMS = VehicleParams()


def _measurement(y_l: float, eps: float = 0.0, valid: bool = True) -> PerceptionResult:
    return PerceptionResult(
        y_l=y_l, epsilon_l=eps, curvature=0.0, valid=valid, lines_used=2, n_pixels=100
    )


class TestLateralModel:
    def test_dimensions(self):
        model = lateral_model(PARAMS, 13.9)
        assert model.a.shape == (5, 5)
        assert model.b.shape == (5, 1)
        assert model.e.shape == (5, 1)

    def test_lateral_dynamics_stable_alone(self):
        """The v_y/r subsystem of a passive car is stable."""
        model = lateral_model(PARAMS, 13.9)
        eigvals = np.linalg.eigvals(model.a[:2, :2])
        assert np.all(eigvals.real < 0)

    def test_rejects_nonpositive_speed(self):
        with pytest.raises(ValueError):
            lateral_model(PARAMS, 0.0)

    def test_y_l_integrates_heading(self):
        model = lateral_model(PARAMS, 10.0, lookahead=5.5)
        # eps_L enters y_L' with gain v.
        assert model.a[2, 3] == pytest.approx(10.0)

    def test_understeer_feedforward_positive(self):
        assert understeer_feedforward(PARAMS, 13.9) > PARAMS.wheelbase


class TestDiscretization:
    def test_ad_matches_expm(self):
        model = lateral_model(PARAMS, 13.9)
        disc = discretize_with_delay(model, 0.025, 0.020)
        np.testing.assert_allclose(disc.a_d, expm(model.a * 0.025), atol=1e-9)

    def test_b0_plus_b1_is_full_zoh(self):
        model = lateral_model(PARAMS, 13.9)
        disc = discretize_with_delay(model, 0.025, 0.015)
        full = discretize_with_delay(model, 0.025, 0.0)
        np.testing.assert_allclose(disc.b_0 + disc.b_1, full.b_0, atol=1e-9)

    def test_zero_delay_has_no_b1(self):
        model = lateral_model(PARAMS, 13.9)
        disc = discretize_with_delay(model, 0.025, 0.0)
        np.testing.assert_allclose(disc.b_1, 0.0, atol=1e-12)

    def test_full_delay_has_no_b0(self):
        model = lateral_model(PARAMS, 13.9)
        disc = discretize_with_delay(model, 0.025, 0.025)
        np.testing.assert_allclose(disc.b_0, 0.0, atol=1e-12)

    def test_augmented_shapes(self):
        model = lateral_model(PARAMS, 13.9)
        disc = discretize_with_delay(model, 0.03, 0.02)
        assert disc.a_aug.shape == (6, 6)
        assert disc.b_aug.shape == (6, 1)

    def test_delay_beyond_period_rejected(self):
        model = lateral_model(PARAMS, 13.9)
        with pytest.raises(ValueError):
            discretize_with_delay(model, 0.02, 0.03)

    @given(
        st.floats(min_value=8.0, max_value=14.0),
        st.floats(min_value=0.015, max_value=0.045),
        st.floats(min_value=0.0, max_value=1.0),
    )
    @settings(max_examples=30, deadline=None)
    def test_discretization_always_well_posed(self, speed, period, delay_frac):
        model = lateral_model(PARAMS, speed)
        disc = discretize_with_delay(model, period, delay_frac * period)
        assert np.all(np.isfinite(disc.a_aug))


class TestLqr:
    @pytest.mark.parametrize(
        "speed_kmph,h_ms,tau_ms",
        [(50, 25, 24.6), (50, 35, 30.1), (50, 40, 35.6), (30, 25, 23.1), (30, 45, 40.7)],
    )
    def test_paper_design_points_are_stable(self, speed_kmph, h_ms, tau_ms):
        gains = design_lqr(PARAMS, speed_kmph / 3.6, h_ms / 1000, tau_ms / 1000)
        assert gains.closed_loop_radius < 1.0

    def test_closed_loop_regulates_offset(self):
        """Simulated augmented loop drives y_L to zero."""
        gains = design_lqr(PARAMS, 50 / 3.6, 0.025, 0.0246)
        a_cl = gains.a_closed
        z = np.zeros(6)
        z[2] = 0.5  # initial y_L
        for _ in range(400):
            z = a_cl @ z
        assert abs(z[2]) < 1e-3

    def test_longer_delay_weakens_regulation(self):
        """At a fixed period, a longer sensor-to-actuation delay leaves
        a slower (larger-radius) achievable closed loop."""
        short = design_lqr(PARAMS, 50 / 3.6, 0.025, 0.005)
        long = design_lqr(PARAMS, 50 / 3.6, 0.025, 0.0246)
        assert long.closed_loop_radius > short.closed_loop_radius

    def test_sampling_period_settle_times_same_scale(self):
        """Deterministic settle times are on the same timescale across
        the paper's (h, tau) design points — the QoC gap between them
        comes from disturbance/noise response, not nominal regulation."""
        fast = design_lqr(PARAMS, 50 / 3.6, 0.025, 0.0246)
        slow = design_lqr(PARAMS, 50 / 3.6, 0.045, 0.0407)

        def settle_time(gains):
            z = np.zeros(6)
            z[2] = 0.5
            for step in range(2000):
                z = gains.a_closed @ z
                if abs(z[2]) < 0.01:
                    return step * gains.period
            return np.inf

        assert settle_time(slow) == pytest.approx(settle_time(fast), abs=0.15)

    def test_weights_shapes(self):
        w = LqrWeights()
        assert w.q_matrix().shape == (6, 6)
        assert w.r_matrix().shape == (1, 1)


class TestGainScheduler:
    def test_caching(self):
        sched = GainScheduler(PARAMS)
        a = sched.gains_for(13.9, 0.025, 0.0246)
        b = sched.gains_for(13.9, 0.025, 0.0246)
        assert a is b
        assert len(sched.cached_designs()) == 1

    def test_distinct_tuples_distinct_designs(self):
        sched = GainScheduler(PARAMS)
        a = sched.gains_for(13.9, 0.025, 0.0246)
        b = sched.gains_for(8.33, 0.025, 0.0231)
        assert a is not b


class TestController:
    def _gains(self):
        return design_lqr(PARAMS, 50 / 3.6, 0.025, 0.0246)

    def test_steers_against_offset(self):
        controller = LaneKeepingController(self._gains())
        u = controller.step(_measurement(0.5), 0.0, 0.0, 0.0)
        assert u < 0  # left of center -> steer right

    def test_saturation(self):
        controller = LaneKeepingController(
            self._gains(), steer_limit=0.1, jump_gate_m=100.0
        )
        u = controller.step(_measurement(5.0), 0.0, 0.0, 0.0)
        assert u == pytest.approx(-0.1)

    def test_invalid_measurement_holds_last(self):
        controller = LaneKeepingController(self._gains())
        controller.step(_measurement(0.5), 0.0, 0.0, 0.0)
        held = controller.state.held_y_l
        controller.step(_measurement(0.0, valid=False), 0.0, 0.0, 0.0)
        assert controller.state.held_y_l == held
        assert controller.state.missed_frames == 1

    def test_jump_gate_rejects_implausible_jump(self):
        controller = LaneKeepingController(self._gains(), jump_gate_m=0.75)
        controller.step(_measurement(0.0), 0.0, 0.0, 0.0)
        controller.step(_measurement(2.5), 0.0, 0.0, 0.0)
        assert controller.state.held_y_l == pytest.approx(0.0)

    def test_jump_gate_reopens_after_misses(self):
        controller = LaneKeepingController(
            self._gains(), jump_gate_m=0.75, gate_max_misses=2
        )
        controller.step(_measurement(0.0), 0.0, 0.0, 0.0)
        for _ in range(3):
            controller.step(_measurement(2.5), 0.0, 0.0, 0.0)
        assert controller.state.held_y_l == pytest.approx(2.5)

    def test_feedforward_adds_curvature_term(self):
        gains = self._gains()
        with_ff = LaneKeepingController(gains, use_feedforward=True)
        without_ff = LaneKeepingController(gains, use_feedforward=False)
        meas = PerceptionResult(
            y_l=0.0, epsilon_l=0.0, curvature=1 / 60.0, valid=True,
            lines_used=2, n_pixels=100,
        )
        assert with_ff.step(meas, 0, 0, 0) > without_ff.step(meas, 0, 0, 0)

    def test_set_gains_keeps_memory(self):
        controller = LaneKeepingController(self._gains())
        controller.step(_measurement(0.4), 0.0, 0.0, 0.0)
        held = controller.state.held_y_l
        controller.set_gains(design_lqr(PARAMS, 30 / 3.6, 0.045, 0.0407))
        assert controller.state.held_y_l == held


class TestCqlf:
    def _mode_set(self):
        sched = GainScheduler(PARAMS)
        tuples = [
            (50 / 3.6, 0.025, 0.0246),
            (50 / 3.6, 0.040, 0.0356),
            (30 / 3.6, 0.025, 0.0231),
            (30 / 3.6, 0.045, 0.0407),
        ]
        return [sched.gains_for(*t).a_closed for t in tuples]

    def test_paper_mode_set_admits_cqlf(self):
        modes = self._mode_set()
        p = find_cqlf(modes)
        assert p is not None
        assert verify_cqlf(p, modes)

    def test_margin_negative_for_valid_cqlf(self):
        modes = self._mode_set()
        p = find_cqlf(modes)
        assert cqlf_margin(p, modes) < 0

    def test_unstable_mode_has_no_cqlf(self):
        unstable = [np.array([[1.05, 0.0], [0.0, 0.5]])]
        assert find_cqlf(unstable, max_iter=200) is None

    def test_verify_rejects_non_positive_p(self):
        modes = [np.array([[0.5]])]
        assert not verify_cqlf(np.array([[-1.0]]), modes)

    def test_verify_rejects_asymmetric(self):
        modes = [np.eye(2) * 0.5]
        assert not verify_cqlf(np.array([[1.0, 0.5], [0.0, 1.0]]), modes)

    def test_single_stable_mode(self):
        mode = np.array([[0.9, 0.1], [0.0, 0.8]])
        p = find_cqlf([mode])
        assert p is not None and verify_cqlf(p, [mode])

    def test_empty_mode_set_rejected(self):
        with pytest.raises(ValueError):
            find_cqlf([])


class TestLqg:
    def test_kalman_gain_shape(self):
        gains = design_lqr(PARAMS, 50 / 3.6, 0.025, 0.0246)
        k = design_kalman_gain(gains)
        assert k.shape == (6, 2)

    def test_estimator_tracks_measurement(self):
        gains = design_lqr(PARAMS, 50 / 3.6, 0.025, 0.0246)
        est = KalmanLaneEstimator(gains, design_kalman_gain(gains))
        for _ in range(60):
            est.predict(0.0)
            est.update(_measurement(0.4, eps=0.0))
        assert est.x_hat[2] == pytest.approx(0.4, abs=0.1)

    def test_estimator_skips_invalid_updates(self):
        gains = design_lqr(PARAMS, 50 / 3.6, 0.025, 0.0246)
        est = KalmanLaneEstimator(gains, design_kalman_gain(gains))
        est.update(_measurement(1.0))
        state = est.x_hat.copy()
        est.update(_measurement(5.0, valid=False))
        np.testing.assert_array_equal(est.x_hat, state)

    def test_filtered_measurement_is_valid(self):
        gains = design_lqr(PARAMS, 50 / 3.6, 0.025, 0.0246)
        est = KalmanLaneEstimator(gains, design_kalman_gain(gains))
        assert est.filtered_measurement().valid
