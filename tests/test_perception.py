"""Tests for the perception pipeline: BEV, threshold, windows, fit."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.situation import situation_by_index
from repro.isp.pipeline import IspPipeline
from repro.perception.bev import BevGrid
from repro.perception.lane_fit import LaneFit, fit_lane_lines, fit_line_poly
from repro.perception.pipeline import PerceptionPipeline, PerceptionResult
from repro.perception.roi import ROI_PRESETS, RoiPreset, roi_preset
from repro.perception.sliding_window import (
    LanePixels,
    SlidingWindowParams,
    find_lane_pixels,
)
from repro.perception.threshold import ThresholdParams, dynamic_threshold
from repro.sim.geometry import Pose2D
from repro.sim.renderer import RoadSceneRenderer
from repro.sim.world import static_situation_track


class TestRoiPresets:
    def test_table2_names_present(self):
        assert set(ROI_PRESETS) == {f"ROI {i}" for i in range(1, 6)}

    def test_straight_preset_is_uncurved(self):
        assert roi_preset("ROI 1").curvature == 0.0

    def test_turn_presets_signs(self):
        assert roi_preset("ROI 2").curvature < 0  # right turn
        assert roi_preset("ROI 4").curvature > 0  # left turn

    def test_wide_variants_are_wider(self):
        assert roi_preset("ROI 3").half_width > roi_preset("ROI 2").half_width
        assert roi_preset("ROI 5").half_width > roi_preset("ROI 4").half_width

    def test_center_offset_quadratic(self):
        preset = roi_preset("ROI 4")
        x = np.array([10.0])
        assert preset.center_offset(x)[0] == pytest.approx(
            0.5 * preset.curvature * 100.0
        )

    def test_image_trapezoid_shape(self, small_camera):
        corners = roi_preset("ROI 1").image_trapezoid(small_camera)
        assert corners.shape == (4, 2)
        # Far corners project higher in the image (smaller v).
        assert corners[2, 1] < corners[0, 1]

    def test_unknown_name_raises(self):
        with pytest.raises(ValueError):
            roi_preset("ROI 9")

    def test_invalid_geometry_rejected(self):
        with pytest.raises(ValueError):
            RoiPreset("bad", 0.0, -1.0)


class TestBevGrid:
    def test_axes_cover_roi(self, small_camera):
        preset = roi_preset("ROI 1")
        grid = BevGrid(small_camera, preset)
        assert grid.x_axis[0] == pytest.approx(preset.x_near)
        assert grid.x_axis[-1] == pytest.approx(preset.x_far)
        assert grid.lat_axis[0] == pytest.approx(-preset.half_width)

    def test_warp_shapes(self, small_camera, day_renderer, day_track):
        grid = BevGrid(small_camera, roi_preset("ROI 1"), n_rows=32, n_cols=48)
        rgb = day_renderer.render_rgb(day_track.pose_at(30.0))
        bev = grid.warp(rgb)
        assert bev.shape == (32, 48, 3)
        gray = grid.warp(rgb[..., 0])
        assert gray.shape == (32, 48)

    def test_warp_rejects_wrong_size(self, small_camera):
        grid = BevGrid(small_camera, roi_preset("ROI 1"))
        with pytest.raises(ValueError):
            grid.warp(np.zeros((10, 10, 3), dtype=np.float32))

    def test_vehicle_lateral_includes_rectification(self, small_camera):
        preset = roi_preset("ROI 4")
        grid = BevGrid(small_camera, preset, n_rows=16, n_cols=16)
        x, y = grid.vehicle_lateral(np.array([15]), np.array([8]))
        expected = preset.center_offset(x) + grid.lat_axis[8]
        assert y[0] == pytest.approx(expected[0])

    def test_straight_marking_is_vertical_in_bev(self, small_camera):
        """With matching rectification the marking stays in one column."""
        track = static_situation_track(situation_by_index(1), length=200.0)
        renderer = RoadSceneRenderer(small_camera, track, seed=0)
        grid = BevGrid(small_camera, roi_preset("ROI 1"))
        rgb = renderer.render_rgb(track.pose_at(40.0, 0.0))
        bev = grid.warp(rgb)
        mask = dynamic_threshold(bev)
        rows, cols = np.nonzero(mask)
        left = cols[grid.lat_axis[cols] > 0.5]
        assert left.size > 10
        # Marking width + far-range anti-alias smear stays well under a
        # metre when the rectification matches the road.
        assert np.ptp(grid.lat_axis[left]) < 0.8

    def test_too_small_grid_rejected(self, small_camera):
        with pytest.raises(ValueError):
            BevGrid(small_camera, roi_preset("ROI 1"), n_rows=4, n_cols=4)


class TestDynamicThreshold:
    def _bev_with_line(self, col: int = 20, value=(0.9, 0.9, 0.9)):
        bev = np.full((48, 64, 3), 0.3, dtype=np.float32)
        bev[:, col : col + 2] = value
        return bev

    def test_detects_white_line(self):
        mask = dynamic_threshold(self._bev_with_line())
        assert mask[:, 20:22].mean() > 0.8
        assert mask[:, :18].mean() < 0.02

    def test_detects_yellow_line(self):
        mask = dynamic_threshold(self._bev_with_line(value=(0.85, 0.65, 0.1)))
        assert mask[:, 20:22].mean() > 0.8

    def test_rejects_green_vegetation(self):
        mask = dynamic_threshold(self._bev_with_line(value=(0.1, 0.5, 0.08)))
        assert mask.sum() == 0

    def test_dark_flat_frame_is_empty(self):
        bev = np.full((48, 64, 3), 0.02, dtype=np.float32)
        assert dynamic_threshold(bev).sum() == 0

    def test_bright_line_below_floor_is_rejected(self):
        bev = np.full((48, 64, 3), 0.01, dtype=np.float32)
        bev[:, 20:22] = 0.05  # relative outlier but absolutely dark
        assert dynamic_threshold(bev).sum() == 0

    def test_contiguity_filter_kills_salt_noise(self, rng):
        bev = np.full((48, 64, 3), 0.3, dtype=np.float32)
        # isolated bright single pixels
        for _ in range(30):
            r, c = rng.integers(0, 48), rng.integers(0, 64)
            bev[r, c] = 0.95
        mask = dynamic_threshold(bev, ThresholdParams(min_neighbours=3))
        assert mask.sum() <= 4

    def test_rejects_non_rgb(self):
        with pytest.raises(ValueError):
            dynamic_threshold(np.zeros((8, 8)))


class TestSlidingWindow:
    def _mask_with_lines(self, n_rows=96, n_cols=128, left=96, right=32):
        mask = np.zeros((n_rows, n_cols), dtype=bool)
        mask[:, left : left + 2] = True
        mask[:, right : right + 2] = True
        return mask

    def test_finds_both_lines(self):
        mask = self._mask_with_lines()
        res = 4.8 / 128  # ~ROI 1 resolution
        pixels = find_lane_pixels(mask, res)
        assert pixels.left_found and pixels.right_found
        assert pixels.n_left > 50 and pixels.n_right > 50

    def test_left_line_has_higher_columns(self):
        mask = self._mask_with_lines()
        pixels = find_lane_pixels(mask, 4.8 / 128)
        assert pixels.left_cols.mean() > pixels.right_cols.mean()

    def test_empty_mask_finds_nothing(self):
        pixels = find_lane_pixels(np.zeros((96, 128), dtype=bool), 4.8 / 128)
        assert not pixels.left_found and not pixels.right_found

    def test_single_line_is_assigned_by_position(self):
        mask = np.zeros((96, 128), dtype=bool)
        mask[:, 30:32] = True  # right side only
        pixels = find_lane_pixels(mask, 4.8 / 128)
        assert pixels.right_found and not pixels.left_found

    def test_weak_base_is_rejected(self):
        mask = np.zeros((96, 128), dtype=bool)
        mask[:3, 96] = True  # 3 pixels < min_base_strength
        pixels = find_lane_pixels(mask, 4.8 / 128)
        assert not pixels.left_found

    def test_windows_follow_drifting_line(self):
        """A line drifting several columns over the rows is captured."""
        mask = np.zeros((96, 128), dtype=bool)
        cols = (96 + np.linspace(0, 14, 96)).astype(int)
        for r, c in enumerate(cols):
            mask[r, c : c + 2] = True
        pixels = find_lane_pixels(mask, 4.8 / 128)
        assert pixels.n_left > 120

    def test_hint_overrides_expected_position(self):
        """With a base hint, an off-center line is still tracked."""
        mask = np.zeros((96, 128), dtype=bool)
        mask[40:60, 72:74] = True  # mid-range dash far from expected base
        res = 4.8 / 128
        no_hint = find_lane_pixels(mask, res)
        lat_hint = (72 - 63.5) * res
        hinted = find_lane_pixels(mask, res, base_hints=(lat_hint, None))
        assert hinted.n_left >= no_hint.n_left
        assert hinted.left_found

    def test_rejects_1d_mask(self):
        with pytest.raises(ValueError):
            find_lane_pixels(np.zeros(10, dtype=bool), 0.05)

    def test_double_lock_guard(self):
        """Both searches near one strong line: only one may claim it."""
        mask = np.zeros((96, 128), dtype=bool)
        mask[:, 63:65] = True  # single line in the middle
        pixels = find_lane_pixels(
            mask, 4.8 / 128, SlidingWindowParams(base_search_window=3.0)
        )
        assert pixels.left_found != pixels.right_found


class TestLaneFit:
    def test_quadratic_recovery(self):
        x = np.linspace(5, 20, 120)
        lat = 0.004 * x**2 - 0.02 * x + 1.6
        coef = fit_line_poly(x, lat)
        # The ridge shrinks the quadratic term a little; the fitted
        # curve must still match closely where it is evaluated.
        fitted = np.polyval(coef, 5.5)
        assert fitted == pytest.approx(0.004 * 5.5**2 - 0.02 * 5.5 + 1.6, abs=0.05)

    def test_too_few_pixels_rejected(self):
        assert fit_line_poly(np.arange(3.0), np.arange(3.0)) is None

    def test_short_span_falls_back_to_linear(self):
        x = np.linspace(8.0, 10.0, 30)
        lat = 0.5 * x + 0.1
        coef = fit_line_poly(x, lat)
        assert coef[0] == 0.0
        assert coef[1] == pytest.approx(0.5, abs=1e-6)

    def test_two_line_center(self):
        x_axis = np.linspace(5, 20, 96)
        lat_axis = np.linspace(-3, 3, 128)
        rows = np.tile(np.arange(96), 2)
        left_cols = np.full(96, np.argmin(np.abs(lat_axis - 1.6)))
        right_cols = np.full(96, np.argmin(np.abs(lat_axis + 1.6)))
        pixels = LanePixels(
            left_rows=np.arange(96),
            left_cols=left_cols,
            right_rows=np.arange(96),
            right_cols=right_cols,
            left_found=True,
            right_found=True,
        )
        fit = fit_lane_lines(pixels, x_axis, lat_axis)
        assert fit.valid and fit.lines_used == 2
        assert fit.center_lateral(10.0) == pytest.approx(0.0, abs=0.1)

    def _single_line_pixels(self, lat_axis):
        left_col = np.argmin(np.abs(lat_axis - 1.625))
        return LanePixels(
            left_rows=np.arange(96),
            left_cols=np.full(96, left_col),
            right_rows=np.empty(0, dtype=int),
            right_cols=np.empty(0, dtype=int),
            left_found=True,
            right_found=False,
        )

    def test_single_line_invalid_by_default(self):
        """Paper-faithful: losing one boundary is a perception failure."""
        x_axis = np.linspace(5, 20, 96)
        lat_axis = np.linspace(-3, 3, 128)
        fit = fit_lane_lines(
            self._single_line_pixels(lat_axis), x_axis, lat_axis, lane_width=3.25
        )
        assert fit.lines_used == 1
        assert not fit.valid

    def test_single_line_fallback_offsets_half_lane(self):
        x_axis = np.linspace(5, 20, 96)
        lat_axis = np.linspace(-3, 3, 128)
        fit = fit_lane_lines(
            self._single_line_pixels(lat_axis),
            x_axis,
            lat_axis,
            lane_width=3.25,
            require_both_lines=False,
        )
        assert fit.lines_used == 1
        assert fit.center_lateral(10.0) == pytest.approx(0.0, abs=0.1)

    def test_no_pixels_invalid(self):
        empty = LanePixels(
            np.empty(0, dtype=int),
            np.empty(0, dtype=int),
            np.empty(0, dtype=int),
            np.empty(0, dtype=int),
            False,
            False,
        )
        fit = fit_lane_lines(empty, np.linspace(5, 20, 96), np.linspace(-3, 3, 128))
        assert not fit.valid
        with pytest.raises(ValueError):
            fit.center_lateral(5.0)

    @given(
        st.floats(min_value=-0.005, max_value=0.005),
        st.floats(min_value=-0.05, max_value=0.05),
        st.floats(min_value=-1.0, max_value=1.0),
    )
    @settings(max_examples=40, deadline=None)
    def test_fit_evaluates_close_on_clean_data(self, a, b, c):
        x = np.linspace(5, 20, 150)
        lat = a * x**2 + b * x + c
        coef = fit_line_poly(x, lat)
        assert np.polyval(coef, 7.0) == pytest.approx(
            a * 49 + b * 7 + c, abs=0.08
        )


class TestPerceptionPipeline:
    def test_end_to_end_measurement(self, small_camera):
        track = static_situation_track(situation_by_index(1), length=200.0)
        renderer = RoadSceneRenderer(small_camera, track, seed=1)
        pipeline = PerceptionPipeline(small_camera, "ROI 1")
        pose = track.pose_at(40.0, 0.2)
        raw = renderer.render_raw(pose)
        rgb = IspPipeline("S0").process(raw)
        result = pipeline.process(rgb)
        assert result.valid
        # Vehicle 0.2 m left of center: positive y_L of similar size.
        assert result.y_l == pytest.approx(0.2, abs=0.15)

    def test_invalid_result_is_neutral(self):
        result = PerceptionResult.invalid()
        assert not result.valid
        assert result.y_l == 0.0 and result.lines_used == 0

    def test_set_roi_switches_preset(self, small_camera):
        pipeline = PerceptionPipeline(small_camera, "ROI 1")
        pipeline.set_roi("ROI 4")
        assert pipeline.roi.name == "ROI 4"

    def test_roi_switch_resets_tracking_hints(self, small_camera):
        pipeline = PerceptionPipeline(small_camera, "ROI 1", temporal_tracking=True)
        pipeline._hints = (1.0, -1.0)
        pipeline.set_roi("ROI 2")
        assert pipeline._hints is None

    def test_roi_switch_reuses_cached_bev_grid(self, small_camera):
        # Closed-loop runs flip ROI every reconfiguration; the per-ROI
        # BEV grids must be built once and reused, not reconstructed
        # (grid construction is the expensive part of the PR stage).
        pipeline = PerceptionPipeline(small_camera, "ROI 1")
        grid1 = pipeline._grid()
        pipeline.set_roi("ROI 4")
        grid4 = pipeline._grid()
        assert grid4 is not grid1
        pipeline.set_roi("ROI 1")
        assert pipeline._grid() is grid1
        pipeline.set_roi("ROI 4")
        assert pipeline._grid() is grid4

    def test_measurement_sign_convention(self, small_camera):
        """Vehicle right of center -> negative y_l."""
        track = static_situation_track(situation_by_index(1), length=200.0)
        renderer = RoadSceneRenderer(small_camera, track, seed=1)
        pipeline = PerceptionPipeline(small_camera, "ROI 1")
        pose = track.pose_at(40.0, -0.3)
        rgb = IspPipeline("S0").process(renderer.render_raw(pose))
        result = pipeline.process(rgb)
        assert result.valid
        assert result.y_l < -0.1

    def test_curvature_estimate_on_turn(self, small_camera):
        track = static_situation_track(situation_by_index(8))  # right turn
        renderer = RoadSceneRenderer(small_camera, track, seed=1)
        pipeline = PerceptionPipeline(small_camera, "ROI 2")
        pose = track.pose_at(40.0, 0.0)
        rgb = IspPipeline("S0").process(renderer.render_raw(pose))
        result = pipeline.process(rgb)
        assert result.valid
        from repro.sim.world import DEFAULT_TURN_RADIUS

        assert result.curvature == pytest.approx(
            -1 / DEFAULT_TURN_RADIUS, abs=0.006
        )


class TestBatchedKernels:
    """Bitwise equality of the stacked perception kernels vs serial."""

    def _frames(self, small_camera, day_track, n=4):
        renderer = RoadSceneRenderer(small_camera, day_track, seed=0)
        return np.stack(
            [
                renderer.render_rgb(day_track.pose_at(10.0 + 12.0 * i, 0.1 * i))
                for i in range(n)
            ]
        )

    def test_warp_batch_bitwise(self, small_camera, day_track):
        frames = self._frames(small_camera, day_track)
        for roi in ("ROI 1", "ROI 2"):
            grid = BevGrid(small_camera, roi_preset(roi), n_rows=32, n_cols=48)
            batched = grid.warp_batch(frames)
            for i, frame in enumerate(frames):
                assert np.array_equal(batched[i], grid.warp(frame))

    def test_warp_batch_single_channel(self, small_camera, day_track):
        frames = self._frames(small_camera, day_track)[..., 0]
        grid = BevGrid(small_camera, roi_preset("ROI 1"), n_rows=32, n_cols=48)
        batched = grid.warp_batch(frames)
        assert batched.shape == (4, 32, 48)
        for i, frame in enumerate(frames):
            assert np.array_equal(batched[i], grid.warp(frame))

    def test_nanmedian_cols_matches_numpy(self, rng):
        from repro.perception.threshold import _nanmedian_cols

        for width in (7, 8, 31):
            stack = rng.normal(size=(3, 5, width))
            stack[rng.random(stack.shape) < 0.3] = np.nan
            stack[0, 0] = np.nan  # an all-NaN row
            import warnings

            with warnings.catch_warnings():
                warnings.simplefilter("ignore", RuntimeWarning)
                expected = np.nanmedian(stack, axis=-1, keepdims=True)
            got = _nanmedian_cols(stack)
            assert np.array_equal(
                np.nan_to_num(got, nan=-1e9), np.nan_to_num(expected, nan=-1e9)
            )

    def test_dynamic_threshold_batch_bitwise(self, small_camera, day_track):
        frames = self._frames(small_camera, day_track)
        grid = BevGrid(small_camera, roi_preset("ROI 1"), n_rows=32, n_cols=48)
        bev = grid.warp_batch(frames)
        batched = dynamic_threshold(bev, valid=grid.inside)
        for i in range(len(frames)):
            serial = dynamic_threshold(bev[i], valid=grid.inside)
            assert np.array_equal(batched[i], serial)

    def test_pipeline_process_batch_bitwise(self, small_camera, day_track):
        from repro.perception.pipeline import process_batch

        frames = self._frames(small_camera, day_track)
        pipes = [PerceptionPipeline(small_camera) for _ in range(len(frames))]
        batched = process_batch(pipes, list(frames))
        for pipe, frame, got in zip(pipes, frames, batched):
            want = pipe.process(frame)
            assert got.valid == want.valid
            if want.valid:
                assert got.y_l == want.y_l
