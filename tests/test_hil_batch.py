"""Bit-identity tests for the batched lock-step rollout engine.

Every test pits :class:`repro.hil.batch.BatchedHilEngine` (or one of
its facades) against serial ``HilEngine.run`` on the same configs and
asserts the full traces are *exactly* equal — the engine's contract is
bitwise equivalence for any batch composition, including lanes that
crash mid-batch, finish early, or carry fault plans the batched
kernels must fall back from.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import api
from repro.core.situation import situation_by_index
from repro.faults.plan import FaultPlan
from repro.hil.batch import BatchedHilEngine, run_batch
from repro.hil.engine import HilConfig, HilEngine
from repro.sim.world import static_situation_track

#: Reduced fidelity keeps each rollout fast; the BEV grid stays at its
#: native 96x128 so perception runs its full reductions.
FAST = dict(frame_width=48, frame_height=24)


def _track(sit_index: int = 1, length: float = 60.0):
    return static_situation_track(situation_by_index(sit_index), length=length)


def assert_results_equal(a, b):
    """Exact (bitwise) equality of two HilResult traces."""
    for name in ("time_s", "s", "lateral_offset", "y_l_true", "steering", "speed"):
        lhs, rhs = getattr(a, name), getattr(b, name)
        assert lhs.shape == rhs.shape, name
        assert np.array_equal(lhs, rhs), name
    assert a.cycles == b.cycles
    assert a.crashed == b.crashed
    assert a.crash_s == b.crash_s
    assert a.completed == b.completed


def _serial(track, case, config):
    return HilEngine(track, case, config=config).run()


class TestBitIdentity:
    def test_mixed_lanes_match_serial(self):
        """Different seeds and offsets in one batch, each lane exact."""
        track = _track()
        configs = [
            HilConfig(seed=s, initial_offset_m=off, **FAST)
            for s, off in ((1, 0.2), (2, -0.3), (3, 0.0), (4, 0.35))
        ]
        batched = run_batch(configs, track=track, case="case2")
        for cfg, result in zip(configs, batched):
            assert_results_equal(result, _serial(track, "case2", cfg))

    def test_single_lane_batch_is_exact(self):
        """A batch of one exercises every singleton fallback path."""
        track = _track(sit_index=8, length=80.0)
        config = HilConfig(seed=11, **FAST)
        [batched] = run_batch([config], track=track, case="case3")
        assert_results_equal(batched, _serial(track, "case3", config))

    def test_mid_batch_crash_lane(self):
        """A lane crashing early must not perturb the survivors."""
        track = _track(length=80.0)
        crasher = HilConfig(
            seed=7, initial_offset_m=1.9, initial_heading_err=0.15, **FAST
        )
        survivor = HilConfig(seed=7, initial_offset_m=0.2, **FAST)
        batched = run_batch([crasher, survivor, survivor], track=track, case="case1")
        assert batched[0].crashed and batched[0].crash_s is not None
        for cfg, result in zip((crasher, survivor, survivor), batched):
            assert_results_equal(result, _serial(track, "case1", cfg))

    def test_early_finishing_lane(self):
        """Per-lane tracks of different lengths retire lanes one by one."""
        short = _track(length=40.0)
        long = _track(length=100.0)
        config = HilConfig(seed=5, **FAST)
        batched = run_batch(
            [config, config], track=[short, long], case="case2"
        )
        assert batched[0].completed
        assert batched[0].duration_s() < batched[1].duration_s()
        assert_results_equal(batched[0], _serial(short, "case2", config))
        assert_results_equal(batched[1], _serial(long, "case2", config))

    def test_partial_fault_plans(self):
        """Faulted lanes take serial fallbacks; clean lanes stay batched."""
        track = _track(length=60.0)
        faulted = HilConfig(
            seed=3,
            fault_plan=FaultPlan.parse("blackout@200:600; dropout@800:1200"),
            **FAST,
        )
        clean = HilConfig(seed=3, **FAST)
        batched = run_batch([faulted, clean], track=track, case="case2")
        assert any(c.faults for c in batched[0].cycles)
        assert not any(c.faults for c in batched[1].cycles)
        assert_results_equal(batched[0], _serial(track, "case2", faulted))
        assert_results_equal(batched[1], _serial(track, "case2", clean))

    def test_profiling_lane_traces_unchanged(self):
        """Profiling alters observability only, never the trace."""
        track = _track(length=60.0)
        profiled = HilConfig(seed=2, profile=True, **FAST)
        plain = HilConfig(seed=2, **FAST)
        batched = run_batch([profiled, plain], track=track, case="case2")
        assert batched[0].profile  # spans were collected
        assert_results_equal(batched[0], _serial(track, "case2", plain))
        assert_results_equal(batched[1], _serial(track, "case2", plain))


class TestFacades:
    def test_api_simulate_seed_sequence(self):
        seeds = [21, 22, 23]
        batched = api.simulate(
            situation=1, case="case2", length_m=60.0, seed=seeds,
            frame=(48, 24), batch=len(seeds),
        )
        assert isinstance(batched, list) and len(batched) == len(seeds)
        for s, result in zip(seeds, batched):
            serial = api.simulate(
                situation=1, case="case2", length_m=60.0, seed=s, frame=(48, 24)
            )
            assert_results_equal(result, serial)

    def test_api_simulate_chunking_invariance(self):
        """Any batch size yields the same seed-ordered results."""
        seeds = [31, 32, 33]
        kwargs = dict(
            situation=1, case="case2", length_m=50.0, seed=seeds, frame=(48, 24)
        )
        whole = api.simulate(batch=3, **kwargs)
        chunked = api.simulate(batch=2, **kwargs)
        for a, b in zip(whole, chunked):
            assert_results_equal(a, b)

    def test_run_batch_validates_lane_counts(self):
        track = _track()
        with pytest.raises(ValueError, match="tracks"):
            run_batch(
                [HilConfig(seed=1, **FAST)], track=[track, track], case="case1"
            )
        with pytest.raises(ValueError):
            BatchedHilEngine([])
