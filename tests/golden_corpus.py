"""Golden-trace regression corpus: four frozen reference rollouts.

Each corpus entry freezes one execution path of the facade as a pair of
fixture files under ``tests/golden/``:

- ``<name>.npz`` — the :class:`~repro.hil.record.HilResult` of the run
  (arrays, cycle records, manifest), written with ``HilResult.save``;
- ``<name>.trace.jsonl`` — the JSONL telemetry trace of the equivalent
  serial run (``simulate(telemetry=...)``).

The four entries cover the paths a cache or kernel regression could
silently skew: a nominal serial run, a fault campaign with mitigation,
a lock-step batched run (whose lanes are bit-identical to serial runs,
so the serial trace doubles as the batched reference), and a run served
over the wire protocol (bit-identical to in-process by contract).

``tests/test_golden_traces.py`` replays every entry and asserts byte
equality.  After an *intentional* kernel change (which must also bump
``ROLLOUT_KERNEL_VERSION`` or ``RENDERER_VERSION`` — see
``docs/DESIGN.md``), regenerate the fixtures with::

    PYTHONPATH=src python tests/golden_corpus.py

and review the resulting diff like any other behaviour change.
"""

from __future__ import annotations

from pathlib import Path
from typing import Dict

GOLDEN_DIR = Path(__file__).resolve().parent / "golden"

#: The facade keywords of each corpus entry.  Values are pure JSON so
#: the ``served`` entry can travel over the wire protocol unchanged.
#: Frames are small and tracks short: the fixtures stay a few hundred
#: kilobytes and each replay runs in well under a second.
CORPUS: Dict[str, Dict[str, object]] = {
    "nominal": {
        "situation": 1,
        "case": "case1",
        "seed": 11,
        "frame": (96, 48),
        "length_m": 40.0,
    },
    "fault_mitigation": {
        "situation": 3,
        "case": "case3",
        "seed": 13,
        "frame": (96, 48),
        "length_m": 60.0,
        "faults": "blackout",
        "mitigate": True,
    },
    "batched": {
        "situation": 2,
        "case": "case2",
        "seed": [21, 22],
        "frame": (96, 48),
        "length_m": 40.0,
    },
    "served": {
        "situation": 4,
        "case": "case4",
        "seed": 17,
        "frame": (96, 48),
        "length_m": 40.0,
    },
}


def npz_path(name: str) -> Path:
    return GOLDEN_DIR / f"{name}.npz"


def trace_path(name: str) -> Path:
    return GOLDEN_DIR / f"{name}.trace.jsonl"


def serial_params(name: str) -> Dict[str, object]:
    """The entry's keywords reduced to one serial run.

    For the ``batched`` entry this is the first lane's seed: a batched
    lane is bit-identical to the serial run with the same seed, so the
    serial telemetry trace is the reference for the whole path.
    """
    params = dict(CORPUS[name])
    seed = params["seed"]
    if isinstance(seed, (list, tuple)):
        params["seed"] = seed[0]
    return params


def reference_result(name: str):
    """Produce the entry's reference :class:`HilResult` live (no cache)."""
    import repro.api

    params = dict(CORPUS[name])
    if name == "batched":
        results = repro.api.simulate(**params, batch=len(params["seed"]))
        return results[0]
    if name == "served":
        from repro.service.server import ServerThread

        import tempfile

        with tempfile.TemporaryDirectory() as tmp:
            with ServerThread(
                socket_path=str(Path(tmp) / "golden.sock"), workers=1
            ) as thread:
                with repro.api.connect(**thread.connect_kwargs) as client:
                    return client.simulate(**params)
    return repro.api.simulate(**params)


def regenerate() -> None:
    """Rebuild every fixture pair under ``tests/golden/``."""
    import repro.api

    GOLDEN_DIR.mkdir(parents=True, exist_ok=True)
    for name in CORPUS:
        result = reference_result(name)
        result.save(str(npz_path(name)))
        repro.api.simulate(**serial_params(name), telemetry=trace_path(name))
        print(f"wrote {npz_path(name).name} + {trace_path(name).name}")


if __name__ == "__main__":
    regenerate()
