"""Tests for repro.telemetry: events, metrics, manifests, traces.

The load-bearing guarantees pinned here:

- the recorder is a shared no-op singleton when disabled, and enabling
  it leaves simulated traces bit-identical;
- event names are schema-validated at emit time;
- two runs of the same experiment produce the same manifest hash and
  byte-identical event streams;
- trace writes are atomic and ``diff_traces`` ignores the volatile
  wall-clock manifest fields.
"""

from __future__ import annotations

import hashlib
import json
import os
import subprocess
import sys
from pathlib import Path

import numpy as np
import pytest

from repro.telemetry import (
    CYCLE_END,
    CYCLE_START,
    EVENT_SCHEMA,
    IDENTIFIER_INVOKED,
    KNOBS_RECONFIGURED,
    MetricsRegistry,
    TelemetryRecorder,
    activated,
    build_manifest,
    diff_traces,
    get_active,
    load_trace,
    write_trace,
)
from repro.utils import profiling
from repro.utils.rng import collect_streams, derive_rng

REPO_ROOT = Path(__file__).resolve().parent.parent

FAST = dict(frame=(192, 96), length_m=40.0, situation=1, case="case3", seed=3)


def _simulate(**overrides):
    from repro.api import simulate

    return simulate(**{**FAST, **overrides})


class TestRecorder:
    def test_no_recorder_is_active_by_default(self):
        assert get_active() is None

    def test_emit_validates_event_names(self):
        rec = TelemetryRecorder()
        with pytest.raises(ValueError, match="unknown telemetry event"):
            rec.emit("cycle.startt", time_ms=0.0)

    def test_emit_validates_required_fields(self):
        rec = TelemetryRecorder()
        with pytest.raises(ValueError, match="missing required fields"):
            rec.emit(CYCLE_START, time_ms=0.0)  # no s/active_isp/invoked

    def test_emit_appends_schema_stamped_records(self):
        rec = TelemetryRecorder()
        rec.emit(
            CYCLE_START, time_ms=0.0, s=0.0, active_isp="S0", invoked=[]
        )
        (record,) = rec.events
        assert record["event"] == CYCLE_START
        assert isinstance(record["schema"], int) and record["schema"] >= 1
        assert set(EVENT_SCHEMA[CYCLE_START]) <= set(record)
        assert rec.events_of(CYCLE_START) == [record]
        assert rec.events_of(CYCLE_END) == []

    def test_activated_restores_the_previous_recorder(self):
        outer = TelemetryRecorder()
        inner = TelemetryRecorder()
        with activated(outer):
            assert get_active() is outer
            with activated(inner):
                assert get_active() is inner
            assert get_active() is outer
        assert get_active() is None

    def test_activated_none_is_a_passthrough(self):
        with activated(None) as rec:
            assert rec is None
            assert get_active() is None


class TestMetricsRegistry:
    def test_counters_gauges_histograms(self):
        m = MetricsRegistry()
        m.count("runs")
        m.count("runs", 2)
        m.gauge("speed", 30.0)
        m.gauge("speed", 50.0)
        m.observe("mae", 0.5)
        m.observe("mae", 1.5)
        assert m.counters() == {"runs": 3}
        assert m.gauges() == {"speed": 50.0}
        assert m.histogram("mae") == [0.5, 1.5]

    def test_snapshot_merge_round_trip(self):
        a = MetricsRegistry()
        a.count("tasks")
        a.observe("v", 1.0)
        b = MetricsRegistry()
        b.count("tasks", 4)
        b.gauge("last", 2.0)
        b.merge(a.snapshot())
        snap = b.snapshot()
        assert snap["counters"] == {"tasks": 5}
        assert snap["gauges"] == {"last": 2.0}
        assert snap["histograms"] == {"v": [1.0]}

    def test_absorb_profiler_stage_stats(self):
        profiler = profiling.Profiler()
        profiler.record("hil.isp", 0.002)
        profiler.record("hil.isp", 0.004)
        m = MetricsRegistry()
        m.absorb_profiler(profiler.stats())
        assert m.counters()["stage.hil.isp.calls"] == 2
        assert m.histogram("stage.hil.isp.mean_ms") == [pytest.approx(3.0)]


class TestManifest:
    def test_equal_configs_hash_identically(self):
        from repro.hil.engine import HilConfig

        a = build_manifest(config=HilConfig(seed=1))
        b = build_manifest(config=HilConfig(seed=1))
        c = build_manifest(config=HilConfig(seed=2))
        assert a["config_hash"] == b["config_hash"]
        assert a["config_hash"] != c["config_hash"]

    def test_records_env_knobs(self, monkeypatch):
        monkeypatch.setenv("REPRO_PROFILE", "1")
        monkeypatch.delenv("REPRO_JOBS", raising=False)
        manifest = build_manifest()
        assert manifest["env"]["REPRO_PROFILE"] == "1"
        assert manifest["env"]["REPRO_JOBS"] is None

    def test_rng_streams_sorted_and_deduplicated(self):
        manifest = build_manifest(rng_streams=["b", "a", "b"])
        assert manifest["rng_streams"] == ["a", "b"]

    def test_collect_streams_observes_derivations(self):
        with collect_streams() as seen:
            derive_rng(0, "imu")
            with collect_streams() as inner:
                derive_rng(0, "trajectory")
        assert seen == ["imu", "trajectory"]
        assert inner == ["trajectory"]
        # The listener is removed on exit: later derivations unseen.
        derive_rng(0, "camera-noise")
        assert seen == ["imu", "trajectory"]


class TestTracePersistence:
    def _manifest(self):
        return build_manifest(rng_streams=["imu"], started_at=1.0, finished_at=2.0)

    def _events(self):
        rec = TelemetryRecorder()
        rec.emit(CYCLE_START, time_ms=0.0, s=0.0, active_isp="S0", invoked=["road"])
        rec.emit(IDENTIFIER_INVOKED, time_ms=0.0, classifiers=["road"])
        return rec.events

    def test_write_load_round_trip(self, tmp_path):
        path = tmp_path / "run.jsonl"
        returned = write_trace(path, self._manifest(), self._events())
        assert returned == path
        trace = load_trace(path)
        assert trace.manifest == self._manifest()
        assert trace.events == self._events()
        assert [e["event"] for e in trace.events_of(CYCLE_START)] == [CYCLE_START]

    def test_write_is_atomic(self, tmp_path, monkeypatch):
        import repro.telemetry.trace as trace_module

        path = tmp_path / "run.jsonl"

        def exploding_replace(src, dst):
            raise OSError("rename failed")

        monkeypatch.setattr(trace_module.os, "replace", exploding_replace)
        with pytest.raises(OSError, match="rename failed"):
            write_trace(path, self._manifest(), self._events())
        assert list(tmp_path.iterdir()) == []

    def test_diff_ignores_wall_clock(self, tmp_path):
        a = write_trace(tmp_path / "a.jsonl", self._manifest(), self._events())
        manifest_b = build_manifest(
            rng_streams=["imu"], started_at=99.0, finished_at=100.0
        )
        b = write_trace(tmp_path / "b.jsonl", manifest_b, self._events())
        assert diff_traces(load_trace(a), load_trace(b)) == []

    def test_diff_reports_manifest_and_event_divergence(self, tmp_path):
        events_b = self._events()
        events_b[0] = dict(events_b[0], active_isp="S2")
        a = load_trace(
            write_trace(tmp_path / "a.jsonl", self._manifest(), self._events())
        )
        b = load_trace(
            write_trace(
                tmp_path / "b.jsonl",
                build_manifest(rng_streams=["other"]),
                events_b[:1],
            )
        )
        differences = diff_traces(a, b)
        assert any(d.startswith("manifest.rng_streams") for d in differences)
        assert any(d.startswith("event count") for d in differences)
        assert any(d.startswith("event 0:") for d in differences)

    def test_diff_caps_rendered_events(self):
        from repro.telemetry import RunTrace

        make = lambda isp: [
            {"event": CYCLE_START, "schema": 1, "time_ms": float(i),
             "s": 0.0, "active_isp": isp, "invoked": []}
            for i in range(5)
        ]
        differences = diff_traces(
            RunTrace(events=make("S0")), RunTrace(events=make("S2")), limit=2
        )
        assert differences[-1] == "... and 3 more differing events"


class TestClosedLoopTelemetry:
    def test_enabling_telemetry_keeps_the_trace_bit_identical(self):
        baseline = _simulate()
        with activated(TelemetryRecorder()):
            observed = _simulate()
        for name in ("time_s", "lateral_offset", "steering"):
            np.testing.assert_array_equal(
                getattr(baseline, name), getattr(observed, name)
            )

    def test_env_enabled_telemetry_matches_disabled_run(self, tmp_path):
        baseline = _simulate()
        digest = hashlib.sha256(
            baseline.time_s.tobytes()
            + baseline.lateral_offset.tobytes()
            + baseline.steering.tobytes()
        ).hexdigest()
        script = (
            "import hashlib\n"
            "from repro.api import simulate\n"
            f"r = simulate(**{FAST!r})\n"
            "print(hashlib.sha256(r.time_s.tobytes()"
            " + r.lateral_offset.tobytes()"
            " + r.steering.tobytes()).hexdigest())\n"
        )
        env = dict(os.environ, REPRO_TELEMETRY="1")
        env["PYTHONPATH"] = str(REPO_ROOT / "src")
        out = subprocess.run(
            [sys.executable, "-c", script],
            capture_output=True, text=True, env=env, cwd=str(REPO_ROOT),
        )
        assert out.returncode == 0, out.stderr
        assert out.stdout.strip() == digest

    def test_same_experiment_yields_byte_identical_event_streams(self, tmp_path):
        for name in ("a", "b"):
            with activated(TelemetryRecorder()) as rec:
                result = _simulate()
            write_trace(tmp_path / f"{name}.jsonl", result.manifest, rec.events)
        lines_a = (tmp_path / "a.jsonl").read_text().splitlines()
        lines_b = (tmp_path / "b.jsonl").read_text().splitlines()
        manifest_a = json.loads(lines_a[0])["manifest"]
        manifest_b = json.loads(lines_b[0])["manifest"]
        assert manifest_a["config_hash"] == manifest_b["config_hash"]
        # Same manifest hash => byte-identical events (manifest line
        # alone carries the volatile wall clock).
        assert lines_a[1:] == lines_b[1:]
        assert diff_traces(
            load_trace(tmp_path / "a.jsonl"), load_trace(tmp_path / "b.jsonl")
        ) == []

    def test_cycle_events_cover_every_cycle(self):
        with activated(TelemetryRecorder()) as rec:
            result = _simulate()
        starts = rec.events_of(CYCLE_START)
        ends = rec.events_of(CYCLE_END)
        assert len(starts) == len(result.cycles)
        assert len(ends) == len(result.cycles)
        assert [e["time_ms"] for e in ends] == [
            c.time_ms for c in result.cycles
        ]
        assert [e["steering"] for e in ends] == [
            c.steering for c in result.cycles
        ]
        # The first decide always reconfigures (no previous knobs).
        assert rec.events_of(KNOBS_RECONFIGURED)

    def test_manifest_attached_to_the_result(self):
        result = _simulate()
        assert result.manifest is not None
        assert result.manifest["rng_streams"] == [
            "camera-noise", "frame-drop", "oracle-identifier"
        ]
        assert result.manifest["wall_clock"]["started_at"] is not None

    def test_profiler_stats_absorbed_into_metrics(self):
        with activated(TelemetryRecorder()) as rec:
            _simulate(profile=True)
        counters = rec.metrics.counters()
        assert counters["stage.hil.render.calls"] > 0
        assert rec.metrics.histogram("stage.hil.render.mean_ms")

    def test_simulate_telemetry_keyword_writes_a_trace(self, tmp_path):
        path = tmp_path / "run.jsonl"
        result = _simulate(telemetry=path)
        trace = load_trace(path)
        assert trace.manifest == result.manifest
        assert len(trace.events_of(CYCLE_END)) == len(result.cycles)
        # The scoped recorder is gone afterwards.
        assert get_active() is None
