"""Smoke tests of the report/export plumbing with stubbed heavy stages."""

from __future__ import annotations

import json

import pytest

from repro.experiments import report as report_mod
from repro.experiments.export import export_results


@pytest.fixture()
def stub_heavy(monkeypatch):
    """Replace the expensive experiment runners with tiny stand-ins."""
    from repro.core.situation import situation_by_index
    from repro.experiments.fig1 import DetectorPoint
    from repro.experiments.fig6 import SituationCaseResult

    def fake_fig1(*args, **kwargs):
        return [DetectorPoint("stub", 0.9, 30.0, {})]

    def fake_fig6(*args, **kwargs):
        sit = situation_by_index(1)
        return [
            SituationCaseResult(1, sit, case, 0.01, False, 1.0)
            for case in ("case1", "case2", "case3", "case4")
        ]

    monkeypatch.setattr("repro.experiments.fig1.run_fig1", fake_fig1)
    monkeypatch.setattr("repro.experiments.fig6.run_fig6", fake_fig6)
    return None


class TestReport:
    def test_generate_report_minimal(self, tmp_path, stub_heavy):
        path = tmp_path / "report.md"
        text = report_mod.generate_report(
            path=str(path),
            include_dynamic=False,
            include_characterization=False,
            include_classifiers=False,
            verbose=False,
        )
        assert path.exists()
        assert "# repro experiment report" in text
        assert "Table II" in text
        assert "Fig. 7" in text
        assert "Fig. 6" in text
        assert "Fig. 8" not in text  # dynamic skipped


class TestExport:
    def test_export_results_minimal(self, tmp_path, stub_heavy):
        target = export_results(
            str(tmp_path / "results.json"),
            include_dynamic=False,
            include_characterization=False,
            include_classifiers=False,
        )
        data = json.loads(target.read_text())
        assert {"table2", "table5", "fig7", "fig1", "fig6"} <= set(data)
        assert len(data["fig7"]) == 9
        assert data["table2"]["pr_runtime_ms"] == 3.0
        assert data["fig1"][0]["detector"] == "stub"
