"""Tests for transient metrics, the scenario DSL and fault injection."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.situation import LaneColor, LaneForm, RoadLayout, Scene
from repro.metrics.transient import TransientMetrics, transient_metrics
from repro.sim.scenario import ScenarioError, parse_scenario


class TestTransientMetrics:
    def test_exponential_decay(self):
        t = np.linspace(0, 10, 500)
        y = 0.5 * np.exp(-t)
        m = transient_metrics(t, y, band=0.05)
        assert m.settled
        assert m.settling_time_s == pytest.approx(np.log(10), abs=0.1)
        assert m.overshoot_m == 0.0
        assert m.steady_state_mae < 0.05

    def test_overshoot_detected(self):
        t = np.linspace(0, 10, 500)
        y = 0.5 * np.exp(-t) * np.cos(2 * t)
        m = transient_metrics(t, y)
        assert m.overshoot_m > 0.05

    def test_never_settles(self):
        t = np.linspace(0, 10, 100)
        y = np.full(100, 0.3)
        m = transient_metrics(t, y, band=0.05)
        assert not m.settled
        assert np.isnan(m.steady_state_mae)

    def test_peak(self):
        m = transient_metrics(np.array([0.0, 1.0]), np.array([0.2, -0.7]))
        assert m.peak_abs_m == pytest.approx(0.7)

    def test_validation(self):
        with pytest.raises(ValueError):
            transient_metrics(np.zeros(3), np.zeros(4))
        with pytest.raises(ValueError):
            transient_metrics(np.zeros(3), np.zeros(3), band=0.0)

    @given(st.floats(min_value=0.01, max_value=1.0))
    @settings(max_examples=25, deadline=None)
    def test_all_inside_band_settles_immediately(self, band):
        t = np.linspace(0, 1, 50)
        y = np.zeros(50)
        m = transient_metrics(t, y, band=band)
        assert m.settling_time_s == 0.0


class TestScenarioDsl:
    def test_simple_straight(self):
        track = parse_scenario("S100")
        assert track.length == pytest.approx(100.0)
        situation = track.situation_at(50.0)
        assert situation.layout is RoadLayout.STRAIGHT
        assert situation.lane_color is LaneColor.WHITE
        assert situation.scene is Scene.DAY

    def test_turns_with_radius(self):
        track = parse_scenario("R60:80 L50:90")
        assert track.segments[0].curvature == pytest.approx(-1 / 60)
        assert track.segments[1].curvature == pytest.approx(1 / 50)
        assert track.length == pytest.approx(170.0)

    def test_lane_and_scene_modifiers(self):
        track = parse_scenario("S50/yd@night S50")
        first = track.situation_at(10.0)
        assert first.lane_color is LaneColor.YELLOW
        assert first.lane_form is LaneForm.DOTTED
        assert first.scene is Scene.NIGHT
        # Modifiers inherit into the next section.
        second = track.situation_at(75.0)
        assert second.lane_color is LaneColor.YELLOW
        assert second.scene is Scene.NIGHT

    def test_double_lane_code(self):
        track = parse_scenario("S50/yy")
        assert track.situation_at(10.0).lane_form is LaneForm.DOUBLE

    def test_fig7_like_scenario(self):
        spec = "S110 R50:85 S110/yc L50:85/wc S110/yy L50:85/wd R50:85/yc S110/wc@night S110@dark"
        track = parse_scenario(spec)
        assert len(track.segments) == 9
        assert track.situation_at(track.length - 10).scene is Scene.DARK

    @pytest.mark.parametrize(
        "bad",
        ["", "X100", "S", "R60", "S100:50", "S50/zz", "S50@noon", "L0:50"],
    )
    def test_malformed_rejected(self, bad):
        with pytest.raises(ScenarioError):
            parse_scenario(bad)

    def test_scenario_drivable(self):
        """A DSL-built track runs in the closed loop end to end."""
        from repro.hil import HilConfig, HilEngine

        track = parse_scenario("S60 R60:40 S40")
        config = HilConfig(seed=7, frame_width=192, frame_height=96)
        result = HilEngine(track, "case3", config=config).run()
        assert not result.crashed


class TestFrameDropInjection:
    def test_drop_rate_validated(self):
        from repro.core.situation import situation_by_index
        from repro.hil import HilConfig, HilEngine
        from repro.sim.world import static_situation_track

        track = static_situation_track(situation_by_index(1), length=60.0)
        with pytest.raises(ValueError):
            HilEngine(track, "case1", config=HilConfig(frame_drop_rate=1.5))

    def test_loop_survives_moderate_drops(self):
        from repro.core.situation import situation_by_index
        from repro.hil import HilConfig, HilEngine
        from repro.sim.world import static_situation_track

        track = static_situation_track(situation_by_index(1), length=80.0)
        config = HilConfig(
            seed=7, frame_width=192, frame_height=96, frame_drop_rate=0.2
        )
        result = HilEngine(track, "case1", config=config).run()
        assert not result.crashed
        invalid = sum(1 for c in result.cycles if not c.measurement_valid)
        assert invalid >= 0.08 * len(result.cycles)

    def test_heavy_drops_remain_bounded(self):
        """Even at 40 % frame loss the hold mechanism keeps the loop
        bounded on a steady road (graceful degradation, not failure)."""
        from repro.core.situation import situation_by_index
        from repro.hil import HilConfig, HilEngine
        from repro.sim.world import static_situation_track

        track = static_situation_track(situation_by_index(5), length=80.0)
        drop_cfg = HilConfig(
            seed=7, frame_width=192, frame_height=96, frame_drop_rate=0.4
        )
        dropped = HilEngine(track, "case1", config=drop_cfg).run()
        assert not dropped.crashed
        assert dropped.mae(2.0) < 0.2
