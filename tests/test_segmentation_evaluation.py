"""Tests for the dense lane detector and the evaluation harness."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.situation import situation_by_index
from repro.isp.pipeline import IspPipeline
from repro.metrics.accuracy import DetectionSample
from repro.perception.evaluation import (
    SequenceStats,
    evaluate_sequence,
    trajectory_poses,
)
from repro.perception.segmentation import DenseLaneDetector
from repro.sim.camera import CameraModel
from repro.sim.renderer import RoadSceneRenderer
from repro.sim.world import static_situation_track

CAMERA = CameraModel(width=192, height=96)


class TestDenseLaneDetector:
    def _measure(self, sit_index: int, d0: float = 0.15):
        situation = situation_by_index(sit_index)
        track = static_situation_track(situation, length=200.0)
        renderer = RoadSceneRenderer(CAMERA, track, seed=1)
        detector = DenseLaneDetector(CAMERA)
        pose = track.pose_at(50.0, d0)
        rgb = IspPipeline("S0").process(renderer.render_raw(pose, situation.scene))
        result = detector.process(rgb)
        look = pose.position() + 5.5 * pose.forward()
        _, truth = track.frenet(look[0], look[1])
        return result, float(truth)

    def test_detects_straight_lane(self):
        result, truth = self._measure(1)
        assert result.valid
        assert result.y_l == pytest.approx(truth, abs=0.25)

    def test_robust_to_turns_without_roi_knob(self):
        """The dense detector has no ROI to mis-set: turns just work."""
        result, truth = self._measure(8)
        assert result.valid
        assert result.y_l == pytest.approx(truth, abs=0.3)

    def test_handles_dotted_lanes(self):
        result, truth = self._measure(2)
        assert result.valid

    def test_row_candidates_finds_runs(self):
        detector = DenseLaneDetector(CAMERA)
        row = np.zeros(32, dtype=bool)
        row[4:7] = True
        row[20:22] = True
        centers = detector._row_candidates(row)
        np.testing.assert_allclose(centers, [5.0, 20.5])

    def test_empty_frame_invalid(self):
        detector = DenseLaneDetector(CAMERA)
        frame = np.zeros((CAMERA.height, CAMERA.width, 3), dtype=np.float32)
        assert not detector.process(frame).valid

    def test_reference_runtime_is_cnn_class(self):
        assert DenseLaneDetector.xavier_runtime_ms >= 100.0


class TestEvaluationHarness:
    def test_trajectory_poses_follow_track(self):
        track = static_situation_track(situation_by_index(1), length=200.0)
        poses = trajectory_poses(track, 20, seed=1)
        for pose in poses:
            _, d = track.frenet(pose.x, pose.y)
            assert abs(d) <= 0.3

    def test_sequence_stats_accuracy(self):
        stats = SequenceStats(
            samples=[DetectionSample(0.0, 0.0, True)] * 4,
            errors=np.array([0.1, 0.1, 0.5]),
            n_invalid=1,
        )
        assert stats.n_frames == 4
        assert stats.bad_frame_rate(0.3) == pytest.approx(0.5)
        assert stats.accuracy(0.3) == pytest.approx(0.5)

    def test_evaluate_sequence_clean_configuration(self):
        stats = evaluate_sequence(
            situation_by_index(1),
            "S0",
            "ROI 1",
            n_frames=12,
            seed=3,
            camera=CAMERA,
        )
        assert stats.n_frames == 12
        assert stats.bad_frame_rate() < 0.5

    def test_evaluate_sequence_custom_detector(self):
        detector = DenseLaneDetector(CAMERA)
        stats = evaluate_sequence(
            situation_by_index(1),
            "S0",
            "ROI 1",
            n_frames=6,
            seed=3,
            camera=CAMERA,
            detector=detector.process,
        )
        assert stats.n_frames == 6
