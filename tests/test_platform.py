"""Tests for the Xavier platform timing model."""

from __future__ import annotations

import pytest

from repro.platform.mapping import LkasTaskGraph, default_task_graph
from repro.platform.profiles import (
    PROFILE_DB,
    classifier_runtime_ms,
    control_runtime_ms,
    isp_runtime_ms,
    pr_runtime_ms,
)
from repro.platform.resources import XAVIER, Resource
from repro.platform.schedule import (
    SIM_STEP_MS,
    period_for_delay,
    pipeline_timing,
    sensing_fps,
)


class TestResources:
    def test_xavier_description(self):
        assert XAVIER.cpu_cores == 8
        assert XAVIER.gpu_cuda_cores == 512
        assert XAVIER.power_budget_w == 30.0

    def test_power_validation(self):
        assert XAVIER.validate_power(25.0)
        assert not XAVIER.validate_power(45.0)
        with pytest.raises(ValueError):
            XAVIER.validate_power(-1.0)


class TestProfiles:
    def test_table2_isp_runtimes(self):
        assert isp_runtime_ms("S0") == 21.5
        assert isp_runtime_ms("S1") == 18.9
        assert isp_runtime_ms("S5") == 3.1

    def test_pr_and_control_runtimes(self):
        assert pr_runtime_ms() == 3.0
        assert control_runtime_ms() == pytest.approx(0.0025)

    def test_classifier_runtime(self):
        for name in ("road", "lane", "scene"):
            assert classifier_runtime_ms(name) == 5.5

    def test_unknown_names_raise(self):
        with pytest.raises(ValueError):
            isp_runtime_ms("S99")
        with pytest.raises(ValueError):
            classifier_runtime_ms("weather")

    def test_isp_on_gpu_pr_on_cpu(self):
        assert PROFILE_DB["isp/S0"].resource is Resource.GPU
        assert PROFILE_DB["pr"].resource is Resource.CPU


class TestTaskGraph:
    def test_latency_is_sum(self):
        graph = default_task_graph("S0", ("road",))
        expected = 21.5 + 5.5 + 3.0 + 0.0025
        assert graph.latency_ms() == pytest.approx(expected)

    def test_resource_busy_split(self):
        graph = default_task_graph("S0", ("road", "lane"))
        assert graph.resource_busy_ms(Resource.GPU) == pytest.approx(21.5 + 11.0)
        assert graph.resource_busy_ms(Resource.CPU) == pytest.approx(3.0025)

    def test_pipelined_fps_bottleneck(self):
        graph = default_task_graph("S0")
        assert graph.pipelined_fps() == pytest.approx(1000.0 / 21.5)

    def test_sequential_fps_matches_paper_fig1(self):
        """The classical sliding-window point: ~40 FPS."""
        graph = default_task_graph("S0", include_control=False)
        assert graph.sequential_fps() == pytest.approx(40.8, abs=0.1)

    def test_empty_graph_rejected(self):
        with pytest.raises(ValueError):
            LkasTaskGraph([])


class TestSchedule:
    def test_period_ceils_to_sim_step(self):
        assert period_for_delay(24.6) == 25.0
        assert period_for_delay(30.1) == 35.0
        assert period_for_delay(25.0) == 25.0

    def test_period_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            period_for_delay(0.0)

    @pytest.mark.parametrize(
        "isp,classifiers,dynamic,tau,h",
        [
            ("S0", (), False, 24.6, 25.0),               # case 1
            ("S0", ("road",), False, 30.1, 35.0),        # case 2
            ("S0", ("road", "lane"), False, 35.6, 40.0),  # case 3
            ("S3", ("road", "lane", "scene"), True, 23.1, 25.0),  # Table III #1
            ("S8", ("road", "lane", "scene"), True, 23.0, 25.0),  # Table III #6
            ("S2", ("road", "lane", "scene"), True, 40.7, 45.0),  # Table III #20
        ],
    )
    def test_paper_timing_reproduction(self, isp, classifiers, dynamic, tau, h):
        timing = pipeline_timing(isp, classifiers, dynamic_isp=dynamic)
        assert timing.delay_ms == pytest.approx(tau, abs=0.05)
        assert timing.period_ms == pytest.approx(h)

    def test_delay_below_period(self):
        timing = pipeline_timing("S0", ("road", "lane", "scene"))
        assert timing.delay_ms <= timing.period_ms

    def test_sensing_fps_excludes_control(self):
        assert sensing_fps("S0") == pytest.approx(1000.0 / 24.5, abs=0.1)

    def test_sim_step_is_paper_value(self):
        assert SIM_STEP_MS == 5.0
