"""Tests for the deterministic process-pool sweep runner."""

from __future__ import annotations

import os
import time

import pytest

from repro.utils import profiling
from repro.utils.parallel import (
    TaskFailure,
    parallel_map,
    resolve_batch,
    resolve_jobs,
    shutdown_pool,
    task_seed,
)
from repro.utils.rng import stream_seed


# Workers must live at module level so a process pool can pickle them.
def _square(x: int) -> int:
    return x * x


def _profiled_square(x: int) -> int:
    # Binary-exact values: any grouping of their sums is bit-identical,
    # so the jobs=1 / jobs=2 equivalence below can assert ==.
    profiling.get_active().record("work.item", float(x))
    return x * x


def _telemetered_square(x: int) -> int:
    from repro.telemetry import recorder as telemetry

    rec = telemetry.get_active()
    rec.metrics.count("tasks")
    rec.metrics.observe("task.value", float(x))
    return x * x


def _square_unless_three(x: int) -> int:
    if x == 3:
        raise ValueError("three is right out")
    return x * x


def _sleep_then_identity(delay_s: float) -> float:
    # Earlier items sleep longer, so with >1 worker the completion
    # order inverts the submission order.
    time.sleep(delay_s)
    return delay_s


def _worker_pid(_: int) -> int:
    return os.getpid()


class TestResolveJobs:
    def test_default_is_serial(self, monkeypatch):
        monkeypatch.delenv("REPRO_JOBS", raising=False)
        assert resolve_jobs() == 1
        assert resolve_jobs(None) == 1

    def test_env_variable_supplies_default(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "3")
        assert resolve_jobs() == 3

    def test_explicit_value_beats_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "3")
        assert resolve_jobs(2) == 2

    def test_auto_and_zero_mean_all_cores(self, monkeypatch):
        monkeypatch.delenv("REPRO_JOBS", raising=False)
        assert resolve_jobs(0) >= 1
        assert resolve_jobs("auto") == resolve_jobs(0)
        monkeypatch.setenv("REPRO_JOBS", "auto")
        assert resolve_jobs() == resolve_jobs(0)

    def test_numeric_string_accepted(self):
        assert resolve_jobs("4") == 4

    def test_invalid_string_rejected(self):
        with pytest.raises(ValueError):
            resolve_jobs("many")

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            resolve_jobs(-1)


class TestParallelMapSerial:
    def test_maps_in_order(self):
        assert parallel_map(_square, [1, 2, 3], jobs=1) == [1, 4, 9]

    def test_empty_items(self):
        assert parallel_map(_square, [], jobs=1) == []
        assert parallel_map(_square, [], jobs=4) == []

    def test_serial_never_spawns_processes(self):
        # A closure is unpicklable, so this would blow up in any
        # process pool: jobs=1 must degenerate to a plain loop.
        offset = 10
        results = parallel_map(lambda x: x + offset, [1, 2], jobs=1)
        assert results == [11, 12]

    def test_failure_takes_slot_and_sweep_continues(self):
        results = parallel_map(_square_unless_three, [2, 3, 4], jobs=1)
        assert results[0] == 4 and results[2] == 16
        failure = results[1]
        assert isinstance(failure, TaskFailure)
        assert failure.index == 1
        assert failure.item == 3
        assert "three is right out" in failure.error

    def test_failures_are_falsy(self):
        results = parallel_map(_square_unless_three, [2, 3, 4], jobs=1)
        assert [r for r in results if r] == [4, 16]
        assert not TaskFailure(index=0, item=None, error="boom")


class TestParallelMapPool:
    def test_results_follow_submission_order(self):
        # Descending delays: with two workers the first item finishes
        # last, yet the results must come back in submission order.
        delays = [0.2, 0.1, 0.0]
        assert parallel_map(_sleep_then_identity, delays, jobs=2) == delays

    def test_pool_matches_serial(self):
        items = list(range(12))
        assert parallel_map(_square, items, jobs=2) == parallel_map(
            _square, items, jobs=1
        )

    def test_failure_in_worker_process(self):
        results = parallel_map(_square_unless_three, [1, 3, 5], jobs=2)
        assert results[0] == 1 and results[2] == 25
        assert isinstance(results[1], TaskFailure)
        assert results[1].item == 3

    def test_unpicklable_item_becomes_failure(self):
        # The pickling error surfaces on the submission side; it must be
        # contained as a TaskFailure, not abort the sweep.
        results = parallel_map(_square, [2, lambda: None, 4], jobs=2)
        assert results[0] == 4 and results[2] == 16
        assert isinstance(results[1], TaskFailure)


class TestStatsFunnel:
    """Worker collector stats must funnel back to the parent —
    identically for any worker count (the original bug: pooled sweeps
    silently dropped everything workers profiled)."""

    VALUES = [1.0, 2.0, 0.5, 4.0]

    def _profiled_sweep(self, jobs: int):
        profiler = profiling.Profiler()
        with profiling.activated(profiler):
            results = parallel_map(_profiled_square, self.VALUES, jobs=jobs)
        assert results == [v * v for v in self.VALUES]
        return profiler.stats()

    def test_pool_profiler_stats_match_serial(self):
        serial = self._profiled_sweep(jobs=1)
        pooled = self._profiled_sweep(jobs=2)
        assert serial == pooled
        assert serial["work.item"].count == len(self.VALUES)
        assert serial["work.item"].total_ms == pytest.approx(7.5e3)

    def test_telemetry_metrics_funnel_back(self):
        from repro.telemetry import TelemetryRecorder, activated

        snapshots = {}
        for jobs in (1, 2):
            with activated(TelemetryRecorder()) as rec:
                parallel_map(_telemetered_square, self.VALUES, jobs=jobs)
            snapshots[jobs] = rec.metrics.snapshot()
        assert snapshots[1] == snapshots[2]
        assert snapshots[1]["counters"]["tasks"] == len(self.VALUES)
        assert snapshots[1]["histograms"]["task.value"] == self.VALUES

    def test_inactive_collectors_funnel_nothing(self):
        # No profiler active in the parent: the plain path runs and the
        # worker-side get_active() would be None — the funnel must not
        # scope collectors nobody asked for.
        assert profiling.get_active() is None
        assert parallel_map(_square, [1, 2], jobs=1) == [1, 4]
        assert profiling.get_active() is None


class TestTaskSeed:
    def test_matches_indexed_stream(self):
        assert task_seed(7, "sweep", 3) == stream_seed(7, "sweep/3")

    def test_distinct_per_index(self):
        seeds = {task_seed(7, "sweep", i) for i in range(32)}
        assert len(seeds) == 32

    def test_deterministic(self):
        assert task_seed(1, "a", 0) == task_seed(1, "a", 0)


class TestPersistentPool:
    """The executor persists across sweeps: consecutive characterization
    phases (prescreen grid, then knob grid) must not pay worker
    spawn-and-import twice."""

    def test_back_to_back_sweeps_reuse_workers(self):
        shutdown_pool()  # a defined starting point
        try:
            first = parallel_map(_worker_pid, range(8), jobs=2)
            second = parallel_map(_worker_pid, range(8), jobs=2)
            # Workers spawned once: both sweeps draw from the same two
            # pool processes (a fast worker may grab every task of one
            # sweep, so the per-sweep sets need not be equal).
            assert len(set(first) | set(second)) <= 2
            assert all(pid != os.getpid() for pid in first)
        finally:
            shutdown_pool()

    def test_worker_count_change_rebuilds_pool(self):
        shutdown_pool()
        try:
            two = set(parallel_map(_worker_pid, range(8), jobs=2))
            three = set(parallel_map(_worker_pid, range(12), jobs=3))
            assert len(three - two) > 0  # at least one fresh worker
        finally:
            shutdown_pool()

    def test_shutdown_pool_discards_workers(self):
        shutdown_pool()
        try:
            first = set(parallel_map(_worker_pid, range(8), jobs=2))
            shutdown_pool()
            second = set(parallel_map(_worker_pid, range(8), jobs=2))
            assert first.isdisjoint(second)
        finally:
            shutdown_pool()

    def test_shutdown_without_pool_is_noop(self):
        shutdown_pool()
        shutdown_pool()


class TestResolveBatch:
    def test_explicit_beats_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_BATCH", "4")
        assert resolve_batch(8, n_tasks=100) == 8

    def test_env_supplies_default(self, monkeypatch):
        monkeypatch.setenv("REPRO_BATCH", "6")
        assert resolve_batch(None, n_tasks=100) == 6

    def test_auto_splits_tasks_across_jobs(self, monkeypatch):
        monkeypatch.delenv("REPRO_BATCH", raising=False)
        assert resolve_batch(None, n_tasks=100, jobs=4) == 16  # capped
        assert resolve_batch("auto", n_tasks=12, jobs=4) == 3
        assert resolve_batch(0, n_tasks=3, jobs=4) == 1

    def test_floor_is_one(self, monkeypatch):
        monkeypatch.delenv("REPRO_BATCH", raising=False)
        assert resolve_batch(None, n_tasks=0, jobs=2) == 1

    def test_invalid_values_rejected(self):
        with pytest.raises(ValueError):
            resolve_batch(-1, n_tasks=10)
        with pytest.raises(ValueError):
            resolve_batch("many", n_tasks=10)
