"""Tests for repro.utils: rng derivation, validation, artifact cache."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.utils.cache import ArtifactCache, config_hash
from repro.utils.rng import derive_rng, seed_everything, stream_seed
from repro.utils.validation import (
    check_finite,
    check_in_range,
    check_positive,
    check_shape,
)


class TestRng:
    def test_same_seed_same_stream_is_deterministic(self):
        a = derive_rng(42, "camera").random(8)
        b = derive_rng(42, "camera").random(8)
        np.testing.assert_array_equal(a, b)

    def test_different_streams_are_independent(self):
        a = derive_rng(42, "camera").random(8)
        b = derive_rng(42, "dataset").random(8)
        assert not np.allclose(a, b)

    def test_different_seeds_differ(self):
        assert stream_seed(1, "x") != stream_seed(2, "x")

    def test_stream_seed_is_63_bit(self):
        assert 0 <= stream_seed(123, "abc") < 2**63

    @given(st.integers(min_value=0, max_value=2**40), st.text(max_size=20))
    @settings(max_examples=50, deadline=None)
    def test_stream_seed_stable_under_repetition(self, seed, stream):
        assert stream_seed(seed, stream) == stream_seed(seed, stream)

    def test_seed_everything_returns_generator(self):
        gen = seed_everything(7)
        assert isinstance(gen, np.random.Generator)


class TestValidation:
    def test_check_positive_accepts(self):
        assert check_positive("x", 1.5) == 1.5

    def test_check_positive_rejects_zero(self):
        with pytest.raises(ValueError, match="x must be > 0"):
            check_positive("x", 0.0)

    def test_check_in_range_inclusive_bounds(self):
        assert check_in_range("x", 1.0, 1.0, 2.0) == 1.0

    def test_check_in_range_exclusive_rejects_bound(self):
        with pytest.raises(ValueError):
            check_in_range("x", 1.0, 1.0, 2.0, inclusive=False)

    def test_check_shape_wildcard(self):
        arr = np.zeros((3, 5))
        check_shape("a", arr, (-1, 5))

    def test_check_shape_mismatch(self):
        with pytest.raises(ValueError, match="shape"):
            check_shape("a", np.zeros((3, 4)), (3, 5))

    def test_check_finite_rejects_nan(self):
        with pytest.raises(ValueError, match="non-finite"):
            check_finite("a", np.array([1.0, np.nan]))


class TestArtifactCache:
    def test_round_trip(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        cache = ArtifactCache("unit", enabled=True)
        config = {"a": 1, "b": [1, 2]}
        assert cache.load(config) is None
        cache.store(config, {"x": np.arange(4)})
        loaded = cache.load(config)
        np.testing.assert_array_equal(loaded["x"], np.arange(4))

    def test_different_config_misses(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        cache = ArtifactCache("unit", enabled=True)
        cache.store({"a": 1}, {"x": np.zeros(1)})
        assert cache.load({"a": 2}) is None

    def test_disabled_cache_never_hits(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        cache = ArtifactCache("unit", enabled=False)
        cache.store({"a": 1}, {"x": np.zeros(1)})
        assert cache.load({"a": 1}) is None

    def test_clear_removes_entries(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        cache = ArtifactCache("unit", enabled=True)
        cache.store({"a": 1}, {"x": np.zeros(1)})
        assert cache.clear() == 1
        assert cache.load({"a": 1}) is None

    def test_corrupt_entry_behaves_as_miss(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        cache = ArtifactCache("unit", enabled=True)
        path = cache.store({"a": 1}, {"x": np.zeros(1)})
        path.write_bytes(b"not an npz")
        assert cache.load({"a": 1}) is None

    def test_config_hash_order_independent(self):
        assert config_hash({"a": 1, "b": 2}) == config_hash({"b": 2, "a": 1})

    def test_config_hash_handles_numpy_scalars(self):
        assert config_hash({"a": np.int64(3)}) == config_hash({"a": 3})

    def test_clear_sweeps_orphaned_tmp_files(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        cache = ArtifactCache("unit", enabled=True)
        cache.store({"a": 1}, {"x": np.zeros(1)})
        orphan = cache.root / "deadbeef.npz.tmp"
        orphan.write_bytes(b"partial write")
        # Orphans are removed but never counted as entries.
        assert cache.clear() == 1
        assert not orphan.exists()
        assert list(cache.root.glob("*.npz.tmp")) == []

    def test_store_sweeps_stale_tmp_but_keeps_fresh(self, tmp_path, monkeypatch):
        import os

        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        cache = ArtifactCache("unit", enabled=True)
        cache.root.mkdir(parents=True, exist_ok=True)
        stale = cache.root / "stale.npz.tmp"
        stale.write_bytes(b"interrupted hours ago")
        os.utime(stale, (1.0, 1.0))  # mtime far in the past
        fresh = cache.root / "fresh.npz.tmp"
        fresh.write_bytes(b"concurrent writer in flight")
        cache.store({"a": 1}, {"x": np.zeros(1)})
        assert not stale.exists()
        assert fresh.exists()  # recent tmp may belong to a live writer

    def test_concurrent_writers_same_key(self, tmp_path, monkeypatch):
        from concurrent.futures import ThreadPoolExecutor

        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        cache = ArtifactCache("unit", enabled=True)
        config = {"a": 1}
        payloads = [np.full(64, float(i)) for i in range(8)]

        with ThreadPoolExecutor(max_workers=8) as pool:
            list(pool.map(lambda arr: cache.store(config, {"x": arr}), payloads))

        # Exactly one visible entry, no leftover temp files, and the
        # winning entry is one complete payload (last rename wins).
        assert len(list(cache.root.glob("*.npz"))) == 1
        assert list(cache.root.glob("*.npz.tmp")) == []
        loaded = cache.load(config)["x"]
        assert any(np.array_equal(loaded, arr) for arr in payloads)
