"""Mini-batch training loop with validation tracking."""

from __future__ import annotations

import logging
from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from repro.nn.layers import Layer
from repro.nn.losses import softmax, softmax_cross_entropy
from repro.nn.optim import Adam
from repro.utils.rng import derive_rng

__all__ = ["TrainConfig", "TrainReport", "Trainer"]

_log = logging.getLogger(__name__)


@dataclass(frozen=True)
class TrainConfig:
    """Hyper-parameters of one training run."""

    epochs: int = 18
    batch_size: int = 64
    lr: float = 2e-3
    lr_decay: float = 0.3
    lr_decay_at: float = 0.6
    weight_decay: float = 1e-5
    seed: int = 0
    early_stop_accuracy: float = 0.9995

    def __post_init__(self):
        if self.epochs < 1 or self.batch_size < 1:
            raise ValueError("epochs and batch_size must be >= 1")


@dataclass
class TrainReport:
    """Per-epoch history and final validation metrics."""

    train_loss: List[float] = field(default_factory=list)
    train_accuracy: List[float] = field(default_factory=list)
    val_accuracy: List[float] = field(default_factory=list)
    epochs_run: int = 0

    @property
    def final_val_accuracy(self) -> float:
        """Validation accuracy after the last epoch (NaN if none)."""
        return self.val_accuracy[-1] if self.val_accuracy else float("nan")


class Trainer:
    """Trains a classification model with Adam + softmax cross-entropy."""

    def __init__(self, model: Layer, config: TrainConfig = TrainConfig()):
        self.model = model
        self.config = config
        self.optimizer = Adam(
            model.parameters(), lr=config.lr, weight_decay=config.weight_decay
        )

    def fit(
        self,
        x_train: np.ndarray,
        y_train: np.ndarray,
        x_val: Optional[np.ndarray] = None,
        y_val: Optional[np.ndarray] = None,
        verbose: bool = False,
    ) -> TrainReport:
        """Train and return the per-epoch history."""
        cfg = self.config
        rng = derive_rng(cfg.seed, "trainer/shuffle")
        n = x_train.shape[0]
        report = TrainReport()

        decay_epoch = max(1, int(cfg.epochs * cfg.lr_decay_at))
        for epoch in range(cfg.epochs):
            if epoch == decay_epoch:
                self.optimizer.lr *= cfg.lr_decay
            order = rng.permutation(n)
            losses = []
            correct = 0
            for start in range(0, n, cfg.batch_size):
                idx = order[start : start + cfg.batch_size]
                xb = x_train[idx]
                yb = y_train[idx]
                logits = self.model.forward(xb, training=True)
                loss, grad = softmax_cross_entropy(logits, yb)
                self.optimizer.zero_grad()
                self.model.backward(grad)
                self.optimizer.step()
                losses.append(loss)
                correct += int((logits.argmax(axis=1) == yb).sum())
            report.train_loss.append(float(np.mean(losses)))
            report.train_accuracy.append(correct / n)
            if x_val is not None and y_val is not None:
                val_acc = self.evaluate(x_val, y_val)
                report.val_accuracy.append(val_acc)
                if verbose:
                    _log.info(
                        "epoch %d/%d: loss %.4f train %.4f val %.4f",
                        epoch + 1,
                        cfg.epochs,
                        report.train_loss[-1],
                        report.train_accuracy[-1],
                        val_acc,
                    )
                if val_acc >= cfg.early_stop_accuracy:
                    report.epochs_run = epoch + 1
                    return report
            report.epochs_run = epoch + 1
        return report

    def evaluate(
        self, x: np.ndarray, y: np.ndarray, batch_size: int = 256
    ) -> float:
        """Top-1 accuracy in inference mode."""
        correct = 0
        for start in range(0, x.shape[0], batch_size):
            logits = self.model.forward(x[start : start + batch_size], training=False)
            correct += int((logits.argmax(axis=1) == y[start : start + batch_size]).sum())
        return correct / x.shape[0]

    def predict_proba(self, x: np.ndarray) -> np.ndarray:
        """Class probabilities in inference mode."""
        return softmax(self.model.forward(x, training=False))
