"""Model containers: sequential stacks, residual blocks, and fusion.

``Sequential.fuse()`` produces the deployment form of a trained model:
every conv+BN pair (including those inside residual blocks) is folded
into a single conv via :func:`repro.nn.layers.fuse_conv_bn`, which
removes five full-tensor passes per classifier forward and all BN
broadcasting temporaries from the per-cycle hot path.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.utils.contracts import check_finite, check_shapes
from repro.nn.layers import (
    BatchNorm2D,
    Conv2D,
    Dense,
    Layer,
    Parameter,
    ReLU,
    fuse_conv_bn,
)

__all__ = ["Sequential", "ResidualBlock", "FusedResidualBlock"]


def _forward_per_row(layer: Layer, x: np.ndarray) -> np.ndarray:
    """Apply a GEMM-backed layer row by row, stacking the results."""
    return np.concatenate(
        [layer.forward(x[row : row + 1]) for row in range(x.shape[0])],
        axis=0,
    )


class Sequential(Layer):
    """A plain chain of layers."""

    def __init__(self, *layers: Layer):
        if not layers:
            raise ValueError("Sequential needs at least one layer")
        self.layers: List[Layer] = list(layers)

    def parameters(self) -> List[Parameter]:
        params: List[Parameter] = []
        for layer in self.layers:
            params.extend(layer.parameters())
        return params

    @check_finite("x", result=True)
    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        for layer in self.layers:
            x = layer.forward(x, training)
        return x

    @check_finite("grad")
    def backward(self, grad: np.ndarray) -> np.ndarray:
        for layer in reversed(self.layers):
            grad = layer.backward(grad)
        return grad

    @check_finite("x", result=True)
    def forward_rows(self, x: np.ndarray) -> np.ndarray:
        """Inference forward of a stacked batch, bit-identical per row.

        Pooling and elementwise layers are batch-invariant over the
        leading axis, so they run stacked; GEMM-backed layers are not —
        BLAS picks its kernel blocking from the total matrix size, so
        the same row can accumulate in a different order inside a bigger
        batch (``Dense`` via gemv-vs-gemm, ``Conv2D`` via the flat
        im2col GEMM whose column count scales with the batch).  Those
        run one row at a time into the stacked result, keeping each
        lane's reduction order exactly serial.  Row *i* of the result is
        therefore bitwise equal to ``forward(x[i:i+1])``.
        """
        for layer in self.layers:
            if isinstance(layer, (Conv2D, Dense)):
                x = _forward_per_row(layer, x)
            elif isinstance(layer, (Sequential, ResidualBlock, FusedResidualBlock)):
                x = layer.forward_rows(x)
            else:
                x = layer.forward(x, False)
        return x

    def fuse(self) -> "Sequential":
        """An inference-only copy with frozen BatchNorms folded away.

        - ``Conv2D`` followed by ``BatchNorm2D`` becomes one conv with
          folded weights/bias (fresh parameter arrays);
        - ``ResidualBlock`` becomes a :class:`FusedResidualBlock`;
        - every other layer is shared with the original model (they are
          stateless at inference; ``Dense`` weights stay shared).

        Outputs match the unfused model to float32 rounding (the
        reference tests bound the difference at 1e-4).  The fused model
        must not be trained: fused layers have no BN to update and
        raise on ``backward``.
        """
        fused: List[Layer] = []
        i = 0
        while i < len(self.layers):
            layer = self.layers[i]
            nxt = self.layers[i + 1] if i + 1 < len(self.layers) else None
            if isinstance(layer, Conv2D) and isinstance(nxt, BatchNorm2D):
                fused.append(fuse_conv_bn(layer, nxt))
                i += 2
            elif isinstance(layer, ResidualBlock):
                fused.append(FusedResidualBlock(layer))
                i += 1
            elif isinstance(layer, Sequential):
                fused.append(layer.fuse())
                i += 1
            else:
                fused.append(layer)
                i += 1
        return Sequential(*fused)


class ResidualBlock(Layer):
    """conv-bn-relu-conv-bn + identity (or 1x1 projection) skip, relu.

    The basic block of ResNet-18 [17], at the scale the synthetic
    situation-classification task needs.
    """

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        rng: np.random.Generator,
    ):
        self.conv1 = Conv2D(in_channels, out_channels, 3, rng, bias=False)
        self.bn1 = BatchNorm2D(out_channels)
        self.relu1 = ReLU()
        self.conv2 = Conv2D(out_channels, out_channels, 3, rng, bias=False)
        self.bn2 = BatchNorm2D(out_channels)
        self.relu2 = ReLU()
        self.projection: Optional[Conv2D] = None
        if in_channels != out_channels:
            self.projection = Conv2D(
                in_channels, out_channels, 1, rng, padding=0, bias=False
            )

    def parameters(self) -> List[Parameter]:
        params = (
            self.conv1.parameters()
            + self.bn1.parameters()
            + self.conv2.parameters()
            + self.bn2.parameters()
        )
        if self.projection is not None:
            params += self.projection.parameters()
        return params

    @check_shapes(x=("N", "C", "H", "W"))
    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        out = self.conv1.forward(x, training)
        out = self.bn1.forward(out, training)
        out = self.relu1.forward(out, training)
        out = self.conv2.forward(out, training)
        out = self.bn2.forward(out, training)
        skip = x if self.projection is None else self.projection.forward(x, training)
        return self.relu2.forward(out + skip, training)

    def backward(self, grad: np.ndarray) -> np.ndarray:
        grad = self.relu2.backward(grad)
        grad_main = self.bn2.backward(grad)
        grad_main = self.conv2.backward(grad_main)
        grad_main = self.relu1.backward(grad_main)
        grad_main = self.bn1.backward(grad_main)
        grad_main = self.conv1.backward(grad_main)
        if self.projection is not None:
            grad_skip = self.projection.backward(grad)
        else:
            grad_skip = grad
        return grad_main + grad_skip

    def forward_rows(self, x: np.ndarray) -> np.ndarray:
        """Batched inference, bit-identical per row (see Sequential)."""
        out = _forward_per_row(self.conv1, x)
        out = self.bn1.forward(out, False)
        out = self.relu1.forward(out, False)
        out = _forward_per_row(self.conv2, out)
        out = self.bn2.forward(out, False)
        skip = x if self.projection is None else _forward_per_row(self.projection, x)
        return self.relu2.forward(out + skip, False)


class FusedResidualBlock(Layer):
    """Inference-only residual block with BN folded into its convs.

    The forward pass owns every intermediate buffer (conv outputs are
    fresh arrays), so the ReLUs and the skip-add run in place — one
    block forward performs exactly three GEMMs (two with projection
    absent) and no other full-tensor passes.
    """

    def __init__(self, block: ResidualBlock):
        self.conv1 = fuse_conv_bn(block.conv1, block.bn1)
        self.conv2 = fuse_conv_bn(block.conv2, block.bn2)
        self.projection: Optional[Conv2D] = block.projection

    def parameters(self) -> List[Parameter]:
        params = self.conv1.parameters() + self.conv2.parameters()
        if self.projection is not None:
            params += self.projection.parameters()
        return params

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        if training:
            raise RuntimeError(
                "FusedResidualBlock is inference-only; train the unfused model"
            )
        out = self.conv1.forward(x)
        np.maximum(out, 0.0, out=out)
        out = self.conv2.forward(out)
        if self.projection is not None:
            out += self.projection.forward(x)
        else:
            out += x
        np.maximum(out, 0.0, out=out)
        return out

    def forward_rows(self, x: np.ndarray) -> np.ndarray:
        """Batched inference, bit-identical per row (see Sequential)."""
        out = _forward_per_row(self.conv1, x)
        np.maximum(out, 0.0, out=out)
        out = _forward_per_row(self.conv2, out)
        if self.projection is not None:
            out += _forward_per_row(self.projection, x)
        else:
            out += x
        np.maximum(out, 0.0, out=out)
        return out

    def backward(self, grad: np.ndarray) -> np.ndarray:
        raise RuntimeError(
            "FusedResidualBlock is inference-only; train the unfused model"
        )
