"""Model containers: sequential stacks and residual blocks."""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.analysis.contracts import check_finite, check_shapes
from repro.nn.layers import BatchNorm2D, Conv2D, Layer, Parameter, ReLU

__all__ = ["Sequential", "ResidualBlock"]


class Sequential(Layer):
    """A plain chain of layers."""

    def __init__(self, *layers: Layer):
        if not layers:
            raise ValueError("Sequential needs at least one layer")
        self.layers: List[Layer] = list(layers)

    def parameters(self) -> List[Parameter]:
        params: List[Parameter] = []
        for layer in self.layers:
            params.extend(layer.parameters())
        return params

    @check_finite("x", result=True)
    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        for layer in self.layers:
            x = layer.forward(x, training)
        return x

    @check_finite("grad")
    def backward(self, grad: np.ndarray) -> np.ndarray:
        for layer in reversed(self.layers):
            grad = layer.backward(grad)
        return grad


class ResidualBlock(Layer):
    """conv-bn-relu-conv-bn + identity (or 1x1 projection) skip, relu.

    The basic block of ResNet-18 [17], at the scale the synthetic
    situation-classification task needs.
    """

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        rng: np.random.Generator,
    ):
        self.conv1 = Conv2D(in_channels, out_channels, 3, rng, bias=False)
        self.bn1 = BatchNorm2D(out_channels)
        self.relu1 = ReLU()
        self.conv2 = Conv2D(out_channels, out_channels, 3, rng, bias=False)
        self.bn2 = BatchNorm2D(out_channels)
        self.relu2 = ReLU()
        self.projection: Optional[Conv2D] = None
        if in_channels != out_channels:
            self.projection = Conv2D(
                in_channels, out_channels, 1, rng, padding=0, bias=False
            )

    def parameters(self) -> List[Parameter]:
        params = (
            self.conv1.parameters()
            + self.bn1.parameters()
            + self.conv2.parameters()
            + self.bn2.parameters()
        )
        if self.projection is not None:
            params += self.projection.parameters()
        return params

    @check_shapes(x=("N", "C", "H", "W"))
    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        out = self.conv1.forward(x, training)
        out = self.bn1.forward(out, training)
        out = self.relu1.forward(out, training)
        out = self.conv2.forward(out, training)
        out = self.bn2.forward(out, training)
        skip = x if self.projection is None else self.projection.forward(x, training)
        return self.relu2.forward(out + skip, training)

    def backward(self, grad: np.ndarray) -> np.ndarray:
        grad = self.relu2.backward(grad)
        grad_main = self.bn2.backward(grad)
        grad_main = self.conv2.backward(grad_main)
        grad_main = self.relu1.backward(grad_main)
        grad_main = self.bn1.backward(grad_main)
        grad_main = self.conv1.backward(grad_main)
        if self.projection is not None:
            grad_skip = self.projection.backward(grad)
        else:
            grad_skip = grad
        return grad_main + grad_skip
