"""Weight (de)serialization for nn models.

Weights are stored positionally: ``Layer.parameters()`` returns
parameters in a deterministic order, so saving the flat list and
loading it into an identically-constructed model round-trips exactly.
BatchNorm running statistics are captured as well.
"""

from __future__ import annotations

from typing import Dict, List

import numpy as np

from repro.nn.layers import BatchNorm2D, Layer

__all__ = ["model_state", "load_state", "save_model_weights", "load_model_weights"]


def _batchnorms(layer: Layer) -> List[BatchNorm2D]:
    found: List[BatchNorm2D] = []
    if isinstance(layer, BatchNorm2D):
        found.append(layer)
    for attr in vars(layer).values():
        if isinstance(attr, Layer):
            found.extend(_batchnorms(attr))
        elif isinstance(attr, list):
            for item in attr:
                if isinstance(item, Layer):
                    found.extend(_batchnorms(item))
    return found


def model_state(model: Layer) -> Dict[str, np.ndarray]:
    """Capture parameters + batch-norm statistics as named arrays."""
    state: Dict[str, np.ndarray] = {}
    for i, param in enumerate(model.parameters()):
        state[f"param_{i:03d}"] = param.value
    for i, bn in enumerate(_batchnorms(model)):
        state[f"bn_{i:03d}_mean"] = bn.running_mean
        state[f"bn_{i:03d}_var"] = bn.running_var
    return state


def load_state(model: Layer, state: Dict[str, np.ndarray]) -> None:
    """Inverse of :func:`model_state`; shapes must match exactly."""
    params = model.parameters()
    for i, param in enumerate(params):
        key = f"param_{i:03d}"
        if key not in state:
            raise ValueError(f"missing weight {key} in state")
        value = state[key]
        if value.shape != param.value.shape:
            raise ValueError(
                f"{key}: shape {value.shape} != expected {param.value.shape}"
            )
        param.value = value.astype(np.float32)
        param.grad = np.zeros_like(param.value)
    for i, bn in enumerate(_batchnorms(model)):
        bn.running_mean = state[f"bn_{i:03d}_mean"].astype(np.float32)
        bn.running_var = state[f"bn_{i:03d}_var"].astype(np.float32)


def save_model_weights(model: Layer, path: str) -> None:
    """Persist a model's weights to an ``.npz`` file."""
    np.savez(path, **model_state(model))


def load_model_weights(model: Layer, path: str) -> None:
    """Load ``.npz`` weights into an identically-built model."""
    with np.load(path) as data:
        load_state(model, {name: data[name] for name in data.files})
