"""Minimal neural-network framework (numpy only).

Implements exactly what the situation classifiers need: convolution
(im2col), batch norm, ReLU, pooling, dense layers, softmax
cross-entropy, SGD-with-momentum / Adam, a sequential container with
residual blocks (the ResNet-18 design cue of Table IV, scaled to the
synthetic task), and ``.npz`` serialization.

Data layout is NCHW throughout.
"""

from repro.nn.layers import (
    Layer,
    Parameter,
    Dense,
    ReLU,
    Flatten,
    Conv2D,
    BatchNorm2D,
    MaxPool2D,
    GlobalAvgPool2D,
    fuse_conv_bn,
)
from repro.nn.model import Sequential, ResidualBlock, FusedResidualBlock
from repro.nn.losses import softmax_cross_entropy, softmax
from repro.nn.optim import SGD, Adam
from repro.nn.trainer import Trainer, TrainConfig, TrainReport
from repro.nn.serialize import save_model_weights, load_model_weights

__all__ = [
    "Layer",
    "Parameter",
    "Dense",
    "ReLU",
    "Flatten",
    "Conv2D",
    "BatchNorm2D",
    "MaxPool2D",
    "GlobalAvgPool2D",
    "Sequential",
    "ResidualBlock",
    "FusedResidualBlock",
    "fuse_conv_bn",
    "softmax_cross_entropy",
    "softmax",
    "SGD",
    "Adam",
    "Trainer",
    "TrainConfig",
    "TrainReport",
    "save_model_weights",
    "load_model_weights",
]
