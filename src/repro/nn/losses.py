"""Classification loss: numerically stable softmax cross-entropy."""

from __future__ import annotations

from typing import Tuple

import numpy as np

__all__ = ["softmax", "softmax_cross_entropy"]


def softmax(logits: np.ndarray) -> np.ndarray:
    """Row-wise softmax of a ``(N, C)`` logit matrix."""
    shifted = logits - logits.max(axis=1, keepdims=True)
    exp = np.exp(shifted)
    return exp / exp.sum(axis=1, keepdims=True)


def softmax_cross_entropy(
    logits: np.ndarray, labels: np.ndarray
) -> Tuple[float, np.ndarray]:
    """Mean cross-entropy loss and its gradient w.r.t. the logits.

    Parameters
    ----------
    logits:
        ``(N, C)`` raw scores.
    labels:
        ``(N,)`` integer class indices.

    Returns
    -------
    (loss, grad):
        Scalar mean loss and the ``(N, C)`` gradient (already divided
        by the batch size, ready for ``backward``).
    """
    n = logits.shape[0]
    if labels.shape != (n,):
        raise ValueError(f"labels shape {labels.shape} != ({n},)")
    probs = softmax(logits)
    picked = probs[np.arange(n), labels]
    loss = float(-np.log(np.maximum(picked, 1e-12)).mean())
    grad = probs.copy()
    grad[np.arange(n), labels] -= 1.0
    grad /= n
    return loss, grad.astype(np.float32)
