"""Layers: forward/backward pairs with explicit parameter objects.

Every layer implements ``forward(x, training)`` and ``backward(grad)``;
``backward`` must be called with the gradient w.r.t. the forward output
and returns the gradient w.r.t. the forward input, accumulating
parameter gradients on the way.  Arrays are float32, layout NCHW:
parameters are *created* float32 at initialization so no GEMM ever
promotes to float64, and ``forward(training=False)`` allocates no
backward caches and draws its im2col temporaries from a bounded
scratch pool (zero steady-state allocation for repeated shapes).
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from repro.utils.scratch import ScratchCache

__all__ = [
    "Parameter",
    "Layer",
    "Dense",
    "ReLU",
    "Flatten",
    "Conv2D",
    "BatchNorm2D",
    "MaxPool2D",
    "GlobalAvgPool2D",
    "fuse_conv_bn",
]

#: Shared inference-only scratch buffers (padded inputs, im2col
#: columns).  Bounded LRU so multi-resolution sessions cannot grow it
#: without limit; see :mod:`repro.utils.scratch` for the safety rules.
_INFERENCE_SCRATCH = ScratchCache(max_entries=64)


class Parameter:
    """A trainable tensor with its gradient accumulator."""

    def __init__(self, value: np.ndarray, name: str = ""):
        self.value = value.astype(np.float32)
        self.grad = np.zeros_like(self.value)
        self.name = name

    def zero_grad(self) -> None:
        """Zero the gradient accumulator."""
        self.grad[...] = 0.0

    @property
    def size(self) -> int:
        """Number of scalar weights in the parameter."""
        return int(self.value.size)


class Layer:
    """Base class; stateless layers only override forward/backward."""

    def parameters(self) -> List[Parameter]:
        return []

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        raise NotImplementedError

    def backward(self, grad: np.ndarray) -> np.ndarray:
        raise NotImplementedError


class Dense(Layer):
    """Fully connected layer ``y = x W + b``."""

    def __init__(self, in_features: int, out_features: int, rng: np.random.Generator):
        scale = np.sqrt(2.0 / in_features)
        # He init, cast once at creation: parameters live as float32 so
        # every downstream GEMM runs in float32 (no float64 promotion).
        self.w = Parameter(
            (rng.standard_normal((in_features, out_features)) * scale).astype(
                np.float32
            ),
            "dense/w",
        )
        self.b = Parameter(np.zeros(out_features, dtype=np.float32), "dense/b")
        self._x: Optional[np.ndarray] = None

    def parameters(self) -> List[Parameter]:
        return [self.w, self.b]

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        self._x = x if training else None
        return x @ self.w.value + self.b.value

    def backward(self, grad: np.ndarray) -> np.ndarray:
        assert self._x is not None, "backward before forward(training=True)"
        self.w.grad += self._x.T @ grad
        self.b.grad += grad.sum(axis=0)
        return grad @ self.w.value.T


class ReLU(Layer):
    def __init__(self):
        self._mask: Optional[np.ndarray] = None

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        out = np.maximum(x, 0.0)
        self._mask = x > 0 if training else None
        return out

    def backward(self, grad: np.ndarray) -> np.ndarray:
        assert self._mask is not None
        return grad * self._mask


class Flatten(Layer):
    def __init__(self):
        self._shape: Optional[Tuple[int, ...]] = None

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        self._shape = x.shape
        return x.reshape(x.shape[0], -1)

    def backward(self, grad: np.ndarray) -> np.ndarray:
        assert self._shape is not None
        return grad.reshape(self._shape)


def _im2col(x: np.ndarray, kh: int, kw: int, stride: int, pad: int,
            scratch: Optional[ScratchCache] = None):
    """Rearrange (N, C, H, W) into GEMM-ready columns.

    Returns ``(cols, out_h, out_w)`` with ``cols`` of shape
    ``(C * kh * kw, N * out_h * out_w)`` — already contiguous in the
    layout the convolution GEMM consumes, so no transpose copy is
    needed afterwards.

    With *scratch* (inference only) the padded input and the column
    buffer come from the pool instead of fresh allocations — the
    returned ``cols`` view is only valid until the next same-shape
    call, which is fine because the conv GEMM consumes it immediately.
    ``np.pad`` is also bypassed: the pooled padding buffer is created
    zero-filled, only its interior is rewritten per call, so its
    borders stay zero forever (same values, none of the python-level
    ``np.pad`` overhead).
    """
    n, c, h, w = x.shape
    out_h = (h + 2 * pad - kh) // stride + 1
    out_w = (w + 2 * pad - kw) // stride + 1
    if pad:
        if scratch is not None:
            padded = scratch.get(
                "im2col-pad", (n, c, h + 2 * pad, w + 2 * pad), x.dtype, zero=True
            )
            padded[:, :, pad : pad + h, pad : pad + w] = x
            x = padded
        else:
            x = np.pad(x, ((0, 0), (0, 0), (pad, pad), (pad, pad)))
    cols_shape = (c, kh, kw, n, out_h, out_w)
    if scratch is not None:
        cols = scratch.get("im2col-cols", cols_shape, x.dtype)
    else:
        cols = np.empty(cols_shape, dtype=x.dtype)
    for i in range(kh):
        i_end = i + stride * out_h
        for j in range(kw):
            j_end = j + stride * out_w
            # (N, C, oh, ow) -> (C, N, oh, ow)
            cols[:, i, j] = x[:, :, i:i_end:stride, j:j_end:stride].transpose(
                1, 0, 2, 3
            )
    return cols.reshape(c * kh * kw, n * out_h * out_w), out_h, out_w


def _col2im(cols: np.ndarray, x_shape, kh: int, kw: int, stride: int, pad: int):
    """Inverse of :func:`_im2col` (accumulating overlaps)."""
    n, c, h, w = x_shape
    out_h = (h + 2 * pad - kh) // stride + 1
    out_w = (w + 2 * pad - kw) // stride + 1
    cols = cols.reshape(c, kh, kw, n, out_h, out_w)
    x = np.zeros((c, n, h + 2 * pad, w + 2 * pad), dtype=cols.dtype)
    for i in range(kh):
        i_end = i + stride * out_h
        for j in range(kw):
            j_end = j + stride * out_w
            x[:, :, i:i_end:stride, j:j_end:stride] += cols[:, i, j]
    x = x.transpose(1, 0, 2, 3)
    if pad:
        return x[:, :, pad:-pad, pad:-pad]
    return x


class Conv2D(Layer):
    """2-D convolution via im2col, He-initialized."""

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        kernel_size: int,
        rng: np.random.Generator,
        stride: int = 1,
        padding: Optional[int] = None,
        bias: bool = True,
    ):
        if padding is None:
            padding = kernel_size // 2
        self.in_channels = in_channels
        self.out_channels = out_channels
        self.kernel_size = kernel_size
        self.stride = stride
        self.padding = padding
        fan_in = in_channels * kernel_size * kernel_size
        scale = np.sqrt(2.0 / fan_in)
        self.w = Parameter(
            (rng.standard_normal((out_channels, fan_in)) * scale).astype(np.float32),
            "conv/w",
        )
        self.b = (
            Parameter(np.zeros(out_channels, dtype=np.float32), "conv/b")
            if bias
            else None
        )
        self._cache = None

    @classmethod
    def from_weights(
        cls,
        w: np.ndarray,
        b: Optional[np.ndarray],
        kernel_size: int,
        stride: int = 1,
        padding: int = 0,
        name: str = "conv/w",
    ) -> "Conv2D":
        """Build a conv directly from a ``(out_ch, fan_in)`` weight matrix.

        Used by :func:`fuse_conv_bn` to materialize folded weights
        without burning RNG draws.
        """
        conv = cls.__new__(cls)
        out_channels, fan_in = w.shape
        if fan_in % (kernel_size * kernel_size):
            raise ValueError(
                f"fan_in {fan_in} not divisible by k^2 = {kernel_size ** 2}"
            )
        conv.in_channels = fan_in // (kernel_size * kernel_size)
        conv.out_channels = out_channels
        conv.kernel_size = kernel_size
        conv.stride = stride
        conv.padding = padding
        conv.w = Parameter(w, name)
        conv.b = None if b is None else Parameter(b, name.replace("/w", "/b"))
        conv._cache = None
        return conv

    def parameters(self) -> List[Parameter]:
        return [self.w] + ([self.b] if self.b is not None else [])

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        # Inference draws its temporaries from the bounded scratch pool;
        # training allocates fresh (the column matrix is kept for
        # backward and must survive until then).
        flat, out_h, out_w = _im2col(
            x,
            self.kernel_size,
            self.kernel_size,
            self.stride,
            self.padding,
            scratch=None if training else _INFERENCE_SCRATCH,
        )
        n = x.shape[0]
        # One flat GEMM: (out_ch, fan_in) @ (fan_in, n * out_pixels).
        out = self.w.value @ flat
        if self.b is not None:
            out += self.b.value[:, None]
        self._cache = (x.shape, flat) if training else None
        return np.ascontiguousarray(
            out.reshape(self.out_channels, n, out_h, out_w).transpose(1, 0, 2, 3)
        )

    def backward(self, grad: np.ndarray) -> np.ndarray:
        assert self._cache is not None
        x_shape, flat = self._cache
        n = grad.shape[0]
        pixels = grad.shape[2] * grad.shape[3]
        grad_flat = np.ascontiguousarray(grad.transpose(1, 0, 2, 3)).reshape(
            self.out_channels, n * pixels
        )
        self.w.grad += grad_flat @ flat.T
        if self.b is not None:
            self.b.grad += grad_flat.sum(axis=1)
        dcols = self.w.value.T @ grad_flat
        return _col2im(
            dcols, x_shape, self.kernel_size, self.kernel_size, self.stride, self.padding
        )


class BatchNorm2D(Layer):
    """Batch normalization over (N, H, W) per channel."""

    def __init__(self, channels: int, momentum: float = 0.9, eps: float = 1e-5):
        self.gamma = Parameter(np.ones(channels, dtype=np.float32), "bn/gamma")
        self.beta = Parameter(np.zeros(channels, dtype=np.float32), "bn/beta")
        self.momentum = momentum
        self.eps = eps
        self.running_mean = np.zeros(channels, dtype=np.float32)
        self.running_var = np.ones(channels, dtype=np.float32)
        self._cache = None

    def parameters(self) -> List[Parameter]:
        return [self.gamma, self.beta]

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        if training:
            mean = x.mean(axis=(0, 2, 3))
            var = x.var(axis=(0, 2, 3))
            self.running_mean = (
                self.momentum * self.running_mean + (1 - self.momentum) * mean
            ).astype(np.float32)
            self.running_var = (
                self.momentum * self.running_var + (1 - self.momentum) * var
            ).astype(np.float32)
        else:
            mean = self.running_mean
            var = self.running_var
        inv_std = 1.0 / np.sqrt(var + self.eps)
        x_hat = (x - mean[None, :, None, None]) * inv_std[None, :, None, None]
        if training:
            self._cache = (x_hat, inv_std)
        return (
            self.gamma.value[None, :, None, None] * x_hat
            + self.beta.value[None, :, None, None]
        )

    def backward(self, grad: np.ndarray) -> np.ndarray:
        assert self._cache is not None
        x_hat, inv_std = self._cache
        n, _, h, w = grad.shape
        m = n * h * w
        self.gamma.grad += (grad * x_hat).sum(axis=(0, 2, 3))
        self.beta.grad += grad.sum(axis=(0, 2, 3))
        gamma = self.gamma.value[None, :, None, None]
        dx_hat = grad * gamma
        sum_dx_hat = dx_hat.sum(axis=(0, 2, 3), keepdims=True)
        sum_dx_hat_xhat = (dx_hat * x_hat).sum(axis=(0, 2, 3), keepdims=True)
        return (
            inv_std[None, :, None, None]
            * (dx_hat - sum_dx_hat / m - x_hat * sum_dx_hat_xhat / m)
        )


class MaxPool2D(Layer):
    """2x2 (or kxk) max pooling with stride = kernel."""

    def __init__(self, kernel_size: int = 2):
        self.k = kernel_size
        self._cache = None

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        n, c, h, w = x.shape
        k = self.k
        if h % k or w % k:
            raise ValueError(f"spatial dims {(h, w)} not divisible by pool {k}")
        xr = x.reshape(n, c, h // k, k, w // k, k)
        if not training and k == 2:
            # Pairwise maxima beat the generic two-axis reduction on the
            # small maps of the hot path (identical values: max is exact).
            out = np.maximum(
                np.maximum(xr[:, :, :, 0, :, 0], xr[:, :, :, 0, :, 1]),
                np.maximum(xr[:, :, :, 1, :, 0], xr[:, :, :, 1, :, 1]),
            )
            return out
        out = xr.max(axis=(3, 5))
        if training:
            mask = xr == out[:, :, :, None, :, None]
            self._cache = (mask, x.shape)
        return out

    def backward(self, grad: np.ndarray) -> np.ndarray:
        assert self._cache is not None
        mask, x_shape = self._cache
        k = self.k
        g = grad[:, :, :, None, :, None] * mask
        # Split ties evenly (rare with float inputs).
        counts = mask.sum(axis=(3, 5), keepdims=True)
        g = g / np.maximum(counts, 1)
        return g.reshape(x_shape)


def fuse_conv_bn(conv: Conv2D, bn: BatchNorm2D) -> Conv2D:
    """Fold a frozen BatchNorm into the preceding conv (deployment form).

    For inference BN is the per-channel affine
    ``y = gamma * (conv(x) - mean) / sqrt(var + eps) + beta``; folding
    the scale into the conv weights and the shift into its bias yields
    one conv whose outputs match the conv+BN pair to float32 rounding::

        w' = w * gamma / sqrt(var + eps)
        b' = beta + (b - mean) * gamma / sqrt(var + eps)

    The returned conv owns fresh parameter arrays — the original model
    is untouched and remains trainable.
    """
    inv_std = 1.0 / np.sqrt(bn.running_var + np.float32(bn.eps))
    scale = (bn.gamma.value * inv_std).astype(np.float32)
    w = (conv.w.value * scale[:, None]).astype(np.float32)
    bias = (
        np.zeros(conv.out_channels, dtype=np.float32)
        if conv.b is None
        else conv.b.value
    )
    b = (bn.beta.value + (bias - bn.running_mean) * scale).astype(np.float32)
    return Conv2D.from_weights(
        w,
        b,
        kernel_size=conv.kernel_size,
        stride=conv.stride,
        padding=conv.padding,
        name=conv.w.name.replace("/w", "-fused/w"),
    )


class GlobalAvgPool2D(Layer):
    """Average over the spatial dimensions -> (N, C)."""

    def __init__(self):
        self._shape = None

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        self._shape = x.shape
        return x.mean(axis=(2, 3))

    def backward(self, grad: np.ndarray) -> np.ndarray:
        assert self._shape is not None
        n, c, h, w = self._shape
        return np.broadcast_to(
            grad[:, :, None, None] / (h * w), self._shape
        ).astype(grad.dtype)
