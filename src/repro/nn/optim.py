"""Optimizers: SGD with momentum and Adam."""

from __future__ import annotations

from typing import List

import numpy as np

from repro.nn.layers import Parameter

__all__ = ["SGD", "Adam"]


class SGD:
    """Stochastic gradient descent with classical momentum."""

    def __init__(
        self,
        parameters: List[Parameter],
        lr: float = 0.05,
        momentum: float = 0.9,
        weight_decay: float = 0.0,
    ):
        if lr <= 0:
            raise ValueError(f"lr must be > 0, got {lr}")
        self.parameters = parameters
        self.lr = lr
        self.momentum = momentum
        self.weight_decay = weight_decay
        self._velocity = [np.zeros_like(p.value) for p in parameters]

    def step(self) -> None:
        """Apply one update to every parameter from its gradient."""
        for param, vel in zip(self.parameters, self._velocity):
            grad = param.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * param.value
            vel *= self.momentum
            vel -= self.lr * grad
            param.value += vel

    def zero_grad(self) -> None:
        """Zero the gradient accumulators of all parameters."""
        for param in self.parameters:
            param.zero_grad()


class Adam:
    """Adam optimizer (Kingma & Ba) with bias correction."""

    def __init__(
        self,
        parameters: List[Parameter],
        lr: float = 1e-3,
        betas=(0.9, 0.999),
        eps: float = 1e-8,
        weight_decay: float = 0.0,
    ):
        if lr <= 0:
            raise ValueError(f"lr must be > 0, got {lr}")
        self.parameters = parameters
        self.lr = lr
        self.beta1, self.beta2 = betas
        self.eps = eps
        self.weight_decay = weight_decay
        self._m = [np.zeros_like(p.value) for p in parameters]
        self._v = [np.zeros_like(p.value) for p in parameters]
        self._t = 0

    def step(self) -> None:
        """Apply one update to every parameter from its gradient."""
        self._t += 1
        bc1 = 1.0 - self.beta1**self._t
        bc2 = 1.0 - self.beta2**self._t
        for param, m, v in zip(self.parameters, self._m, self._v):
            grad = param.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * param.value
            m *= self.beta1
            m += (1 - self.beta1) * grad
            v *= self.beta2
            v += (1 - self.beta2) * np.square(grad)
            m_hat = m / bc1
            v_hat = v / bc2
            param.value -= self.lr * m_hat / (np.sqrt(v_hat) + self.eps)

    def zero_grad(self) -> None:
        """Zero the gradient accumulators of all parameters."""
        for param in self.parameters:
            param.zero_grad()
