"""Backward-compatible re-export of the runtime-contract decorators.

The implementation moved to :mod:`repro.utils.contracts` so that the
bottom layers of the architecture contract (``metrics``, ``nn``,
``perception``, ``hil``) can use ``@check_shapes`` / ``@check_finite``
without importing the analysis subsystem — ``utils`` is the one package
every layer may depend on.  Importing from here keeps working.
"""

from repro.utils.contracts import (
    ContractViolation,
    assert_finite,
    check_finite,
    check_shapes,
    contracts_enabled,
    set_contracts_enabled,
)

__all__ = [
    "ContractViolation",
    "assert_finite",
    "check_finite",
    "check_shapes",
    "contracts_enabled",
    "set_contracts_enabled",
]
