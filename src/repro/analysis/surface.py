"""Static extraction of the public API surface, and its lockfile.

The facade contract (:mod:`repro.api`) promises that public entry
points never silently change shape.  PR tests can only catch breakage
they exercise; the lockfile makes it *static*: the signatures of every
name in ``api.__all__``, the package root's ``__all__``, and the served
surface (each public module of :mod:`repro.service`, keyed
``service.<module>``) are serialized into ``api_surface.json``, and the
``API003`` project rule (:mod:`repro.analysis.graph`) fails the lint
when the tree drifts from the recorded surface without a lockfile
update.

Everything here is AST-based — extracting the surface never imports the
package under analysis, so a broken tree can still be diffed.

Workflow::

    python -m repro graph --update-lockfile   # record the new surface
    git diff api_surface.json                 # review the API change
"""

from __future__ import annotations

import ast
import json
from pathlib import Path
from typing import Dict, Optional, Tuple

__all__ = [
    "LOCKFILE_VERSION",
    "extract_api_surface",
    "render_lockfile",
    "read_lockfile",
    "write_lockfile",
]

#: Bumped whenever the lockfile document layout changes incompatibly.
LOCKFILE_VERSION = 1


def _unparse(node: Optional[ast.AST]) -> Optional[str]:
    return None if node is None else ast.unparse(node)


def render_signature(node: ast.FunctionDef) -> str:
    """Canonical one-line signature text for a function definition."""
    args = node.args
    parts = []
    positional = list(args.posonlyargs) + list(args.args)
    defaults = [None] * (len(positional) - len(args.defaults)) + list(args.defaults)

    def fmt(arg: ast.arg, default: Optional[ast.AST]) -> str:
        text = arg.arg
        if arg.annotation is not None:
            text += f": {_unparse(arg.annotation)}"
            if default is not None:
                text += f" = {_unparse(default)}"
        elif default is not None:
            text += f"={_unparse(default)}"
        return text

    for index, (arg, default) in enumerate(zip(positional, defaults)):
        parts.append(fmt(arg, default))
        if args.posonlyargs and index == len(args.posonlyargs) - 1:
            parts.append("/")
    if args.vararg is not None:
        parts.append(f"*{args.vararg.arg}")
    elif args.kwonlyargs:
        parts.append("*")
    for arg, default in zip(args.kwonlyargs, args.kw_defaults):
        parts.append(fmt(arg, default))
    if args.kwarg is not None:
        parts.append(f"**{args.kwarg.arg}")
    signature = f"({', '.join(parts)})"
    if node.returns is not None:
        signature += f" -> {_unparse(node.returns)}"
    return signature


def _module_all(tree: ast.Module) -> Tuple[Optional[Tuple[str, ...]], int]:
    """The module's literal ``__all__`` (or None) and its line number."""
    for stmt in tree.body:
        if not isinstance(stmt, ast.Assign):
            continue
        for target in stmt.targets:
            if isinstance(target, ast.Name) and target.id == "__all__":
                value = stmt.value
                if isinstance(value, (ast.List, ast.Tuple)):
                    names = tuple(
                        element.value
                        for element in value.elts
                        if isinstance(element, ast.Constant)
                        and isinstance(element.value, str)
                    )
                    return names, stmt.lineno
    return None, 1


def _describe_class(node: ast.ClassDef) -> Dict[str, object]:
    fields = []
    methods: Dict[str, str] = {}
    for stmt in node.body:
        if isinstance(stmt, ast.AnnAssign) and isinstance(stmt.target, ast.Name):
            fields.append(f"{stmt.target.id}: {_unparse(stmt.annotation)}")
        elif isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            if not stmt.name.startswith("_"):
                methods[stmt.name] = render_signature(stmt)
    return {"kind": "class", "fields": fields, "methods": methods}


def _extract_module_surface(
    path: Path,
) -> Tuple[str, Dict[str, object], Dict[str, int], int]:
    """One module's locked entries: every ``__all__`` name described.

    Returns ``(display path, entries, per-name lines, __all__ line)``;
    names without a local definition (re-exports) get the ``__all__``
    line as their anchor.
    """
    display = path.as_posix()
    tree = ast.parse(path.read_text(encoding="utf-8"), filename=display)
    exported, all_line = _module_all(tree)
    definitions: Dict[str, ast.AST] = {}
    for stmt in tree.body:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            definitions[stmt.name] = stmt
    entries: Dict[str, object] = {}
    lines: Dict[str, int] = {}
    for name in exported or ():
        node = definitions.get(name)
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            entries[name] = {
                "kind": "function",
                "signature": render_signature(node),
            }
        elif isinstance(node, ast.ClassDef):
            entries[name] = _describe_class(node)
        else:
            entries[name] = {"kind": "re-export"}
        lines[name] = getattr(node, "lineno", all_line)
    return display, entries, lines, all_line


def extract_api_surface(
    package_dir: Path,
) -> Tuple[Dict[str, object], Dict[str, Tuple[str, int]]]:
    """Extract the locked surface of the package at *package_dir*.

    Returns ``(surface, anchors)``: the JSON-ready surface document, and
    a map from surface key (``"api:<name>"`` / ``"root_all"`` /
    ``"service:<module>:<name>"``) to the ``(posix path, line)`` a drift
    finding should anchor at.
    """
    surface: Dict[str, object] = {
        "lockfile_version": LOCKFILE_VERSION,
        "api": {},
        "root_all": [],
    }
    anchors: Dict[str, Tuple[str, int]] = {}

    api_path = package_dir / "api.py"
    if api_path.is_file():
        display, entries, lines, all_line = _extract_module_surface(api_path)
        anchors["api"] = (display, all_line)
        for name, line in lines.items():
            anchors[f"api:{name}"] = (display, line)
        surface["api"] = entries

    init_path = package_dir / "__init__.py"
    if init_path.is_file():
        display = init_path.as_posix()
        tree = ast.parse(init_path.read_text(encoding="utf-8"), filename=display)
        root_all, line = _module_all(tree)
        surface["root_all"] = sorted(root_all or ())
        anchors["root_all"] = (display, line)

    # The served surface rides under the same discipline as the facade:
    # every public module of repro.service is locked per-name.
    service_dir = package_dir / "service"
    if service_dir.is_dir():
        service: Dict[str, object] = {}
        for module_path in sorted(service_dir.glob("*.py")):
            module = module_path.stem
            if module.startswith("_") and module != "__init__":
                continue
            display, entries, lines, all_line = _extract_module_surface(
                module_path
            )
            if not entries:
                continue
            service[module] = entries
            anchors[f"service:{module}"] = (display, all_line)
            for name, line in lines.items():
                anchors[f"service:{module}:{name}"] = (display, line)
        if service:
            surface["service"] = service

    return surface, anchors


def render_lockfile(surface: Dict[str, object]) -> str:
    """Canonical lockfile text (stable across runs for the same surface)."""
    return json.dumps(surface, indent=2, sort_keys=True) + "\n"


def read_lockfile(path: Path) -> Optional[Dict[str, object]]:
    """The recorded surface, or None when *path* does not exist.

    Raises :class:`ValueError` when the file exists but is not valid
    lockfile JSON.
    """
    if not path.is_file():
        return None
    try:
        document = json.loads(path.read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError) as exc:
        raise ValueError(f"unreadable API lockfile {path}: {exc}") from exc
    if not isinstance(document, dict):
        raise ValueError(f"API lockfile {path} is not a JSON object")
    return document


def write_lockfile(path: Path, surface: Dict[str, object]) -> bool:
    """Write the canonical lockfile; returns True when content changed."""
    text = render_lockfile(surface)
    if path.is_file() and path.read_text(encoding="utf-8") == text:
        return False
    path.write_text(text, encoding="utf-8")
    return True
