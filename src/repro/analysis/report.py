"""Finding model and report rendering for the reprolint engine.

A lint run produces a :class:`LintReport`: the list of unsuppressed
:class:`Finding` objects plus counters for what was suppressed or
excluded.  Reports render as human-readable text (``file:line:col:
RULE-ID message``) or as a stable JSON document for tooling, and map to
process exit codes:

- ``0`` — clean (no unsuppressed findings),
- ``1`` — findings were reported,
- ``2`` — the analysis itself is untrustworthy: an input could not be
  parsed, or the project pass found a module-level import cycle
  (``ARC002``), which makes the layer analysis ill-founded.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, List, Sequence

__all__ = [
    "SEVERITY_ERROR",
    "SEVERITY_FATAL",
    "SEVERITY_WARNING",
    "EXIT_CLEAN",
    "EXIT_FINDINGS",
    "EXIT_CRASH",
    "JSON_REPORT_VERSION",
    "Finding",
    "LintReport",
]

SEVERITY_WARNING = "warning"
SEVERITY_ERROR = "error"
#: Analysis-invalidating failures: unparseable input, import cycles.
SEVERITY_FATAL = "fatal"

EXIT_CLEAN = 0
EXIT_FINDINGS = 1
EXIT_CRASH = 2

#: Bumped whenever the JSON document layout changes incompatibly.
JSON_REPORT_VERSION = 1


@dataclass(frozen=True)
class Finding:
    """One rule violation at a source location."""

    rule_id: str
    severity: str
    path: str
    line: int
    col: int
    message: str

    def render(self) -> str:
        """The canonical one-line text form."""
        return (
            f"{self.path}:{self.line}:{self.col}: "
            f"{self.rule_id} [{self.severity}] {self.message}"
        )

    def to_json(self) -> Dict[str, object]:
        """JSON-friendly dict (schema: see :data:`JSON_REPORT_VERSION`)."""
        return {
            "rule": self.rule_id,
            "severity": self.severity,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
        }


@dataclass
class LintReport:
    """Outcome of linting a file set."""

    findings: List[Finding] = field(default_factory=list)
    files_checked: int = 0
    files_excluded: int = 0
    suppressed: int = 0

    @property
    def crashed(self) -> bool:
        """Whether any input file could not be analysed at all."""
        return any(f.severity == SEVERITY_FATAL for f in self.findings)

    def exit_code(self) -> int:
        """Process exit code implied by this report."""
        if self.crashed:
            return EXIT_CRASH
        if self.findings:
            return EXIT_FINDINGS
        return EXIT_CLEAN

    def counts_by_rule(self) -> Dict[str, int]:
        """Unsuppressed finding count per rule id (sorted by id)."""
        counts: Dict[str, int] = {}
        for finding in self.findings:
            counts[finding.rule_id] = counts.get(finding.rule_id, 0) + 1
        return dict(sorted(counts.items()))

    def render_text(self) -> str:
        """Multi-line human-readable report."""
        lines = [f.render() for f in self.sorted_findings()]
        noun = "finding" if len(self.findings) == 1 else "findings"
        lines.append(
            f"{len(self.findings)} {noun} "
            f"({self.files_checked} files checked, "
            f"{self.files_excluded} excluded, "
            f"{self.suppressed} suppressed)"
        )
        return "\n".join(lines)

    def render_json(self) -> str:
        """Stable JSON document (version, findings, summary)."""
        document = {
            "version": JSON_REPORT_VERSION,
            "findings": [f.to_json() for f in self.sorted_findings()],
            "summary": {
                "total": len(self.findings),
                "files_checked": self.files_checked,
                "files_excluded": self.files_excluded,
                "suppressed": self.suppressed,
                "by_rule": self.counts_by_rule(),
                "exit_code": self.exit_code(),
            },
        }
        return json.dumps(document, indent=2, sort_keys=True)

    def sorted_findings(self) -> Sequence[Finding]:
        """Findings ordered by (path, line, col, rule)."""
        return sorted(
            self.findings, key=lambda f: (f.path, f.line, f.col, f.rule_id)
        )
