"""Whole-program analysis: import graph, call/reference graph, contracts.

The per-file rules (:mod:`repro.analysis.rules`) see one module at a
time, so no per-file pass can notice that ``sim`` grew a dependency on
``hil``, that a helper lost its last caller, or that two components
derive the same RNG stream.  This module parses the full package tree
once into a :class:`ProjectGraph` and runs the *project rules* over it:

- ``ARC001`` architecture-contract — every cross-layer import must be
  declared in ``[tool.reprolint.layers]`` (an allowlist per top-level
  subpackage); undeclared layers and undeclared edges are findings.
- ``ARC002`` import-cycle — module-level import cycles are fatal: the
  layering above is ill-founded once a cycle exists, so this reports at
  ``fatal`` severity (exit code 2), not as an ordinary finding.
- ``DED001`` dead-function — a conservative reference graph (names,
  attributes, ``__all__`` entries, identifier-shaped string literals,
  console-script entry points) powers function-level dead-code
  detection.  Flagged: private functions referenced nowhere, and public
  module-level functions that their module's declared ``__all__`` omits
  and nothing references.
- ``API003`` api-lockfile — the extracted public surface
  (:mod:`repro.analysis.surface`) must match ``api_surface.json``;
  facade drift becomes a static error instead of a test failure.
- ``RNG002`` aliased-random — references that *resolve* to
  ``numpy.random`` through import aliases (``from numpy import
  random``, ``import numpy.random as nr``), which the textual
  per-file ``RNG001`` rule cannot see.
- ``RNG003`` rng-stream-collision — the same literal stream name passed
  to ``derive_rng`` / ``stream_seed`` at more than one call site
  collapses two components onto one random stream; the static
  complement of the runtime ``task_seed`` discipline.
- ``OBS001`` telemetry-literal-event — telemetry ``emit()`` call sites
  must name their event through the registered schema constants of
  :mod:`repro.telemetry.events`, never a string literal: literals
  bypass the schema registry, so typos become silently-unknown events.
- ``CAC001`` cache-key-construction — ``config_hash`` may only be
  called from the sanctioned key modules; an ad-hoc hash built anywhere
  else would mint a second address for the same rollout and silently
  split the content-addressed cache (see :mod:`repro.cache.keys`).

Run via ``python -m repro lint --project`` or ``python -m repro graph``.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Set, Tuple

from repro.analysis.report import (
    Finding,
    SEVERITY_ERROR,
    SEVERITY_FATAL,
    SEVERITY_WARNING,
)
from repro.analysis.rules import Rule, _dotted_name
from repro.analysis.surface import (
    extract_api_surface,
    read_lockfile,
)

__all__ = [
    "ImportRecord",
    "ModuleInfo",
    "ProjectGraph",
    "ProjectRule",
    "PROJECT_RULES",
    "project_rules_by_id",
    "default_project_rules",
]

_IDENTIFIER_RE = re.compile(r"^[A-Za-z_][A-Za-z0-9_]*$")

#: Call names treated as RNG-stream derivations by ``RNG003``.
_STREAM_FUNCTIONS = frozenset({"derive_rng", "stream_seed"})

#: Files exempt from the RNG rules: the sanctioned derivation module.
_RNG_EXEMPT_SUFFIX = "utils/rng.py"

#: Files exempt from OBS001: the schema registry itself (its constants
#: ARE the literals) and the recorder that validates against it.
_TELEMETRY_EXEMPT_SUFFIXES = ("telemetry/events.py", "telemetry/recorder.py")

#: Files allowed to call ``config_hash`` (CAC001): its home module, the
#: manifest builder (whose hash IS the run-identity field), and the
#: rollout key module — the single sanctioned key constructor.
_CACHE_KEY_EXEMPT_SUFFIXES = (
    "utils/cache.py",
    "telemetry/manifest.py",
    "cache/keys.py",
)


@dataclass(frozen=True)
class ImportRecord:
    """One import statement edge, before resolution."""

    target: str  # dotted target as written (module, or module.attr)
    line: int
    col: int
    eager: bool  # module-level (import-time) vs function/branch scope


@dataclass(frozen=True)
class CallRecord:
    """One call site with a resolvable dotted callee."""

    dotted: str  # as written, e.g. "np.random.rand"
    resolved: str  # through import aliases, e.g. "numpy.random.rand"
    line: int
    col: int
    stream_literal: Optional[str]  # literal 2nd arg / stream= kw, if any
    arg0_literal: Optional[str] = None  # literal first positional arg


@dataclass(frozen=True)
class FunctionDef:
    """One function/method definition."""

    name: str
    line: int
    col: int
    toplevel: bool  # module-level def (not a method / nested function)


@dataclass
class ModuleInfo:
    """Everything the project rules need to know about one module."""

    name: str  # dotted module name, e.g. "repro.sim.world"
    layer: str  # first component below the package, e.g. "sim"
    path: str  # display path (posix)
    source: str
    imports: List[ImportRecord] = field(default_factory=list)
    bindings: Dict[str, str] = field(default_factory=dict)
    calls: List[CallRecord] = field(default_factory=list)
    defs: List[FunctionDef] = field(default_factory=list)
    used_names: Set[str] = field(default_factory=set)
    module_all: Optional[Tuple[str, ...]] = None


def _resolve_relative(module_name: str, level: int, base: Optional[str]) -> str:
    """Absolute dotted base for a ``from``-import with *level* leading dots."""
    if level == 0:
        return base or ""
    parts = module_name.split(".")
    # level 1 = the containing package of this module.
    anchor = parts[: max(len(parts) - level, 0)]
    if base:
        anchor.append(base)
    return ".".join(anchor)


def _stream_literal(node: ast.Call) -> Optional[str]:
    """The literal RNG stream name at a call site, if statically known."""
    candidate: Optional[ast.expr] = None
    if len(node.args) >= 2:
        candidate = node.args[1]
    for keyword in node.keywords:
        if keyword.arg == "stream":
            candidate = keyword.value
    if isinstance(candidate, ast.Constant) and isinstance(candidate.value, str):
        return candidate.value
    return None


def _first_arg_literal(node: ast.Call) -> Optional[str]:
    """The literal string first positional argument, if statically known."""
    if node.args and isinstance(node.args[0], ast.Constant):
        if isinstance(node.args[0].value, str):
            return node.args[0].value
    return None


def scan_module(
    name: str, layer: str, path: str, source: str, tree: ast.Module
) -> ModuleInfo:
    """Single-pass extraction of imports, bindings, calls, defs, and uses."""
    info = ModuleInfo(name=name, layer=layer, path=path, source=source)
    toplevel_defs = {
        id(stmt) for stmt in tree.body
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef))
    }
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            eager = node.col_offset == 0
            for alias in node.names:
                info.imports.append(
                    ImportRecord(alias.name, node.lineno, node.col_offset, eager)
                )
                if alias.asname:
                    info.bindings[alias.asname] = alias.name
                else:
                    root = alias.name.split(".")[0]
                    info.bindings.setdefault(root, root)
        elif isinstance(node, ast.ImportFrom):
            base = _resolve_relative(name, node.level, node.module)
            if base == "__future__":
                continue
            eager = node.col_offset == 0
            for alias in node.names:
                if alias.name == "*":
                    info.imports.append(
                        ImportRecord(base, node.lineno, node.col_offset, eager)
                    )
                    continue
                target = f"{base}.{alias.name}" if base else alias.name
                info.imports.append(
                    ImportRecord(target, node.lineno, node.col_offset, eager)
                )
                info.bindings[alias.asname or alias.name] = target
                info.used_names.add(alias.name)
                if alias.asname:
                    info.used_names.add(alias.asname)
        elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            info.defs.append(
                FunctionDef(
                    node.name,
                    node.lineno,
                    node.col_offset,
                    id(node) in toplevel_defs,
                )
            )
        elif isinstance(node, ast.Name):
            if isinstance(node.ctx, ast.Load):
                info.used_names.add(node.id)
        elif isinstance(node, ast.Attribute):
            info.used_names.add(node.attr)
        elif isinstance(node, ast.Constant):
            if isinstance(node.value, str) and _IDENTIFIER_RE.match(node.value):
                info.used_names.add(node.value)
        elif isinstance(node, ast.Call):
            dotted = _dotted_name(node.func)
            if dotted is not None:
                root, sep, rest = dotted.partition(".")
                origin = info.bindings.get(root)
                resolved = f"{origin}{sep}{rest}" if origin else dotted
                info.calls.append(
                    CallRecord(
                        dotted,
                        resolved,
                        node.lineno,
                        node.col_offset,
                        _stream_literal(node),
                        _first_arg_literal(node),
                    )
                )
        elif isinstance(node, ast.Assign):
            for target in node.targets:
                if isinstance(target, ast.Name) and target.id == "__all__":
                    value = node.value
                    if isinstance(value, (ast.List, ast.Tuple)):
                        info.module_all = tuple(
                            element.value
                            for element in value.elts
                            if isinstance(element, ast.Constant)
                            and isinstance(element.value, str)
                        )
    return info


class ProjectGraph:
    """The parsed package: modules, import edges, reference sets."""

    def __init__(self, package_name: str, package_dir: Path):
        self.package_name = package_name
        self.package_dir = package_dir
        self.modules: Dict[str, ModuleInfo] = {}

    # -- construction ---------------------------------------------------

    def module_name_for(self, file_path: Path) -> Optional[str]:
        """Dotted module name for a file under the package dir."""
        try:
            rel = file_path.resolve().relative_to(self.package_dir.resolve())
        except ValueError:
            return None
        parts = (self.package_name, *rel.with_suffix("").parts)
        if parts[-1] == "__init__":
            parts = parts[:-1]
        return ".".join(parts)

    def layer_for(self, module_name: str) -> str:
        """Architecture layer: the first component below the package root."""
        prefix = self.package_name + "."
        if module_name.startswith(prefix):
            return module_name[len(prefix):].split(".")[0]
        return module_name  # the package root module itself

    def add_source(
        self, file_path: Path, display: str, source: str, tree: ast.Module
    ) -> Optional[ModuleInfo]:
        """Scan one parsed file into the graph; returns its ModuleInfo."""
        name = self.module_name_for(file_path)
        if name is None:
            return None
        info = scan_module(name, self.layer_for(name), display, source, tree)
        self.modules[name] = info
        return info

    # -- resolution -----------------------------------------------------

    def resolve_module(self, dotted: str) -> Optional[str]:
        """The in-project module *dotted* refers to (longest prefix)."""
        candidate = dotted
        while candidate:
            if candidate in self.modules:
                return candidate
            candidate, _, _ = candidate.rpartition(".")
        return None

    def internal_edges(
        self, eager_only: bool = False
    ) -> List[Tuple[ModuleInfo, str, ImportRecord]]:
        """All resolved in-project import edges (module, target, record)."""
        edges = []
        for info in self.modules.values():
            for record in info.imports:
                if eager_only and not record.eager:
                    continue
                target = self.resolve_module(record.target)
                if target is not None and target != info.name:
                    edges.append((info, target, record))
        return edges

    def eager_module_graph(self) -> Dict[str, Set[str]]:
        """Module-level import-time dependency graph."""
        graph: Dict[str, Set[str]] = {name: set() for name in self.modules}
        for info, target, _ in self.internal_edges(eager_only=True):
            graph[info.name].add(target)
        return graph

    def layer_edges(self) -> Dict[Tuple[str, str], List[Tuple[ModuleInfo, ImportRecord]]]:
        """Cross-layer edges: (src layer, dst layer) -> import sites."""
        edges: Dict[Tuple[str, str], List[Tuple[ModuleInfo, ImportRecord]]] = {}
        for info, target, record in self.internal_edges():
            src, dst = info.layer, self.layer_for(target)
            if src != dst:
                edges.setdefault((src, dst), []).append((info, record))
        return edges

    # -- reference graph ------------------------------------------------

    def referenced_names(self) -> Set[str]:
        """Every name referenced anywhere in the project (conservative)."""
        used: Set[str] = set()
        for info in self.modules.values():
            used |= info.used_names
        return used

    def exported_names(self) -> Set[str]:
        """Every name listed in any module's ``__all__``."""
        exported: Set[str] = set()
        for info in self.modules.values():
            if info.module_all:
                exported.update(info.module_all)
        return exported


# ---------------------------------------------------------------------------
# project rules


class ProjectRule(Rule):
    """A rule that inspects the whole :class:`ProjectGraph` at once."""

    def check(self, project: ProjectGraph, config) -> List[Finding]:
        """Return findings for the project; override in subclasses."""
        return []

    def finding(self, path: str, line: int, col: int, message: str) -> Finding:
        return Finding(
            rule_id=self.id,
            severity=self.severity,
            path=path,
            line=line,
            col=col,
            message=message,
        )


class ArchitectureContractRule(ProjectRule):
    """ARC001: cross-layer import not declared in the architecture contract.

    ``[tool.reprolint.layers]`` in ``pyproject.toml`` is an allowlist:
    each top-level layer (subpackage, or top-level module like ``api``)
    maps to the layers it may import.  Any observed cross-layer import —
    eager *or* lazy — outside the allowlist is a finding, as is a layer
    with no declaration at all.  With no ``layers`` table configured the
    rule is silent (linting a foreign tree).
    """

    id = "ARC001"
    name = "architecture-contract"
    severity = SEVERITY_ERROR
    description = (
        "cross-layer import not allowed by [tool.reprolint.layers]; "
        "declare the dependency or remove the coupling"
    )

    def check(self, project: ProjectGraph, config) -> List[Finding]:
        layers = getattr(config, "layers", None)
        if not layers:
            return []
        findings: List[Finding] = []
        undeclared: Set[str] = set()
        for (src, dst), sites in sorted(project.layer_edges().items()):
            info, record = min(sites, key=lambda s: (s[0].path, s[1].line))
            if src not in layers:
                if src not in undeclared:
                    undeclared.add(src)
                    findings.append(
                        self.finding(
                            info.path,
                            record.line,
                            record.col,
                            f"layer {src!r} is not declared in "
                            "[tool.reprolint.layers]; add it with the layers "
                            "it may import",
                        )
                    )
                continue
            if dst in layers[src]:
                continue
            for info, record in sorted(sites, key=lambda s: (s[0].path, s[1].line)):
                allowed = ", ".join(sorted(layers[src])) or "nothing"
                findings.append(
                    self.finding(
                        info.path,
                        record.line,
                        record.col,
                        f"layer {src!r} may not import {dst!r} "
                        f"(contract allows: {allowed})",
                    )
                )
        return findings


class ImportCycleRule(ProjectRule):
    """ARC002: module-level import cycle (fatal).

    Cycles are detected over *eager* (module-scope) imports only:
    deliberate lazy imports inside functions are the sanctioned way to
    break a cycle, and cannot deadlock the interpreter at import time.
    A cycle makes the layer analysis ill-founded, so this reports at
    ``fatal`` severity and drives exit code 2.
    """

    id = "ARC002"
    name = "import-cycle"
    severity = SEVERITY_FATAL
    description = "module-level import cycle (fatal; breaks layering)"

    def check(self, project: ProjectGraph, config) -> List[Finding]:
        graph = project.eager_module_graph()
        findings: List[Finding] = []
        for scc in _strongly_connected(graph):
            members = sorted(scc)
            if len(members) == 1 and members[0] not in graph[members[0]]:
                continue
            anchor = project.modules[members[0]]
            cycle = _cycle_path(graph, set(members), members[0])
            line = 1
            for record in anchor.imports:
                if record.eager and project.resolve_module(record.target) in scc:
                    line = record.line
                    break
            findings.append(
                self.finding(
                    anchor.path,
                    line,
                    0,
                    "module-level import cycle: " + " -> ".join(cycle),
                )
            )
        return findings


def _strongly_connected(graph: Dict[str, Set[str]]) -> List[Set[str]]:
    """Tarjan's SCC algorithm, iterative (no recursion limit issues)."""
    index: Dict[str, int] = {}
    lowlink: Dict[str, int] = {}
    on_stack: Set[str] = set()
    stack: List[str] = []
    sccs: List[Set[str]] = []
    counter = [0]

    for root in sorted(graph):
        if root in index:
            continue
        work: List[Tuple[str, List[str]]] = [(root, sorted(graph[root]))]
        index[root] = lowlink[root] = counter[0]
        counter[0] += 1
        stack.append(root)
        on_stack.add(root)
        while work:
            node, children = work[-1]
            if children:
                child = children.pop(0)
                if child not in index:
                    index[child] = lowlink[child] = counter[0]
                    counter[0] += 1
                    stack.append(child)
                    on_stack.add(child)
                    work.append((child, sorted(graph[child])))
                elif child in on_stack:
                    lowlink[node] = min(lowlink[node], index[child])
            else:
                work.pop()
                if work:
                    parent = work[-1][0]
                    lowlink[parent] = min(lowlink[parent], lowlink[node])
                if lowlink[node] == index[node]:
                    scc: Set[str] = set()
                    while True:
                        member = stack.pop()
                        on_stack.discard(member)
                        scc.add(member)
                        if member == node:
                            break
                    sccs.append(scc)
    return sccs


def _cycle_path(
    graph: Dict[str, Set[str]], scc: Set[str], start: str
) -> List[str]:
    """One concrete cycle through *scc* starting (and ending) at *start*."""
    path = [start]
    seen = {start}
    node = start
    while True:
        successors = sorted(t for t in graph[node] if t in scc)
        if not successors:  # pragma: no cover - SCC guarantees a successor
            break
        node = successors[0]
        if node in seen:
            path.append(node)
            break
        seen.add(node)
        path.append(node)
    return path


class DeadFunctionRule(ProjectRule):
    """DED001: function that the whole-program reference graph never reaches.

    Conservative by construction — a name counts as referenced if it
    appears anywhere in the project as a loaded name, an attribute, an
    import binding, an ``__all__`` entry, an identifier-shaped string
    literal (registry keys, ``getattr``), or a console-script entry
    point.  Only two shapes are flagged: private functions referenced
    nowhere, and public module-level functions that their module's
    declared ``__all__`` omits and nothing references.  Public methods
    and functions of modules without ``__all__`` are assumed to be API.
    """

    id = "DED001"
    name = "dead-function"
    severity = SEVERITY_WARNING
    description = (
        "function is never referenced anywhere in the project "
        "(conservative whole-program reference graph)"
    )

    def check(self, project: ProjectGraph, config) -> List[Finding]:
        referenced = project.referenced_names()
        exported = project.exported_names()
        roots = set(getattr(config, "entry_points", ()) or ())
        findings: List[Finding] = []
        for name in sorted(project.modules):
            info = project.modules[name]
            for fn in info.defs:
                if fn.name.startswith("__") and fn.name.endswith("__"):
                    continue
                if fn.name in referenced or fn.name in exported or fn.name in roots:
                    continue
                private = fn.name.startswith("_")
                undeclared_public = (
                    fn.toplevel
                    and not private
                    and info.module_all is not None
                    and fn.name not in info.module_all
                )
                if private:
                    findings.append(
                        self.finding(
                            info.path,
                            fn.line,
                            fn.col,
                            f"private function {fn.name}() is never "
                            "referenced anywhere in the project",
                        )
                    )
                elif undeclared_public:
                    findings.append(
                        self.finding(
                            info.path,
                            fn.line,
                            fn.col,
                            f"{fn.name}() is never referenced and is not in "
                            "this module's __all__; delete it or declare it "
                            "part of the public surface",
                        )
                    )
        return findings


class ApiLockfileRule(ProjectRule):
    """API003: the extracted public API surface drifted from the lockfile.

    The surface (``repro.api`` signatures, the package root's
    ``__all__``, and the served ``repro.service`` modules) is recorded
    in ``api_surface.json``; see :mod:`repro.analysis.surface`.  Any
    drift without a lockfile update is a finding, making facade
    breakage a static error.  Regenerate with
    ``python -m repro graph --update-lockfile``.
    """

    id = "API003"
    name = "api-lockfile"
    severity = SEVERITY_ERROR
    description = (
        "public API surface drifted from api_surface.json; review the "
        "change and run `python -m repro graph --update-lockfile`"
    )

    _HINT = "run `python -m repro graph --update-lockfile` if intentional"

    def check(self, project: ProjectGraph, config) -> List[Finding]:
        surface, anchors = extract_api_surface(project.package_dir)
        if not surface["api"] and not surface["root_all"]:
            return []  # nothing locked for this tree
        lock_path = _lockfile_path(project, config)
        try:
            recorded = read_lockfile(lock_path)
        except ValueError as exc:
            path, line = anchors.get("api", (str(lock_path), 1))
            return [self.finding(path, line, 0, str(exc))]
        if recorded is None:
            path, line = anchors.get("api") or anchors.get("root_all") or ("", 1)
            return [
                self.finding(
                    path,
                    line,
                    0,
                    f"API lockfile {lock_path.name} is missing; {self._HINT}",
                )
            ]
        findings: List[Finding] = []
        current_api: Dict[str, object] = surface["api"]
        recorded_api = recorded.get("api", {})
        for name in sorted(set(current_api) | set(recorded_api)):
            path, line = anchors.get(
                f"api:{name}", anchors.get("api", ("", 1))
            )
            if name not in recorded_api:
                findings.append(
                    self.finding(
                        path, line, 0,
                        f"api.{name} is exported but not recorded in "
                        f"{lock_path.name}; {self._HINT}",
                    )
                )
            elif name not in current_api:
                findings.append(
                    self.finding(
                        path, line, 0,
                        f"api.{name} is recorded in {lock_path.name} but no "
                        f"longer exported; {self._HINT}",
                    )
                )
            elif current_api[name] != recorded_api[name]:
                findings.append(
                    self.finding(
                        path, line, 0,
                        f"api.{name} drifted from the locked surface "
                        f"(locked: {recorded_api[name]!r}, current: "
                        f"{current_api[name]!r}); {self._HINT}",
                    )
                )
        current_service: Dict[str, object] = surface.get("service", {})
        recorded_service = recorded.get("service", {})
        for module in sorted(set(current_service) | set(recorded_service)):
            current_entries = current_service.get(module, {})
            recorded_entries = recorded_service.get(module, {})
            module_anchor = anchors.get(
                f"service:{module}", anchors.get("api", ("", 1))
            )
            for name in sorted(set(current_entries) | set(recorded_entries)):
                path, line = anchors.get(
                    f"service:{module}:{name}", module_anchor
                )
                label = f"service.{module}.{name}"
                if name not in recorded_entries:
                    findings.append(
                        self.finding(
                            path, line, 0,
                            f"{label} is exported but not recorded in "
                            f"{lock_path.name}; {self._HINT}",
                        )
                    )
                elif name not in current_entries:
                    findings.append(
                        self.finding(
                            path, line, 0,
                            f"{label} is recorded in {lock_path.name} but "
                            f"no longer exported; {self._HINT}",
                        )
                    )
                elif current_entries[name] != recorded_entries[name]:
                    findings.append(
                        self.finding(
                            path, line, 0,
                            f"{label} drifted from the locked surface "
                            f"(locked: {recorded_entries[name]!r}, current: "
                            f"{current_entries[name]!r}); {self._HINT}",
                        )
                    )
        if sorted(recorded.get("root_all", [])) != surface["root_all"]:
            path, line = anchors.get("root_all", ("", 1))
            findings.append(
                self.finding(
                    path, line, 0,
                    "package root __all__ drifted from the locked surface "
                    f"(locked: {sorted(recorded.get('root_all', []))}, "
                    f"current: {surface['root_all']}); {self._HINT}",
                )
            )
        return findings


def _lockfile_path(project: ProjectGraph, config) -> Path:
    """Where the API lockfile lives: next to pyproject, or above the tree."""
    name = getattr(config, "lockfile", None) or "api_surface.json"
    root = getattr(config, "root", None)
    base = Path(root) if root else project.package_dir.parent
    return base / name


class AliasedRandomRule(ProjectRule):
    """RNG002: a call that resolves to ``numpy.random`` through aliases.

    ``RNG001`` is textual (``np.random.*`` / ``numpy.random.*``); this
    rule resolves import bindings project-wide, so ``from numpy import
    random``, ``from numpy.random import default_rng`` and ``import
    numpy.random as nr`` are caught too.  Call sites already covered by
    ``RNG001`` are skipped to avoid double reports.
    """

    id = "RNG002"
    name = "aliased-random"
    severity = SEVERITY_ERROR
    description = (
        "call resolves to numpy.random through an import alias; route "
        "randomness through repro.utils.rng.derive_rng"
    )

    _TEXTUAL = ("np.random.", "numpy.random.")

    def check(self, project: ProjectGraph, config) -> List[Finding]:
        findings: List[Finding] = []
        for name in sorted(project.modules):
            info = project.modules[name]
            if info.path.endswith(_RNG_EXEMPT_SUFFIX):
                continue
            for call in info.calls:
                if call.dotted.startswith(self._TEXTUAL):
                    continue  # RNG001 territory
                if call.resolved.startswith("numpy.random.") or (
                    call.resolved == "numpy.random"
                ):
                    findings.append(
                        self.finding(
                            info.path,
                            call.line,
                            call.col,
                            f"{call.dotted}() resolves to {call.resolved} "
                            "via an import alias; use "
                            "repro.utils.rng.derive_rng(seed, stream)",
                        )
                    )
        return findings


class StreamCollisionRule(ProjectRule):
    """RNG003: the same literal RNG stream name derived at several sites.

    Stream names partition the seed space: two components deriving
    ``derive_rng(seed, "imu")`` draw *identical* random sequences, which
    silently correlates what should be independent noise.  Every reuse
    of a literal stream name beyond its first call site is flagged;
    dynamic names (f-strings, ``task_seed`` indices) are the sanctioned
    way to fan a stream out.
    """

    id = "RNG003"
    name = "rng-stream-collision"
    severity = SEVERITY_ERROR
    description = (
        "literal RNG stream name reused across call sites; streams must "
        "be unique per component"
    )

    def check(self, project: ProjectGraph, config) -> List[Finding]:
        sites: Dict[str, List[Tuple[ModuleInfo, CallRecord]]] = {}
        for name in sorted(project.modules):
            info = project.modules[name]
            if info.path.endswith(_RNG_EXEMPT_SUFFIX):
                continue
            for call in info.calls:
                func = call.resolved.rpartition(".")[2]
                if func in _STREAM_FUNCTIONS and call.stream_literal is not None:
                    sites.setdefault(call.stream_literal, []).append((info, call))
        findings: List[Finding] = []
        for literal in sorted(sites):
            occurrences = sorted(
                sites[literal], key=lambda s: (s[0].path, s[1].line, s[1].col)
            )
            if len(occurrences) < 2:
                continue
            first_info, first_call = occurrences[0]
            for info, call in occurrences[1:]:
                findings.append(
                    self.finding(
                        info.path,
                        call.line,
                        call.col,
                        f"RNG stream {literal!r} is already derived at "
                        f"{first_info.path}:{first_call.line}; identical "
                        "stream names yield identical random sequences",
                    )
                )
        return findings


class TelemetryEventRule(ProjectRule):
    """OBS001: telemetry event emitted under a string literal name.

    ``TelemetryRecorder.emit`` validates event names against
    ``repro.telemetry.events.EVENT_SCHEMA`` at runtime, but a literal
    at the emit site still dodges static tracking: renaming an event in
    the registry would leave the stale literal behind as a run-time
    crash (or, worse, a silently different stream shape).  Emit sites
    must therefore pass the registered constants — ``rec.emit(
    CYCLE_START, ...)`` — never ``rec.emit("cycle.start", ...)``.  The
    schema module itself (where the literals are *defined*) and the
    recorder are exempt.
    """

    id = "OBS001"
    name = "telemetry-literal-event"
    severity = SEVERITY_ERROR
    description = (
        "telemetry event emitted as a string literal; use the "
        "registered constants from repro.telemetry.events"
    )

    def check(self, project: ProjectGraph, config) -> List[Finding]:
        findings: List[Finding] = []
        for name in sorted(project.modules):
            info = project.modules[name]
            if info.path.endswith(_TELEMETRY_EXEMPT_SUFFIXES):
                continue
            for call in info.calls:
                if call.dotted.rpartition(".")[2] != "emit":
                    continue
                if call.arg0_literal is None:
                    continue
                findings.append(
                    self.finding(
                        info.path,
                        call.line,
                        call.col,
                        f"{call.dotted}({call.arg0_literal!r}, ...) names "
                        "the event with a string literal; import the "
                        "constant from repro.telemetry.events instead",
                    )
                )
        return findings


class CacheKeyConstructionRule(ProjectRule):
    """CAC001: rollout cache keys built outside the sanctioned modules.

    The whole point of a content-addressed store is that one rollout
    has exactly one address.  ``repro.cache.keys`` is the single
    constructor of that address; a stray ``config_hash(...)`` call in a
    consumer (facade, sweep runner, service) would mint a second,
    subtly different key for the same inputs — entries written under
    one spelling and looked up under the other never hit, which is a
    silent full-recompute, not an error.  Only the hash's home module,
    the manifest builder and the key module itself may call it.
    """

    id = "CAC001"
    name = "cache-key-construction"
    severity = SEVERITY_ERROR
    description = (
        "cache keys must be built via repro.cache.keys; ad-hoc "
        "config_hash calls split the content-addressed store"
    )

    def check(self, project: ProjectGraph, config) -> List[Finding]:
        findings: List[Finding] = []
        for name in sorted(project.modules):
            info = project.modules[name]
            if info.path.endswith(_CACHE_KEY_EXEMPT_SUFFIXES):
                continue
            for call in info.calls:
                if call.dotted.rpartition(".")[2] != "config_hash":
                    continue
                findings.append(
                    self.finding(
                        info.path,
                        call.line,
                        call.col,
                        f"{call.dotted}(...) builds a cache key outside "
                        "repro.cache.keys; use rollout_key_document / "
                        "rollout_key so one rollout has one address",
                    )
                )
        return findings


#: All project rule classes in id order; instantiated per run.
PROJECT_RULES: Tuple[type, ...] = (
    ApiLockfileRule,
    ArchitectureContractRule,
    ImportCycleRule,
    DeadFunctionRule,
    TelemetryEventRule,
    AliasedRandomRule,
    StreamCollisionRule,
    CacheKeyConstructionRule,
)


def default_project_rules() -> List[ProjectRule]:
    """Fresh instances of every registered project rule."""
    return [cls() for cls in PROJECT_RULES]


def project_rules_by_id() -> Dict[str, type]:
    """Registry mapping project rule id -> rule class."""
    return {cls.id: cls for cls in PROJECT_RULES}
