"""Project-specific lint rules for the repro codebase.

Each rule is a :class:`Rule` subclass registered in :data:`RULES`.  The
engine (:mod:`repro.analysis.engine`) parses every file once and feeds
each AST node to every selected rule, so adding a rule never adds a
parse or walk pass.

The knob-domain rule (``DOM001``) imports the authoritative domains —
ISP stage ids, ROI presets, speed choices, achievable timing range —
from the packages that own them (:mod:`repro.isp.configs`,
:mod:`repro.perception.roi`, :mod:`repro.core.knobs`,
:mod:`repro.platform.schedule`) instead of hard-coding copies that
could drift.
"""

from __future__ import annotations

import ast
import re
from typing import Dict, List, Optional, Set, Tuple

from repro.analysis.report import SEVERITY_ERROR, SEVERITY_WARNING

__all__ = [
    "Rule",
    "RULES",
    "rules_by_id",
    "default_rules",
]


class Rule:
    """Base class: one lint check with a stable id.

    Subclasses override :meth:`visit_node` (called for every AST node in
    file order) and optionally :meth:`begin_file` / :meth:`end_file` for
    per-file state.  Findings are emitted through ``ctx.report``.
    """

    id: str = "RULE000"
    name: str = "abstract-rule"
    severity: str = SEVERITY_WARNING
    description: str = ""

    def begin_file(self, ctx) -> None:
        """Reset per-file state before a new file is walked."""

    def visit_node(self, node: ast.AST, ctx) -> None:
        """Inspect one AST node (single shared walk over the file)."""

    def end_file(self, ctx) -> None:
        """Emit findings that need whole-file knowledge."""


def _dotted_name(node: ast.AST) -> Optional[str]:
    """``a.b.c`` for a Name/Attribute chain, else None."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


class UnseededRandomRule(Rule):
    """RNG001: calls into global random state outside ``utils/rng.py``.

    Reproducible HiL runs require every stochastic component to draw
    from a seeded, stream-derived generator.  Calls through
    ``np.random.*`` / ``numpy.random.*`` or the stdlib ``random`` module
    bypass that discipline.
    """

    id = "RNG001"
    name = "unseeded-random"
    severity = SEVERITY_ERROR
    description = (
        "call into np.random / random global state; derive a generator "
        "via repro.utils.rng.derive_rng (or seed via seed_everything)"
    )

    _EXEMPT_SUFFIX = "utils/rng.py"

    def visit_node(self, node: ast.AST, ctx) -> None:
        if not isinstance(node, ast.Call):
            return
        if ctx.posix_path.endswith(self._EXEMPT_SUFFIX):
            return
        dotted = _dotted_name(node.func)
        if dotted is None:
            return
        flagged = dotted.startswith(("np.random.", "numpy.random."))
        if not flagged and dotted.startswith("random."):
            # Only the stdlib module, not a local variable named random.
            flagged = "random" in ctx.imported_modules
        if flagged:
            ctx.report(
                self,
                node,
                f"{dotted}() uses unseeded global RNG state; use "
                "repro.utils.rng.derive_rng(seed, stream) (or "
                "seed_everything for the legacy global)",
            )


class MutableDefaultRule(Rule):
    """DEF001: mutable default argument values shared across calls."""

    id = "DEF001"
    name = "mutable-default"
    severity = SEVERITY_ERROR
    description = "mutable default argument (list/dict/set) shared across calls"

    _MUTABLE_CALLS = {"list", "dict", "set", "bytearray"}

    def _is_mutable(self, default: ast.AST) -> bool:
        if isinstance(default, (ast.List, ast.Dict, ast.Set)):
            return True
        if isinstance(default, (ast.ListComp, ast.DictComp, ast.SetComp)):
            return True
        if isinstance(default, ast.Call) and isinstance(default.func, ast.Name):
            return default.func.id in self._MUTABLE_CALLS
        return False

    def visit_node(self, node: ast.AST, ctx) -> None:
        if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            return
        defaults = list(node.args.defaults) + [
            d for d in node.args.kw_defaults if d is not None
        ]
        for default in defaults:
            if self._is_mutable(default):
                ctx.report(
                    self,
                    default,
                    f"mutable default in {node.name}(); use None and "
                    "construct inside the body",
                )


class FloatEqualityRule(Rule):
    """FLT001: ``==`` / ``!=`` against a float literal.

    Computed floats (lateral offsets, curvatures, timing) rarely equal a
    literal exactly; use ``math.isclose``, an explicit sign test, or an
    absolute tolerance.  Exact sentinel comparisons can be suppressed
    in place with ``# reprolint: disable=FLT001``.
    """

    id = "FLT001"
    name = "float-equality"
    severity = SEVERITY_WARNING
    description = "== / != comparison against a float literal"

    def visit_node(self, node: ast.AST, ctx) -> None:
        if not isinstance(node, ast.Compare):
            return
        comparators = [node.left] + list(node.comparators)
        for op, (lhs, rhs) in zip(
            node.ops, zip(comparators[:-1], comparators[1:])
        ):
            if not isinstance(op, (ast.Eq, ast.NotEq)):
                continue
            for side, other in ((lhs, rhs), (rhs, lhs)):
                if (
                    isinstance(side, ast.Constant)
                    and isinstance(side.value, float)
                    and not isinstance(other, ast.Constant)
                ):
                    ctx.report(
                        self,
                        node,
                        f"comparison against float literal {side.value!r}; "
                        "use math.isclose, a sign test, or a tolerance",
                    )
                    break


class BroadExceptRule(Rule):
    """EXC001: bare or overbroad exception handlers.

    ``except:`` / ``except Exception:`` / ``except BaseException:``
    swallow programming errors.  A handler that re-raises (cleanup
    pattern) is allowed.
    """

    id = "EXC001"
    name = "broad-except"
    severity = SEVERITY_WARNING
    description = "bare/overbroad except that does not re-raise"

    _BROAD = {"Exception", "BaseException"}

    def _reraises(self, handler: ast.ExceptHandler) -> bool:
        for child in ast.walk(handler):
            if isinstance(child, ast.Raise) and child.exc is None:
                return True
        return False

    def visit_node(self, node: ast.AST, ctx) -> None:
        if not isinstance(node, ast.ExceptHandler):
            return
        if node.type is None:
            label = "bare except:"
        else:
            dotted = _dotted_name(node.type)
            if dotted not in self._BROAD:
                return
            label = f"except {dotted}:"
        if self._reraises(node):
            return
        ctx.report(
            self,
            node,
            f"{label} without re-raise; catch the specific exceptions "
            "the block can raise",
        )


def _knob_domains() -> Optional[Dict[str, object]]:
    """Authoritative knob domains, imported from their owning modules.

    Returns None when the repro packages are unavailable (linting a
    foreign tree), which disables the domain checks rather than
    guessing.
    """
    try:
        from repro.core.knobs import SPEED_CHOICES_KMPH
        from repro.isp.configs import ISP_CONFIGS
        from repro.perception.roi import ROI_PRESETS
        from repro.platform.schedule import pipeline_timing
    except ImportError:
        return None
    timings = [pipeline_timing(name, ()) for name in ISP_CONFIGS]
    periods = [t.period_ms for t in timings]
    delays = [t.delay_ms for t in timings]
    # Classifier co-schedules stretch the cycle past the bare ISP
    # period; 4x the heaviest bare pipeline bounds every configuration
    # the platform model can produce.
    return {
        "isp": frozenset(ISP_CONFIGS),
        "roi": frozenset(ROI_PRESETS),
        "speeds": frozenset(float(v) for v in SPEED_CHOICES_KMPH),
        "period_ms": (min(periods), 4.0 * max(periods)),
        "delay_ms": (min(delays), 4.0 * max(delays)),
    }


class KnobDomainRule(Rule):
    """DOM001: knob literals outside their characterized domains.

    Flags ISP stage ids not in ``ISP_CONFIGS`` (S0-S8), ROI names not in
    ``ROI_PRESETS`` (ROI 1-5), ``speed_kmph=`` keyword literals outside
    the paper's speed choices, and ``period_ms=`` / ``delay_ms=``
    keyword literals outside the range the platform timing model can
    produce.
    """

    id = "DOM001"
    name = "knob-domain"
    severity = SEVERITY_ERROR
    description = "knob literal outside its characterized domain"

    _ISP_RE = re.compile(r"^S\d+$")
    _ROI_RE = re.compile(r"^ROI \d+$")
    _TIMING_KEYWORDS = ("period_ms", "delay_ms")

    def __init__(self):
        self._domains = _knob_domains()

    def visit_node(self, node: ast.AST, ctx) -> None:
        if self._domains is None:
            return
        if isinstance(node, ast.Constant) and isinstance(node.value, str):
            self._check_string(node, ctx)
        elif isinstance(node, ast.Call):
            for keyword in node.keywords:
                self._check_keyword(keyword, ctx)

    def _check_string(self, node: ast.Constant, ctx) -> None:
        if ctx.is_docstring(node):
            return
        value = node.value
        if self._ISP_RE.match(value) and value not in self._domains["isp"]:
            known = ", ".join(sorted(self._domains["isp"]))
            ctx.report(self, node, f"unknown ISP stage id {value!r} (knobs: {known})")
        elif self._ROI_RE.match(value) and value not in self._domains["roi"]:
            known = ", ".join(sorted(self._domains["roi"]))
            ctx.report(self, node, f"unknown ROI id {value!r} (knobs: {known})")

    def _check_keyword(self, keyword: ast.keyword, ctx) -> None:
        value = keyword.value
        if not (
            isinstance(value, ast.Constant)
            and isinstance(value.value, (int, float))
            and not isinstance(value.value, bool)
        ):
            return
        number = float(value.value)
        if keyword.arg == "speed_kmph":
            if number not in self._domains["speeds"]:
                choices = sorted(self._domains["speeds"])
                ctx.report(
                    self,
                    value,
                    f"speed_kmph={number:g} outside the characterized "
                    f"speed knob values {choices}",
                )
        elif keyword.arg in self._TIMING_KEYWORDS:
            low, high = self._domains[keyword.arg]
            if not low <= number <= high:
                ctx.report(
                    self,
                    value,
                    f"{keyword.arg}={number:g} outside the achievable "
                    f"platform range [{low:g}, {high:g}] ms",
                )


class UnitSuffixRule(Rule):
    """UNT001: ``*_ms`` value assigned to a ``*_s`` name (or vice versa)
    without an explicit unit conversion in the expression."""

    id = "UNT001"
    name = "unit-suffix"
    severity = SEVERITY_ERROR
    description = "ms/s suffix mix without an explicit conversion factor"

    _MS_PER_S = {1000, 1000.0}
    _S_PER_MS = {0.001, 1e-3}

    @staticmethod
    def _target_name(target: ast.AST) -> Optional[str]:
        if isinstance(target, ast.Name):
            return target.id
        if isinstance(target, ast.Attribute):
            return target.attr
        return None

    @staticmethod
    def _loaded_names(value: ast.AST) -> Set[str]:
        names: Set[str] = set()
        for child in ast.walk(value):
            if isinstance(child, ast.Name):
                names.add(child.id)
            elif isinstance(child, ast.Attribute):
                names.add(child.attr)
        return names

    def _has_conversion(self, value: ast.AST, factors: Set[float], op) -> bool:
        for child in ast.walk(value):
            if not isinstance(child, ast.BinOp) or not isinstance(child.op, op):
                continue
            operands = [child.right]
            if isinstance(child.op, ast.Mult):
                operands.append(child.left)
            for operand in operands:
                if (
                    isinstance(operand, ast.Constant)
                    and isinstance(operand.value, (int, float))
                    and operand.value in factors
                ):
                    return True
        return False

    def _check(self, target: ast.AST, value: ast.AST, node: ast.AST, ctx) -> None:
        name = self._target_name(target)
        if name is None:
            return
        loaded = self._loaded_names(value)
        if name.endswith("_s"):
            sources = [n for n in loaded if n.endswith("_ms")]
            if sources and not (
                self._has_conversion(value, self._MS_PER_S, ast.Div)
                or self._has_conversion(value, self._S_PER_MS, ast.Mult)
            ):
                ctx.report(
                    self,
                    node,
                    f"{name} (seconds) assigned from {sorted(sources)} "
                    "(milliseconds) without / 1000.0",
                )
        elif name.endswith("_ms"):
            sources = [
                n for n in loaded if n.endswith("_s") and not n.endswith("_ms")
            ]
            if sources and not (
                self._has_conversion(value, self._MS_PER_S, ast.Mult)
                or self._has_conversion(value, self._S_PER_MS, ast.Div)
            ):
                ctx.report(
                    self,
                    node,
                    f"{name} (milliseconds) assigned from {sorted(sources)} "
                    "(seconds) without * 1000.0",
                )

    def visit_node(self, node: ast.AST, ctx) -> None:
        if isinstance(node, ast.Assign) and len(node.targets) == 1:
            self._check(node.targets[0], node.value, node, ctx)
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            self._check(node.target, node.value, node, ctx)


class MissingAllRule(Rule):
    """API001: a non-empty ``__init__.py`` without ``__all__``.

    Package ``__init__`` modules are the public API surface; an explicit
    ``__all__`` keeps re-exports deliberate and lets the dead-import
    rule treat them as used.
    """

    id = "API001"
    name = "missing-all"
    severity = SEVERITY_WARNING
    description = "non-empty __init__.py without an __all__ declaration"

    def begin_file(self, ctx) -> None:
        self._has_all = False
        self._has_code = False

    def visit_node(self, node: ast.AST, ctx) -> None:
        if not ctx.is_init_file:
            return
        if isinstance(node, ast.Assign):
            for target in node.targets:
                if isinstance(target, ast.Name) and target.id == "__all__":
                    self._has_all = True
        if isinstance(node, ast.Module):
            for stmt in node.body:
                if isinstance(stmt, ast.Expr) and isinstance(
                    stmt.value, ast.Constant
                ):
                    continue  # docstring
                self._has_code = True
                break

    def end_file(self, ctx) -> None:
        if ctx.is_init_file and self._has_code and not self._has_all:
            ctx.report_file(
                self,
                "__init__.py defines names but no __all__; declare the "
                "public surface explicitly",
            )


class _ImportTrackingRule(Rule):
    """Shared import bookkeeping for IMP001/IMP002."""

    def begin_file(self, ctx) -> None:
        # name -> (line, col, display) for each binding introduced by an
        # import statement, in file order.
        self._bindings: List[Tuple[str, int, int, str]] = []
        self._used: Set[str] = set()
        self._exported: Set[str] = set()

    def _record_import(self, node: ast.AST) -> None:
        if isinstance(node, ast.Import):
            for alias in node.names:
                bound = alias.asname or alias.name.split(".")[0]
                self._bindings.append(
                    (bound, node.lineno, node.col_offset, alias.name)
                )
        elif isinstance(node, ast.ImportFrom):
            if node.module == "__future__":
                return
            for alias in node.names:
                if alias.name == "*":
                    continue
                bound = alias.asname or alias.name
                display = f"{node.module or '.'}.{alias.name}"
                self._bindings.append(
                    (bound, node.lineno, node.col_offset, display)
                )

    def visit_node(self, node: ast.AST, ctx) -> None:
        if isinstance(node, (ast.Import, ast.ImportFrom)):
            self._record_import(node)
        elif isinstance(node, ast.Name):
            if not isinstance(node.ctx, ast.Store):
                self._used.add(node.id)
        elif isinstance(node, ast.Assign):
            for target in node.targets:
                if isinstance(target, ast.Name) and target.id == "__all__":
                    value = node.value
                    if isinstance(value, (ast.List, ast.Tuple)):
                        for element in value.elts:
                            if isinstance(element, ast.Constant) and isinstance(
                                element.value, str
                            ):
                                self._exported.add(element.value)


class DeadImportRule(_ImportTrackingRule):
    """IMP001: imported name never referenced in the module.

    ``__all__`` entries count as references, so ``__init__.py``
    re-exports stay clean as long as they are declared.
    """

    id = "IMP001"
    name = "dead-import"
    severity = SEVERITY_WARNING
    description = "imported name is never used"

    def end_file(self, ctx) -> None:
        for bound, line, col, display in self._bindings:
            if bound.startswith("_"):
                continue
            if bound in self._used or bound in self._exported:
                continue
            ctx.report_at(
                self,
                line,
                col,
                f"{display!r} is imported but never used",
            )


class ShadowedImportRule(_ImportTrackingRule):
    """IMP002: the same name bound by more than one module-level import.

    Function-local lazy imports live in separate scopes and are not
    tracked; only top-level rebindings are real shadows.
    """

    id = "IMP002"
    name = "shadowed-import"
    severity = SEVERITY_WARNING
    description = "import binding shadowed by a later import of the same name"

    def end_file(self, ctx) -> None:
        first_seen: Dict[str, Tuple[int, str]] = {}
        for bound, line, col, display in self._bindings:
            if col != 0:  # indented import: function/branch scope
                continue
            if bound in first_seen:
                prev_line, prev_display = first_seen[bound]
                ctx.report_at(
                    self,
                    line,
                    col,
                    f"import of {display!r} shadows {prev_display!r} "
                    f"imported on line {prev_line}",
                )
            else:
                first_seen[bound] = (line, display)


class HotPathFloat64Rule(Rule):
    """PRF001: float64 reference in a per-cycle hot-path module.

    The sensing chain (NN inference, ISP stages, renderer, classifier
    runtime) runs every control cycle and is deliberately float32
    end-to-end — a single ``np.float64`` cast or ``dtype="float64"``
    doubles the bandwidth of everything downstream and silently undoes
    the fast path.  Geometry/sensor code (``sim/track.py``,
    ``sim/sensor.py``) legitimately computes in float64 and is not in
    the guarded set.  A deliberate exception can be suppressed in place
    with ``# reprolint: disable=PRF001``.
    """

    id = "PRF001"
    name = "hot-path-float64"
    severity = SEVERITY_ERROR
    description = "float64 reference in a float32 hot-path module"

    _HOT_PATH_SUFFIXES = (
        "nn/layers.py",
        "nn/model.py",
        "isp/stages.py",
        "isp/pipeline.py",
        "sim/renderer.py",
        "classifiers/models.py",
        "classifiers/runtime.py",
        "hil/batch.py",
        "perception/bev.py",
        "perception/threshold.py",
    )
    _DTYPE_KEYWORDS = ("dtype", "output")

    def visit_node(self, node: ast.AST, ctx) -> None:
        if not ctx.posix_path.endswith(self._HOT_PATH_SUFFIXES):
            return
        if isinstance(node, ast.Attribute):
            dotted = _dotted_name(node)
            if dotted and dotted.endswith(".float64"):
                ctx.report(
                    self,
                    node,
                    f"{dotted} in a hot-path module; the sensing chain "
                    "is float32 end-to-end (see DESIGN.md)",
                )
        elif isinstance(node, ast.Call):
            for keyword in node.keywords:
                if (
                    keyword.arg in self._DTYPE_KEYWORDS
                    and isinstance(keyword.value, ast.Constant)
                    and keyword.value.value == "float64"
                ):
                    ctx.report(
                        self,
                        keyword.value,
                        f'{keyword.arg}="float64" in a hot-path module; '
                        "the sensing chain is float32 end-to-end",
                    )


class PrintInLibraryRule(Rule):
    """IO001: ``print()`` in library code.

    User-facing output belongs to the CLI (``__main__.py``) and the
    report generator (``experiments/report.py``); library modules emit
    progress through :mod:`logging` so callers control verbosity.
    """

    id = "IO001"
    name = "print-in-library"
    severity = SEVERITY_ERROR
    description = "print() in library code; use logging or the CLI layer"

    _EXEMPT_SUFFIXES = ("__main__.py", "experiments/report.py")

    def visit_node(self, node: ast.AST, ctx) -> None:
        if not isinstance(node, ast.Call):
            return
        if ctx.posix_path.endswith(self._EXEMPT_SUFFIXES):
            return
        if isinstance(node.func, ast.Name) and node.func.id == "print":
            ctx.report(
                self,
                node,
                "print() in library code; log via "
                "logging.getLogger(__name__) instead",
            )


class FacadeSignatureRule(Rule):
    """API002: the ``repro.api`` facade must be keyword-only and documented.

    The facade's stability contract (see ``repro/api.py``) promises that
    public entry points never break callers by reordering parameters:
    everything past an optional first positional argument is
    keyword-only, and every public function carries a docstring.  This
    rule turns that promise into a tier-1 gate.
    """

    id = "API002"
    name = "facade-signature"
    severity = SEVERITY_ERROR
    description = (
        "facade/service public function with extra positional parameters "
        "or no docstring; the served surface is keyword-only by contract"
    )

    #: The modules under the facade stability contract: the facade
    #: itself plus every public module of the served surface
    #: (``repro.service``), which API003 locks alongside it.
    _FACADE_SUFFIXES = (
        "repro/api.py",
        "repro/service/__init__.py",
        "repro/service/client.py",
        "repro/service/errors.py",
        "repro/service/protocol.py",
        "repro/service/server.py",
    )

    def visit_node(self, node: ast.AST, ctx) -> None:
        if not ctx.posix_path.endswith(self._FACADE_SUFFIXES):
            return
        if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            return
        if node.name.startswith("_"):
            return
        if ast.get_docstring(node) is None:
            ctx.report(
                self,
                node,
                f"public facade function {node.name}() has no docstring",
            )
        positional = list(getattr(node.args, "posonlyargs", [])) + list(
            node.args.args
        )
        if positional and positional[0].arg in ("self", "cls"):
            positional = positional[1:]
        if len(positional) > 1:
            extras = ", ".join(a.arg for a in positional[1:])
            ctx.report(
                self,
                node,
                f"{node.name}() takes positional parameters ({extras}) "
                "past the first; make them keyword-only (add * to the "
                "signature) to honour the facade stability contract",
            )


def _service_vocabulary() -> Optional[Dict[str, frozenset]]:
    """The wire vocabulary, imported from the modules that define it.

    Returns None when the repro packages are unavailable (linting a
    foreign tree), which disables the check rather than guessing.
    """
    try:
        from repro.service import protocol
    except ImportError:
        return None
    # Codes that are everyday words ("cancelled", "internal") and the
    # one op that doubles as a facade parameter name ("profile") are
    # excluded: exact-matching them would flag legitimate strings.
    return {
        "ops": frozenset(protocol.ALL_OPS) - {"profile"},
        "codes": frozenset(protocol.ERROR_CODES) - {"cancelled", "internal"},
    }


class ProtocolLiteralRule(Rule):
    """SVC001: service wire-protocol strings spelled as literals.

    The wire vocabulary — operation names and error codes — is defined
    once, in :mod:`repro.service.protocol` (codes canonically on the
    exception classes in :mod:`repro.service.errors`).  Spelling one as
    a string literal anywhere else can silently drift from the protocol,
    exactly the failure mode ``OBS001`` guards for telemetry event
    names.  Error codes are distinctive and scanned package-wide;
    operation names are ordinary words elsewhere in the tree (the CLI
    has a ``profile`` command, the facade a ``simulate`` function), so
    they are only scanned inside ``repro/service/`` itself.
    """

    id = "SVC001"
    name = "protocol-literal"
    severity = SEVERITY_ERROR
    description = (
        "service protocol string literal outside repro/service/protocol.py; "
        "import the OP_*/ERR_* constant instead"
    )

    #: The two modules that *define* the vocabulary.
    _EXEMPT_SUFFIXES = ("service/protocol.py", "service/errors.py")
    _SERVICE_MARKER = "repro/service/"

    def __init__(self):
        self._vocabulary = _service_vocabulary()

    def visit_node(self, node: ast.AST, ctx) -> None:
        if self._vocabulary is None:
            return
        if not isinstance(node, ast.Constant) or not isinstance(
            node.value, str
        ):
            return
        if ctx.posix_path.endswith(self._EXEMPT_SUFFIXES):
            return
        if ctx.is_docstring(node):
            return
        value = node.value
        if value in self._vocabulary["codes"]:
            ctx.report(
                self,
                node,
                f"error-code literal {value!r}; import the ERR_* constant "
                "from repro.service.protocol (or catch the typed exception "
                "from repro.service.errors)",
            )
        elif (
            value in self._vocabulary["ops"]
            and self._SERVICE_MARKER in ctx.posix_path
        ):
            ctx.report(
                self,
                node,
                f"operation-name literal {value!r} inside repro.service; "
                "use the OP_* constant from repro.service.protocol",
            )


#: All rule classes in id order; the engine instantiates per run.
RULES: Tuple[type, ...] = (
    UnseededRandomRule,
    MutableDefaultRule,
    FloatEqualityRule,
    BroadExceptRule,
    KnobDomainRule,
    UnitSuffixRule,
    MissingAllRule,
    DeadImportRule,
    ShadowedImportRule,
    HotPathFloat64Rule,
    PrintInLibraryRule,
    FacadeSignatureRule,
    ProtocolLiteralRule,
)


def default_rules() -> List[Rule]:
    """Fresh instances of every registered rule."""
    return [cls() for cls in RULES]


def rules_by_id() -> Dict[str, type]:
    """Registry mapping rule id -> rule class."""
    return {cls.id: cls for cls in RULES}
