"""Project-aware static analysis and runtime contracts (reprolint).

- :mod:`repro.analysis.engine` — config, file collection, the shared
  single-pass AST walk, suppression comments;
- :mod:`repro.analysis.rules` — the ~10 project-specific rules
  (unseeded RNG, knob domains, unit suffixes, ...);
- :mod:`repro.analysis.report` — findings, text/JSON rendering, exit
  codes;
- :mod:`repro.analysis.contracts` — ``@check_shapes`` /
  ``@check_finite`` runtime guards, gated by ``REPRO_CONTRACTS``.

CLI: ``python -m repro lint [paths]`` (or the ``reprolint`` console
script).  The tier-1 gate ``tests/test_analysis.py`` keeps ``src/repro``
clean under the full rule set.
"""

from repro.analysis.contracts import (
    ContractViolation,
    assert_finite,
    check_finite,
    check_shapes,
    contracts_enabled,
    set_contracts_enabled,
)
from repro.analysis.engine import LintConfig, LintEngine, load_config
from repro.analysis.report import Finding, LintReport
from repro.analysis.rules import RULES, Rule, default_rules, rules_by_id

__all__ = [
    "ContractViolation",
    "Finding",
    "LintConfig",
    "LintEngine",
    "LintReport",
    "RULES",
    "Rule",
    "assert_finite",
    "check_finite",
    "check_shapes",
    "contracts_enabled",
    "default_rules",
    "load_config",
    "rules_by_id",
    "set_contracts_enabled",
]
