"""Project-aware static analysis and runtime contracts (reprolint).

Analysis layers (token -> AST -> graph):

- :mod:`repro.analysis.engine` — config, file collection, suppression
  comments (token level), the shared single-pass AST walk, and the
  whole-program ``lint_project`` pass;
- :mod:`repro.analysis.rules` — the per-file AST rules (unseeded RNG,
  knob domains, unit suffixes, ...);
- :mod:`repro.analysis.graph` — the project rules over the parsed-once
  import/call graph (architecture contract, import cycles, dead
  functions, API lockfile drift, RNG-stream flow);
- :mod:`repro.analysis.surface` — static public-API extraction and the
  ``api_surface.json`` lockfile;
- :mod:`repro.analysis.report` — findings, text/JSON rendering, exit
  codes;
- :mod:`repro.analysis.contracts` — backward-compatible re-export of
  the runtime guards, which live in :mod:`repro.utils.contracts`.

CLI: ``python -m repro lint [--project] [paths]`` (or the ``reprolint``
console script) and ``python -m repro graph``.  The tier-1 gate
``tests/test_analysis.py`` keeps ``src/repro`` clean under the full
rule set, project pass included.
"""

from repro.analysis.contracts import (
    ContractViolation,
    assert_finite,
    check_finite,
    check_shapes,
    contracts_enabled,
    set_contracts_enabled,
)
from repro.analysis.engine import (
    LintConfig,
    LintEngine,
    all_rules_by_id,
    load_config,
)
from repro.analysis.graph import (
    PROJECT_RULES,
    ProjectGraph,
    ProjectRule,
    default_project_rules,
    project_rules_by_id,
)
from repro.analysis.report import Finding, LintReport
from repro.analysis.rules import RULES, Rule, default_rules, rules_by_id
from repro.analysis.surface import (
    extract_api_surface,
    read_lockfile,
    render_lockfile,
    write_lockfile,
)

__all__ = [
    "ContractViolation",
    "Finding",
    "LintConfig",
    "LintEngine",
    "LintReport",
    "PROJECT_RULES",
    "ProjectGraph",
    "ProjectRule",
    "RULES",
    "Rule",
    "all_rules_by_id",
    "assert_finite",
    "check_finite",
    "check_shapes",
    "contracts_enabled",
    "default_project_rules",
    "default_rules",
    "extract_api_surface",
    "load_config",
    "project_rules_by_id",
    "read_lockfile",
    "render_lockfile",
    "rules_by_id",
    "set_contracts_enabled",
    "write_lockfile",
]
