"""The reprolint engine: config, file collection, and the shared walk.

The engine parses each file once, runs every selected rule over the
single AST walk, applies suppression comments, and collects a
:class:`~repro.analysis.report.LintReport`.

Suppression syntax
------------------
``# reprolint: disable=FLT001`` (comma-separate several ids, or
``disable=all``):

- on a line *with code*, it suppresses matching findings on that line;
- on a line *of its own*, it suppresses matching findings in the whole
  file.

Configuration
-------------
``[tool.reprolint]`` in ``pyproject.toml``::

    [tool.reprolint]
    select = []                  # rule ids to run (empty = all)
    ignore = ["FLT001"]          # rule ids to skip
    exclude = ["examples/*"]     # fnmatch patterns of paths to skip

CLI flags override the config block; see ``python -m repro lint -h``.
"""

from __future__ import annotations

import ast
import io
import re
import tokenize
import warnings
from dataclasses import dataclass, field
from pathlib import Path
from fnmatch import fnmatch
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Set, Tuple

from repro.analysis.graph import (
    ProjectGraph,
    default_project_rules,
    project_rules_by_id,
)
from repro.analysis.report import Finding, LintReport, SEVERITY_FATAL
from repro.analysis.rules import Rule, default_rules, rules_by_id

__all__ = ["LintConfig", "LintEngine", "all_rules_by_id", "load_config"]

_SUPPRESS_RE = re.compile(r"#\s*reprolint:\s*disable=([A-Za-z0-9_,\s-]+)")


def all_rules_by_id() -> Dict[str, type]:
    """Registry of every rule id: per-file rules plus project rules."""
    merged = dict(rules_by_id())
    merged.update(project_rules_by_id())
    return merged


@dataclass(frozen=True)
class LintConfig:
    """Engine configuration (the ``[tool.reprolint]`` block).

    ``root`` is the directory the config was loaded from (where
    ``pyproject.toml`` lives); exclude patterns match paths relative to
    it, and the API lockfile resolves against it.  ``layers`` is the
    architecture contract (``[tool.reprolint.layers]``): layer name ->
    layers it may import.  ``entry_points`` are function names reachable
    from outside the package (console scripts), used as dead-code roots.
    """

    select: Tuple[str, ...] = ()
    ignore: Tuple[str, ...] = ()
    exclude: Tuple[str, ...] = ()
    root: Optional[str] = None
    layers: Mapping[str, Tuple[str, ...]] = field(default_factory=dict)
    lockfile: str = "api_surface.json"
    entry_points: Tuple[str, ...] = ()

    def active_rule_ids(self) -> Tuple[str, ...]:
        """Rule ids to run, honouring select/ignore."""
        known = tuple(all_rules_by_id())
        chosen = self.select or known
        unknown = [rid for rid in (*chosen, *self.ignore) if rid not in known]
        if unknown:
            raise ValueError(
                f"unknown rule id(s) {unknown}; known: {list(known)}"
            )
        return tuple(rid for rid in chosen if rid not in self.ignore)

    def normalize(self, path: Path) -> str:
        """POSIX path relative to the config root (when under it)."""
        candidate = path if path.is_absolute() else Path.cwd() / path
        if self.root is not None:
            try:
                return candidate.resolve().relative_to(
                    Path(self.root).resolve()
                ).as_posix()
            except ValueError:
                pass
        return path.as_posix()

    def is_excluded(self, path) -> bool:
        """Whether *path* (str or Path) matches any exclude pattern.

        Paths are normalized to POSIX form relative to the config root
        before matching, so ``examples/*`` behaves identically whether
        ``lint_paths`` received a relative or an absolute path.
        """
        posix_path = (
            self.normalize(path) if isinstance(path, Path) else path
        )
        return any(
            fnmatch(posix_path, pattern) or fnmatch(f"/{posix_path}", f"*/{pattern}")
            for pattern in self.exclude
        )


def _parse_layers(block: Mapping) -> Dict[str, Tuple[str, ...]]:
    """The ``[tool.reprolint.layers]`` allowlist as plain tuples."""
    layers = block.get("layers", {})
    if not isinstance(layers, Mapping):
        return {}
    return {
        str(name): tuple(str(dep) for dep in deps)
        for name, deps in layers.items()
    }


def _parse_entry_points(data: Mapping) -> Tuple[str, ...]:
    """Function names referenced by ``[project.scripts]`` specs."""
    scripts = data.get("project", {}).get("scripts", {})
    names = []
    for spec in scripts.values():
        _, _, attr = str(spec).partition(":")
        if attr:
            names.append(attr.split(".")[0].strip())
    return tuple(sorted(set(names)))


def load_config(start: Optional[Path] = None) -> LintConfig:
    """Load ``[tool.reprolint]`` from the nearest ``pyproject.toml``.

    Walks up from *start* (default: the current directory) and returns
    the default config when no file or block is found, or when the
    interpreter lacks a TOML parser.
    """
    try:
        import tomllib
    except ImportError:  # pragma: no cover - Python < 3.11
        return LintConfig()
    directory = (start or Path.cwd()).resolve()
    if directory.is_file():
        directory = directory.parent
    for candidate in (directory, *directory.parents):
        pyproject = candidate / "pyproject.toml"
        if not pyproject.is_file():
            continue
        with open(pyproject, "rb") as handle:
            data = tomllib.load(handle)
        block = data.get("tool", {}).get("reprolint", {})
        return LintConfig(
            select=tuple(block.get("select", ())),
            ignore=tuple(block.get("ignore", ())),
            exclude=tuple(block.get("exclude", ())),
            root=str(candidate),
            layers=_parse_layers(block),
            lockfile=str(block.get("lockfile", "api_surface.json")),
            entry_points=_parse_entry_points(data),
        )
    return LintConfig()


class FileContext:
    """Per-file state handed to every rule during the walk."""

    def __init__(self, path: str, source: str, tree: ast.Module):
        self.path = path
        self.posix_path = path.replace("\\", "/")
        self.is_init_file = self.posix_path.endswith("__init__.py")
        self.tree = tree
        self.findings: List[Finding] = []
        self._docstrings: Set[int] = set()
        self.imported_modules: Set[str] = set()
        self._index(tree)

    def _index(self, tree: ast.Module) -> None:
        for node in ast.walk(tree):
            if isinstance(
                node,
                (ast.Module, ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef),
            ):
                body = node.body
                if (
                    body
                    and isinstance(body[0], ast.Expr)
                    and isinstance(body[0].value, ast.Constant)
                    and isinstance(body[0].value.value, str)
                ):
                    self._docstrings.add(id(body[0].value))
            elif isinstance(node, ast.Import):
                for alias in node.names:
                    self.imported_modules.add(alias.name.split(".")[0])
            elif isinstance(node, ast.ImportFrom) and node.module:
                self.imported_modules.add(node.module.split(".")[0])

    def is_docstring(self, node: ast.AST) -> bool:
        """Whether a Constant node is a module/class/function docstring."""
        return id(node) in self._docstrings

    def report(self, rule: Rule, node: ast.AST, message: str) -> None:
        """Emit a finding anchored at *node*'s source location."""
        self.report_at(
            rule,
            getattr(node, "lineno", 1),
            getattr(node, "col_offset", 0),
            message,
        )

    def report_at(self, rule: Rule, line: int, col: int, message: str) -> None:
        """Emit a finding at an explicit location."""
        self.findings.append(
            Finding(
                rule_id=rule.id,
                severity=rule.severity,
                path=self.path,
                line=line,
                col=col,
                message=message,
            )
        )

    def report_file(self, rule: Rule, message: str) -> None:
        """Emit a file-level finding (anchored at line 1)."""
        self.report_at(rule, 1, 0, message)


def _parse_suppressions(source: str) -> Tuple[Dict[int, Set[str]], Set[str]]:
    """Extract suppression comments from *source*.

    Returns ``(per_line, per_file)``: rule-id sets keyed by line number
    for comments trailing code, and a file-wide set for comments on
    lines of their own.  ``"all"`` suppresses every rule.
    """
    per_line: Dict[int, Set[str]] = {}
    per_file: Set[str] = set()
    lines = source.splitlines()
    try:
        tokens = list(tokenize.generate_tokens(io.StringIO(source).readline))
    except (tokenize.TokenError, IndentationError, SyntaxError):
        return per_line, per_file
    for token in tokens:
        if token.type != tokenize.COMMENT:
            continue
        match = _SUPPRESS_RE.search(token.string)
        if not match:
            continue
        ids = {part.strip() for part in match.group(1).split(",") if part.strip()}
        row, col = token.start
        before = lines[row - 1][:col] if row - 1 < len(lines) else ""
        if before.strip():
            per_line.setdefault(row, set()).update(ids)
        else:
            per_file.update(ids)
    return per_line, per_file


class LintEngine:
    """Runs the selected rules over a file set in a single pass each."""

    def __init__(
        self,
        config: Optional[LintConfig] = None,
        rules: Optional[Sequence[Rule]] = None,
    ):
        self.config = config or LintConfig()
        if rules is None:
            active = set(self.config.active_rule_ids())
            rules = [r for r in default_rules() if r.id in active]
        self.rules: List[Rule] = list(rules)
        self._sources: Dict[str, str] = {}

    # -- file collection ------------------------------------------------

    def collect_files(self, paths: Sequence[str]) -> Tuple[List[Path], int]:
        """Expand *paths* to .py files; returns (kept, n_excluded)."""
        kept: List[Path] = []
        excluded = 0
        seen: Set[Path] = set()
        for raw in paths:
            path = Path(raw)
            if path.is_dir():
                candidates: Iterable[Path] = sorted(path.rglob("*.py"))
            else:
                candidates = [path]
            for candidate in candidates:
                resolved = candidate.resolve()
                if resolved in seen:
                    continue
                seen.add(resolved)
                if self.config.is_excluded(candidate):
                    excluded += 1
                    continue
                kept.append(candidate)
        return kept, excluded

    # -- linting --------------------------------------------------------

    def lint_paths(self, paths: Sequence[str]) -> LintReport:
        """Lint files/directories and return the aggregate report."""
        report = LintReport()
        files, report.files_excluded = self.collect_files(paths)
        for path in files:
            display = path.as_posix()
            try:
                source = path.read_text(encoding="utf-8")
            except (OSError, UnicodeDecodeError) as exc:
                report.findings.append(_fatal(display, f"unreadable: {exc}"))
                continue
            report.files_checked += 1
            findings, suppressed = self.lint_source(
                source, display, count_suppressed=True
            )
            report.findings.extend(findings)
            report.suppressed += suppressed
        return report

    def lint_source(
        self,
        source: str,
        path: str = "<string>",
        count_suppressed: bool = False,
    ):
        """Lint one source string.

        Returns the finding list, or ``(findings, n_suppressed)`` when
        *count_suppressed* is true.
        """
        try:
            tree = ast.parse(source, filename=path)
        except (SyntaxError, ValueError) as exc:
            findings = [_fatal(path, f"cannot parse: {exc}")]
            return (findings, 0) if count_suppressed else findings

        findings = self._run_file_rules(path, source, tree)
        kept, suppressed = self._apply_suppressions(findings, source, path)
        return (kept, suppressed) if count_suppressed else kept

    def _run_file_rules(
        self, path: str, source: str, tree: ast.Module
    ) -> List[Finding]:
        """One shared walk of *tree* through every per-file rule."""
        ctx = FileContext(path, source, tree)
        for rule in self.rules:
            rule.begin_file(ctx)
        for node in ast.walk(tree):
            for rule in self.rules:
                rule.visit_node(node, ctx)
        for rule in self.rules:
            rule.end_file(ctx)
        return ctx.findings

    def _apply_suppressions(
        self, findings: Sequence[Finding], source: str, path: str
    ) -> Tuple[List[Finding], int]:
        """Split *findings* into (kept, n_suppressed) per the comments."""
        per_line, per_file = _parse_suppressions(source)
        known = all_rules_by_id()
        for rule_id in sorted(
            {i for ids in (*per_line.values(), per_file) for i in ids}
        ):
            if rule_id != "all" and rule_id not in known:
                warnings.warn(
                    f"reprolint: suppression in {path} names unknown rule "
                    f"id {rule_id!r}",
                    stacklevel=2,
                )
        kept: List[Finding] = []
        suppressed = 0
        for finding in findings:
            line_ids = per_line.get(finding.line, set())
            if (
                "all" in per_file
                or finding.rule_id in per_file
                or "all" in line_ids
                or finding.rule_id in line_ids
            ):
                suppressed += 1
            else:
                kept.append(finding)
        return kept, suppressed

    # -- whole-program analysis -----------------------------------------

    def build_graph(self, package_dir) -> Tuple[ProjectGraph, LintReport]:
        """Parse the package tree once into a :class:`ProjectGraph`.

        Returns the graph plus a partial report holding the per-file
        findings (and parse failures) gathered during the same pass; the
        project findings are added by :meth:`lint_project`.
        """
        package_dir = Path(package_dir)
        report = LintReport()
        graph = ProjectGraph(package_dir.name, package_dir)
        files, report.files_excluded = self.collect_files([str(package_dir)])
        sources: Dict[str, str] = {}
        for path in files:
            display = path.as_posix()
            try:
                source = path.read_text(encoding="utf-8")
            except (OSError, UnicodeDecodeError) as exc:
                report.findings.append(_fatal(display, f"unreadable: {exc}"))
                continue
            try:
                tree = ast.parse(source, filename=display)
            except (SyntaxError, ValueError) as exc:
                report.findings.append(_fatal(display, f"cannot parse: {exc}"))
                continue
            report.files_checked += 1
            sources[display] = source
            graph.add_source(path, display, source, tree)
            kept, suppressed = self._apply_suppressions(
                self._run_file_rules(display, source, tree), source, display
            )
            report.findings.extend(kept)
            report.suppressed += suppressed
        self._sources = sources
        return graph, report

    def lint_project(self, package_dir) -> LintReport:
        """Per-file rules plus the whole-program pass over *package_dir*.

        The tree is parsed exactly once; the project rules (architecture
        contract, import cycles, dead functions, API lockfile, RNG flow)
        run over the resulting :class:`ProjectGraph`, and their findings
        honour the same suppression comments and select/ignore config as
        the per-file rules.
        """
        graph, report = self.build_graph(package_dir)
        active = set(self.config.active_rule_ids())
        for rule in default_project_rules():
            if rule.id not in active:
                continue
            for finding in rule.check(graph, self.config):
                source = self._sources.get(finding.path)
                if source is None:
                    report.findings.append(finding)
                    continue
                kept, suppressed = self._apply_suppressions(
                    [finding], source, finding.path
                )
                report.findings.extend(kept)
                report.suppressed += suppressed
        return report


def _fatal(path: str, message: str) -> Finding:
    return Finding(
        rule_id="PARSE000",
        severity=SEVERITY_FATAL,
        path=path,
        line=1,
        col=0,
        message=message,
    )
