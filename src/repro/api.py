"""Stable top-level entry points (``import repro; repro.simulate(...)``).

This module is the supported programmatic surface of the package: four
keyword-only functions that cover the common workflows without touching
engine plumbing —

- :func:`simulate` — one closed-loop HiL run;
- :func:`characterize` — the design-time knob sweep (Table III);
- :func:`profile` — a run with per-stage wall-clock measurement plus
  the Table II modeled latencies for comparison;
- :func:`inject` — a run under a fault campaign with graceful
  degradation enabled (see :mod:`repro.faults`);
- :func:`load_trace` / :func:`diff_traces` — read and compare the
  JSONL telemetry traces ``simulate(telemetry=...)`` writes (see
  :mod:`repro.telemetry`);
- :func:`connect` — a client for a running ``python -m repro serve``
  service (see :mod:`repro.service`); a served ``simulate`` returns
  results bit-identical to the in-process call.

Stability contract (see also ``docs/DESIGN.md``): every public function
here takes keyword-only arguments, new parameters are only ever added
with defaults that preserve existing behaviour, and returned objects
only grow fields.  Everything below :mod:`repro.api` (engine classes,
manager internals) may change between versions; scripts that stick to
this module keep working.  The ``API002`` lint rule enforces the
keyword-only + docstring convention mechanically, and the service wire
schema carries the same contract across processes (versioned ``"v": 1``
envelopes, additive-only fields).

Deprecation history: the ``window_ms`` alias of
``ReconfigurationManager``'s ``invocation_window_ms`` (deprecated in
1.1.0 with a ``DeprecationWarning`` shim) was removed in 1.3.0 —
passing it now raises ``TypeError``.

All heavy imports are deferred into the function bodies, so
``import repro`` stays cheap.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, Optional, Sequence, Tuple, Union

if TYPE_CHECKING:
    from pathlib import Path

    from repro.core.cases import CaseConfig
    from repro.core.characterization import CharacterizationConfig, KnobEvaluation
    from repro.core.knobs import KnobSetting
    from repro.core.reconfiguration import MitigationConfig, SituationIdentifier
    from repro.core.situation import Situation
    from repro.faults.plan import FaultPlan
    from repro.hil.engine import HilConfig
    from repro.hil.record import HilResult
    from repro.service.client import ServiceClient
    from repro.sim.track import Track
    from repro.telemetry.trace import RunTrace

__all__ = [
    "simulate",
    "characterize",
    "profile",
    "inject",
    "load_trace",
    "diff_traces",
    "connect",
    "ProfileReport",
]


def _coerce_situation(situation: Union[int, Situation]) -> Situation:
    """A :class:`Situation` from a Table III index or an instance."""
    from repro.core.situation import Situation, situation_by_index

    if isinstance(situation, Situation):
        return situation
    return situation_by_index(situation)


def _coerce_track(
    track: Optional[Track],
    situation: Union[int, Situation],
    length_m: float,
) -> Tuple[Track, Situation]:
    """The track to simulate on (an explicit one wins over *situation*)."""
    from repro.sim import static_situation_track

    resolved = _coerce_situation(situation)
    if track is not None:
        return track, resolved
    return static_situation_track(resolved, length=length_m), resolved


def _build_config(
    config: Optional[HilConfig],
    seed: Optional[int],
    frame: Optional[Tuple[int, int]],
    profile: bool,
    faults: Union[FaultPlan, str, None],
    mitigate: Union[bool, MitigationConfig],
) -> HilConfig:
    """Merge the convenience keywords over the base :class:`HilConfig`.

    Only explicitly-provided keywords override the base; ``None`` /
    ``False`` leave the base untouched, so ``config=`` composes with the
    shortcuts instead of fighting them.
    """
    from dataclasses import replace

    from repro.core.reconfiguration import MitigationConfig
    from repro.faults.plan import resolve_fault_plan
    from repro.hil.engine import HilConfig

    base = config if config is not None else HilConfig()
    overrides: Dict[str, object] = {}
    if seed is not None:
        overrides["seed"] = seed
    if frame is not None:
        width, height = frame
        overrides["frame_width"] = int(width)
        overrides["frame_height"] = int(height)
    if profile:
        overrides["profile"] = True
    if faults is not None:
        overrides["fault_plan"] = resolve_fault_plan(faults)
    if mitigate is True:
        overrides["mitigation"] = MitigationConfig()
    elif isinstance(mitigate, MitigationConfig):
        overrides["mitigation"] = mitigate
    if not overrides:
        return base
    return replace(base, **overrides)


def _resolve_rollout_cache(
    cache: Union[str, Path, None], cfg: Optional[HilConfig]
):
    """The rollout store for this call, or ``None`` when caching is off.

    Profiled runs bypass the cache outright: profiling is the point of
    the run, and a cached result carries no measured stats.
    """
    if cache is None or (cfg is not None and cfg.profile):
        return None
    from repro.cache import resolve_cache

    return resolve_cache(cache)


def simulate(
    *,
    situation: Union[int, Situation] = 1,
    case: Union[str, CaseConfig] = "case3",
    track: Optional[Track] = None,
    length_m: float = 150.0,
    identifier: Union[SituationIdentifier, str, None] = None,
    table: Optional[Dict[Situation, KnobSetting]] = None,
    faults: Union[FaultPlan, str, None] = None,
    mitigate: Union[bool, MitigationConfig] = False,
    seed: Union[int, Sequence[int], None] = None,
    frame: Optional[Tuple[int, int]] = None,
    profile: bool = False,
    telemetry: Union[str, Path, None] = None,
    batch: Union[int, str, None] = None,
    cache: Union[str, Path, None] = None,
    config: Optional[HilConfig] = None,
) -> Union[HilResult, list[HilResult]]:
    """Run one closed-loop HiL simulation and return its trace.

    Parameters
    ----------
    situation:
        Table III situation index (1-21) or a :class:`Situation`; it
        defines the static track unless ``track`` is given.
    case:
        Design case name (``"case1"`` .. ``"case4"``, ``"variable"``,
        ``"adaptive"``) or a :class:`CaseConfig`.
    track:
        An explicit :class:`Track` (e.g. the Fig. 7 dynamic layout);
        overrides ``situation``/``length_m`` for the geometry while
        ``situation`` still seeds the initial belief via the track.
    length_m:
        Length of the generated static track in metres.
    identifier:
        Situation identifier: an instance, a registry spec such as
        ``"oracle:0.99"`` or ``"cnn"`` (see
        :mod:`repro.core.identifiers`), or ``None`` for the perfect
        oracle.
    table:
        Situation -> knob characterization table (``None`` uses the
        built-in default characterization).
    faults:
        Fault campaign: a :class:`~repro.faults.plan.FaultPlan`, a
        preset name (``"blackout"``, ``"stress"`` ...), or a spec
        string like ``"timeout@1500:inf,probability=0.5"``.
    mitigate:
        ``True`` enables graceful degradation with default policy; a
        :class:`MitigationConfig` customizes it; ``False`` leaves the
        base config's setting.
    seed:
        Run seed; ``None`` keeps the base config's seed.  A *sequence*
        of seeds runs one lock-step Monte-Carlo batch — every seed is
        simulated as its own lane through
        :class:`repro.hil.batch.BatchedHilEngine` (vectorized
        render/ISP/perception kernels, each lane bit-identical to a
        serial run with that seed) and a ``list[HilResult]`` in seed
        order is returned.
    frame:
        ``(width, height)`` of the simulated camera frame.
    profile:
        Measure per-stage wall clock (attached to ``result.profile``).
    telemetry:
        Path of a JSONL telemetry trace to write: the run executes with
        a scoped :class:`~repro.telemetry.TelemetryRecorder` and its
        manifest + event stream are persisted atomically (see
        :mod:`repro.telemetry`).  ``None`` (the default) records
        nothing extra; the simulated trace is bit-identical either way.
        Incompatible with a seed sequence (the per-cycle event streams
        of lock-step lanes would interleave in one trace).
    batch:
        Lane count per lock-step group for a seed sequence: explicit
        int > ``$REPRO_BATCH`` > ``"auto"``/``None`` (see
        :func:`repro.utils.parallel.resolve_batch`).  Ignored for a
        single seed.
    cache:
        Rollout result cache (see :mod:`repro.cache`): ``None``/
        ``"off"`` disable it, ``"auto"`` uses the default store under
        the cache dir, a path uses an explicit store root.  A hit
        returns a :class:`HilResult` bit-identical to the rerun it
        replaces (the stored manifest keeps the *original* run's
        wall-clock).  Profiled runs, ``telemetry=`` runs and
        non-spec-string identifiers always run live, and
        ``REPRO_NO_CACHE=1`` disables caching globally.  For a seed
        sequence the lookup is per lane: a batch with partial hits
        only simulates the misses.
    config:
        Base :class:`HilConfig`; the keywords above override it field
        by field.
    """
    from repro.hil.engine import HilEngine

    resolved_track, _ = _coerce_track(track, situation, length_m)
    if seed is not None and not isinstance(seed, int):
        if telemetry is not None:
            raise ValueError(
                "telemetry= records one run's event stream; it cannot be "
                "combined with a seed sequence (run the seeds one at a time)"
            )
        from repro.hil.batch import BatchedHilEngine
        from repro.utils.parallel import resolve_batch

        seeds = list(seed)
        configs = [
            _build_config(config, s, frame, profile, faults, mitigate)
            for s in seeds
        ]
        store = _resolve_rollout_cache(cache, configs[0] if configs else None)
        documents = None
        if store is not None:
            from repro.cache import rollout_key_document

            documents = [
                rollout_key_document(
                    track=resolved_track,
                    case=case,
                    table=table,
                    identifier=identifier,
                    config=cfg,
                )
                for cfg in configs
            ]
        lanes = resolve_batch(batch, len(seeds))
        results: list[HilResult] = []
        for start in range(0, len(seeds), lanes):
            engines = [
                HilEngine(
                    resolved_track,
                    case,
                    table=table,
                    identifier=identifier,
                    config=cfg,
                )
                for cfg in configs[start : start + lanes]
            ]
            results.extend(
                BatchedHilEngine(
                    engines,
                    cache=store,
                    cache_documents=(
                        documents[start : start + lanes]
                        if documents is not None
                        else None
                    ),
                ).run()
            )
        return results
    cfg = _build_config(config, seed, frame, profile, faults, mitigate)
    store = None if telemetry is not None else _resolve_rollout_cache(cache, cfg)
    document = None
    if store is not None:
        from repro.cache import rollout_key_document

        document = rollout_key_document(
            track=resolved_track,
            case=case,
            table=table,
            identifier=identifier,
            config=cfg,
        )
        hit = store.load(document)
        if hit is not None:
            return hit
    engine = HilEngine(
        resolved_track, case, table=table, identifier=identifier, config=cfg
    )
    if telemetry is None:
        result = engine.run()
        if store is not None:
            store.store(document, result)
        return result
    from repro.telemetry import TelemetryRecorder, activated, write_trace

    with activated(TelemetryRecorder()) as recorder:
        result = engine.run()
    write_trace(telemetry, result.manifest, recorder.events)
    return result


def characterize(
    *,
    situation: Union[int, Situation, None] = None,
    situations: Optional[Sequence[Union[int, Situation]]] = None,
    config: Optional[CharacterizationConfig] = None,
    use_cache: bool = True,
    verbose: bool = False,
    jobs: Optional[int] = None,
    batch: Union[int, str, None] = None,
    cache: Union[str, Path, None] = None,
) -> Union[Dict[Situation, KnobSetting], list[KnobEvaluation]]:
    """Design-time knob characterization (the Table III sweep).

    With ``situation`` (a single index or :class:`Situation`) the full
    ranked list of knob evaluations for that situation is returned —
    the per-row view the CLI prints.  Otherwise the situation -> best
    knob table is built for ``situations`` (default: all of Table III),
    reusing cached rollouts unless ``use_cache=False``.
    ``jobs`` fans independent evaluations across a process pool;
    ``batch`` sizes the lock-step lane chunk each worker advances
    through the batched rollout engine (explicit int > ``$REPRO_BATCH``
    > ``"auto"``).  Results are bit-identical for any ``(jobs, batch)``
    and for any cache state (hits load results byte-equal to reruns).
    ``cache`` overrides the store selection like ``simulate``'s
    keyword: ``"auto"`` (the ``use_cache=True`` default), ``"off"``,
    or an explicit store root.
    """
    from repro.core.characterization import (
        CharacterizationConfig,
        characterize as characterize_table,
        characterize_situation,
    )
    from repro.core.situation import TABLE3_SITUATIONS

    if situation is not None and situations is not None:
        raise ValueError("pass either situation= or situations=, not both")
    cfg = config if config is not None else CharacterizationConfig()
    if situation is not None:
        return characterize_situation(
            _coerce_situation(situation), cfg, jobs=jobs, batch=batch,
            cache=cache if cache is not None else ("auto" if use_cache else None),
        )
    resolved = (
        tuple(_coerce_situation(s) for s in situations)
        if situations is not None
        else TABLE3_SITUATIONS
    )
    return characterize_table(
        resolved, cfg, use_cache=use_cache, verbose=verbose, jobs=jobs,
        batch=batch, cache=cache,
    )


@dataclass
class ProfileReport:
    """Result of :func:`profile`: the run plus modeled latencies."""

    #: The closed-loop trace (``result.profile`` holds measured stats).
    result: HilResult
    #: Stage label -> Table II / Table IV modeled latency on Xavier.
    modeled_ms: Dict[str, float]

    def table(self) -> str:
        """Measured-vs-modeled stage table as text."""
        from repro.utils.profiling import format_stage_table

        return format_stage_table(
            self.result.profile or {}, modeled_ms=self.modeled_ms
        )


def _modeled_latencies(result: HilResult) -> Dict[str, float]:
    """Modeled per-stage latencies matching the run's actual knobs.

    Stages without a paper figure (the renderer is simulation
    scaffolding; per-ISP-stage splits are not profiled) are omitted, as
    is the ISP when the run switched configurations mid-trace (no
    single modeled number applies).
    """
    from repro.platform.profiles import (
        classifier_runtime_ms,
        control_runtime_ms,
        isp_runtime_ms,
        pr_runtime_ms,
    )

    modeled = {
        "hil.pr": pr_runtime_ms(),
        "hil.control": control_runtime_ms(),
    }
    isp_names = {c.active_isp for c in result.cycles}
    if len(isp_names) == 1:
        modeled["hil.isp"] = isp_runtime_ms(next(iter(isp_names)))
    clf_names = sorted({name for c in result.cycles for name in c.invoked})
    if clf_names:
        modeled["hil.classifier"] = sum(
            classifier_runtime_ms(name) for name in clf_names
        ) / len(clf_names)
    return modeled


def profile(
    *,
    situation: Union[int, Situation] = 1,
    case: Union[str, CaseConfig] = "case4",
    track: Optional[Track] = None,
    length_m: float = 60.0,
    identifier: Union[SituationIdentifier, str, None] = None,
    seed: Optional[int] = None,
    frame: Optional[Tuple[int, int]] = None,
    config: Optional[HilConfig] = None,
) -> ProfileReport:
    """Run a simulation with stage profiling and modeled-latency context.

    Same semantics as :func:`simulate` (profiling forced on); returns a
    :class:`ProfileReport` whose :meth:`~ProfileReport.table` renders
    the measured-vs-modeled comparison.  Profiling is observational
    only: the returned trace is bit-identical to an unprofiled run.
    """
    result = simulate(
        situation=situation,
        case=case,
        track=track,
        length_m=length_m,
        identifier=identifier,
        seed=seed,
        frame=frame,
        profile=True,
        config=config,
    )
    return ProfileReport(result=result, modeled_ms=_modeled_latencies(result))


def inject(
    *,
    faults: Union[FaultPlan, str],
    situation: Union[int, Situation] = 1,
    case: Union[str, CaseConfig] = "case3",
    track: Optional[Track] = None,
    length_m: float = 150.0,
    identifier: Union[SituationIdentifier, str, None] = None,
    table: Optional[Dict[Situation, KnobSetting]] = None,
    mitigate: Union[bool, MitigationConfig] = True,
    seed: Optional[int] = None,
    frame: Optional[Tuple[int, int]] = None,
    config: Optional[HilConfig] = None,
) -> HilResult:
    """Run a simulation under a fault campaign (mitigation on by default).

    ``faults`` is required: a :class:`~repro.faults.plan.FaultPlan`, a
    preset name (see ``FAULT_PLAN_PRESETS``), or a spec string such as
    ``"blackout@2000:2800;timeout@1500:inf,probability=0.5"``.  Pass
    ``mitigate=False`` for the unmitigated baseline; the returned
    trace's ``degraded_fraction()`` and ``fault_kinds()`` summarize the
    campaign's footprint.
    """
    return simulate(
        situation=situation,
        case=case,
        track=track,
        length_m=length_m,
        identifier=identifier,
        table=table,
        faults=faults,
        mitigate=mitigate,
        seed=seed,
        frame=frame,
        config=config,
    )


def connect(
    *,
    socket: Optional[str] = None,
    tcp: Optional[str] = None,
    timeout: Optional[float] = None,
) -> ServiceClient:
    """Connect to a running sensing service (``python -m repro serve``).

    Exactly one of ``socket`` (a Unix-domain socket path) or ``tcp``
    (``"host:port"``) selects the transport; ``timeout`` bounds each
    response wait in seconds.  Returns a context-manager
    :class:`~repro.service.client.ServiceClient` whose ``submit`` /
    ``result`` / ``cancel`` / ``stats`` methods speak the versioned wire
    protocol — a served ``simulate`` returns a
    :class:`~repro.hil.record.HilResult` bit-identical to calling
    :func:`simulate` in-process with the same seed.  Typed service
    failures (queue full, deadline exceeded, draining) raise the
    matching :mod:`repro.service.errors` exception.
    """
    from repro.service.client import ServiceClient

    return ServiceClient(socket=socket, tcp=tcp, timeout=timeout)


def load_trace(*, path: Union[str, Path]) -> RunTrace:
    """Load a JSONL telemetry trace written by ``simulate(telemetry=...)``.

    Returns a :class:`~repro.telemetry.RunTrace` carrying the run
    manifest (config hash, package version, RNG streams, env knobs)
    and the schema-versioned event stream in emit order.
    """
    from repro.telemetry import load_trace as _load_trace

    return _load_trace(path)


def diff_traces(
    *, a: Union[str, Path], b: Union[str, Path]
) -> list[str]:
    """Compare two telemetry trace files; an empty list means equivalent.

    Stable manifest fields and the full event streams are compared;
    the volatile wall-clock bounds are ignored, so two runs of the same
    seeded experiment diff empty.  Each returned string describes one
    difference (``python -m repro trace --diff`` prints them and exits
    2 when any exist).
    """
    from repro.telemetry import diff_traces as _diff_traces
    from repro.telemetry import load_trace as _load_trace

    return _diff_traces(_load_trace(a), _load_trace(b))
