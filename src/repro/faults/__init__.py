"""Deterministic fault injection and graceful degradation.

The subsystem has two halves:

- **Injection** (:mod:`repro.faults.plan`, :mod:`repro.faults
  .injection`) — a :class:`FaultPlan` of typed, windowed fault specs
  (sensor blackout/banding, ISP corruption/latency spikes, classifier
  wrong-label/timeout/outage, perception dropout) compiled into a
  :class:`FaultInjector` the HiL engine consults at each seam.  All
  randomness is seeded per spec; an empty plan is a shared no-op and
  leaves traces bit-identical.
- **Mitigation** — graceful degradation lives with the runtime it
  protects: :class:`repro.core.reconfiguration.MitigationConfig`
  enables staleness tracking, the safe-knob watchdog, and bounded
  classifier retries inside the reconfiguration manager, and the HiL
  engine records the per-cycle ``degraded`` flag on
  :class:`repro.hil.record.CycleRecord`.

Entry points: ``HilConfig(fault_plan=..., mitigation=...)``,
:func:`repro.api.inject`, ``python -m repro inject``, and the
``bench_fault_tolerance`` benchmark.
"""

from repro.faults.injection import (
    CLASSIFIER_FAILED,
    CLASSIFIER_OK,
    CLASSIFIER_WRONG,
    FaultInjector,
    NULL_INJECTOR,
    NullInjector,
    build_injector,
)
from repro.faults.plan import (
    FAULT_KINDS,
    FAULT_PLAN_PRESETS,
    ClassifierOutage,
    ClassifierTimeout,
    ClassifierWrongLabel,
    FaultPlan,
    FaultSpec,
    IspCorruption,
    IspLatencySpike,
    PerceptionDropout,
    SensorBanding,
    SensorBlackout,
    parse_fault_spec,
    resolve_fault_plan,
)

__all__ = [
    "FaultSpec",
    "SensorBlackout",
    "SensorBanding",
    "IspCorruption",
    "IspLatencySpike",
    "ClassifierWrongLabel",
    "ClassifierTimeout",
    "ClassifierOutage",
    "PerceptionDropout",
    "FaultPlan",
    "FAULT_KINDS",
    "FAULT_PLAN_PRESETS",
    "parse_fault_spec",
    "resolve_fault_plan",
    "CLASSIFIER_OK",
    "CLASSIFIER_WRONG",
    "CLASSIFIER_FAILED",
    "NullInjector",
    "NULL_INJECTOR",
    "FaultInjector",
    "build_injector",
]
