"""Fault injectors: the runtime half of :mod:`repro.faults`.

The HiL engine talks to a single injector object through thin per-seam
hooks (raw frame, ISP tap, timing, classifier outcomes, perception),
so the fault model stays in one place instead of scattering ``if``
checks through the loop:

- :data:`NULL_INJECTOR` — the shared no-op used when no plan is
  attached.  It draws no random numbers and allocates nothing, so runs
  without faults stay bit-identical to a build without this subsystem.
- :class:`FaultInjector` — compiled from a :class:`~repro.faults.plan
  .FaultPlan`; every spec gets its own generator derived from the run
  seed via :func:`repro.utils.rng.derive_rng` (stream
  ``fault/<index>/<kind>``), so adding a spec never perturbs the draws
  of another.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from repro.faults.plan import (
    ClassifierOutage,
    ClassifierTimeout,
    ClassifierWrongLabel,
    FaultPlan,
    IspCorruption,
    IspLatencySpike,
    PerceptionDropout,
    SensorBanding,
    SensorBlackout,
)
from repro.sim.sensor import band_frame, blackout_frame
from repro.telemetry import recorder as telemetry
from repro.telemetry.events import FAULT_ACTIVATED, FAULT_CLEARED
from repro.utils.rng import derive_rng

__all__ = [
    "CLASSIFIER_OK",
    "CLASSIFIER_WRONG",
    "CLASSIFIER_FAILED",
    "NullInjector",
    "NULL_INJECTOR",
    "FaultInjector",
    "build_injector",
]

#: Classifier invocation outcomes reported by the injector.
CLASSIFIER_OK = "ok"
CLASSIFIER_WRONG = "wrong"
CLASSIFIER_FAILED = "failed"


class NullInjector:
    """No faults: every hook is the identity / a constant.

    Shared singleton (:data:`NULL_INJECTOR`); keeping the hooks trivial
    means the engine needs no ``if injector is not None`` branches and
    fault-free runs pay essentially nothing.
    """

    #: Whether any fault can ever fire (False here).
    enabled = False

    def active_kinds(self, time_ms: float) -> Tuple[str, ...]:
        """Kind strings of the faults live at *time_ms* (always empty)."""
        return ()

    def corrupt_raw(self, time_ms: float, raw: np.ndarray) -> np.ndarray:
        """Sensor seam: return the RAW frame unchanged."""
        return raw

    def isp_tap(
        self, time_ms: float
    ) -> Optional[Callable[[str, np.ndarray], np.ndarray]]:
        """ISP seam: no per-stage tap."""
        return None

    def extra_latency_ms(self, time_ms: float) -> float:
        """Timing seam: no latency spike."""
        return 0.0

    def classifier_outcomes(
        self, time_ms: float, invoked: Tuple[str, ...]
    ) -> Optional[Dict[str, str]]:
        """Classifier seam: ``None`` means every invocation is clean."""
        return None

    def corrupt_features(
        self, time_ms: float, features: Dict[str, object], wrong: Tuple[str, ...]
    ) -> Dict[str, object]:
        """Classifier seam: no labels to flip."""
        return features

    def perception_dropout(self, time_ms: float) -> bool:
        """Perception seam: never drop the measurement."""
        return False


#: The shared no-op injector.
NULL_INJECTOR = NullInjector()


def _wrong_label_domain(name: str) -> List[object]:
    """The class domain of classifier *name* (for wrong-label flips)."""
    from repro.core.situation import LaneColor, LaneForm, RoadLayout, Scene

    if name == "road":
        return list(RoadLayout)
    if name == "lane":
        return [(color, form) for color in LaneColor for form in LaneForm]
    if name == "scene":
        return list(Scene)
    raise ValueError(f"unknown classifier {name!r}")


class FaultInjector(NullInjector):
    """Applies a :class:`~repro.faults.plan.FaultPlan` deterministically.

    Specs fire in plan order; each spec owns a seeded generator and
    draws from it only while its window is active, so traces are
    bit-identical for a given ``(plan, seed)`` regardless of which
    other specs are present.
    """

    enabled = True

    def __init__(self, plan: FaultPlan, seed: int = 0):
        self.plan = plan
        self.seed = seed
        entries = [
            (spec, derive_rng(seed, f"fault/{index}/{spec.kind}"))
            for index, spec in enumerate(plan.specs)
        ]
        self._entries = entries
        self._sensor = [
            (s, r) for s, r in entries if isinstance(s, (SensorBlackout, SensorBanding))
        ]
        self._isp = [(s, r) for s, r in entries if isinstance(s, IspCorruption)]
        self._latency = [s for s, _ in entries if isinstance(s, IspLatencySpike)]
        self._classifier = [
            (s, r)
            for s, r in entries
            if isinstance(
                s, (ClassifierWrongLabel, ClassifierTimeout, ClassifierOutage)
            )
        ]
        self._blackouts = [s for s, _ in entries if isinstance(s, SensorBlackout)]
        self._dropout = [
            (s, r) for s, r in entries if isinstance(s, PerceptionDropout)
        ]
        # wrong-label generator per classifier name, stashed between
        # classifier_outcomes() and corrupt_features() of one cycle.
        self._wrong_rng: Dict[str, np.random.Generator] = {}
        # Per-spec liveness as of the last telemetry-observed cycle
        # (edge detection for fault.activated / fault.cleared).
        self._live_specs = [False] * len(entries)

    # -- bookkeeping -----------------------------------------------------

    def active_kinds(self, time_ms: float) -> Tuple[str, ...]:
        """Kind strings of the specs live at *time_ms* (plan order).

        The engine calls this once per cycle, so it doubles as the
        telemetry edge detector: a spec whose window opened or closed
        since the last call emits ``fault.activated`` /
        ``fault.cleared``.  With telemetry off the method is exactly
        the pre-telemetry tuple expression.
        """
        rec = telemetry.get_active()
        if rec is None:
            return tuple(s.kind for s, _ in self._entries if s.active(time_ms))
        kinds: List[str] = []
        for index, (spec, _) in enumerate(self._entries):
            live = spec.active(time_ms)
            if live:
                kinds.append(spec.kind)
            if live != self._live_specs[index]:
                self._live_specs[index] = live
                rec.emit(
                    FAULT_ACTIVATED if live else FAULT_CLEARED,
                    time_ms=time_ms,
                    kind=spec.kind,
                    spec=index,
                )
        return tuple(kinds)

    # -- sensor seam -----------------------------------------------------

    def corrupt_raw(self, time_ms: float, raw: np.ndarray) -> np.ndarray:
        """Apply active blackout/banding faults to the RAW frame."""
        for spec, rng in self._sensor:
            if not spec.active(time_ms):
                continue
            if isinstance(spec, SensorBlackout):
                raw = blackout_frame(raw)
            else:
                raw = band_frame(raw, rng, spec.band_px, spec.strength)
        return raw

    # -- ISP seam --------------------------------------------------------

    def isp_tap(
        self, time_ms: float
    ) -> Optional[Callable[[str, np.ndarray], np.ndarray]]:
        """A per-stage corruption tap, or ``None`` if none is active."""
        live = [(s, r) for s, r in self._isp if s.active(time_ms)]
        if not live:
            return None

        def tap(stage: str, rgb: np.ndarray) -> np.ndarray:
            for spec, rng in live:
                if spec.stage != stage:
                    continue
                noise = rng.standard_normal(rgb.shape, dtype=np.float32)
                rgb = np.clip(rgb + spec.strength * noise, 0.0, 1.0)
            return rgb

        return tap

    def extra_latency_ms(self, time_ms: float) -> float:
        """Sum of the active latency spikes (added to tau and h)."""
        return sum(s.extra_ms for s in self._latency if s.active(time_ms))

    # -- classifier seam -------------------------------------------------

    def classifier_outcomes(
        self, time_ms: float, invoked: Tuple[str, ...]
    ) -> Optional[Dict[str, str]]:
        """Outcome per invoked classifier, or ``None`` when all clean.

        Outcomes: :data:`CLASSIFIER_OK` (invoke normally),
        :data:`CLASSIFIER_WRONG` (invoke, then flip the label via
        :meth:`corrupt_features`) and :data:`CLASSIFIER_FAILED` (no
        output this cycle — timeout, outage, or a blacked-out frame
        that carries nothing to classify).
        """
        blind = any(s.active(time_ms) for s in self._blackouts)
        live = [(s, r) for s, r in self._classifier if s.active(time_ms)]
        if not blind and not live:
            return None
        self._wrong_rng.clear()
        outcomes: Dict[str, str] = {}
        for name in invoked:
            outcome = CLASSIFIER_OK
            if blind:
                outcome = CLASSIFIER_FAILED
            else:
                for spec, rng in live:
                    if spec.classifier and spec.classifier != name:
                        continue
                    if isinstance(spec, ClassifierOutage):
                        outcome = CLASSIFIER_FAILED
                    else:
                        fired = (
                            spec.probability >= 1.0
                            or rng.random() < spec.probability
                        )
                        if not fired:
                            continue
                        if isinstance(spec, ClassifierTimeout):
                            outcome = CLASSIFIER_FAILED
                        else:
                            outcome = CLASSIFIER_WRONG
                            self._wrong_rng[name] = rng
                    break
            outcomes[name] = outcome
        return outcomes

    def corrupt_features(
        self, time_ms: float, features: Dict[str, object], wrong: Tuple[str, ...]
    ) -> Dict[str, object]:
        """Flip the labels of the classifiers marked wrong this cycle."""
        if not wrong:
            return features
        flipped = dict(features)
        for name in wrong:
            rng = self._wrong_rng.get(name)
            if rng is None or name not in flipped:
                continue
            candidates = [
                value
                for value in _wrong_label_domain(name)
                if value != flipped[name]
            ]
            flipped[name] = candidates[int(rng.integers(len(candidates)))]
        return flipped

    # -- perception seam -------------------------------------------------

    def perception_dropout(self, time_ms: float) -> bool:
        """Whether the PR measurement is dropped this cycle."""
        for spec, rng in self._dropout:
            if not spec.active(time_ms):
                continue
            if spec.probability >= 1.0 or rng.random() < spec.probability:
                return True
        return False


def build_injector(plan: Optional[FaultPlan], seed: int = 0) -> NullInjector:
    """The injector for *plan*: :data:`NULL_INJECTOR` when it is empty."""
    if not plan:
        return NULL_INJECTOR
    return FaultInjector(plan, seed)
