"""Typed, windowed fault specifications and the :class:`FaultPlan`.

The paper studies *benign* sensing imperfections (noise, drops,
misclassification); this module adds the failure modes a robustness
study needs on top of the same closed loop, in the spirit of the
CARMA-style degraded-sensing and ADAS-corruption literature (see
PAPERS.md):

- **sensor** faults — :class:`SensorBlackout` (no scene information)
  and :class:`SensorBanding` (readout row banding);
- **ISP** faults — :class:`IspCorruption` (a stage emits a corrupted
  frame) and :class:`IspLatencySpike` (a stage stalls, stretching the
  cycle past the modeled ``tau``/``h``);
- **classifier** faults — :class:`ClassifierWrongLabel` (silent wrong
  output), :class:`ClassifierTimeout` (an invocation misses its
  deadline with some probability) and :class:`ClassifierOutage` (the
  accelerator is gone for the whole window);
- **perception** faults — :class:`PerceptionDropout` (the PR stage
  reports no measurement).

Every spec is *windowed* (``start_ms <= t < end_ms`` in simulation
time) and all randomness is drawn from per-spec generators derived via
:func:`repro.utils.rng.derive_rng`, so a fault campaign is bit-exactly
reproducible for a given ``(plan, seed)`` and specs never perturb each
other's streams.

Plans can be built programmatically, parsed from compact CLI spec
strings (``"timeout@1500:6000,classifier=road,probability=0.7"``), or
looked up from the named presets in :data:`FAULT_PLAN_PRESETS`.
"""

from __future__ import annotations

import dataclasses
import math
from dataclasses import dataclass
from typing import Dict, Tuple, Type, Union

__all__ = [
    "FaultSpec",
    "SensorBlackout",
    "SensorBanding",
    "IspCorruption",
    "IspLatencySpike",
    "ClassifierWrongLabel",
    "ClassifierTimeout",
    "ClassifierOutage",
    "PerceptionDropout",
    "FaultPlan",
    "FAULT_KINDS",
    "FAULT_PLAN_PRESETS",
    "parse_fault_spec",
    "resolve_fault_plan",
]

#: Classifier names a classifier-targeted spec may name ("" = all).
_CLASSIFIERS = ("road", "lane", "scene")

#: ISP stage labels an :class:`IspCorruption` may target.  The stage
#: acronyms follow Fig. 3(a); ``"output"`` corrupts the final frame
#: regardless of the active configuration.
_ISP_STAGES = ("DM", "DN", "CM", "GM", "TM", "output")


@dataclass(frozen=True)
class FaultSpec:
    """Base class: one fault, active inside ``[start_ms, end_ms)``."""

    start_ms: float
    end_ms: float

    #: Stable kind string used by the parser, per-cycle records, and
    #: the RNG stream derivation.  Overridden by every concrete spec.
    kind = "abstract"

    def __post_init__(self):
        if not self.start_ms >= 0.0:
            raise ValueError(f"start_ms must be >= 0, got {self.start_ms}")
        if not self.end_ms > self.start_ms:
            raise ValueError(
                f"end_ms must be > start_ms, got "
                f"[{self.start_ms}, {self.end_ms})"
            )

    def active(self, time_ms: float) -> bool:
        """Whether this fault is live at simulation time *time_ms*."""
        return self.start_ms <= time_ms < self.end_ms

    def _check_probability(self, value: float, field: str) -> None:
        if not 0.0 < value <= 1.0:
            raise ValueError(f"{field} must be in (0, 1], got {value}")

    def _check_classifier(self, name: str) -> None:
        if name and name not in _CLASSIFIERS:
            raise ValueError(
                f"unknown classifier {name!r}; expected one of "
                f"{_CLASSIFIERS} (or '' for all)"
            )


@dataclass(frozen=True)
class SensorBlackout(FaultSpec):
    """The sensor stops integrating light: frames carry no scene.

    Perception cannot measure and classifiers cannot identify on a
    blacked-out frame, so the injector also reports every scheduled
    classifier invocation in the window as failed ("blind").
    """

    kind = "blackout"


@dataclass(frozen=True)
class SensorBanding(FaultSpec):
    """Readout row banding: alternating row bands are attenuated."""

    kind = "banding"
    band_px: int = 8
    strength: float = 0.85

    def __post_init__(self):
        super().__post_init__()
        if self.band_px < 1:
            raise ValueError(f"band_px must be >= 1, got {self.band_px}")
        if not 0.0 <= self.strength <= 1.0:
            raise ValueError(f"strength must be in [0, 1], got {self.strength}")


@dataclass(frozen=True)
class IspCorruption(FaultSpec):
    """An ISP stage emits a corrupted frame (additive seeded noise).

    ``stage`` is a Fig. 3(a) acronym (``DM``/``DN``/``CM``/``GM``/
    ``TM``) — corruption applies right after that stage *if the active
    configuration runs it* — or ``"output"`` to corrupt the final frame
    of any configuration.
    """

    kind = "isp_corruption"
    stage: str = "output"
    strength: float = 0.5

    def __post_init__(self):
        super().__post_init__()
        if self.stage not in _ISP_STAGES:
            raise ValueError(
                f"unknown ISP stage {self.stage!r}; expected one of {_ISP_STAGES}"
            )
        if not self.strength > 0.0:
            raise ValueError(f"strength must be > 0, got {self.strength}")


@dataclass(frozen=True)
class IspLatencySpike(FaultSpec):
    """The ISP stalls: the cycle stretches ``extra_ms`` past the model.

    The controller keeps the gains designed for the *nominal* timing —
    exactly the hardware/control mismatch the paper's delay-aware
    design is sensitive to.
    """

    kind = "latency"
    extra_ms: float = 20.0

    def __post_init__(self):
        super().__post_init__()
        if not self.extra_ms > 0.0:
            raise ValueError(f"extra_ms must be > 0, got {self.extra_ms}")


@dataclass(frozen=True)
class ClassifierWrongLabel(FaultSpec):
    """A classifier silently returns a wrong label.

    With probability *probability* per invocation the true output is
    replaced by a uniformly drawn wrong class — the adversarial cousin
    of :class:`~repro.core.reconfiguration.OracleIdentifier` accuracy.
    """

    kind = "wrong_label"
    classifier: str = ""
    probability: float = 1.0

    def __post_init__(self):
        super().__post_init__()
        self._check_classifier(self.classifier)
        self._check_probability(self.probability, "probability")


@dataclass(frozen=True)
class ClassifierTimeout(FaultSpec):
    """A classifier invocation misses its deadline (no output).

    Unlike :class:`ClassifierOutage` the failure is per-invocation and
    probabilistic, so a bounded retry in the next cycle's budget (the
    mitigation path) has a real chance of succeeding.
    """

    kind = "timeout"
    classifier: str = ""
    probability: float = 1.0

    def __post_init__(self):
        super().__post_init__()
        self._check_classifier(self.classifier)
        self._check_probability(self.probability, "probability")


@dataclass(frozen=True)
class ClassifierOutage(FaultSpec):
    """A classifier is unavailable for the whole window (hard outage)."""

    kind = "outage"
    classifier: str = ""

    def __post_init__(self):
        super().__post_init__()
        self._check_classifier(self.classifier)


@dataclass(frozen=True)
class PerceptionDropout(FaultSpec):
    """The PR stage reports no measurement (invalid) for the cycle."""

    kind = "dropout"
    probability: float = 1.0

    def __post_init__(self):
        super().__post_init__()
        self._check_probability(self.probability, "probability")


#: kind string -> spec class (the parser's registry).
FAULT_KINDS: Dict[str, Type[FaultSpec]] = {
    cls.kind: cls
    for cls in (
        SensorBlackout,
        SensorBanding,
        IspCorruption,
        IspLatencySpike,
        ClassifierWrongLabel,
        ClassifierTimeout,
        ClassifierOutage,
        PerceptionDropout,
    )
}


@dataclass(frozen=True)
class FaultPlan:
    """An ordered, immutable collection of fault specs for one run.

    The plan itself is pure data: the per-seam behaviour (and all RNG
    state) lives in :class:`repro.faults.injection.FaultInjector`,
    which the HiL engine builds from ``HilConfig.fault_plan``.  An
    empty plan is falsy and injects nothing — closed-loop traces are
    bit-identical to runs without a plan.
    """

    specs: Tuple[FaultSpec, ...] = ()

    def __post_init__(self):
        for spec in self.specs:
            if not isinstance(spec, FaultSpec):
                raise TypeError(f"not a FaultSpec: {spec!r}")

    def __bool__(self) -> bool:
        return bool(self.specs)

    def __len__(self) -> int:
        return len(self.specs)

    @classmethod
    def empty(cls) -> "FaultPlan":
        """A plan with no faults (injects nothing, mitigations stay idle)."""
        return cls()

    @classmethod
    def parse(cls, text: str) -> "FaultPlan":
        """Parse ``;``-separated spec strings into a plan.

        See :func:`parse_fault_spec` for the per-spec grammar.
        """
        specs = tuple(
            parse_fault_spec(part)
            for part in text.split(";")
            if part.strip()
        )
        return cls(specs)

    def describe(self) -> str:
        """One line per spec, e.g. for CLI output."""
        lines = []
        for spec in self.specs:
            window = f"[{spec.start_ms:g}, {spec.end_ms:g}) ms"
            params = {
                f.name: getattr(spec, f.name)
                for f in dataclasses.fields(spec)
                if f.name not in ("start_ms", "end_ms")
                and getattr(spec, f.name) != ""
            }
            detail = (
                " " + ", ".join(f"{k}={v}" for k, v in params.items())
                if params
                else ""
            )
            lines.append(f"{spec.kind} @ {window}{detail}")
        return "\n".join(lines) if lines else "(empty plan)"


def parse_fault_spec(text: str) -> FaultSpec:
    """Parse one compact spec string: ``kind@start:end[,key=value]*``.

    ``start``/``end`` are milliseconds of simulation time (``end`` may
    be ``inf``); the optional ``key=value`` pairs set the spec's extra
    fields, coerced to the field's type.  Examples::

        blackout@2000:2800
        timeout@1500:6000,classifier=road,probability=0.7
        latency@1000:2000,extra_ms=25
    """
    head, _, param_text = text.strip().partition(",")
    kind, at, window = head.partition("@")
    if not at or ":" not in window:
        raise ValueError(
            f"bad fault spec {text!r}; expected 'kind@start:end[,key=value]*'"
        )
    cls = FAULT_KINDS.get(kind.strip())
    if cls is None:
        raise ValueError(
            f"unknown fault kind {kind.strip()!r}; expected one of "
            f"{sorted(FAULT_KINDS)}"
        )
    start_text, _, end_text = window.partition(":")
    try:
        kwargs: Dict[str, object] = {
            "start_ms": float(start_text),
            "end_ms": math.inf if end_text.strip() == "inf" else float(end_text),
        }
    except ValueError as exc:
        raise ValueError(f"bad fault window in {text!r}: {exc}") from exc
    field_types = {f.name: f.type for f in dataclasses.fields(cls)}
    for pair in param_text.split(",") if param_text else ():
        key, eq, value = pair.partition("=")
        key = key.strip()
        if not eq or key not in field_types:
            known = sorted(set(field_types) - {"start_ms", "end_ms"})
            raise ValueError(
                f"bad parameter {pair!r} for {cls.kind!r}; known: {known}"
            )
        if key == "band_px":
            kwargs[key] = int(value)
        elif key in ("classifier", "stage"):
            kwargs[key] = value.strip()
        else:
            kwargs[key] = float(value)
    return cls(**kwargs)  # type: ignore[arg-type]


def _presets() -> Dict[str, FaultPlan]:
    """Build the named preset plans (fresh instances, plans are frozen)."""
    return {
        # A 0.8 s sensor blackout while cruising.
        "blackout": FaultPlan((SensorBlackout(2000.0, 2800.0),)),
        # Persistent readout banding.
        "banding": FaultPlan((SensorBanding(1000.0, 6000.0),)),
        # The classifier accelerator disappears and never comes back.
        "classifier-outage": FaultPlan((ClassifierOutage(1500.0, math.inf),)),
        # Flaky accelerator: invocations miss deadlines 70 % of the
        # time — the regime where bounded retries pay off.
        "flaky-classifiers": FaultPlan(
            (ClassifierTimeout(1500.0, math.inf, probability=0.7),)
        ),
        # Everything at once, at survivable intensities.
        "stress": FaultPlan(
            (
                SensorBanding(1000.0, math.inf, band_px=8, strength=0.6),
                ClassifierTimeout(1000.0, math.inf, probability=0.4),
                PerceptionDropout(1000.0, math.inf, probability=0.2),
                IspLatencySpike(3000.0, 4000.0, extra_ms=15.0),
            )
        ),
    }


#: Named fault campaigns for the CLI / benchmarks (see :func:`_presets`).
FAULT_PLAN_PRESETS: Dict[str, FaultPlan] = _presets()


def resolve_fault_plan(plan: Union[FaultPlan, str, None]) -> FaultPlan:
    """Coerce *plan* to a :class:`FaultPlan`.

    Accepts a plan instance, a preset name from
    :data:`FAULT_PLAN_PRESETS`, a spec string (anything containing
    ``@``, see :func:`parse_fault_spec`), or ``None`` (empty plan).
    """
    if plan is None:
        return FaultPlan.empty()
    if isinstance(plan, FaultPlan):
        return plan
    if not isinstance(plan, str):
        raise TypeError(f"expected FaultPlan, preset name or spec string, got {plan!r}")
    if "@" in plan:
        return FaultPlan.parse(plan)
    preset = FAULT_PLAN_PRESETS.get(plan)
    if preset is None:
        raise ValueError(
            f"unknown fault plan preset {plan!r}; known presets: "
            f"{sorted(FAULT_PLAN_PRESETS)} (or pass 'kind@start:end' specs)"
        )
    return preset
