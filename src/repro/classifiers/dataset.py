"""Synthetic classifier datasets (the paper's Sec. III-C data stand-in).

Each dataset renders frames across randomized situations, vehicle poses
and ISP configurations (the classifiers consume whatever the active ISP
produces at runtime, so training must span the ISP knob space), then
downsamples to the network input size.  Split sizes follow Table IV:

=========  ======  =====  ===
classifier total   train  val
=========  ======  =====  ===
road       5866    5353   513
lane       4781    3939   842
scene      4703    3892   811
=========  ======  =====  ===
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

import numpy as np

from repro.core.situation import (
    LaneColor,
    LaneForm,
    RoadLayout,
    Scene,
    Situation,
)
from repro.isp.configs import ISP_CONFIGS
from repro.isp.pipeline import IspPipeline
from repro.sim.camera import CameraModel
from repro.sim.geometry import Pose2D
from repro.sim.renderer import RoadSceneRenderer
from repro.sim.world import static_situation_track
from repro.utils.rng import derive_rng

__all__ = [
    "ROAD_CLASSES",
    "LANE_CLASSES",
    "SCENE_CLASSES",
    "DatasetConfig",
    "ClassifierDataset",
    "generate_dataset",
    "TABLE4_SPLITS",
]

#: Output class lists (order = label index), matching Table IV.
ROAD_CLASSES: Tuple[RoadLayout, ...] = (
    RoadLayout.STRAIGHT,
    RoadLayout.LEFT,
    RoadLayout.RIGHT,
)
LANE_CLASSES: Tuple[Tuple[LaneColor, LaneForm], ...] = (
    (LaneColor.WHITE, LaneForm.CONTINUOUS),
    (LaneColor.WHITE, LaneForm.DOTTED),
    (LaneColor.YELLOW, LaneForm.CONTINUOUS),
    (LaneColor.YELLOW, LaneForm.DOUBLE),
)
SCENE_CLASSES: Tuple[Scene, ...] = (
    Scene.DAY,
    Scene.NIGHT,
    Scene.DARK,
    Scene.DAWN,
    Scene.DUSK,
)

#: (total, train, val) sizes of Table IV.
TABLE4_SPLITS: Dict[str, Tuple[int, int, int]] = {
    "road": (5866, 5353, 513),
    "lane": (4781, 3939, 842),
    "scene": (4703, 3892, 811),
}


@dataclass(frozen=True)
class DatasetConfig:
    """Generation parameters of one classifier dataset.

    ``n_train`` / ``n_val`` default to the Table IV split when left at
    zero.  Frames are rendered at ``render_width x render_height`` and
    block-averaged down by ``downsample`` for the network input.
    """

    classifier: str
    n_train: int = 0
    n_val: int = 0
    render_width: int = 96
    render_height: int = 48
    downsample: int = 2
    seed: int = 7

    def __post_init__(self):
        if self.classifier not in TABLE4_SPLITS:
            raise ValueError(f"unknown classifier {self.classifier!r}")
        if self.render_width % self.downsample or self.render_height % self.downsample:
            raise ValueError("render size must be divisible by downsample")

    def resolved_sizes(self) -> Tuple[int, int]:
        """Return ``(n_train, n_val)``, defaulting to the Table IV split."""
        _, train, val = TABLE4_SPLITS[self.classifier]
        return (self.n_train or train, self.n_val or val)

    @property
    def input_shape(self) -> Tuple[int, int, int]:
        """(C, H, W) of the network input."""
        return (
            3,
            self.render_height // self.downsample,
            self.render_width // self.downsample,
        )

    def to_config(self) -> Dict[str, object]:
        """JSON-friendly form for cache hashing."""
        from repro.sim.renderer import RENDERER_VERSION

        n_train, n_val = self.resolved_sizes()
        return {
            "classifier": self.classifier,
            "n_train": n_train,
            "n_val": n_val,
            "render": [self.render_width, self.render_height],
            "downsample": self.downsample,
            "seed": self.seed,
            "renderer_version": RENDERER_VERSION,
        }


@dataclass
class ClassifierDataset:
    """Arrays of one generated dataset (NCHW float32 inputs)."""

    x_train: np.ndarray
    y_train: np.ndarray
    x_val: np.ndarray
    y_val: np.ndarray
    classes: Tuple
    config: DatasetConfig

    @property
    def n_classes(self) -> int:
        """Number of output classes of this dataset."""
        return len(self.classes)


def block_downsample(image: np.ndarray, factor: int) -> np.ndarray:
    """Average ``factor x factor`` blocks of an ``(H, W, C)`` image."""
    if factor == 1:
        return image
    h, w, c = image.shape
    if h % factor or w % factor:
        raise ValueError(f"image {image.shape} not divisible by {factor}")
    return (
        image.reshape(h // factor, factor, w // factor, factor, c)
        .mean(axis=(1, 3))
        .astype(np.float32)
    )


def to_network_input(image: np.ndarray, factor: int) -> np.ndarray:
    """Downsample + HWC->CHW + per-image standardization."""
    small = block_downsample(image, factor)
    chw = np.transpose(small, (2, 0, 1))
    mean = chw.mean()
    std = max(float(chw.std()), 1e-4)
    return ((chw - mean) / std).astype(np.float32)


def _sample_situation(classifier: str, label_idx: int, rng) -> Situation:
    """A random situation whose *classifier* feature equals the label."""
    layout = ROAD_CLASSES[rng.integers(len(ROAD_CLASSES))]
    color, form = LANE_CLASSES[rng.integers(len(LANE_CLASSES))]
    scene = SCENE_CLASSES[rng.integers(len(SCENE_CLASSES))]
    if classifier == "road":
        layout = ROAD_CLASSES[label_idx]
    elif classifier == "lane":
        color, form = LANE_CLASSES[label_idx]
    else:
        scene = SCENE_CLASSES[label_idx]
    return Situation(layout, color, form, scene)


def generate_dataset(config: DatasetConfig) -> ClassifierDataset:
    """Render one balanced, labelled dataset for a classifier."""
    classes = {
        "road": ROAD_CLASSES,
        "lane": LANE_CLASSES,
        "scene": SCENE_CLASSES,
    }[config.classifier]
    n_train, n_val = config.resolved_sizes()
    total = n_train + n_val
    rng = derive_rng(config.seed, f"dataset/{config.classifier}")
    camera = CameraModel(width=config.render_width, height=config.render_height)
    isp_names = list(ISP_CONFIGS)

    c, h, w = config.input_shape
    images = np.empty((total, c, h, w), dtype=np.float32)
    labels = np.empty(total, dtype=np.int64)

    # Renderers/ISPs are cached per (situation, isp) for reuse.
    renderer_cache: Dict[Tuple, RoadSceneRenderer] = {}
    isp_cache: Dict[str, IspPipeline] = {}

    for i in range(total):
        label = int(i % len(classes))
        situation = _sample_situation(config.classifier, label, rng)
        key = situation.to_config()
        renderer = renderer_cache.get(key)
        if renderer is None:
            # lead_in=0: every rendered frame must look like its label
            # (the evaluation lead-in stretch would mislabel turns).
            track = static_situation_track(situation, length=220.0, lead_in=0.0)
            renderer = RoadSceneRenderer(
                camera, track, seed=config.seed + len(renderer_cache)
            )
            renderer_cache[key] = renderer
        track = renderer.track
        s0 = rng.uniform(15.0, track.length - 40.0)
        d0 = rng.uniform(-0.4, 0.4)
        psi = rng.uniform(-0.03, 0.03)
        center = track.pose_at(float(s0), float(d0))
        pose = Pose2D(center.x, center.y, center.heading + float(psi))

        isp_name = isp_names[rng.integers(len(isp_names))]
        isp = isp_cache.setdefault(isp_name, IspPipeline(isp_name))
        raw = renderer.render_raw(pose, situation.scene)
        rgb = isp.process(raw)
        images[i] = to_network_input(rgb, config.downsample)
        labels[i] = label

    order = rng.permutation(total)
    images = images[order]
    labels = labels[order]
    return ClassifierDataset(
        x_train=images[:n_train],
        y_train=labels[:n_train],
        x_val=images[n_train:],
        y_val=labels[n_train:],
        classes=classes,
        config=config,
    )
