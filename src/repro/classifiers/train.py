"""Training entry points with on-disk weight caching.

Training is deterministic given the dataset/train configs, so results
are cached under ``~/.cache/repro/classifiers`` keyed by the combined
config hash — the closed-loop experiments and the test suite reuse the
artifacts instead of retraining.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np

from repro.classifiers.dataset import (
    ClassifierDataset,
    DatasetConfig,
    generate_dataset,
)
from repro.classifiers.models import SituationClassifier, build_tiny_resnet
from repro.nn.serialize import load_state, model_state
from repro.nn.trainer import TrainConfig, Trainer
from repro.utils.cache import ArtifactCache

__all__ = ["TrainedClassifier", "train_classifier", "train_all_classifiers"]


@dataclass
class TrainedClassifier:
    """A trained classifier plus its validation accuracy."""

    classifier: SituationClassifier
    val_accuracy: float
    n_train: int
    n_val: int
    epochs_run: int
    from_cache: bool


def train_classifier(
    name: str,
    dataset_config: Optional[DatasetConfig] = None,
    train_config: TrainConfig = TrainConfig(),
    use_cache: bool = True,
    verbose: bool = False,
    dataset: Optional[ClassifierDataset] = None,
) -> TrainedClassifier:
    """Train (or load from cache) one of the three classifiers.

    Parameters
    ----------
    name:
        ``"road"``, ``"lane"`` or ``"scene"``.
    dataset_config:
        Dataset generation parameters (defaults to the Table IV split).
    dataset:
        Pre-generated dataset (skips generation; caching still applies).
    """
    dataset_config = dataset_config or DatasetConfig(classifier=name)
    if dataset_config.classifier != name:
        raise ValueError(
            f"dataset config is for {dataset_config.classifier!r}, not {name!r}"
        )
    # The road task (curvature from a small frame) is the hardest of the
    # three; it gets a wider network, as the paper gives every task the
    # full ResNet-18 capacity.
    widths = {"road": (12, 24), "lane": (8, 16), "scene": (8, 16)}[name]

    cache = ArtifactCache("classifiers", enabled=use_cache)
    cache_key = {
        "dataset": dataset_config.to_config(),
        "train": {
            "epochs": train_config.epochs,
            "batch_size": train_config.batch_size,
            "lr": train_config.lr,
            "lr_decay": train_config.lr_decay,
            "lr_decay_at": train_config.lr_decay_at,
            "weight_decay": train_config.weight_decay,
            "seed": train_config.seed,
        },
        "arch": f"tiny-resnet-{widths[0]}-{widths[1]}",
    }

    n_classes = {"road": 3, "lane": 4, "scene": 5}[name]
    model = build_tiny_resnet(n_classes, widths=widths, seed=train_config.seed)

    cached = cache.load(cache_key)
    if cached is not None:
        load_state(model, {k: v for k, v in cached.items() if k.startswith(("param_", "bn_"))})
        classifier = _wrap(name, model, dataset_config)
        return TrainedClassifier(
            classifier=classifier,
            val_accuracy=float(cached["val_accuracy"][()]),
            n_train=int(cached["n_train"][()]),
            n_val=int(cached["n_val"][()]),
            epochs_run=int(cached["epochs_run"][()]),
            from_cache=True,
        )

    if dataset is None:
        dataset = generate_dataset(dataset_config)
    trainer = Trainer(model, train_config)
    report = trainer.fit(
        dataset.x_train,
        dataset.y_train,
        dataset.x_val,
        dataset.y_val,
        verbose=verbose,
    )
    val_accuracy = report.final_val_accuracy

    state = model_state(model)
    state["val_accuracy"] = np.array(val_accuracy)
    state["n_train"] = np.array(dataset.x_train.shape[0])
    state["n_val"] = np.array(dataset.x_val.shape[0])
    state["epochs_run"] = np.array(report.epochs_run)
    cache.store(cache_key, state)

    classifier = _wrap(name, model, dataset_config)
    return TrainedClassifier(
        classifier=classifier,
        val_accuracy=val_accuracy,
        n_train=dataset.x_train.shape[0],
        n_val=dataset.x_val.shape[0],
        epochs_run=report.epochs_run,
        from_cache=False,
    )


def _wrap(name, model, dataset_config) -> SituationClassifier:
    from repro.classifiers.dataset import LANE_CLASSES, ROAD_CLASSES, SCENE_CLASSES

    classes = {"road": ROAD_CLASSES, "lane": LANE_CLASSES, "scene": SCENE_CLASSES}[name]
    return SituationClassifier(name, model, classes, dataset_config.input_shape)


def train_all_classifiers(
    use_cache: bool = True,
    verbose: bool = False,
    train_config: TrainConfig = TrainConfig(),
) -> Dict[str, TrainedClassifier]:
    """Train (or load) the road, lane and scene classifiers."""
    return {
        name: train_classifier(
            name, use_cache=use_cache, verbose=verbose, train_config=train_config
        )
        for name in ("road", "lane", "scene")
    }
