"""Runtime situation identification backed by the trained CNNs."""

from __future__ import annotations

from typing import Dict, List, Mapping, Sequence, Tuple

import numpy as np

from repro.classifiers.models import SituationClassifier
from repro.core.reconfiguration import SituationIdentifier
from repro.core.situation import Situation

__all__ = ["CnnIdentifier"]


class CnnIdentifier(SituationIdentifier):
    """Identify situation features by running the trained classifiers.

    The incoming ISP frame is block-averaged to each network's input
    size (the frame must be an integer multiple — the default HiL frame
    of 384x192 maps onto the 48x24 network input with factor 8).

    By default the networks are deployed *fused* (conv+BN folded via
    :meth:`SituationClassifier.fuse`): classifier invocation sits on
    the per-cycle hot path, and the fused forward does the same math in
    a fraction of the passes.  Pass ``fuse=False`` to run the training
    graphs unchanged (e.g. to A/B the numerics).
    """

    def __init__(
        self,
        classifiers: Mapping[str, SituationClassifier],
        fuse: bool = True,
    ):
        missing = {"road", "lane", "scene"} - set(classifiers)
        if missing:
            raise ValueError(f"missing classifiers: {sorted(missing)}")
        self.classifiers: Dict[str, SituationClassifier] = {
            name: clf.fuse() if fuse else clf for name, clf in classifiers.items()
        }

    @classmethod
    def from_trained(
        cls,
        use_cache: bool = True,
        fuse: bool = True,
        verbose: bool = False,
    ) -> "CnnIdentifier":
        """Train (or load from cache) all three classifiers and wrap them.

        This is the one-call path behind the ``"cnn"`` identifier spec
        (see :mod:`repro.core.identifiers`): it hides the
        ``train_all_classifiers`` plumbing the examples previously
        inlined.
        """
        from repro.classifiers.train import train_all_classifiers

        trained = train_all_classifiers(use_cache=use_cache, verbose=verbose)
        return cls(
            {name: t.classifier for name, t in trained.items()}, fuse=fuse
        )

    def identify(
        self,
        frame_rgb: np.ndarray,
        which: Tuple[str, ...],
        true_situation: Situation,
    ) -> Dict[str, object]:
        """Run the requested classifiers on *frame_rgb* (see base class)."""
        result: Dict[str, object] = {}
        for name in which:
            result[name] = self.classifiers[name].predict_frame(frame_rgb)
        return result

    def identify_batch(
        self,
        frames: Sequence[np.ndarray],
        whichs: Sequence[Tuple[str, ...]],
        true_situations: Sequence[Situation],
    ) -> List[Dict[str, object]]:
        """Identify many lanes' frames with one stacked forward per net.

        *whichs* lists each lane's invoked classifiers; lanes invoking
        the same classifier share a single
        :meth:`SituationClassifier.predict_frames` call.  Returns one
        feature dict per lane (keys in the lane's ``which`` order),
        bit-identical to :meth:`identify` per lane.
        """
        by_name: Dict[str, List[int]] = {}
        for lane, which in enumerate(whichs):
            for name in which:
                by_name.setdefault(name, []).append(lane)
        preds: Dict[str, Dict[int, object]] = {}
        for name, lanes in by_name.items():
            labels = self.classifiers[name].predict_frames(
                [frames[i] for i in lanes]
            )
            preds[name] = dict(zip(lanes, labels))
        return [
            {name: preds[name][lane] for name in which}
            for lane, which in enumerate(whichs)
        ]
