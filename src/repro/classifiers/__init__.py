"""Situation classifiers (paper Sec. III-C, Table IV).

Three light-weight CNN classifiers identify the operating situation
from the ISP output frame:

- **road**  — straight / left turn / right turn (3 classes),
- **lane**  — white continuous / white dotted / yellow continuous /
  yellow double (4 classes),
- **scene** — day / night / dark / dawn / dusk (5 classes).

The paper uses ResNet-18 fine-tuned per task; this reproduction trains
small residual CNNs (same design cues, scaled to the synthetic task) on
renderer-generated datasets with the paper's train/val split sizes.
Their 5.5 ms Xavier runtime lives in the platform model.
"""

from repro.classifiers.dataset import (
    ClassifierDataset,
    DatasetConfig,
    generate_dataset,
    ROAD_CLASSES,
    LANE_CLASSES,
    SCENE_CLASSES,
)
from repro.classifiers.models import SituationClassifier, build_tiny_resnet
from repro.classifiers.train import TrainedClassifier, train_classifier, train_all_classifiers
from repro.classifiers.runtime import CnnIdentifier

__all__ = [
    "ClassifierDataset",
    "DatasetConfig",
    "generate_dataset",
    "ROAD_CLASSES",
    "LANE_CLASSES",
    "SCENE_CLASSES",
    "SituationClassifier",
    "build_tiny_resnet",
    "TrainedClassifier",
    "train_classifier",
    "train_all_classifiers",
    "CnnIdentifier",
]
