"""Classifier network architecture and the inference wrapper."""

from __future__ import annotations

from typing import Sequence, Tuple

import numpy as np

from repro.nn.layers import (
    BatchNorm2D,
    Conv2D,
    Dense,
    GlobalAvgPool2D,
    MaxPool2D,
    ReLU,
)
from repro.nn.losses import softmax
from repro.nn.model import ResidualBlock, Sequential
from repro.utils.rng import derive_rng

__all__ = ["build_tiny_resnet", "SituationClassifier"]


def build_tiny_resnet(
    n_classes: int,
    in_channels: int = 3,
    widths: Tuple[int, int] = (8, 16),
    seed: int = 0,
) -> Sequential:
    """A small residual CNN in the ResNet-18 style of Table IV.

    stem conv-bn-relu-pool -> residual block (widened) -> pool ->
    residual block -> global average pool -> linear head.  Input is
    NCHW with spatial dims divisible by 4.  The stem pools immediately
    so the residual blocks run at quarter resolution — sized for the
    single-core evaluation environment.
    """
    if n_classes < 2:
        raise ValueError(f"n_classes must be >= 2, got {n_classes}")
    rng = derive_rng(seed, "tiny-resnet/init")
    w1, w2 = widths
    return Sequential(
        Conv2D(in_channels, w1, 3, rng, bias=False),
        BatchNorm2D(w1),
        ReLU(),
        MaxPool2D(2),
        ResidualBlock(w1, w2, rng),
        MaxPool2D(2),
        ResidualBlock(w2, w2, rng),
        GlobalAvgPool2D(),
        Dense(w2, n_classes, rng),
    )


class SituationClassifier:
    """Inference wrapper: network + class list + input preprocessing."""

    def __init__(
        self,
        name: str,
        model: Sequential,
        classes: Sequence,
        input_shape: Tuple[int, int, int],
    ):
        self.name = name
        self.model = model
        self.classes = tuple(classes)
        self.input_shape = tuple(input_shape)

    def fuse(self) -> "SituationClassifier":
        """A deployment copy whose network has conv+BN pairs folded.

        Predictions match the unfused classifier to float32 rounding
        (the fold is exact up to rounding; see
        :meth:`repro.nn.model.Sequential.fuse`), at a fraction of the
        per-frame inference cost — this is what the runtime identifier
        deploys inside the control loop.
        """
        return SituationClassifier(
            self.name, self.model.fuse(), self.classes, self.input_shape
        )

    def predict_proba(self, network_input: np.ndarray) -> np.ndarray:
        """Class probabilities for a preprocessed ``(C, H, W)`` input."""
        if network_input.shape != self.input_shape:
            raise ValueError(
                f"input shape {network_input.shape} != expected {self.input_shape}"
            )
        logits = self.model.forward(network_input[None], training=False)
        return softmax(logits)[0]

    def predict(self, network_input: np.ndarray):
        """The most likely class for a preprocessed input."""
        return self.classes[int(np.argmax(self.predict_proba(network_input)))]

    def predict_frame(self, frame_rgb: np.ndarray):
        """Classify a full ISP output frame.

        The frame is block-averaged down to the network input; its size
        must be an integer multiple of the input spatial dims.
        """
        return self.predict(self._network_input(frame_rgb))

    def _network_input(self, frame_rgb: np.ndarray) -> np.ndarray:
        """Block-average a full frame down to the ``(C, H, W)`` input."""
        from repro.classifiers.dataset import to_network_input

        _, h, w = self.input_shape
        factor_h = frame_rgb.shape[0] // h
        factor_w = frame_rgb.shape[1] // w
        if factor_h != factor_w or factor_h * h != frame_rgb.shape[0]:
            raise ValueError(
                f"frame {frame_rgb.shape[:2]} incompatible with input {(h, w)}"
            )
        return to_network_input(frame_rgb, factor_h)

    def predict_frames(self, frames_rgb: Sequence[np.ndarray]) -> list:
        """Classify a batch of frames through one stacked forward pass.

        Preprocessing runs per frame (identical to
        :meth:`predict_frame`), the network runs once over the stacked
        ``(B, C, H, W)`` batch via
        :meth:`repro.nn.model.Sequential.forward_rows`, and softmax/
        argmax reduce each row on its own — so every prediction is
        bit-identical to the serial call for that frame.
        """
        stacked = np.stack([self._network_input(f) for f in frames_rgb])
        logits = self.model.forward_rows(stacked)
        probas = softmax(logits)
        return [
            self.classes[int(np.argmax(probas[row]))]
            for row in range(probas.shape[0])
        ]
