"""Table V — the evaluated design cases and their derived timing.

The case definitions live in :mod:`repro.core.cases`; this experiment
derives each case's ``[v, h, tau]`` annotation through the platform
model and compares with the paper's table.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.core.cases import CASES, CaseConfig
from repro.experiments.common import format_table
from repro.platform.schedule import pipeline_timing

__all__ = ["CaseRow", "run_table5", "format_table5", "PAPER_TABLE5"]

#: Paper's Table V [v, h, tau]; "VS" = varied per situation.
PAPER_TABLE5: Dict[str, Tuple[str, str, str]] = {
    "case1": ("S0 / ROI 1", "[50, 25, 24.6]", "no classifiers"),
    "case2": ("S0 / coarse VS", "[VS, 35, 30.1]", "road"),
    "case3": ("S0 / fine VS", "[VS, 40, 35.6]", "road + lane"),
    "case4": ("VS / fine VS", "[VS, VS, VS]", "road + lane + scene"),
    "variable": ("VS / fine VS", "[VS, VS, VS]", "one per frame (Sec. IV-E)"),
    "adaptive": ("VS / fine VS", "[VS, VS, VS]", "event-triggered (extension)"),
}


@dataclass
class CaseRow:
    """Derived timing for one case (with S0 as the ISP when static)."""

    case: CaseConfig
    delay_ms: float
    period_ms: float
    paper: Tuple[str, str, str]


def run_table5() -> List[CaseRow]:
    """Derive each case's timing through the platform model."""
    rows: List[CaseRow] = []
    for name, case in CASES.items():
        timing = pipeline_timing(
            "S0" if not case.adapt_isp else "S3",
            case.classifier_budget(),
            dynamic_isp=case.adapt_isp,
        )
        rows.append(
            CaseRow(
                case=case,
                delay_ms=timing.delay_ms,
                period_ms=timing.period_ms,
                paper=PAPER_TABLE5[name],
            )
        )
    return rows


def format_table5(rows: List[CaseRow]) -> str:
    """Render the Table V reproduction."""
    table_rows = []
    for row in rows:
        classifiers = ", ".join(row.case.classifiers) or "none"
        if row.case.variable_invocation:
            classifiers += " (variable)"
        table_rows.append(
            [
                row.case.name,
                classifiers,
                f"tau={row.delay_ms:.1f} h={row.period_ms:.0f}",
                f"{row.paper[1]}",
            ]
        )
    return format_table(
        ["case", "classifiers", "derived timing (ms)", "paper [v,h,tau]"],
        table_rows,
        title="Table V — design cases",
    )
