"""Fig. 7 — the nine-sector dynamic case-study world model."""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.core.situation import Situation
from repro.experiments.common import format_table
from repro.sim.track import Track
from repro.sim.world import fig7_track

__all__ = ["SectorRow", "run_fig7", "format_fig7"]


@dataclass
class SectorRow:
    """One sector of the Fig. 7 track."""

    sector: int
    situation: Situation
    s_start: float
    s_end: float
    curvature: float


def run_fig7(track: Track = None) -> List[SectorRow]:
    """Describe the Fig. 7 track sector by sector."""
    track = track or fig7_track()
    rows = []
    for i, seg in enumerate(track.segments, start=1):
        rows.append(
            SectorRow(
                sector=i,
                situation=seg.situation,
                s_start=seg.s_start,
                s_end=seg.s_end,
                curvature=seg.curvature,
            )
        )
    return rows


def format_fig7(rows: List[SectorRow]) -> str:
    """Render the sector table of the Fig. 7 track."""
    table_rows = [
        [
            str(r.sector),
            r.situation.describe(),
            f"{r.s_start:.0f}-{r.s_end:.0f} m",
            f"{r.curvature:+.4f}",
        ]
        for r in rows
    ]
    return format_table(
        ["sector", "situation", "arc range", "curvature 1/m"],
        table_rows,
        title="Fig. 7 — dynamic case-study track",
    )
