"""Table II — configurable knobs and their profiled runtimes.

The knob inventory and the Xavier runtimes come straight from the
platform profile database (which encodes the paper's measurements); in
addition the experiment *measures* our Python implementation's runtime
per ISP configuration on a paper-sized 512x256 frame, giving the
calibration ratio between the reproduction substrate and the real
platform.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, List

import numpy as np

from repro.core.situation import Scene, situation_by_index
from repro.experiments.common import format_table
from repro.isp.configs import ISP_CONFIGS
from repro.isp.pipeline import IspPipeline
from repro.perception.roi import ROI_PRESETS
from repro.platform.profiles import (
    control_runtime_ms,
    isp_runtime_ms,
    pr_runtime_ms,
)
from repro.sim.camera import CameraModel
from repro.sim.renderer import RoadSceneRenderer
from repro.sim.world import static_situation_track

__all__ = ["IspRuntimeRow", "run_table2", "format_table2"]


@dataclass
class IspRuntimeRow:
    """One ISP knob row: stages, paper runtime, our measured runtime."""

    name: str
    stages: str
    xavier_ms: float
    python_ms: float


def run_table2(repeats: int = 3, seed: int = 1) -> Dict[str, object]:
    """Regenerate the Table II knob inventory with measured runtimes."""
    camera = CameraModel(width=512, height=256)
    situation = situation_by_index(1)
    track = static_situation_track(situation)
    renderer = RoadSceneRenderer(camera, track, seed=seed)
    raw = renderer.render_raw(track.pose_at(30.0, 0.1), Scene.DAY)

    isp_rows: List[IspRuntimeRow] = []
    for name, cfg in ISP_CONFIGS.items():
        pipeline = IspPipeline(name)
        pipeline.process(raw)  # warm caches
        start = time.perf_counter()
        for _ in range(repeats):
            pipeline.process(raw)
        elapsed_ms = (time.perf_counter() - start) / repeats * 1e3
        isp_rows.append(
            IspRuntimeRow(
                name=name,
                stages="+".join(s.value for s in cfg.stages),
                xavier_ms=isp_runtime_ms(name),
                python_ms=elapsed_ms,
            )
        )

    roi_rows = []
    for name, preset in ROI_PRESETS.items():
        trapezoid = np.round(preset.image_trapezoid(camera)).astype(int)
        roi_rows.append(
            {
                "name": name,
                "curvature": preset.curvature,
                "half_width": preset.half_width,
                "x_range": (preset.x_near, preset.x_far),
                "image_trapezoid": trapezoid.tolist(),
                "paper_trapezoid": list(preset.paper_trapezoid),
            }
        )

    return {
        "isp": isp_rows,
        "roi": roi_rows,
        "pr_runtime_ms": pr_runtime_ms(),
        "control_runtime_ms": control_runtime_ms(),
        "speeds_kmph": (30.0, 50.0),
    }


def format_table2(data: Dict[str, object]) -> str:
    """Render the Table II reproduction."""
    isp_rows = [
        [row.name, row.stages, f"{row.xavier_ms:.1f}", f"{row.python_ms:.1f}"]
        for row in data["isp"]
    ]
    text = format_table(
        ["knob", "stages", "Xavier ms (paper)", "python ms (ours)"],
        isp_rows,
        title="Table II — ISP knobs",
    )
    roi_rows = [
        [
            row["name"],
            f"{row['curvature']:+.4f}",
            f"{row['half_width']:.1f}",
            f"{row['x_range'][0]:.0f}-{row['x_range'][1]:.0f} m",
        ]
        for row in data["roi"]
    ]
    text += "\n\n" + format_table(
        ["knob", "curvature 1/m", "half-width m", "range"],
        roi_rows,
        title="Table II — PR knobs (ground-window form)",
    )
    text += (
        f"\n\nPR runtime: {data['pr_runtime_ms']:.1f} ms (paper: 3.0 ms)"
        f"\ncontrol runtime: {data['control_runtime_ms'] * 1e3:.1f} us "
        f"(paper: 2.5 us)"
        f"\nspeed knob: {data['speeds_kmph']} kmph"
    )
    return text
