"""Regeneration of every table and figure of the paper's evaluation.

One module per artifact; each exposes a ``run_*`` function returning
structured data plus a ``format_*`` helper printing the same rows/series
the paper reports.  The benchmark harness under ``benchmarks/`` wraps
these, and EXPERIMENTS.md records paper-vs-measured values.

Set the environment variable ``REPRO_FULL=1`` to run every experiment
at full scale (all situations / full sweeps); the default scales are
chosen to finish in a few minutes on a laptop core.
"""

from repro.experiments.common import full_scale, scale_note

__all__ = ["full_scale", "scale_note"]
