"""Table III — pre-characterized situation-specific knob tunings.

Runs the design-time characterization sweep (Sec. III-B) and compares
the selected knobs and the derived ``[v, h, tau]`` control annotation
against the paper's published table.  Absolute agreement is not
expected — our ISP/renderer substrate has its own noise structure — but
the *shape* should hold: cheap ISP configurations win wherever they
detect reliably (buying the fastest sampling), turns drop the speed
knob to 30 kmph, dotted lanes take the widened ROI of their layout, and
hard situations force expensive ISP configurations with h = 45 ms.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.cases import case_config
from repro.core.characterization import CharacterizationConfig, characterize
from repro.core.knobs import KnobSetting
from repro.core.situation import Situation, situation_by_index
from repro.experiments.common import format_table, full_scale

__all__ = ["Table3Row", "run_table3", "format_table3", "PAPER_TABLE3"]

#: The paper's Table III: situation index -> (ISP, ROI, [v, h, tau]).
PAPER_TABLE3: Dict[int, Tuple[str, str, Tuple[float, float, float]]] = {
    1: ("S3", "ROI 1", (50, 25, 23.1)),
    2: ("S7", "ROI 1", (50, 25, 22.4)),
    3: ("S4", "ROI 1", (50, 25, 22.5)),
    4: ("S6", "ROI 1", (50, 25, 22.5)),
    5: ("S6", "ROI 1", (50, 25, 22.5)),
    6: ("S8", "ROI 1", (50, 25, 23.0)),
    7: ("S8", "ROI 1", (50, 25, 23.0)),
    8: ("S6", "ROI 2", (30, 25, 22.5)),
    9: ("S3", "ROI 2", (30, 25, 23.1)),
    10: ("S3", "ROI 2", (30, 25, 23.1)),
    11: ("S8", "ROI 2", (30, 25, 23.0)),
    12: ("S3", "ROI 2", (30, 25, 23.1)),
    13: ("S3", "ROI 3", (30, 25, 23.1)),
    14: ("S8", "ROI 3", (30, 25, 23.0)),
    15: ("S3", "ROI 4", (30, 25, 23.1)),
    16: ("S8", "ROI 4", (30, 25, 23.0)),
    17: ("S8", "ROI 4", (30, 25, 23.0)),
    18: ("S3", "ROI 4", (30, 25, 23.1)),
    19: ("S8", "ROI 4", (30, 25, 23.0)),
    20: ("S2", "ROI 5", (30, 45, 40.7)),
    21: ("S2", "ROI 5", (30, 45, 40.7)),
}


@dataclass
class Table3Row:
    """One characterized situation with the paper's row for comparison."""

    index: int
    situation: Situation
    knobs: KnobSetting
    period_ms: float
    delay_ms: float
    paper_isp: str
    paper_roi: str
    paper_vht: Tuple[float, float, float]


def _default_situations() -> List[int]:
    if full_scale():
        return list(range(1, 22))
    return [1, 2, 5, 7, 8, 13, 15, 20, 21]


def run_table3(
    indices: Optional[Sequence[int]] = None,
    config: CharacterizationConfig = CharacterizationConfig(),
    use_cache: bool = True,
    verbose: bool = False,
    jobs: Optional[int] = None,
) -> List[Table3Row]:
    """Characterize the (sub)set of Table III situations.

    ``jobs`` fans the sweep out across worker processes (default:
    ``$REPRO_JOBS`` or serial); the table is bit-identical either way.
    """
    indices = list(indices) if indices is not None else _default_situations()
    situations = [situation_by_index(i) for i in indices]
    table = characterize(
        situations, config, use_cache=use_cache, verbose=verbose, jobs=jobs
    )
    budget = case_config("case4").classifier_budget()

    rows: List[Table3Row] = []
    for index, situation in zip(indices, situations):
        knobs = table[situation]
        timing = knobs.timing(budget, dynamic_isp=True)
        paper_isp, paper_roi, paper_vht = PAPER_TABLE3[index]
        rows.append(
            Table3Row(
                index=index,
                situation=situation,
                knobs=knobs,
                period_ms=timing.period_ms,
                delay_ms=timing.delay_ms,
                paper_isp=paper_isp,
                paper_roi=paper_roi,
                paper_vht=paper_vht,
            )
        )
    return rows


def format_table3(rows: Sequence[Table3Row]) -> str:
    """Paper-vs-measured Table III."""
    table_rows = []
    for row in rows:
        ours = (
            f"{row.knobs.isp} {row.knobs.roi} "
            f"[{row.knobs.speed_kmph:.0f}, {row.period_ms:.0f}, {row.delay_ms:.1f}]"
        )
        paper = (
            f"{row.paper_isp} {row.paper_roi} "
            f"[{row.paper_vht[0]:.0f}, {row.paper_vht[1]:.0f}, {row.paper_vht[2]:.1f}]"
        )
        table_rows.append(
            [str(row.index), row.situation.describe(), ours, paper]
        )
    return format_table(
        ["#", "situation", "ours: ISP ROI [v,h,tau]", "paper"],
        table_rows,
        title="Table III — characterized knob tunings",
    )
