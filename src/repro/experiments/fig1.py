"""Fig. 1 — lane-detection accuracy vs FPS trade-off.

Reproduces the motivating scatter plot: every detector is evaluated on
the same per-situation frame dataset (accuracy = fraction of frames
whose look-ahead deviation lands within 0.3 m of ground truth), and the
FPS axis comes from the Xavier platform model.

Detectors:

- ``sliding window (static)`` — the classical pipeline with fixed
  ROI 1 and full ISP: fast but situation-blind (the paper's 52 % point).
- ``proposed (situation-aware)`` — the same pipeline with the
  characterized per-situation knobs plus the classifier runtime budget.
- ``dense segmentation (VPGNet/LaneNet class)`` — the robust per-row
  detector standing in for the end-to-end CNNs, with the paper's
  reported Xavier-class runtimes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.core.defaults import default_characterization, natural_roi
from repro.core.situation import Situation, TABLE3_SITUATIONS
from repro.experiments.common import format_table, full_scale
from repro.perception.evaluation import evaluate_sequence
from repro.perception.segmentation import DenseLaneDetector
from repro.platform.profiles import REFERENCE_DETECTOR_RUNTIMES_MS
from repro.platform.schedule import sensing_fps
from repro.sim.camera import CameraModel

__all__ = ["DetectorPoint", "run_fig1", "format_fig1", "PAPER_FIG1"]

#: Approximate operating points read off the paper's Fig. 1.
PAPER_FIG1: Dict[str, Dict[str, float]] = {
    "sliding window (static)": {"accuracy": 0.52, "fps": 40.0},
    "proposed (situation-aware)": {"accuracy": 0.95, "fps": 27.0},
    "VPGNet-class dense": {"accuracy": 0.96, "fps": 5.5},
    "LaneNet-class dense": {"accuracy": 0.97, "fps": 4.0},
}


@dataclass
class DetectorPoint:
    """One point in the accuracy/FPS plane."""

    name: str
    accuracy: float
    fps: float
    per_situation: Dict[str, float]


def _default_situations() -> Sequence[Situation]:
    if full_scale():
        return TABLE3_SITUATIONS
    # Representative subset spanning layouts, lane types and scenes.
    from repro.core.situation import situation_by_index

    return [situation_by_index(i) for i in (1, 2, 5, 7, 8, 13, 15, 20, 21)]


def run_fig1(
    situations: Optional[Sequence[Situation]] = None,
    n_frames: int = 0,
    seed: int = 5,
) -> List[DetectorPoint]:
    """Evaluate every detector; returns the scatter points."""
    situations = situations or _default_situations()
    if n_frames <= 0:
        n_frames = 60 if full_scale() else 30
    camera = CameraModel(width=384, height=192)
    table = default_characterization()
    points: List[DetectorPoint] = []

    # 1. static sliding window: ROI 1 + S0 everywhere.
    static_acc = {}
    for situation in situations:
        stats = evaluate_sequence(
            situation, "S0", "ROI 1", n_frames=n_frames, seed=seed, camera=camera
        )
        static_acc[situation.describe()] = stats.accuracy()
    points.append(
        DetectorPoint(
            name="sliding window (static)",
            accuracy=float(np.mean(list(static_acc.values()))),
            fps=sensing_fps("S0"),
            per_situation=static_acc,
        )
    )

    # 2. proposed: characterized ISP/ROI per situation; FPS includes the
    # three classifiers on the per-situation ISP (case 4 budget).
    proposed_acc = {}
    fps_values = []
    for situation in situations:
        knobs = table.get(situation)
        isp = knobs.isp if knobs else "S0"
        roi = knobs.roi if knobs else natural_roi(situation)
        stats = evaluate_sequence(
            situation, isp, roi, n_frames=n_frames, seed=seed, camera=camera
        )
        proposed_acc[situation.describe()] = stats.accuracy()
        fps_values.append(sensing_fps(isp, ("road", "lane", "scene")))
    points.append(
        DetectorPoint(
            name="proposed (situation-aware)",
            accuracy=float(np.mean(list(proposed_acc.values()))),
            fps=float(np.mean(fps_values)),
            per_situation=proposed_acc,
        )
    )

    # 3. dense detectors: same accuracy machinery, reference runtimes.
    dense = DenseLaneDetector(camera)
    dense_acc = {}
    for situation in situations:
        stats = evaluate_sequence(
            situation,
            "S0",
            "ROI 1",  # ignored: detector scans its own wide window
            n_frames=n_frames,
            seed=seed,
            camera=camera,
            detector=dense.process,
        )
        dense_acc[situation.describe()] = stats.accuracy()
    dense_accuracy = float(np.mean(list(dense_acc.values())))
    for ref_name, runtime in REFERENCE_DETECTOR_RUNTIMES_MS.items():
        points.append(
            DetectorPoint(
                name=f"{ref_name}-class dense",
                accuracy=dense_accuracy,
                fps=1000.0 / runtime,
                per_situation=dense_acc,
            )
        )
    return points


def format_fig1(points: Sequence[DetectorPoint]) -> str:
    """Paper-vs-measured table for the Fig. 1 operating points."""
    rows = []
    for point in points:
        paper = PAPER_FIG1.get(point.name, {})
        rows.append(
            [
                point.name,
                f"{point.accuracy * 100:.1f}%",
                f"{paper.get('accuracy', float('nan')) * 100:.0f}%",
                f"{point.fps:.1f}",
                f"{paper.get('fps', float('nan')):.1f}",
            ]
        )
    return format_table(
        ["detector", "accuracy", "paper acc", "FPS", "paper FPS"],
        rows,
        title="Fig. 1 — accuracy vs FPS",
    )
