"""Fault-tolerance study: graceful degradation under fault campaigns.

The Fig. 6 companion for :mod:`repro.faults`: each scenario drives one
design case through a deterministic fault campaign twice — mitigation
off, then on (staleness watchdog + bounded retries, see
:class:`repro.core.reconfiguration.MitigationConfig`) — and records
crash/QoC/degradation per arm.  The flagship scenario is a classifier
outage across a turn entry: the unmitigated design carries a stale
straight-road belief into the curve at full speed, while the mitigated
one holds a conservative speed until identification returns.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.experiments.common import format_table
from repro.faults.plan import FaultPlan, resolve_fault_plan
from repro.hil.engine import HilConfig
from repro.hil.record import HilResult

__all__ = [
    "FaultScenario",
    "FaultArmResult",
    "FaultScenarioResult",
    "DEFAULT_SCENARIOS",
    "run_fault_tolerance",
    "format_fault_tolerance",
]


@dataclass(frozen=True)
class FaultScenario:
    """One named (track, case, fault campaign) configuration."""

    name: str
    #: Fault plan spec: preset name or ``kind@start:end`` string.
    faults: str
    case: str = "case3"
    situation_index: int = 8
    track_length_m: float = 150.0
    #: Straight lead-in before a turn situation's curve (track default
    #: when ``None``); the outage scenarios stretch it so the blind
    #: window ends while a conservative vehicle is still on the straight.
    lead_in_m: Optional[float] = None
    seed: int = 3


#: The benchmark's scenario set (see each scenario's comment).
DEFAULT_SCENARIOS: Tuple[FaultScenario, ...] = (
    # Classifier outage across the turn entry: stale straight belief at
    # 50 kmph vs conservative hold until identification recovers.  The
    # long lead-in makes the blind window end before the slow vehicle
    # reaches the curve — the mitigation's time-buying effect.
    FaultScenario(
        name="blind-turn-outage",
        faults="outage@1500:12300",
        lead_in_m=120.0,
    ),
    # Flaky accelerator: invocations time out 70 % of the time; the
    # bounded retry recovers identification within the same windows.
    FaultScenario(
        name="flaky-classifiers",
        faults="timeout@1500:inf,probability=0.7",
    ),
    # Everything at once at survivable intensities, on an easy road.
    FaultScenario(
        name="stress-straight",
        faults="stress",
        situation_index=1,
    ),
)


@dataclass
class FaultArmResult:
    """One arm (mitigation off or on) of a scenario."""

    mitigated: bool
    crashed: bool
    mae: float
    degraded_fraction: float
    fault_kinds: Tuple[str, ...]

    def describe(self) -> str:
        """``"CRASH"`` or the MAE in centimetres."""
        return "CRASH" if self.crashed else f"{self.mae * 100:.2f} cm"


@dataclass
class FaultScenarioResult:
    """Both arms of one scenario."""

    scenario: FaultScenario
    plan: FaultPlan
    baseline: FaultArmResult
    mitigated: FaultArmResult

    @property
    def mitigation_wins(self) -> bool:
        """Mitigation strictly better: survives a baseline crash, or
        both survive and the mitigated MAE is lower."""
        if self.baseline.crashed:
            return not self.mitigated.crashed
        return not self.mitigated.crashed and self.mitigated.mae < self.baseline.mae


def _arm(result: HilResult, mitigated: bool) -> FaultArmResult:
    return FaultArmResult(
        mitigated=mitigated,
        crashed=result.crashed,
        mae=result.mae(skip_time_s=2.0),
        degraded_fraction=result.degraded_fraction(),
        fault_kinds=result.fault_kinds(),
    )


def _scenario_track(scenario: FaultScenario):
    from repro.core.situation import situation_by_index
    from repro.sim.world import static_situation_track

    situation = situation_by_index(scenario.situation_index)
    kwargs = {"length": scenario.track_length_m}
    if scenario.lead_in_m is not None:
        kwargs["lead_in"] = scenario.lead_in_m
    return static_situation_track(situation, **kwargs)


def run_fault_tolerance(
    scenarios: Optional[Sequence[FaultScenario]] = None,
    config: Optional[HilConfig] = None,
) -> List[FaultScenarioResult]:
    """Run every scenario with mitigation off and on.

    ``config`` overrides the base :class:`HilConfig` (tests shrink the
    frame); seed and fault plan always come from the scenario.
    """
    from repro.api import inject

    if scenarios is None:
        scenarios = DEFAULT_SCENARIOS
    results: List[FaultScenarioResult] = []
    for scenario in scenarios:
        plan = resolve_fault_plan(scenario.faults)
        track = _scenario_track(scenario)
        arms = {}
        for mitigated in (False, True):
            run = inject(
                faults=plan,
                track=track,
                situation=scenario.situation_index,
                case=scenario.case,
                seed=scenario.seed,
                mitigate=mitigated,
                config=config,
            )
            arms[mitigated] = _arm(run, mitigated)
        results.append(
            FaultScenarioResult(
                scenario=scenario,
                plan=plan,
                baseline=arms[False],
                mitigated=arms[True],
            )
        )
    return results


def format_fault_tolerance(results: Sequence[FaultScenarioResult]) -> str:
    """Fig. 6-style table: one row per scenario, one column per arm."""
    rows = []
    for r in results:
        rows.append(
            [
                r.scenario.name,
                r.scenario.case,
                ",".join(sorted({s.kind for s in r.plan.specs})),
                r.baseline.describe(),
                r.mitigated.describe(),
                f"{r.mitigated.degraded_fraction * 100:.0f} %",
                "yes" if r.mitigation_wins else "no",
            ]
        )
    return format_table(
        [
            "scenario",
            "case",
            "faults",
            "unmitigated",
            "mitigated",
            "degraded",
            "win",
        ],
        rows,
        title="Fault tolerance — QoC with graceful degradation off vs on "
        "(CRASH = lane departure)",
    )
