"""Fig. 6 — static per-situation robustness and QoC of cases 1-4.

Each situation is evaluated separately (no dynamic switching): one
closed-loop run per (situation, case), recording MAE and failure.  As
in the paper, all values are normalized to case 3 (the robust baseline)
per situation; a failure is a lane departure (crash).

Paper shape expectations: case 1 degrades/fails on turn situations
(worst on dotted and left-turn ones), case 2 recovers the coarse-layout
part, case 3 never fails, and case 4 trades a little day-straight
accuracy for the fastest sampling.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.core.situation import Situation, situation_by_index
from repro.experiments.common import format_table, full_scale
from repro.hil.engine import HilConfig, HilEngine
from repro.sim.world import static_situation_track

__all__ = ["SituationCaseResult", "run_fig6", "format_fig6", "CASES_FIG6"]

CASES_FIG6 = ("case1", "case2", "case3", "case4")


@dataclass
class SituationCaseResult:
    """One bar of Fig. 6."""

    index: int
    situation: Situation
    case: str
    mae: float
    crashed: bool
    normalized: float = float("nan")


def _default_indices() -> List[int]:
    if full_scale():
        return list(range(1, 22))
    return [1, 5, 8, 13, 15, 20]


def run_fig6(
    indices: Optional[Sequence[int]] = None,
    track_length: float = 140.0,
    seeds: Sequence[int] = (3,),
    config: Optional[HilConfig] = None,
) -> List[SituationCaseResult]:
    """Run the static case matrix and normalize to case 3.

    With multiple *seeds* the MAE is averaged and a crash in any seed
    marks the (situation, case) as failed — matching how the paper
    treats robustness (one lane departure disqualifies a design).
    """
    import numpy as np

    indices = list(indices) if indices is not None else _default_indices()
    results: List[SituationCaseResult] = []
    for index in indices:
        situation = situation_by_index(index)
        track = static_situation_track(situation, length=track_length)
        per_case: Dict[str, SituationCaseResult] = {}
        for case in CASES_FIG6:
            maes = []
            crashed = False
            for seed in seeds:
                run_config = config or HilConfig(seed=seed)
                run = HilEngine(track, case, config=run_config).run()
                maes.append(run.mae(skip_time_s=2.0))
                crashed = crashed or run.crashed
            per_case[case] = SituationCaseResult(
                index=index,
                situation=situation,
                case=case,
                mae=float(np.mean(maes)),
                crashed=crashed,
            )
        reference = per_case["case3"].mae
        for case in CASES_FIG6:
            if reference > 0:
                per_case[case].normalized = per_case[case].mae / reference
            results.append(per_case[case])
    return results


def format_fig6(results: Sequence[SituationCaseResult]) -> str:
    """One row per situation, normalized MAE per case ('X' = failure)."""
    by_index: Dict[int, Dict[str, SituationCaseResult]] = {}
    for r in results:
        by_index.setdefault(r.index, {})[r.case] = r
    rows = []
    for index in sorted(by_index):
        group = by_index[index]
        cells = []
        for case in CASES_FIG6:
            r = group.get(case)
            if r is None:
                cells.append("-")
            elif r.crashed:
                cells.append("FAIL")
            else:
                cells.append(f"{r.normalized:.2f}")
        rows.append(
            [str(index), group[CASES_FIG6[0]].situation.describe(), *cells]
        )
    return format_table(
        ["#", "situation", *CASES_FIG6],
        rows,
        title="Fig. 6 — static QoC normalized to case 3 (FAIL = crash)",
    )
