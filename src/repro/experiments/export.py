"""JSON export of experiment results (for external plotting/analysis).

The report generator renders human-readable tables; this module dumps
the same structured data as JSON so downstream tooling (notebooks,
plotting scripts) can consume the reproduction's numbers directly::

    from repro.experiments.export import export_results
    export_results("results.json", include_dynamic=False)
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict

__all__ = ["collect_results", "export_results"]


def collect_results(
    include_dynamic: bool = True,
    include_characterization: bool = True,
    include_classifiers: bool = True,
) -> Dict[str, Any]:
    """Run the experiment suite and collect JSON-serializable results."""
    out: Dict[str, Any] = {}

    from repro.experiments.table2 import run_table2

    table2 = run_table2()
    out["table2"] = {
        "isp": [
            {
                "name": row.name,
                "stages": row.stages,
                "xavier_ms": row.xavier_ms,
                "python_ms": row.python_ms,
            }
            for row in table2["isp"]
        ],
        "roi": table2["roi"],
        "pr_runtime_ms": table2["pr_runtime_ms"],
        "control_runtime_ms": table2["control_runtime_ms"],
    }

    from repro.experiments.table5 import run_table5

    out["table5"] = [
        {
            "case": row.case.name,
            "classifiers": list(row.case.classifiers),
            "invocation": row.case.invocation,
            "delay_ms": row.delay_ms,
            "period_ms": row.period_ms,
        }
        for row in run_table5()
    ]

    from repro.experiments.fig7 import run_fig7

    out["fig7"] = [
        {
            "sector": row.sector,
            "situation": row.situation.describe(),
            "s_start": row.s_start,
            "s_end": row.s_end,
            "curvature": row.curvature,
        }
        for row in run_fig7()
    ]

    from repro.experiments.fig1 import run_fig1

    out["fig1"] = [
        {
            "detector": point.name,
            "accuracy": point.accuracy,
            "fps": point.fps,
            "per_situation": point.per_situation,
        }
        for point in run_fig1()
    ]

    if include_classifiers:
        from repro.experiments.table4 import run_table4

        out["table4"] = [
            {
                "classifier": row.name,
                "n_train": row.n_train,
                "n_val": row.n_val,
                "accuracy": row.accuracy,
                "paper_accuracy": row.paper_accuracy,
            }
            for row in run_table4()
        ]

    if include_characterization:
        from repro.experiments.table3 import run_table3

        out["table3"] = [
            {
                "index": row.index,
                "situation": row.situation.describe(),
                "isp": row.knobs.isp,
                "roi": row.knobs.roi,
                "speed_kmph": row.knobs.speed_kmph,
                "period_ms": row.period_ms,
                "delay_ms": row.delay_ms,
                "paper": [row.paper_isp, row.paper_roi, list(row.paper_vht)],
            }
            for row in run_table3()
        ]

    from repro.experiments.fig6 import run_fig6

    out["fig6"] = [
        {
            "index": r.index,
            "situation": r.situation.describe(),
            "case": r.case,
            "mae": r.mae,
            "crashed": r.crashed,
            "normalized": None if r.crashed else r.normalized,
        }
        for r in run_fig6()
    ]

    if include_dynamic:
        from repro.experiments.fig8 import aggregate_improvements, run_fig8

        results = run_fig8()
        out["fig8"] = {
            "sectors": {
                case: [
                    {
                        "sector": s.sector,
                        "mae": s.mae,
                        "reached": s.reached,
                        "completed": s.completed,
                    }
                    for s in r.sectors
                ]
                for case, r in results.items()
            },
            "aggregates": {
                f"{a}_vs_{b}": value
                for (a, b), value in aggregate_improvements(results).items()
            },
        }
    return out


def export_results(path: str, **kwargs) -> Path:
    """Collect results and write them to *path* as JSON."""
    data = collect_results(**kwargs)
    target = Path(path)
    target.write_text(json.dumps(data, indent=2, default=float))
    return target
