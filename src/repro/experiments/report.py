"""One-shot report generator: regenerate every paper artifact to markdown.

``python -m repro report`` (or :func:`generate_report`) runs the
experiment suite at the active scale and writes a self-contained
markdown report with the paper-vs-measured tables — the machine-made
core of EXPERIMENTS.md.
"""

from __future__ import annotations

import time
from pathlib import Path
from typing import List, Optional

from repro.experiments.common import scale_note

__all__ = ["generate_report"]


def _section(title: str, body: str) -> str:
    return f"## {title}\n\n```\n{body}\n```\n"


def generate_report(
    path: Optional[str] = None,
    include_dynamic: bool = True,
    include_characterization: bool = True,
    include_classifiers: bool = True,
    verbose: bool = True,
) -> str:
    """Run the experiment suite and return (and optionally write) the
    markdown report.

    The heavy stages can be skipped individually; everything honours
    the artifact caches, so a second invocation is fast.
    """
    sections: List[str] = []
    started = time.time()

    def log(message: str) -> None:
        if verbose:
            print(f"[report +{time.time() - started:6.1f}s] {message}", flush=True)

    log("Table II (knob runtimes)")
    from repro.experiments.table2 import format_table2, run_table2

    sections.append(_section("Table II — configurable knobs", format_table2(run_table2())))

    log("Table V (design cases)")
    from repro.experiments.table5 import format_table5, run_table5

    sections.append(_section("Table V — design cases", format_table5(run_table5())))

    log("Fig. 7 (world model)")
    from repro.experiments.fig7 import format_fig7, run_fig7

    sections.append(_section("Fig. 7 — dynamic track", format_fig7(run_fig7())))

    if include_classifiers:
        log("Table IV (classifiers; cached after first run)")
        from repro.experiments.table4 import format_table4, run_table4

        sections.append(
            _section("Table IV — situation classifiers", format_table4(run_table4()))
        )

    log("Fig. 1 (accuracy/FPS trade-off)")
    from repro.experiments.fig1 import format_fig1, run_fig1

    sections.append(_section("Fig. 1 — accuracy vs FPS", format_fig1(run_fig1())))

    if include_characterization:
        log("Table III (characterization; cached after first run)")
        from repro.experiments.table3 import format_table3, run_table3

        sections.append(
            _section("Table III — knob characterization", format_table3(run_table3()))
        )

    log("Fig. 6 (static per-situation QoC)")
    from repro.experiments.fig6 import format_fig6, run_fig6

    sections.append(_section("Fig. 6 — static QoC", format_fig6(run_fig6())))

    if include_dynamic:
        log("Fig. 8 (dynamic switching)")
        from repro.experiments.fig8 import format_fig8, run_fig8

        sections.append(_section("Fig. 8 — dynamic switching", format_fig8(run_fig8())))

    from repro.utils.version import __version__

    header = (
        "# repro experiment report\n\n"
        f"_repro {__version__}; {scale_note()}; "
        f"wall time {time.time() - started:.0f}s_\n\n"
        "Regenerated artifacts of De et al., DATE 2021 "
        "(see EXPERIMENTS.md for the discussion).\n"
    )
    report = header + "\n".join(sections)
    if path is not None:
        Path(path).write_text(report)
        log(f"written to {path}")
    return report
