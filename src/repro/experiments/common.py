"""Shared helpers for the experiment modules."""

from __future__ import annotations

import os
from typing import List, Sequence

__all__ = ["full_scale", "scale_note", "format_table"]


def full_scale() -> bool:
    """Whether experiments run at full paper scale (``REPRO_FULL=1``)."""
    return os.environ.get("REPRO_FULL", "0") == "1"


def scale_note() -> str:
    """A one-line note describing the active scale."""
    if full_scale():
        return "scale: FULL (REPRO_FULL=1)"
    return "scale: reduced (set REPRO_FULL=1 for the full sweep)"


def format_table(
    headers: Sequence[str], rows: Sequence[Sequence], title: str = ""
) -> str:
    """Render a simple fixed-width text table."""
    str_rows: List[List[str]] = [[str(c) for c in row] for row in rows]
    widths = [
        max(len(h), *(len(r[i]) for r in str_rows)) if str_rows else len(h)
        for i, h in enumerate(headers)
    ]
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in str_rows:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)
