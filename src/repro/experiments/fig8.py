"""Fig. 8 — dynamic switching between situations on the Fig. 7 track.

Runs every design case (1-4 plus the variable-invocation scheme) over
the nine-sector track, reporting per-sector MAE normalized to case 3,
crash locations, and the paper's headline aggregate comparisons:

- case 3 vs cases 1/2 (robustness costs QoC: paper 55 % / 22 % worse),
- case 4 vs case 3 (ISP approximation recovers ~30 %),
- variable scheme vs cases 3/4 (paper: 32 % / 3 % better than 3 / 4).

Sectors a case never reaches (after a crash) are reported as
unreached; aggregates follow the paper's footnote 7 and only average
sectors completed without failure by the cases being compared.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.experiments.common import format_table
from repro.hil.engine import HilConfig, HilEngine
from repro.hil.record import HilResult, SectorQoC
from repro.sim.track import Track
from repro.sim.world import fig7_track

__all__ = ["DynamicCaseResult", "run_fig8", "format_fig8", "aggregate_improvements"]

CASES_FIG8 = ("case1", "case2", "case3", "case4", "variable")

#: Paper's aggregate numbers for the dynamic study.
PAPER_AGGREGATES = {
    ("case3", "case1"): 0.55,   # case 3 is 55 % worse than case 1
    ("case3", "case2"): 0.22,   # ... and 22 % worse than case 2
    ("case4", "case3"): 0.30,   # case 4 improves 30 % over case 3
    ("variable", "case3"): 0.32,
    ("variable", "case4"): 0.03,
}


@dataclass
class DynamicCaseResult:
    """One case's full-track run."""

    case: str
    result: HilResult
    sectors: List[SectorQoC] = field(default_factory=list)

    @property
    def crashed(self) -> bool:
        """Whether this case's run ended in a lane departure."""
        return self.result.crashed

    @property
    def crash_sector(self) -> Optional[int]:
        """1-based index of the sector the case failed in, or None."""
        for sector in self.sectors:
            if sector.failed:
                return sector.sector
        return None


def run_fig8(
    cases: Sequence[str] = CASES_FIG8,
    track: Optional[Track] = None,
    seed: int = 3,
    seeds: Optional[Sequence[int]] = None,
    config: Optional[HilConfig] = None,
    sector_skip_m: float = 15.0,
    identifier=None,
) -> Dict[str, DynamicCaseResult]:
    """Run the dynamic-track study for the requested cases.

    With multiple *seeds* the per-sector MAEs are averaged; a sector is
    completed only if every seed completes it (and the representative
    ``result`` trace is the first seed's).  *identifier* optionally
    replaces the ground-truth oracle, e.g. a
    :class:`~repro.classifiers.runtime.CnnIdentifier`.
    """
    track = track or fig7_track()
    seed_list = list(seeds) if seeds is not None else [seed]
    results: Dict[str, DynamicCaseResult] = {}
    for case in cases:
        per_seed = []
        for run_seed in seed_list:
            run_config = config or HilConfig(seed=run_seed)
            engine = HilEngine(track, case, identifier=identifier, config=run_config)
            run = engine.run()
            per_seed.append(
                (run, run.sector_qoc(track, skip_distance_m=sector_skip_m))
            )
        sectors = _merge_sector_runs([s for _, s in per_seed])
        results[case] = DynamicCaseResult(
            case=case,
            result=per_seed[0][0],
            sectors=sectors,
        )
    return results


def _merge_sector_runs(per_seed_sectors) -> List[SectorQoC]:
    """Average per-sector QoC across seeds (worst-case on completion)."""
    merged: List[SectorQoC] = []
    for group in zip(*per_seed_sectors):
        maes = [s.mae for s in group if s.mae is not None]
        merged.append(
            SectorQoC(
                sector=group[0].sector,
                s_start=group[0].s_start,
                s_end=group[0].s_end,
                mae=float(np.mean(maes)) if maes else None,
                reached=any(s.reached for s in group),
                completed=all(s.completed for s in group),
            )
        )
    return merged


def aggregate_improvements(
    results: Dict[str, DynamicCaseResult]
) -> Dict[tuple, float]:
    """Relative QoC differences over commonly-completed sectors.

    Returns ``(a, b) -> relative``, where positive values mean case *a*
    has a higher (worse) MAE than case *b* for the "worse" pairs, and
    the improvement fraction for the "improves" pairs — matching how
    the paper phrases each comparison.
    """
    out: Dict[tuple, float] = {}
    for pair in PAPER_AGGREGATES:
        a, b = pair
        if a not in results or b not in results:
            continue
        shared = [
            (sa.mae, sb.mae)
            for sa, sb in zip(results[a].sectors, results[b].sectors)
            if sa.completed and sb.completed and sa.mae is not None and sb.mae is not None
        ]
        if not shared:
            continue
        mae_a = float(np.mean([m for m, _ in shared]))
        mae_b = float(np.mean([m for _, m in shared]))
        if pair in (("case3", "case1"), ("case3", "case2")):
            out[pair] = mae_a / mae_b - 1.0  # how much worse a is
        else:
            out[pair] = 1.0 - mae_a / mae_b  # how much a improves on b
    return out


def format_fig8(results: Dict[str, DynamicCaseResult]) -> str:
    """Per-sector normalized MAE plus the aggregate comparisons."""
    reference = results.get("case3")
    n_sectors = len(reference.sectors) if reference else 0
    rows = []
    for sector_idx in range(1, n_sectors + 1):
        cells = []
        for case in CASES_FIG8:
            if case not in results:
                cells.append("-")
                continue
            sector = results[case].sectors[sector_idx - 1]
            ref = reference.sectors[sector_idx - 1]
            if sector.failed:
                cells.append("FAIL")
            elif not sector.reached:
                cells.append("n/r")
            elif sector.mae is None or ref.mae in (None, 0.0):
                cells.append("-")
            else:
                cells.append(f"{sector.mae / ref.mae:.2f}")
        rows.append([str(sector_idx), *cells])
    text = format_table(
        ["sector", *CASES_FIG8],
        rows,
        title="Fig. 8 — dynamic per-sector QoC normalized to case 3 "
        "(FAIL = crash, n/r = not reached)",
    )

    aggregates = aggregate_improvements(results)
    lines = ["", "aggregates (ours vs paper):"]
    for pair, value in aggregates.items():
        paper = PAPER_AGGREGATES[pair]
        if pair in (("case3", "case1"), ("case3", "case2")):
            lines.append(
                f"  {pair[0]} worse than {pair[1]}: {value * 100:+.0f}% "
                f"(paper: +{paper * 100:.0f}%)"
            )
        else:
            lines.append(
                f"  {pair[0]} improves on {pair[1]}: {value * 100:+.0f}% "
                f"(paper: +{paper * 100:.0f}%)"
            )
    return text + "\n".join(lines)
