"""Table IV — situation classifiers: datasets, classes, accuracy.

Trains (or loads from the artifact cache) the three classifiers on
their Table IV-sized synthetic datasets and reports validation accuracy
against the paper's numbers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.classifiers.dataset import TABLE4_SPLITS
from repro.classifiers.train import train_all_classifiers
from repro.experiments.common import format_table

__all__ = ["ClassifierRow", "run_table4", "format_table4", "PAPER_TABLE4"]

#: Paper's reported classification accuracies (Table IV).
PAPER_TABLE4: Dict[str, float] = {
    "road": 0.9992,
    "lane": 0.9997,
    "scene": 0.9990,
}

#: Output classes per classifier (for the report).
_CLASS_LISTS = {
    "road": "straight, left turn, right turn",
    "lane": "white continuous, white dotted, yellow continuous, yellow double",
    "scene": "day, night, dark, dawn, dusk",
}


@dataclass
class ClassifierRow:
    """One classifier's dataset stats and accuracy."""

    name: str
    n_train: int
    n_val: int
    classes: str
    accuracy: float
    paper_accuracy: float
    runtime_ms: float = 5.5  # profiled per classifier on the Xavier


def run_table4(use_cache: bool = True, verbose: bool = False) -> List[ClassifierRow]:
    """Train/load the classifiers and collect the Table IV rows."""
    trained = train_all_classifiers(use_cache=use_cache, verbose=verbose)
    rows: List[ClassifierRow] = []
    for name, result in trained.items():
        total, train, val = TABLE4_SPLITS[name]
        rows.append(
            ClassifierRow(
                name=name,
                n_train=result.n_train,
                n_val=result.n_val,
                classes=_CLASS_LISTS[name],
                accuracy=result.val_accuracy,
                paper_accuracy=PAPER_TABLE4[name],
            )
        )
    return rows


def format_table4(rows: List[ClassifierRow]) -> str:
    """Render the Table IV reproduction."""
    table_rows = [
        [
            row.name,
            f"{row.n_train + row.n_val} ({row.n_train}/{row.n_val})",
            f"{row.accuracy * 100:.2f}%",
            f"{row.paper_accuracy * 100:.2f}%",
            f"{row.runtime_ms:.1f} ms",
        ]
        for row in rows
    ]
    return format_table(
        ["classifier", "dataset (train/val)", "val acc", "paper acc", "Xavier runtime"],
        table_rows,
        title="Table IV — situation classifiers",
    )
