"""Ablations of the design choices DESIGN.md calls out.

- **ISP apply lag** (Sec. III-D): the paper argues the one-cycle delay
  of the ISP knob is harmless; sweeping the lag quantifies it.
- **Invocation window** (footnote 8): the 300 ms window of the variable
  scheme against shorter/longer windows.
- **ISP stage contribution**: per-scene detection accuracy when single
  stages are dropped (the knob-sensitivity story of Sec. III-B).
- **Curvature feed-forward**: the production-LKAS extension that the
  base reproduction keeps off (paper controller consumes y_L only).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.situation import situation_by_index
from repro.experiments.common import format_table
from repro.hil.engine import HilConfig, HilEngine
from repro.perception.evaluation import evaluate_sequence
from repro.sim.track import Track
from repro.sim.world import fig7_track
from repro.utils.parallel import TaskFailure, parallel_map

__all__ = [
    "run_isp_lag_ablation",
    "run_invocation_window_ablation",
    "run_isp_stage_ablation",
    "run_feedforward_ablation",
    "format_ablation",
]


@dataclass
class AblationPoint:
    """One swept setting and its outcome."""

    setting: str
    mae: float
    crashed: bool


def _dynamic_mae(config: HilConfig, case: str, track: Track) -> AblationPoint:
    run = HilEngine(track, case, config=config).run()
    return AblationPoint(
        setting="",
        mae=run.mae(skip_time_s=2.0),
        crashed=run.crashed,
    )


def _dynamic_mae_task(spec: Tuple[str, HilConfig, str, Track]) -> AblationPoint:
    """Picklable work item: one labelled closed-loop ablation run."""
    setting, config, case, track = spec
    point = _dynamic_mae(config, case, track)
    point.setting = setting
    return point


def _run_points(
    specs: Sequence[Tuple[str, HilConfig, str, Track]],
    jobs: Optional[int],
) -> List[AblationPoint]:
    """Fan the independent ablation runs out; order follows *specs*."""
    results = parallel_map(_dynamic_mae_task, specs, jobs=jobs, label="ablation")
    failed = [r.item[0] for r in results if isinstance(r, TaskFailure)]
    if failed:
        raise RuntimeError(f"ablation runs failed for settings: {failed}")
    return list(results)


def compact_track() -> Track:
    """A shortened Fig. 7-style track for the ablation sweeps.

    Same nine sectors and transitions, ~half the arc length — the
    ablations compare configurations against each other, so the shared
    track only needs to exercise every switching type.
    """
    return fig7_track(straight_length=60.0, turn_length=50.0)


def run_isp_lag_ablation(
    lags: Sequence[int] = (0, 1, 6),
    seed: int = 3,
    track: Optional[Track] = None,
    jobs: Optional[int] = None,
) -> List[AblationPoint]:
    """Case 4 on the dynamic track with different ISP apply lags."""
    track = track or compact_track()
    specs = [
        (f"lag={lag} cycles", HilConfig(seed=seed, isp_apply_lag=lag), "case4", track)
        for lag in lags
    ]
    return _run_points(specs, jobs)


def run_invocation_window_ablation(
    windows_ms: Sequence[float] = (150.0, 300.0, 900.0),
    seed: int = 3,
    track: Optional[Track] = None,
    jobs: Optional[int] = None,
) -> List[AblationPoint]:
    """The variable scheme with different road-classifier windows."""
    track = track or compact_track()
    specs = [
        (
            f"window={window:.0f} ms",
            HilConfig(seed=seed, invocation_window_ms=window),
            "variable",
            track,
        )
        for window in windows_ms
    ]
    return _run_points(specs, jobs)


def run_feedforward_ablation(
    seed: int = 3,
    track: Optional[Track] = None,
    jobs: Optional[int] = None,
) -> List[AblationPoint]:
    """Curvature feed-forward on/off for the robust baseline (case 3)."""
    track = track or compact_track()
    specs = [
        (
            f"feedforward={'on' if use_ff else 'off'}",
            HilConfig(seed=seed, use_feedforward=use_ff),
            "case3",
            track,
        )
        for use_ff in (False, True)
    ]
    return _run_points(specs, jobs)


def run_isp_stage_ablation(
    scene_indices: Sequence[int] = (1, 5, 7),
    n_frames: int = 40,
    seed: int = 5,
) -> Dict[str, Dict[str, float]]:
    """Detection bad-frame rate per scene for single-stage-drop configs.

    Uses the Table II configurations that drop exactly one stage
    (S1: -DN, S2: -CM, S3: -GM, S4: -TM) against the full S0, revealing
    which stage matters in which scene — the situation-sensitivity that
    motivates the scene classifier.
    """
    configs = {"S0": "full", "S1": "-DN", "S2": "-CM", "S3": "-GM", "S4": "-TM"}
    out: Dict[str, Dict[str, float]] = {}
    for index in scene_indices:
        situation = situation_by_index(index)
        row = {}
        for isp, label in configs.items():
            stats = evaluate_sequence(
                situation, isp, "ROI 1", n_frames=n_frames, seed=seed
            )
            row[label] = stats.bad_frame_rate()
        out[situation.scene.value] = row
    return out


def format_ablation(title: str, points: Sequence[AblationPoint]) -> str:
    """Render an ablation sweep as a text table."""
    rows = [
        [p.setting, "CRASH" if p.crashed else f"{p.mae * 100:.2f} cm"]
        for p in points
    ]
    return format_table(["setting", "track MAE"], rows, title=title)
