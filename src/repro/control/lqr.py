"""Discrete LQR design on the delay-augmented lateral model.

This is the paper's optimal linear quadratic regulator [14]: for each
``(v, h, tau)`` control-knob tuple a gain is designed on the exact
delay-augmented discretization, so slower sampling and longer delays
translate directly into softer achievable regulation — the mechanism
behind the paper's QoC-vs-robustness trade-off.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np
from scipy.linalg import solve_discrete_are

from repro.control.discretize import DelayedDiscreteModel, discretize_with_delay
from repro.control.model import LateralModel, lateral_model, understeer_feedforward
from repro.sim.vehicle import VehicleParams

__all__ = ["LqrWeights", "ControllerGains", "design_lqr"]


@dataclass(frozen=True)
class LqrWeights:
    """Diagonal LQR weights for ``[v_y, r, y_L, eps_L, delta, u_prev]``.

    The defaults put the emphasis on the look-ahead deviation ``y_L``
    (the paper's QoC variable) with mild damping on yaw rate and
    heading error.
    """

    v_y: float = 0.0
    yaw_rate: float = 0.3
    y_l: float = 18.0
    eps_l: float = 25.0
    steer: float = 0.0
    u_prev: float = 0.05
    control: float = 30.0

    def q_matrix(self) -> np.ndarray:
        """Assemble the diagonal state-weight matrix Q."""
        return np.diag(
            [self.v_y, self.yaw_rate, self.y_l, self.eps_l, self.steer, self.u_prev]
        )

    def r_matrix(self) -> np.ndarray:
        """Assemble the 1x1 control-weight matrix R."""
        return np.array([[self.control]])


@dataclass
class ControllerGains:
    """A complete gain set for one ``(v, h, tau)`` design point."""

    k: np.ndarray
    k_ff: float
    speed: float
    period: float
    delay: float
    closed_loop_radius: float
    discrete: DelayedDiscreteModel = field(repr=False)
    model: LateralModel = field(repr=False)

    @property
    def a_closed(self) -> np.ndarray:
        """Closed-loop augmented matrix (used by the CQLF check)."""
        return self.discrete.a_aug - self.discrete.b_aug @ self.k

    def is_stable(self) -> bool:
        """Whether the closed loop is Schur stable."""
        return self.closed_loop_radius < 1.0


def design_lqr(
    params: VehicleParams,
    speed: float,
    period: float,
    delay: float,
    weights: LqrWeights = LqrWeights(),
    lookahead: float = 5.5,
) -> ControllerGains:
    """Design the situation-specific LQR for a control-knob tuple.

    Parameters
    ----------
    params:
        Vehicle physical parameters.
    speed:
        Longitudinal speed in m/s (the paper's 30 / 50 kmph knob).
    period, delay:
        The ``(h, tau)`` design annotation in **seconds**.
    weights:
        LQR weights; the defaults are used throughout the reproduction.
    lookahead:
        Look-ahead distance LL (m).

    Raises
    ------
    ValueError
        If the resulting closed loop is not Schur stable (which would
        indicate an infeasible design point).
    """
    model = lateral_model(params, speed, lookahead)
    discrete = discretize_with_delay(model, period, delay)
    q = weights.q_matrix()
    r = weights.r_matrix()
    p = solve_discrete_are(discrete.a_aug, discrete.b_aug, q, r)
    k = np.linalg.solve(
        r + discrete.b_aug.T @ p @ discrete.b_aug,
        discrete.b_aug.T @ p @ discrete.a_aug,
    )
    a_closed = discrete.a_aug - discrete.b_aug @ k
    radius = float(np.max(np.abs(np.linalg.eigvals(a_closed))))
    if radius >= 1.0:
        raise ValueError(
            f"LQR design unstable (spectral radius {radius:.4f}) for "
            f"v={speed}, h={period}, tau={delay}"
        )
    return ControllerGains(
        k=k,
        k_ff=understeer_feedforward(params, speed),
        speed=speed,
        period=period,
        delay=delay,
        closed_loop_radius=radius,
        discrete=discrete,
        model=model,
    )
