"""Runtime lane-keeping controller.

Applies the scheduled LQR gain to the measured state and implements the
measurement hold used when perception reports an invalid frame (no lane
found): the last valid measurement is reused, which is realistic and is
also what lets a mis-configured ROI escalate into a crash instead of a
silent recovery.

Optionally a curvature feed-forward term (disabled by default — the
paper's controller consumes ``y_L`` only) adds the steady-state steering
for the perception pipeline's curvature estimate; the ablation
benchmarks quantify its effect.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.control.lqr import ControllerGains
from repro.perception.pipeline import PerceptionResult

__all__ = ["ControlState", "LaneKeepingController"]


@dataclass
class ControlState:
    """Mutable controller memory."""

    u_prev: float = 0.0
    held_y_l: float = 0.0
    held_eps_l: float = 0.0
    held_curvature: float = 0.0
    missed_frames: int = 0


class LaneKeepingController:
    """LQR + curvature feed-forward with runtime gain switching."""

    def __init__(
        self,
        gains: ControllerGains,
        steer_limit: float = 0.55,
        use_feedforward: bool = False,
        jump_gate_m: float = 0.75,
        gate_max_misses: int = 6,
    ):
        self.gains = gains
        self.steer_limit = steer_limit
        self.use_feedforward = use_feedforward
        self.jump_gate_m = jump_gate_m
        self.gate_max_misses = gate_max_misses
        self.state = ControlState()

    def set_gains(self, gains: ControllerGains) -> None:
        """Switch to another pre-designed gain set (situation change).

        The controller memory (previous input, held measurement) is kept:
        switching must not discontinuously reset the loop.
        """
        self.gains = gains

    def reset(self) -> None:
        """Clear the controller memory (new run)."""
        self.state = ControlState()

    def step(
        self,
        measurement: PerceptionResult,
        lateral_velocity: float,
        yaw_rate: float,
        steer_actual: float = 0.0,
    ) -> float:
        """Compute the steering command for one control period.

        Parameters
        ----------
        measurement:
            Perception output for the frame sampled this period.  When
            invalid, the last valid measurement is held.
        lateral_velocity, yaw_rate:
            Body-frame feedback from onboard inertial sensing (available
            on any production vehicle; the paper's camera provides only
            ``y_L``).
        steer_actual:
            The measured steering angle (actuator state feedback).
        """
        st = self.state
        accepted = measurement.valid
        if accepted and st.missed_frames < self.gate_max_misses:
            # Plausibility gate: the lane center cannot jump by most of
            # a lane width between consecutive samples.  After several
            # misses the gate opens so the loop can re-acquire.
            if abs(measurement.y_l - st.held_y_l) > self.jump_gate_m:
                accepted = False
        if accepted:
            st.held_y_l = measurement.y_l
            st.held_eps_l = measurement.epsilon_l
            st.held_curvature = measurement.curvature
            st.missed_frames = 0
        else:
            st.missed_frames += 1

        x = np.array(
            [
                lateral_velocity,
                yaw_rate,
                st.held_y_l,
                st.held_eps_l,
                steer_actual,
                st.u_prev,
            ]
        )
        u = float(-(self.gains.k @ x)[0])
        if self.use_feedforward:
            u += self.gains.k_ff * st.held_curvature
        u = float(np.clip(u, -self.steer_limit, self.steer_limit))
        st.u_prev = u
        return u
