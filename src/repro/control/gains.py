"""Gain scheduling over the control knobs ``(v, h, tau)``.

The paper designs one LQR per situation-specific knob tuple (Table III)
at design time; at runtime the reconfiguration manager swaps gain sets.
:class:`GainScheduler` memoizes the designs so a closed-loop run pays
the Riccati solve once per distinct tuple.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.control.lqr import ControllerGains, LqrWeights, design_lqr
from repro.sim.vehicle import VehicleParams

__all__ = ["GainScheduler"]


class GainScheduler:
    """Caches :func:`design_lqr` results keyed by rounded knob tuples."""

    def __init__(
        self,
        params: VehicleParams,
        weights: LqrWeights = LqrWeights(),
        lookahead: float = 5.5,
    ):
        self.params = params
        self.weights = weights
        self.lookahead = lookahead
        self._cache: Dict[Tuple[int, int, int], ControllerGains] = {}

    @staticmethod
    def _key(speed: float, period: float, delay: float) -> Tuple[int, int, int]:
        # Round to 0.01 m/s and 0.1 ms: distinct design points in the
        # paper differ by far more than this.
        return (round(speed * 100), round(period * 1e4), round(delay * 1e4))

    def gains_for(self, speed: float, period: float, delay: float) -> ControllerGains:
        """The (cached) LQR design for a ``(v, h, tau)`` tuple (SI units)."""
        key = self._key(speed, period, delay)
        gains = self._cache.get(key)
        if gains is None:
            gains = design_lqr(
                self.params,
                speed,
                period,
                delay,
                weights=self.weights,
                lookahead=self.lookahead,
            )
            self._cache[key] = gains
        return gains

    def cached_designs(self) -> List[ControllerGains]:
        """All designs created so far (input to the CQLF switching check)."""
        return list(self._cache.values())
