"""Discrete-time control substrate (paper Sec. II, `T_c`).

Vision-based lateral control of the bicycle model [13]: the controller
is an LQR designed for a sampling period ``h`` and a (worst-case)
sensor-to-actuation delay ``tau`` (the paper's ``(h, tau)`` annotation),
with gain scheduling over the control knobs (vehicle speed, h, tau) and
a common-quadratic-Lyapunov-function check certifying stability under
runtime switching between situation-specific designs [15], [16].
"""

from repro.control.model import lateral_model, LateralModel
from repro.control.discretize import discretize_with_delay, DelayedDiscreteModel
from repro.control.lqr import ControllerGains, LqrWeights, design_lqr
from repro.control.controller import LaneKeepingController, ControlState
from repro.control.gains import GainScheduler
from repro.control.switching import find_cqlf, verify_cqlf
from repro.control.lqg import KalmanLaneEstimator, design_kalman_gain

__all__ = [
    "lateral_model",
    "LateralModel",
    "discretize_with_delay",
    "DelayedDiscreteModel",
    "ControllerGains",
    "LqrWeights",
    "design_lqr",
    "LaneKeepingController",
    "ControlState",
    "GainScheduler",
    "find_cqlf",
    "verify_cqlf",
    "KalmanLaneEstimator",
    "design_kalman_gain",
]
