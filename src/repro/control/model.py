"""Continuous-time vision-based lateral control model.

The model follows Kosecka et al. [13] (the paper's control reference):
the dynamic bicycle model augmented with the look-ahead measurement
states the camera provides.

State vector ``x = [v_y, r, y_L, eps_L, delta]``:

- ``v_y``   — body-frame lateral velocity (m/s),
- ``r``     — yaw rate (rad/s),
- ``y_L``   — lateral deviation from the lane center at the look-ahead
              distance LL (m); the paper's control input,
- ``eps_L`` — heading error w.r.t. the road (rad),
- ``delta`` — actual front steering angle (rad): the steering actuator
              is a first-order lag [18], and at the paper's slower
              sampling periods (h = 35-45 ms) neglecting it costs the
              phase margin, so it belongs in the design model.

Input ``u = delta_cmd`` (commanded steering angle); disturbance
``w = kappa`` (road curvature at the look-ahead).

Dynamics::

    v_y'   = a11 v_y + a12 r + b1 delta
    r'     = a21 v_y + a22 r + b2 delta
    y_L'   = v_y + LL r + v eps_L - LL v kappa
    eps_L' = r - v kappa
    delta' = (u - delta) / T_s

with the usual linear-tire coefficients (see :func:`lateral_model`).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.sim.vehicle import VehicleParams
from repro.utils.validation import check_positive

__all__ = ["LateralModel", "lateral_model"]


@dataclass(frozen=True)
class LateralModel:
    """Continuous-time LTI lateral model at one operating speed.

    Attributes
    ----------
    a, b, e:
        State, input and disturbance matrices (``x' = a x + b u + e w``).
    speed:
        Longitudinal speed the model is linearized at (m/s).
    lookahead:
        Look-ahead distance LL (m).
    """

    a: np.ndarray
    b: np.ndarray
    e: np.ndarray
    speed: float
    lookahead: float

    @property
    def n_states(self) -> int:
        """Number of continuous model states."""
        return self.a.shape[0]

    def steady_state_gain(self) -> float:
        """DC gain from steering to y_L (diagnostic)."""
        a_inv = np.linalg.inv(self.a + 1e-9 * np.eye(self.n_states))
        return float((-a_inv @ self.b)[2, 0])


def lateral_model(
    params: VehicleParams, speed: float, lookahead: float = 5.5
) -> LateralModel:
    """Build the 4-state lateral model for a given speed and look-ahead.

    Parameters
    ----------
    params:
        Physical vehicle parameters (shared with the simulation model,
        so the control design matches the plant by construction).
    speed:
        Longitudinal speed ``v`` in m/s (> 0).
    lookahead:
        Look-ahead distance LL in metres (paper: 5.5 m).
    """
    check_positive("speed", speed)
    check_positive("lookahead", lookahead)
    v = speed
    cf, cr = params.cornering_front, params.cornering_rear
    lf, lr = params.dist_front, params.dist_rear
    m, iz = params.mass, params.inertia_z
    ll = lookahead

    a11 = -(cf + cr) / (m * v)
    a12 = (cr * lr - cf * lf) / (m * v) - v
    a21 = (cr * lr - cf * lf) / (iz * v)
    a22 = -(cf * lf**2 + cr * lr**2) / (iz * v)
    lag = params.steer_lag

    a = np.array(
        [
            [a11, a12, 0.0, 0.0, cf / m],
            [a21, a22, 0.0, 0.0, cf * lf / iz],
            [1.0, ll, 0.0, v, 0.0],
            [0.0, 1.0, 0.0, 0.0, 0.0],
            [0.0, 0.0, 0.0, 0.0, -1.0 / lag],
        ]
    )
    b = np.array([[0.0], [0.0], [0.0], [0.0], [1.0 / lag]])
    e = np.array([[0.0], [0.0], [-ll * v], [-v], [0.0]])
    return LateralModel(a=a, b=b, e=e, speed=v, lookahead=ll)


def understeer_feedforward(params: VehicleParams, speed: float) -> float:
    """Steady-state steering per unit curvature: ``delta_ff = K * kappa``.

    The classic kinematic-plus-understeer-gradient feed-forward
    ``delta = kappa (L + K_us v^2)`` used by production LKAS stacks; the
    runtime controller multiplies it by the perception pipeline's
    curvature estimate.
    """
    check_positive("speed", speed)
    wheelbase = params.wheelbase
    k_us = (
        params.mass
        * (params.cornering_rear * params.dist_rear - params.cornering_front * params.dist_front)
        / (params.cornering_front * params.cornering_rear * wheelbase)
    )
    return wheelbase + k_us * speed**2
