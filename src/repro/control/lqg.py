"""LQG extension: Kalman filtering of the noisy look-ahead measurement.

The paper flags (Sec. IV-C) that the extra sensor noise of left-turn
dotted-lane situations could be absorbed by "modeling the sensor noise
in a linear-quadratic gaussian (LQG) controller, which is an
interesting future research direction."  This module implements that
extension: a steady-state Kalman filter on the delay-augmented lateral
model whose measurement channel is the perception output
``[y_L, eps_L]`` (plus exact inertial feedback for ``v_y`` and ``r``).

It is exercised by the ablation benchmarks; the paper's own evaluation
(cases 1-4) does not use it.
"""

from __future__ import annotations


import numpy as np
from scipy.linalg import solve_discrete_are

from repro.control.lqr import ControllerGains
from repro.perception.pipeline import PerceptionResult

__all__ = ["design_kalman_gain", "KalmanLaneEstimator"]

#: Measurement matrix: perception observes y_L and eps_L of the
#: augmented state [v_y, r, y_L, eps_L, delta, u_prev].
_C = np.array(
    [
        [0.0, 0.0, 1.0, 0.0, 0.0, 0.0],
        [0.0, 0.0, 0.0, 1.0, 0.0, 0.0],
    ]
)


def design_kalman_gain(
    gains: ControllerGains,
    process_noise: float = 1e-4,
    measurement_noise: float = 4e-3,
) -> np.ndarray:
    """Steady-state Kalman gain for the delay-augmented model.

    Parameters
    ----------
    gains:
        The LQR design whose discrete model is being filtered.
    process_noise:
        Scalar intensity of the (identity-shaped) process noise.
    measurement_noise:
        Variance of the perception measurement noise on y_L (m^2); the
        eps_L channel is scaled down by the look-ahead distance.
    """
    a = gains.discrete.a_aug
    q = process_noise * np.eye(a.shape[0])
    ll = gains.model.lookahead
    r = np.diag([measurement_noise, measurement_noise / ll**2])
    p = solve_discrete_are(a.T, _C.T, q, r)
    s = _C @ p @ _C.T + r
    return p @ _C.T @ np.linalg.inv(s)


class KalmanLaneEstimator:
    """Predict/update filter over the delay-augmented lateral state."""

    def __init__(self, gains: ControllerGains, kalman_gain: np.ndarray):
        self.gains = gains
        self.l = kalman_gain
        self.x_hat = np.zeros(gains.discrete.n_aug)

    def reset(self) -> None:
        """Zero the state estimate."""
        self.x_hat = np.zeros_like(self.x_hat)

    def set_gains(self, gains: ControllerGains, kalman_gain: np.ndarray) -> None:
        """Swap the model/filter gains on a situation switch, keeping
        the state estimate (the physical state does not jump)."""
        self.gains = gains
        self.l = kalman_gain

    def predict(self, u: float) -> np.ndarray:
        """Time update through the augmented model with input *u*."""
        d = self.gains.discrete
        self.x_hat = d.a_aug @ self.x_hat + d.b_aug[:, 0] * u
        return self.x_hat

    def update(self, measurement: PerceptionResult) -> np.ndarray:
        """Measurement update; invalid frames skip the correction."""
        if measurement.valid:
            y = np.array([measurement.y_l, measurement.epsilon_l])
            innovation = y - _C @ self.x_hat
            self.x_hat = self.x_hat + self.l @ innovation
        return self.x_hat

    def filtered_measurement(self, curvature: float = 0.0) -> PerceptionResult:
        """The current estimate packaged as a perception result."""
        return PerceptionResult(
            y_l=float(self.x_hat[2]),
            epsilon_l=float(self.x_hat[3]),
            curvature=curvature,
            valid=True,
            lines_used=0,
            n_pixels=0,
        )
