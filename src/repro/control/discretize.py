"""ZOH discretization with a sensor-to-actuation input delay.

The paper annotates every control design with ``(h, tau)``: sampling
period and constant worst-case sensor-to-actuation delay, ``tau <= h``
after the ceiling rule of footnote 5.  With the delayed input the exact
discretization is::

    x[k+1] = Ad x[k] + B1 u[k-1] + B0 u[k]

    Ad = e^{A h}
    B1 = (integral_{h-tau}^{h} e^{A s} ds) B      (old input active)
    B0 = (integral_0^{h-tau}  e^{A s} ds) B       (new input active)

Augmenting the state with the previous input ``z = [x; u_prev]`` gives a
standard LTI system on which the LQR is designed [15], [16].
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy.linalg import expm

from repro.control.model import LateralModel

__all__ = ["DelayedDiscreteModel", "discretize_with_delay"]


@dataclass(frozen=True)
class DelayedDiscreteModel:
    """Exact discrete model of a delayed ZOH loop and its augmentation.

    ``a_aug`` / ``b_aug`` describe the delay-augmented system
    ``z = [x; u_prev]``; ``e_d`` is the discretized (constant-over-h)
    curvature disturbance column for steady-state analysis.
    """

    a_d: np.ndarray
    b_0: np.ndarray
    b_1: np.ndarray
    e_d: np.ndarray
    a_aug: np.ndarray
    b_aug: np.ndarray
    period: float
    delay: float

    @property
    def n_aug(self) -> int:
        """Dimension of the delay-augmented state."""
        return self.a_aug.shape[0]


def _phi_gamma(a: np.ndarray, b: np.ndarray, t: float):
    """Return ``(e^{A t}, integral_0^t e^{A s} ds B)`` via block expm."""
    n = a.shape[0]
    m = b.shape[1]
    block = np.zeros((n + m, n + m))
    block[:n, :n] = a
    block[:n, n:] = b
    exp_block = expm(block * t)
    return exp_block[:n, :n], exp_block[:n, n:]


def discretize_with_delay(
    model: LateralModel, period: float, delay: float
) -> DelayedDiscreteModel:
    """Discretize a :class:`LateralModel` for a ``(h, tau)`` design point.

    Parameters
    ----------
    model:
        Continuous-time lateral model.
    period:
        Sampling period ``h`` in seconds (> 0).
    delay:
        Sensor-to-actuation delay ``tau`` in seconds, ``0 <= tau <= h``.
    """
    if period <= 0:
        raise ValueError(f"period must be > 0, got {period}")
    if not 0 <= delay <= period + 1e-12:
        raise ValueError(f"delay must satisfy 0 <= tau <= h, got tau={delay}, h={period}")
    delay = min(delay, period)

    a_d, gamma_h = _phi_gamma(model.a, model.b, period)
    _, gamma_h_minus_tau = _phi_gamma(model.a, model.b, period - delay)
    b_0 = gamma_h_minus_tau
    b_1 = gamma_h - gamma_h_minus_tau
    _, e_d = _phi_gamma(model.a, model.e, period)

    n = model.n_states
    a_aug = np.zeros((n + 1, n + 1))
    a_aug[:n, :n] = a_d
    a_aug[:n, n:] = b_1
    b_aug = np.zeros((n + 1, 1))
    b_aug[:n] = b_0
    b_aug[n, 0] = 1.0

    return DelayedDiscreteModel(
        a_d=a_d,
        b_0=b_0,
        b_1=b_1,
        e_d=e_d,
        a_aug=a_aug,
        b_aug=b_aug,
        period=period,
        delay=delay,
    )
