"""Common quadratic Lyapunov function (CQLF) search.

The paper (Sec. III-D) argues that switching between situation-specific
controller designs ``i`` with varying ``(h_i, tau_i)`` keeps the closed
loop stable because a CQLF exists for the set of closed-loop maps, per
[15], [16]: a single ``P > 0`` with

    A_i' P A_i - P < -eps I     for every mode i.

This module finds such a ``P`` by projected subgradient descent on the
worst-mode eigenvalue — adequate for the paper's handful of 5x5 modes
— and verifies candidates exactly.  ``find_cqlf`` returning ``None``
means the search failed, not that no CQLF exists; ``verify_cqlf``
passing is a proof.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

__all__ = ["find_cqlf", "verify_cqlf", "cqlf_margin"]


def cqlf_margin(p: np.ndarray, a_list: Sequence[np.ndarray]) -> float:
    """Worst-mode margin ``max_i lambda_max(A_i' P A_i - P)`` (< 0 is good)."""
    worst = -np.inf
    for a in a_list:
        m = a.T @ p @ a - p
        worst = max(worst, float(np.linalg.eigvalsh(m)[-1]))
    return worst


def verify_cqlf(
    p: np.ndarray, a_list: Sequence[np.ndarray], eps: float = 1e-9
) -> bool:
    """Exact check that *p* is a CQLF for every mode in *a_list*."""
    if p.shape[0] != p.shape[1]:
        return False
    if not np.allclose(p, p.T, atol=1e-10):
        return False
    if float(np.linalg.eigvalsh(p)[0]) <= eps:
        return False
    return cqlf_margin(p, a_list) < -eps


def _project_psd(p: np.ndarray, floor: float) -> np.ndarray:
    """Project a symmetric matrix onto ``{P : P >= floor I}``."""
    sym = 0.5 * (p + p.T)
    eigvals, eigvecs = np.linalg.eigh(sym)
    eigvals = np.maximum(eigvals, floor)
    return eigvecs @ np.diag(eigvals) @ eigvecs.T


def find_cqlf(
    a_list: Sequence[np.ndarray],
    eps: float = 1e-6,
    max_iter: int = 4000,
    step: float = 0.5,
    floor: float = 1e-3,
) -> Optional[np.ndarray]:
    """Search for a CQLF of the closed-loop mode set.

    Parameters
    ----------
    a_list:
        Closed-loop (Schur-stable) matrices, all the same size.
    eps:
        Required decay margin.
    max_iter, step:
        Subgradient-descent budget and initial step size.
    floor:
        Minimum eigenvalue enforced on the candidate ``P``.

    Returns
    -------
    A verified ``P`` (normalized to unit spectral norm scale), or
    ``None`` when the search does not converge.
    """
    a_list = [np.asarray(a, dtype=float) for a in a_list]
    if not a_list:
        raise ValueError("a_list must contain at least one mode")
    n = a_list[0].shape[0]
    for a in a_list:
        if a.shape != (n, n):
            raise ValueError("all modes must share the same square shape")

    # Warm start: average of the per-mode Lyapunov solutions.
    p = np.zeros((n, n))
    for a in a_list:
        p += _dlyap(a, np.eye(n))
    p /= len(a_list)
    p = _project_psd(p, floor)

    for iteration in range(max_iter):
        # Worst mode and its top eigenpair give the subgradient of
        # lambda_max(A' P A - P) with respect to P: A v v' A' - v v'.
        worst_val = -np.inf
        grad = None
        for a in a_list:
            m = a.T @ p @ a - p
            eigvals, eigvecs = np.linalg.eigh(m)
            if eigvals[-1] > worst_val:
                worst_val = float(eigvals[-1])
                v = eigvecs[:, -1:]
                av = a @ v
                grad = av @ av.T - v @ v.T
        if worst_val < -eps:
            return p / max(float(np.linalg.eigvalsh(p)[-1]), 1e-12)
        assert grad is not None
        lr = step / (1.0 + 0.01 * iteration)
        p = _project_psd(p - lr * grad, floor)
    if verify_cqlf(p, a_list, eps):
        return p
    return None


def _dlyap(a: np.ndarray, q: np.ndarray) -> np.ndarray:
    """Solve the discrete Lyapunov equation ``A' P A - P = -Q``."""
    from scipy.linalg import solve_discrete_lyapunov

    return solve_discrete_lyapunov(a.T, q)
