"""Perception evaluation harness.

Evaluates a detector over sequences of rendered frames along realistic
trajectories (smooth lateral offset / heading-error excursions around
the lane center) and reports detection-accuracy statistics.  This is
the machinery behind the Fig. 1 accuracy axis, and the development tool
used to calibrate the sensing stack: closed-loop stability problems
almost always show up here first as heavy error tails.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional

import numpy as np

from repro.core.situation import Situation
from repro.isp.pipeline import IspPipeline
from repro.metrics.accuracy import DetectionSample
from repro.perception.pipeline import (
    PerceptionPipeline,
    PerceptionResult,
    process_batch,
)
from repro.sim.camera import CameraModel
from repro.sim.geometry import Pose2D
from repro.sim.renderer import RoadSceneRenderer
from repro.sim.track import Track
from repro.sim.world import static_situation_track
from repro.utils.rng import derive_rng

__all__ = [
    "SequenceStats",
    "evaluate_sequence",
    "evaluate_sequence_batch",
    "trajectory_poses",
]


@dataclass
class SequenceStats:
    """Error statistics of one evaluated frame sequence."""

    samples: List[DetectionSample]
    errors: np.ndarray
    n_invalid: int

    @property
    def n_frames(self) -> int:
        """Number of evaluated frames."""
        return len(self.samples)

    @property
    def mean_abs_error(self) -> float:
        """Mean |y_L error| over valid frames."""
        return float(self.errors.mean()) if self.errors.size else float("nan")

    @property
    def p95_abs_error(self) -> float:
        """95th percentile of |y_L error| over valid frames."""
        return float(np.quantile(self.errors, 0.95)) if self.errors.size else float("nan")

    @property
    def max_abs_error(self) -> float:
        """Largest |y_L error| over valid frames."""
        return float(self.errors.max()) if self.errors.size else float("nan")

    def bad_frame_rate(self, threshold: float = 0.3) -> float:
        """Fraction of frames invalid or with |error| above *threshold*."""
        bad = self.n_invalid + int((self.errors > threshold).sum())
        return bad / max(self.n_frames, 1)

    def accuracy(self, tolerance: float = 0.3) -> float:
        """Fig. 1 style detection accuracy."""
        return 1.0 - self.bad_frame_rate(tolerance)


def trajectory_poses(
    track: Track,
    n_frames: int,
    seed: int,
    s_start: float = 15.0,
    spacing_m: float = 0.35,
    offset_amplitude: float = 0.25,
) -> List[Pose2D]:
    """Poses along the lane with smooth pseudo-random excursions.

    The lateral offset and heading error follow slow sinusoids with
    randomized phases — the closed loop visits exactly this kind of
    neighbourhood of the lane center, so sequential evaluation with
    temporal tracking behaves like the real loop.
    """
    rng = derive_rng(seed, "trajectory")
    phase_d = rng.uniform(0, 2 * np.pi)
    phase_p = rng.uniform(0, 2 * np.pi)
    wavelength = rng.uniform(40.0, 80.0)
    poses = []
    for i in range(n_frames):
        s = s_start + i * spacing_m
        d = offset_amplitude * np.sin(2 * np.pi * s / wavelength + phase_d)
        psi = (
            offset_amplitude
            * (2 * np.pi / wavelength)
            * np.cos(2 * np.pi * s / wavelength + phase_p)
        )
        center = track.pose_at(s, float(d))
        poses.append(Pose2D(center.x, center.y, center.heading + float(psi)))
    return poses


def evaluate_sequence(
    situation: Situation,
    isp: str,
    roi: str,
    n_frames: int = 120,
    seed: int = 0,
    camera: Optional[CameraModel] = None,
    temporal_tracking: bool = True,
    lookahead: float = 5.5,
    track_length: float = 250.0,
    detector: Optional[Callable[[np.ndarray], PerceptionResult]] = None,
) -> SequenceStats:
    """Render a frame sequence for one situation and measure errors.

    Parameters
    ----------
    situation, isp, roi:
        The sensing configuration under evaluation.
    detector:
        Optional replacement for the sliding-window pipeline (e.g. the
        dense baseline); receives the ISP output frame.
    """
    camera = camera or CameraModel(width=384, height=192)
    track = static_situation_track(situation, length=track_length)
    track_length = track.length  # curved tracks may be capped
    renderer = RoadSceneRenderer(camera, track, seed=seed)
    isp_pipeline = IspPipeline(isp)
    pipeline = None
    if detector is None:
        pipeline = PerceptionPipeline(
            camera, roi, lookahead=lookahead, temporal_tracking=temporal_tracking
        )
        detector = pipeline.process

    spacing = (track_length - 40.0) / n_frames
    poses = trajectory_poses(track, n_frames, seed, spacing_m=spacing)
    samples: List[DetectionSample] = []
    errors: List[float] = []
    n_invalid = 0
    for pose in poses:
        raw = renderer.render_raw(pose, situation.scene)
        rgb = isp_pipeline.process(raw)
        result = detector(rgb)
        look = pose.position() + lookahead * pose.forward()
        _, y_true = track.frenet(look[0], look[1])
        samples.append(
            DetectionSample(
                measured_y_l=result.y_l, true_y_l=float(y_true), valid=result.valid
            )
        )
        if result.valid:
            errors.append(abs(result.y_l - float(y_true)))
        else:
            n_invalid += 1
    return SequenceStats(
        samples=samples, errors=np.asarray(errors), n_invalid=n_invalid
    )


def evaluate_sequence_batch(
    situation: Situation,
    isps: List[str],
    roi: str,
    n_frames: int = 120,
    seed: int = 0,
    camera: Optional[CameraModel] = None,
    temporal_tracking: bool = True,
    lookahead: float = 5.5,
    track_length: float = 250.0,
) -> List[SequenceStats]:
    """Evaluate several ISP configurations over one shared sequence.

    Every lane of a serial prescreen sweep renders the *same* frames:
    the renderer is seeded identically and walks the identical pose
    trajectory, so the raw sensor planes match bit for bit across
    lanes.  This batched variant therefore renders each frame once and
    shares it, runs each lane's own ISP on it, and pushes all lanes'
    frames through one batched BEV warp + threshold
    (:func:`repro.perception.pipeline.process_batch`).  Lane *i* of the
    result is bitwise equal to ``evaluate_sequence(situation, isps[i],
    roi, ...)`` with the same arguments.
    """
    camera = camera or CameraModel(width=384, height=192)
    track = static_situation_track(situation, length=track_length)
    track_length = track.length  # curved tracks may be capped
    renderer = RoadSceneRenderer(camera, track, seed=seed)
    isp_pipelines = [IspPipeline(isp) for isp in isps]
    pipelines = [
        PerceptionPipeline(
            camera, roi, lookahead=lookahead, temporal_tracking=temporal_tracking
        )
        for _ in isps
    ]

    spacing = (track_length - 40.0) / n_frames
    poses = trajectory_poses(track, n_frames, seed, spacing_m=spacing)
    samples: List[List[DetectionSample]] = [[] for _ in isps]
    errors: List[List[float]] = [[] for _ in isps]
    n_invalid = [0] * len(isps)
    for pose in poses:
        raw = renderer.render_raw(pose, situation.scene)
        rgbs = [pipeline.process(raw) for pipeline in isp_pipelines]
        results = process_batch(pipelines, rgbs)
        look = pose.position() + lookahead * pose.forward()
        _, y_true = track.frenet(look[0], look[1])
        for lane, result in enumerate(results):
            samples[lane].append(
                DetectionSample(
                    measured_y_l=result.y_l,
                    true_y_l=float(y_true),
                    valid=result.valid,
                )
            )
            if result.valid:
                errors[lane].append(abs(result.y_l - float(y_true)))
            else:
                n_invalid[lane] += 1
    return [
        SequenceStats(
            samples=samples[lane],
            errors=np.asarray(errors[lane]),
            n_invalid=n_invalid[lane],
        )
        for lane in range(len(isps))
    ]
