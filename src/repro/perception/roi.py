"""Region-of-interest presets (paper Table II, PR knobs ROI 1-5).

The paper's ROIs are trapezoids in the 512x256 camera frame; their
*function* is to keep the bird's-eye view looking at the road as it
turns: ROI 1 looks straight ahead, ROIs 2/3 follow a right turn, ROIs
4/5 a left turn, and the odd member of each pair (3, 5) is widened for
dotted lanes whose sparse dashes otherwise leave the view.

This reproduction expresses the same knob in ground-plane terms: a
*nominal curvature* that bends the sampled ground window along the
expected road, and a *lateral half-width*.  The equivalent image-space
trapezoid (for Table II style reporting) is recovered by projecting the
window's corners through the camera model; the paper's original pixel
coordinates are kept as metadata in ``paper_trapezoid``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

import numpy as np

from repro.sim.camera import CameraModel

__all__ = ["RoiPreset", "ROI_PRESETS", "roi_preset"]

#: Nominal turn radius matching the track geometry (see repro.sim.world).
_NOMINAL_TURN_RADIUS = 50.0


@dataclass(frozen=True)
class RoiPreset:
    """Ground-window form of one PR ROI knob.

    Attributes
    ----------
    name:
        Table II name, e.g. ``"ROI 1"``.
    curvature:
        Nominal road curvature the window bends along (1/m; +left).
    half_width:
        Lateral half extent of the window around the bent centerline (m).
    x_near, x_far:
        Longitudinal ground range of the window (m ahead of the camera).
    paper_trapezoid:
        The paper's original pixel-trapezoid corner list for 512x256
        frames, kept for the Table II experiment output.
    """

    name: str
    curvature: float
    half_width: float
    x_near: float = 7.0
    x_far: float = 20.0
    paper_trapezoid: Tuple[Tuple[int, int], ...] = ()

    def __post_init__(self):
        if self.half_width <= 0:
            raise ValueError(f"{self.name}: half_width must be > 0")
        if not 0 < self.x_near < self.x_far:
            raise ValueError(f"{self.name}: need 0 < x_near < x_far")

    def center_offset(self, x: np.ndarray) -> np.ndarray:
        """Lateral offset of the bent window centerline at distance *x*."""
        return 0.5 * self.curvature * np.square(x)

    def image_trapezoid(self, camera: CameraModel) -> np.ndarray:
        """Project the ground window's corners into pixel coordinates.

        Returns a ``(4, 2)`` array of ``(u, v)`` corners in the order
        near-left, near-right, far-left, far-right (mirroring how the
        paper lists trapezoid corners in Table II).
        """
        xs = np.array([self.x_near, self.x_near, self.x_far, self.x_far])
        sides = np.array([self.half_width, -self.half_width,
                          self.half_width, -self.half_width])
        ys = self.center_offset(xs) + sides
        u, v = camera.project(xs, ys)
        return np.stack([u, v], axis=-1)

    def to_config(self) -> Dict[str, float]:
        """JSON-friendly form for hashing/caching."""
        return {
            "name": self.name,
            "curvature": self.curvature,
            "half_width": self.half_width,
            "x_near": self.x_near,
            "x_far": self.x_far,
        }


ROI_PRESETS: Dict[str, RoiPreset] = {
    preset.name: preset
    for preset in (
        RoiPreset(
            "ROI 1",
            curvature=0.0,
            half_width=2.4,
            paper_trapezoid=((60, 0), (300, 0), (160, 65), (280, 65)),
        ),
        RoiPreset(
            "ROI 2",
            curvature=-1.0 / _NOMINAL_TURN_RADIUS,
            half_width=2.4,
            x_near=6.0,
            x_far=14.0,
            paper_trapezoid=((208, 0), (469, 0), (308, 72), (439, 72)),
        ),
        RoiPreset(
            "ROI 3",
            curvature=-1.0 / _NOMINAL_TURN_RADIUS,
            half_width=3.4,
            x_near=5.5,
            x_far=16.5,
            paper_trapezoid=((188, 0), (469, 0), (298, 72), (429, 72)),
        ),
        RoiPreset(
            "ROI 4",
            curvature=1.0 / _NOMINAL_TURN_RADIUS,
            half_width=2.4,
            x_near=6.0,
            x_far=14.0,
            paper_trapezoid=((69, 0), (333, 0), (117, 72), (221, 72)),
        ),
        RoiPreset(
            "ROI 5",
            curvature=1.0 / _NOMINAL_TURN_RADIUS,
            half_width=3.4,
            x_near=5.5,
            x_far=16.5,
            paper_trapezoid=((49, 0), (312, 0), (109, 72), (222, 72)),
        ),
    )
}


def roi_preset(name: str) -> RoiPreset:
    """Look up an ROI preset by Table II name (``"ROI 1"`` .. ``"ROI 5"``)."""
    try:
        return ROI_PRESETS[name]
    except KeyError as exc:
        raise ValueError(
            f"unknown ROI preset {name!r}; expected one of {sorted(ROI_PRESETS)}"
        ) from exc
