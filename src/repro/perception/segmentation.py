"""Dense per-row lane detector — the CNN-segmentation stand-in of Fig. 1.

VPGNet / LaneNet in the paper are end-to-end networks that segment lane
pixels densely and are therefore robust to road layout and lane type,
at the price of a runtime far beyond real-time on the Xavier.  This
module plays that role with a classical dense algorithm that shares the
same properties:

- it scans a *wide, un-rectified* bird's-eye window (no ROI knob to
  mis-set), finds marking candidates independently per BEV row (runs of
  above-threshold pixels), and
- tracks candidate chains across rows with a curvature-tolerant
  association gate, so turns and dotted lanes survive without any
  situational tuning.

Robustness comes from doing ~row-count times more work than the
sliding-window pipeline; its Xavier-equivalent runtime in the platform
model is taken from the paper's Fig. 1 operating points (~250 ms class).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from repro.perception.bev import BevGrid
from repro.perception.lane_fit import LaneFit, fit_line_poly
from repro.perception.pipeline import LOOKAHEAD_DISTANCE, PerceptionResult
from repro.perception.roi import RoiPreset
from repro.perception.threshold import ThresholdParams, dynamic_threshold
from repro.sim.camera import CameraModel

__all__ = ["DenseLaneDetector"]

#: Wide ground window used by the dense detector (not a Table II knob).
_DENSE_WINDOW = RoiPreset("DENSE", curvature=0.0, half_width=4.5, x_near=4.0, x_far=24.0)


@dataclass
class _Chain:
    """A chain of per-row candidates being tracked across the BEV."""

    rows: List[int]
    lats: List[float]
    last_lat: float
    last_row: int


class DenseLaneDetector:
    """Robust-but-heavy lane detector (VPGNet/LaneNet accuracy proxy)."""

    #: Xavier-equivalent runtime used by the platform model for Fig. 1.
    xavier_runtime_ms = 250.0

    def __init__(
        self,
        camera: CameraModel,
        lookahead: float = LOOKAHEAD_DISTANCE,
        threshold_params: ThresholdParams = ThresholdParams(),
        n_rows: int = 108,
        n_cols: int = 240,
        max_drift_per_row: float = 0.35,
        min_chain_points: int = 8,
        lane_width: float = 3.25,
    ):
        self.camera = camera
        self.lookahead = lookahead
        self.threshold_params = threshold_params
        self.lane_width = lane_width
        self.max_drift_per_row = max_drift_per_row
        self.min_chain_points = min_chain_points
        self.grid = BevGrid(camera, _DENSE_WINDOW, n_rows=n_rows, n_cols=n_cols)

    def process(self, frame_rgb: np.ndarray) -> PerceptionResult:
        """Measure lateral deviation from one RGB frame."""
        bev = self.grid.warp(frame_rgb)
        mask = dynamic_threshold(bev, self.threshold_params, valid=self.grid.inside)
        chains = self._track_chains(mask)
        left, right = self._assign_lines(chains)
        return self._measure(left, right)

    # ------------------------------------------------------------------

    def _row_candidates(self, row: np.ndarray) -> np.ndarray:
        """Centers (column indices) of connected runs in one mask row."""
        padded = np.concatenate([[0], row.view(np.int8), [0]])
        edges = np.diff(padded)
        starts = np.nonzero(edges == 1)[0]
        ends = np.nonzero(edges == -1)[0]
        if starts.size == 0:
            return np.empty(0)
        return (starts + ends - 1) / 2.0

    def _track_chains(self, mask: np.ndarray) -> List[_Chain]:
        """Associate per-row candidates into lateral-continuous chains."""
        res = self.grid.lateral_resolution
        chains: List[_Chain] = []
        for row_idx in range(mask.shape[0]):
            candidates = self._row_candidates(mask[row_idx])
            if candidates.size == 0:
                continue
            lats = self.grid.lat_axis[0] + candidates * res
            for lat in lats:
                best: Optional[_Chain] = None
                best_gap = np.inf
                for chain in chains:
                    rows_skipped = row_idx - chain.last_row
                    if rows_skipped <= 0:
                        continue
                    gate = self.max_drift_per_row * rows_skipped
                    gap = abs(lat - chain.last_lat)
                    if gap <= gate and gap < best_gap:
                        best = chain
                        best_gap = gap
                if best is None:
                    chains.append(_Chain([row_idx], [float(lat)], float(lat), row_idx))
                else:
                    best.rows.append(row_idx)
                    best.lats.append(float(lat))
                    best.last_lat = float(lat)
                    best.last_row = row_idx
        return [c for c in chains if len(c.rows) >= self.min_chain_points]

    def _assign_lines(
        self, chains: List[_Chain]
    ) -> Tuple[Optional[_Chain], Optional[_Chain]]:
        """Pick the chains closest to the expected left/right markings."""
        left: Optional[_Chain] = None
        right: Optional[_Chain] = None
        best_left = np.inf
        best_right = np.inf
        half = self.lane_width / 2.0
        for chain in chains:
            base_lat = chain.lats[0]
            gap_left = abs(base_lat - half)
            gap_right = abs(base_lat + half)
            if gap_left < gap_right and gap_left < best_left and gap_left < half:
                left, best_left = chain, gap_left
            elif gap_right <= gap_left and gap_right < best_right and gap_right < half:
                right, best_right = chain, gap_right
        return left, right

    def _measure(
        self, left: Optional[_Chain], right: Optional[_Chain]
    ) -> PerceptionResult:
        def poly_of(chain: Optional[_Chain]) -> Optional[np.ndarray]:
            if chain is None:
                return None
            x = self.grid.x_axis[np.asarray(chain.rows)]
            return fit_line_poly(x, np.asarray(chain.lats))

        left_poly = poly_of(left)
        right_poly = poly_of(right)
        if left_poly is not None and right_poly is not None:
            center = (left_poly + right_poly) / 2.0
        elif left_poly is not None:
            center = left_poly - np.array([0.0, 0.0, self.lane_width / 2.0])
        elif right_poly is not None:
            center = right_poly + np.array([0.0, 0.0, self.lane_width / 2.0])
        else:
            return PerceptionResult.invalid()

        fit = LaneFit(
            left_poly=left_poly,
            right_poly=right_poly,
            center_poly=center,
            n_left=0 if left is None else len(left.rows),
            n_right=0 if right is None else len(right.rows),
        )
        ll = self.lookahead
        return PerceptionResult(
            y_l=-fit.center_lateral(ll),
            epsilon_l=-fit.center_slope(ll),
            curvature=fit.center_curvature(),
            valid=True,
            lines_used=fit.lines_used,
            n_pixels=fit.n_left + fit.n_right,
        )
