"""Perspective transform: camera frame -> bird's-eye view (BEV).

A :class:`BevGrid` resamples the camera image onto a regular grid on
the ground plane.  The grid is *curvature rectified*: each row (one
longitudinal distance ``x``) is laterally centred on the ROI preset's
bent centerline, so when the preset's nominal curvature matches the
road, lane markings appear as near-vertical stripes — which is what the
sliding-window search expects.  A mismatched ROI (e.g. ROI 1 in a right
turn) makes markings drift sideways and leave the window, reproducing
the paper's robustness failures.

Because the camera mounting and the preset are fixed, the bilinear
sample coordinates are precomputed once; the per-frame cost is a single
gather + blend.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.perception.roi import RoiPreset
from repro.sim.camera import CameraModel

__all__ = ["BevGrid"]


class BevGrid:
    """Precomputed ground-plane resampler for one camera + ROI preset.

    Parameters
    ----------
    camera:
        The camera model (must match the frames passed to :meth:`warp`).
    roi:
        ROI preset defining the ground window.
    n_rows:
        Longitudinal resolution (row 0 = nearest distance).
    n_cols:
        Lateral resolution.
    """

    def __init__(
        self,
        camera: CameraModel,
        roi: RoiPreset,
        n_rows: int = 96,
        n_cols: int = 128,
    ):
        if n_rows < 8 or n_cols < 8:
            raise ValueError("BEV grid must be at least 8x8")
        self.camera = camera
        self.roi = roi
        self.n_rows = n_rows
        self.n_cols = n_cols

        self.x_axis = np.linspace(roi.x_near, roi.x_far, n_rows).astype(np.float32)
        self.lat_axis = np.linspace(
            -roi.half_width, roi.half_width, n_cols
        ).astype(np.float32)

        x_grid = self.x_axis[:, None]
        center = roi.center_offset(x_grid)
        y_grid = center + self.lat_axis[None, :]

        u, v = camera.project(np.broadcast_to(x_grid, (n_rows, n_cols)), y_grid)
        u = np.asarray(u, dtype=np.float32)
        v = np.asarray(v, dtype=np.float32)
        inside = (
            (u >= 0) & (u <= camera.width - 1) & (v >= 0) & (v <= camera.height - 1)
        )
        u = np.clip(u, 0, camera.width - 1.001)
        v = np.clip(v, 0, camera.height - 1.001)

        u0 = np.floor(u).astype(np.int32)
        v0 = np.floor(v).astype(np.int32)
        self._inside = inside
        self._flat00 = (v0 * camera.width + u0).ravel()
        self._flat01 = (v0 * camera.width + u0 + 1).ravel()
        self._flat10 = ((v0 + 1) * camera.width + u0).ravel()
        self._flat11 = ((v0 + 1) * camera.width + u0 + 1).ravel()
        fu = (u - u0).ravel()[:, None]
        fv = (v - v0).ravel()[:, None]
        self._w00 = ((1 - fu) * (1 - fv)).astype(np.float32)
        self._w01 = (fu * (1 - fv)).astype(np.float32)
        self._w10 = ((1 - fu) * fv).astype(np.float32)
        self._w11 = (fu * fv).astype(np.float32)
        self._sparse = None  # csr gather operator, built on first warp_batch

    @property
    def inside(self) -> np.ndarray:
        """``(n_rows, n_cols)`` mask of cells whose ground point projects
        inside the camera frame (cells outside are zero after warping)."""
        return self._inside

    @property
    def lateral_resolution(self) -> float:
        """Metres per BEV column."""
        return float(self.lat_axis[1] - self.lat_axis[0])

    @property
    def longitudinal_resolution(self) -> float:
        """Metres per BEV row."""
        return float(self.x_axis[1] - self.x_axis[0])

    def warp(self, frame: np.ndarray) -> np.ndarray:
        """Resample *frame* onto the BEV grid with bilinear interpolation.

        Parameters
        ----------
        frame:
            ``(H, W)`` or ``(H, W, C)`` image matching the camera size.

        Returns
        -------
        ``(n_rows, n_cols)`` or ``(n_rows, n_cols, C)`` BEV image; cells
        whose ground point projects outside the frame are zero.
        """
        cam = self.camera
        if frame.shape[:2] != (cam.height, cam.width):
            raise ValueError(
                f"frame shape {frame.shape[:2]} does not match camera "
                f"({cam.height}, {cam.width})"
            )
        channels = 1 if frame.ndim == 2 else frame.shape[2]
        flat = frame.reshape(-1, channels).astype(np.float32, copy=False)
        out = (
            flat[self._flat00] * self._w00
            + flat[self._flat01] * self._w01
            + flat[self._flat10] * self._w10
            + flat[self._flat11] * self._w11
        )
        out = out.reshape(self.n_rows, self.n_cols, channels)
        out[~self._inside] = 0.0
        if frame.ndim == 2:
            return out[..., 0]
        return out

    def _sparse_operator(self):
        # One csr row per BEV cell holding its four bilinear taps in
        # (00, 01, 10, 11) column order; the taps of a cell are strictly
        # increasing flat indices, so csr's sequential accumulation
        # reproduces the exact left-associated sum of :meth:`warp`.
        if self._sparse is None:
            from scipy import sparse

            n_cells = self.n_rows * self.n_cols
            indptr = np.arange(0, 4 * n_cells + 1, 4, dtype=np.int32)
            cols = np.stack(
                [self._flat00, self._flat01, self._flat10, self._flat11],
                axis=1,
            ).ravel()
            data = np.stack(
                [
                    self._w00[:, 0],
                    self._w01[:, 0],
                    self._w10[:, 0],
                    self._w11[:, 0],
                ],
                axis=1,
            ).ravel()
            hw = self.camera.height * self.camera.width
            self._sparse = sparse.csr_matrix(
                (data, cols, indptr), shape=(n_cells, hw)
            )
        return self._sparse

    def warp_batch(self, frames: np.ndarray) -> np.ndarray:
        """Resample stacked frames ``(B, H, W[, C])`` in one gather+blend.

        The blend runs as a single sparse matmul whose per-cell
        accumulation order matches :meth:`warp`, so every lane's BEV
        equals :meth:`warp` of that lane bit for bit.
        """
        cam = self.camera
        if frames.shape[1:3] != (cam.height, cam.width):
            raise ValueError(
                f"frame shape {frames.shape[1:3]} does not match camera "
                f"({cam.height}, {cam.width})"
            )
        batch = frames.shape[0]
        channels = 1 if frames.ndim == 3 else frames.shape[3]
        hw = cam.height * cam.width
        flat = frames.reshape(batch, hw, channels).astype(np.float32, copy=False)
        stacked = flat.transpose(1, 0, 2).reshape(hw, batch * channels)
        out = self._sparse_operator() @ stacked
        out = (
            out.reshape(self.n_rows, self.n_cols, batch, channels)
            .transpose(2, 0, 1, 3)
            .copy()
        )
        out[:, ~self._inside] = 0.0
        if frames.ndim == 3:
            return out[..., 0]
        return out

    def vehicle_lateral(self, rows: np.ndarray, cols: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        """Map BEV ``(row, col)`` indices back to vehicle-frame ``(x, y)``.

        ``y`` includes the ROI's curvature rectification offset, i.e. it
        is the true lateral coordinate in the vehicle frame.
        """
        x = self.x_axis[np.asarray(rows, dtype=int)]
        lat = self.lat_axis[np.asarray(cols, dtype=int)]
        return x, self.roi.center_offset(x) + lat
