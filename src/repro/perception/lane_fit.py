"""Second-order polynomial lane fitting (paper Fig. 3b, last stage).

Fits ``lateral(x) = a x^2 + b x + c`` (metres, in the ROI-rectified
frame) to the pixels of each detected lane line, then derives the lane
*center* polynomial.  With only one line visible, the center is the
line shifted by half a lane width — the standard single-line fallback.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.perception.sliding_window import LanePixels

__all__ = ["LaneFit", "fit_line_poly", "fit_lane_lines"]

#: Minimum pixels for any fit, and minimum longitudinal span (metres)
#: before a quadratic is attempted (shorter spans fit a line).
_MIN_PIXELS = 10
_MIN_QUADRATIC_SPAN = 6.0
#: Ridge penalty (per pixel) on the quadratic coefficient.  The fit is
#: performed in the ROI-rectified frame where the expected residual
#: curvature is ~0, so shrinking the quadratic term suppresses the
#: far-range smear wiggle without biasing true curvature (which the
#: rectification already carries).
_CURVATURE_RIDGE = 60.0
#: Distance-weight scale: pixels at x are weighted 1/(1 + (x/scale)^2),
#: reflecting the camera's quadratically-coarsening ground resolution.
_WEIGHT_SCALE = 8.0


@dataclass
class LaneFit:
    """Result of lane-line fitting, all in ROI-rectified metres.

    ``center_poly`` has highest-order coefficient first (numpy
    convention): ``lateral(x) = p[0] x^2 + p[1] x + p[2]``.
    """

    left_poly: Optional[np.ndarray]
    right_poly: Optional[np.ndarray]
    center_poly: Optional[np.ndarray]
    n_left: int
    n_right: int

    @property
    def valid(self) -> bool:
        """Whether a lane-center polynomial exists."""
        return self.center_poly is not None

    @property
    def lines_used(self) -> int:
        """How many lane lines contributed to the fit (0-2)."""
        return int(self.left_poly is not None) + int(self.right_poly is not None)

    def center_lateral(self, x: float) -> float:
        """Rectified lateral coordinate of the lane center at distance x."""
        if self.center_poly is None:
            raise ValueError("no valid lane fit")
        return float(np.polyval(self.center_poly, x))

    def center_slope(self, x: float) -> float:
        """d(lateral)/dx of the lane center at distance x."""
        if self.center_poly is None:
            raise ValueError("no valid lane fit")
        return float(np.polyval(np.polyder(self.center_poly), x))

    def center_curvature(self) -> float:
        """Second derivative (2a) of the lane-center polynomial."""
        if self.center_poly is None:
            raise ValueError("no valid lane fit")
        if len(self.center_poly) < 3:
            return 0.0
        return float(2.0 * self.center_poly[0])


def fit_line_poly(x: np.ndarray, lateral: np.ndarray) -> Optional[np.ndarray]:
    """Fit one lane line; returns quadratic coefficients or ``None``.

    The fit is a distance-weighted ridge regression: far pixels are
    weighted down (fewer ground centimetres per image pixel, noisier)
    and the quadratic coefficient is shrunk toward zero (see
    :data:`_CURVATURE_RIDGE`).  The fit falls back to a line when the
    longitudinal span is too short for a stable quadratic (sparse
    dashes near the window edge); too few pixels reject the fit.
    """
    if x.size < _MIN_PIXELS:
        return None
    weights = 1.0 / (1.0 + np.square(x / _WEIGHT_SCALE))
    span = float(x.max() - x.min())
    if span < _MIN_QUADRATIC_SPAN:
        design = np.stack([x, np.ones_like(x)], axis=1)
        penalty = np.zeros(2)
    else:
        design = np.stack([np.square(x), x, np.ones_like(x)], axis=1)
        penalty = np.array([_CURVATURE_RIDGE * x.size, 0.0, 0.0])
    weighted = design * weights[:, None]
    normal = weighted.T @ design + np.diag(penalty)
    rhs = weighted.T @ lateral
    try:
        coef = np.linalg.solve(normal, rhs)
    except np.linalg.LinAlgError:
        return None
    if coef.size == 2:
        coef = np.concatenate([[0.0], coef])
    return coef


def fit_lane_lines(
    pixels: LanePixels,
    x_of_row: np.ndarray,
    lat_of_col: np.ndarray,
    lane_width: float = 3.25,
    require_both_lines: bool = True,
) -> LaneFit:
    """Fit both lane lines and the lane center from captured pixels.

    Parameters
    ----------
    pixels:
        Sliding-window output.
    x_of_row, lat_of_col:
        BEV axis arrays mapping row -> longitudinal metres and column ->
        rectified lateral metres.
    lane_width:
        Lane width used by the single-line fallback.
    require_both_lines:
        Paper-faithful default: the lane center needs both boundaries
        (losing one marking — e.g. outside a mis-selected ROI — is a
        perception failure).  With ``False`` a single visible line is
        offset by half a lane width, a later-era robustness extension
        exercised by the ablations.
    """
    left = fit_line_poly(
        x_of_row[pixels.left_rows], lat_of_col[pixels.left_cols]
    )
    right = fit_line_poly(
        x_of_row[pixels.right_rows], lat_of_col[pixels.right_cols]
    )

    if left is not None and right is not None:
        center = (left + right) / 2.0
    elif require_both_lines:
        center = None
    elif left is not None:
        center = left - np.array([0.0, 0.0, lane_width / 2.0])
    elif right is not None:
        center = right + np.array([0.0, 0.0, lane_width / 2.0])
    else:
        center = None

    return LaneFit(
        left_poly=left,
        right_poly=right,
        center_poly=center,
        n_left=pixels.n_left,
        n_right=pixels.n_right,
    )
