"""Sliding-window lane-pixel search on the binarized BEV (Fig. 3b).

The search mirrors the classic implementation the paper builds on:

1. a column histogram over the base band (by default the whole window,
   so sparse dash patterns always contribute) locates the two marking
   *bases*, searched around their expected positions (half a lane width
   either side of the window center),
2. a stack of windows walks from near to far, re-centring on the mean
   column of the pixels it captures,
3. the captured pixel indices per line are returned for curve fitting.

A base peak weaker than ``min_base_strength`` marks that line as not
found — which is how a mis-selected ROI (markings outside the window)
turns into a perception failure instead of a hallucinated lane.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

__all__ = ["SlidingWindowParams", "LanePixels", "find_lane_pixels"]


@dataclass(frozen=True)
class SlidingWindowParams:
    """Tunables of the sliding-window search (distances in metres)."""

    n_windows: int = 9
    margin: float = 0.55
    min_pixels: int = 4
    base_band_fraction: float = 0.6
    base_search_window: float = 1.20
    hint_search_window: float = 0.70
    min_base_strength: int = 8
    base_min_fraction: float = 0.0
    lane_width: float = 3.25


@dataclass
class LanePixels:
    """Pixels captured per lane line (BEV row/col indices)."""

    left_rows: np.ndarray
    left_cols: np.ndarray
    right_rows: np.ndarray
    right_cols: np.ndarray
    left_found: bool
    right_found: bool

    @property
    def n_left(self) -> int:
        """Number of captured left-line pixels."""
        return int(self.left_rows.size)

    @property
    def n_right(self) -> int:
        """Number of captured right-line pixels."""
        return int(self.right_rows.size)


def _find_base(
    histogram: np.ndarray,
    expected_col: float,
    search_cols: float,
    min_strength: int,
) -> Optional[int]:
    """Strongest histogram column near *expected_col*, or None if weak."""
    n_cols = histogram.size
    lo = int(max(0, np.floor(expected_col - search_cols)))
    hi = int(min(n_cols, np.ceil(expected_col + search_cols) + 1))
    if hi <= lo:
        return None
    window = histogram[lo:hi]
    peak = int(np.argmax(window))
    if window[peak] < min_strength:
        return None
    return lo + peak


def _walk_windows(
    mask: np.ndarray,
    base_col: int,
    params: SlidingWindowParams,
    cols_per_metre: float,
) -> Tuple[np.ndarray, np.ndarray]:
    """Walk the window stack from near (row 0) to far, collecting pixels."""
    n_rows, n_cols = mask.shape
    margin_cols = max(2, int(round(params.margin * cols_per_metre)))
    bounds = np.linspace(0, n_rows, params.n_windows + 1).astype(int)
    rows_out = []
    cols_out = []
    center = float(base_col)
    for i in range(params.n_windows):
        r0, r1 = bounds[i], bounds[i + 1]
        c0 = int(max(0, round(center) - margin_cols))
        c1 = int(min(n_cols, round(center) + margin_cols + 1))
        if c1 <= c0:
            break
        sub = mask[r0:r1, c0:c1]
        rr, cc = np.nonzero(sub)
        if rr.size >= params.min_pixels:
            rows_out.append(rr + r0)
            cols_out.append(cc + c0)
            center = c0 + float(cc.mean())
        # When a band is empty (dash gap) the window keeps its course.
    if rows_out:
        return np.concatenate(rows_out), np.concatenate(cols_out)
    return np.empty(0, dtype=int), np.empty(0, dtype=int)


def find_lane_pixels(
    mask: np.ndarray,
    lateral_resolution: float,
    params: SlidingWindowParams = SlidingWindowParams(),
    base_hints: Optional[Tuple[Optional[float], Optional[float]]] = None,
) -> LanePixels:
    """Locate left/right lane-line pixels in a binary BEV mask.

    Parameters
    ----------
    mask:
        ``(n_rows, n_cols)`` bool array, row 0 nearest the vehicle.
    lateral_resolution:
        Metres per BEV column (from :class:`~repro.perception.bev.BevGrid`).
    base_hints:
        Optional ``(left_lat, right_lat)`` rectified lateral positions
        (metres) predicted from the previous frame's fit.  A hinted
        base is searched in a tighter window around the prediction —
        the standard temporal seeding that keeps sparse dash patterns
        tracked between dashes; ``None`` entries fall back to the
        expected-position histogram search.
    """
    if mask.ndim != 2:
        raise ValueError(f"mask must be 2-D, got shape {mask.shape}")
    n_rows, n_cols = mask.shape
    cols_per_metre = 1.0 / lateral_resolution
    near_rows = max(1, int(round(n_rows * params.base_band_fraction)))
    histogram = mask[:near_rows].sum(axis=0)
    # Concentration test: a line-like structure in the rectified window
    # puts most of its rows into a narrow column band, so the required
    # peak strength scales with the number of rows in the base band.
    # Smeared structure (an ROI whose nominal curvature mismatches the
    # road) fails this test -- the mis-selected-ROI failure mode.
    min_strength = max(
        params.min_base_strength, int(round(params.base_min_fraction * near_rows))
    )

    center_col = (n_cols - 1) / 2.0
    half_lane_cols = (params.lane_width / 2.0) * cols_per_metre
    search_cols = params.base_search_window * cols_per_metre
    hint_cols = params.hint_search_window * cols_per_metre

    def lat_to_col(lat: float) -> float:
        return center_col + lat * cols_per_metre

    left_hint = right_hint = None
    if base_hints is not None:
        left_hint, right_hint = base_hints

    # "Left lane line" = higher lateral coordinate = higher column index
    # (BEV columns increase towards the vehicle's left).
    def base_for(hint: Optional[float], expected_col: float) -> Optional[int]:
        if hint is not None:
            hint_col = lat_to_col(hint)
            base = _find_base(histogram, hint_col, hint_cols, min_strength)
            if base is not None:
                return base
            # No histogram support near the hint (dash gap in the base
            # band): trust the prediction and let the window walk pick
            # up pixels wherever the dashes are; the fit's pixel-count
            # gates reject the line if nothing is found.
            if 0 <= hint_col <= n_cols - 1:
                return int(round(hint_col))
            return None
        return _find_base(histogram, expected_col, search_cols, min_strength)

    left_base = base_for(left_hint, center_col + half_lane_cols)
    right_base = base_for(right_hint, center_col - half_lane_cols)
    # Guard against both searches locking onto the same marking.
    if (
        left_base is not None
        and right_base is not None
        and abs(left_base - right_base) < half_lane_cols
    ):
        if histogram[left_base] >= histogram[right_base]:
            right_base = None
        else:
            left_base = None

    if left_base is not None:
        l_rows, l_cols = _walk_windows(mask, left_base, params, cols_per_metre)
    else:
        l_rows = l_cols = np.empty(0, dtype=int)
    if right_base is not None:
        r_rows, r_cols = _walk_windows(mask, right_base, params, cols_per_metre)
    else:
        r_rows = r_cols = np.empty(0, dtype=int)

    return LanePixels(
        left_rows=l_rows,
        left_cols=l_cols,
        right_rows=r_rows,
        right_cols=r_cols,
        left_found=l_rows.size > 0,
        right_found=r_rows.size > 0,
    )
