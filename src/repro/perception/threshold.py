"""Dynamic thresholding of the bird's-eye view (paper Fig. 3b).

Lane markings are found as statistical outliers of the road surface:
the road dominates the BEV, so a robust location/scale estimate
(median / MAD) of each color channel makes paint stand out as a
positive deviation regardless of the ISP configuration's output domain
(linear or tone-mapped).  Two channels are thresholded and OR-ed:

- *whiteness* = min(R, G, B): high only for achromatic bright paint;
  road asphalt is mid-gray and vegetation is saturated green, so both
  stay low.
- *yellowness* = min(R, G) - B - 2 max(0, G - R): high for yellow paint
  (R >= G >> B), negative for green vegetation (G > R).

A final contiguity filter drops mask pixels with fewer than two
8-neighbours, which removes the salt noise that aggressive tone-map
gains produce in night/dark frames.

The absolute floor ``min_brightness`` is what low-light frames without
tone mapping fail: the whole BEV sits below the floor and the mask
comes back (nearly) empty — the mechanism behind the paper's
night/dark situations demanding tone-map-bearing ISP configurations.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import ndimage

__all__ = ["ThresholdParams", "dynamic_threshold", "brightness_channels"]


@dataclass(frozen=True)
class ThresholdParams:
    """Tunables of the dynamic threshold.

    Attributes
    ----------
    z_white, z_yellow:
        Robust z-score thresholds for the two channels.
    min_brightness:
        Absolute floor on the whiteness channel: below it a pixel can
        never be a white marking, no matter how flat the frame is.
    min_scale:
        Lower bound on the robust scale to avoid amplifying a perfectly
        flat (e.g. black) image into spurious detections.
    min_neighbours:
        Minimum count of 8-neighbourhood mask pixels for a pixel to
        survive the contiguity filter (0 disables the filter).
    """

    z_white: float = 4.0
    z_yellow: float = 4.5
    min_brightness: float = 0.085
    min_scale: float = 0.012
    min_neighbours: int = 3


def brightness_channels(bev_rgb: np.ndarray) -> tuple:
    """Split a BEV RGB image into (whiteness, yellowness) channels.

    Accepts a single ``(H, W, 3)`` image or a stacked ``(B, H, W, 3)``
    batch; the math is purely elementwise either way.
    """
    if bev_rgb.ndim not in (3, 4) or bev_rgb.shape[-1] != 3:
        raise ValueError(f"expected (..., H, W, 3) BEV image, got {bev_rgb.shape}")
    r = bev_rgb[..., 0]
    g = bev_rgb[..., 1]
    b = bev_rgb[..., 2]
    white = np.minimum(np.minimum(r, g), b)
    # Yellow paint has R >= G >> B (blue well under 60 % of the others);
    # vegetation has G > R and road/grass boundary mixes have B only
    # mildly depressed, so both stay out of the mask.
    yellow = np.clip(
        np.minimum(r, g) - 1.6 * b - 2.0 * np.clip(g - r, 0.0, None), 0.0, None
    )
    return white, yellow


def _nanmedian_cols(stack: np.ndarray, n: "np.ndarray | None" = None) -> np.ndarray:
    """NaN-aware median over the last axis, ``keepdims`` style.

    Hand-vectorized replacement for ``np.nanmedian(stack, axis=-1,
    keepdims=True)`` on stacked ``(B, H, W)`` batches: one ``np.sort``
    (NaNs order last) plus two gathers, instead of numpy's masked-array
    machinery whose per-element constants dominate batched-sweep
    profiles.  Bit-identical because the median is either the middle
    order statistic exactly (``(a + a) / 2 == a``) or the same
    mean-of-two-middles numpy computes, in the input dtype.

    *n* optionally supplies the per-row count of non-NaN entries
    (``keepdims`` shaped) when the caller already knows it.
    """
    order = np.sort(stack, axis=-1)
    if n is None:
        n = stack.shape[-1] - np.count_nonzero(
            np.isnan(stack), axis=-1, keepdims=True
        )
    lo = np.maximum((n - 1) // 2, 0)
    hi = np.where(n > 0, n // 2, 0)
    # All-NaN rows have n == 0 and gather a NaN, matching np.nanmedian.
    return (
        np.take_along_axis(order, lo, axis=-1)
        + np.take_along_axis(order, hi, axis=-1)
    ) / 2


def _robust_mask(
    channel: np.ndarray,
    z_threshold: float,
    params: ThresholdParams,
    valid: "np.ndarray | None" = None,
) -> np.ndarray:
    # Per-row statistics: each BEV row is one ground distance, so this
    # adapts to radial illumination gradients (headlight falloff) that
    # would fool a single global threshold.  Cells outside the camera
    # frame (warp zeros) are excluded from the statistics.  The last
    # axis is the column axis for both a single (H, W) channel and a
    # stacked (B, H, W) batch, so one reduction spec serves both; the
    # stacked branch swaps np.nanmedian for the vectorized kernel.
    if valid is not None:
        masked = np.where(valid, channel, np.nan)
        if channel.ndim == 3:
            # |masked - median| keeps NaNs exactly where masked has
            # them (an all-NaN row stays all-NaN), so one count serves
            # both medians.
            n = channel.shape[-1] - np.count_nonzero(
                np.isnan(masked), axis=-1, keepdims=True
            )
            median = _nanmedian_cols(masked, n)
            mad = _nanmedian_cols(np.abs(masked - median), n)
        else:
            with np.errstate(all="ignore"):
                median = np.nanmedian(masked, axis=-1, keepdims=True)
                mad = np.nanmedian(np.abs(masked - median), axis=-1, keepdims=True)
        median = np.nan_to_num(median)
        mad = np.nan_to_num(mad)
    else:
        median = np.median(channel, axis=-1, keepdims=True)
        mad = np.median(np.abs(channel - median), axis=-1, keepdims=True)
    scale = np.maximum(1.4826 * mad, params.min_scale)
    mask = (channel - median) / scale > z_threshold
    if valid is not None:
        mask &= valid
    return mask


_NEIGHBOUR_KERNEL = np.array([[1, 1, 1], [1, 0, 1], [1, 1, 1]], dtype=np.uint8)


def dynamic_threshold(
    bev_rgb: np.ndarray,
    params: ThresholdParams = ThresholdParams(),
    valid: "np.ndarray | None" = None,
) -> np.ndarray:
    """Binarize a BEV RGB image into a lane-marking candidate mask.

    *valid* optionally marks BEV cells whose ground point projects
    inside the camera frame; cells outside are excluded from both the
    row statistics and the mask (wide windows clip at the image edges).

    Accepts a stacked ``(B, H, W, 3)`` batch as well (shared *valid*
    broadcasts over lanes); per-lane masks are bit-identical to calling
    this per frame — the row statistics reduce over each lane's own
    columns and the contiguity kernel never crosses the batch axis.  A
    lane whose mask is empty is unaffected by the other lanes keeping
    the contiguity convolution alive: zero neighbours never reach
    ``min_neighbours``.
    """
    white, yellow = brightness_channels(bev_rgb)
    mask_white = _robust_mask(white, params.z_white, params, valid) & (
        white > params.min_brightness
    )
    mask_yellow = _robust_mask(yellow, params.z_yellow, params, valid) & (
        np.maximum(bev_rgb[..., 0], bev_rgb[..., 1]) > params.min_brightness
    )
    mask = mask_white | mask_yellow
    if params.min_neighbours > 0 and mask.any():
        kernel = _NEIGHBOUR_KERNEL if mask.ndim == 2 else _NEIGHBOUR_KERNEL[None]
        neighbours = ndimage.convolve(
            mask.astype(np.uint8), kernel, mode="constant"
        )
        mask &= neighbours >= params.min_neighbours
    return mask
