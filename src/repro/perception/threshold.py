"""Dynamic thresholding of the bird's-eye view (paper Fig. 3b).

Lane markings are found as statistical outliers of the road surface:
the road dominates the BEV, so a robust location/scale estimate
(median / MAD) of each color channel makes paint stand out as a
positive deviation regardless of the ISP configuration's output domain
(linear or tone-mapped).  Two channels are thresholded and OR-ed:

- *whiteness* = min(R, G, B): high only for achromatic bright paint;
  road asphalt is mid-gray and vegetation is saturated green, so both
  stay low.
- *yellowness* = min(R, G) - B - 2 max(0, G - R): high for yellow paint
  (R >= G >> B), negative for green vegetation (G > R).

A final contiguity filter drops mask pixels with fewer than two
8-neighbours, which removes the salt noise that aggressive tone-map
gains produce in night/dark frames.

The absolute floor ``min_brightness`` is what low-light frames without
tone mapping fail: the whole BEV sits below the floor and the mask
comes back (nearly) empty — the mechanism behind the paper's
night/dark situations demanding tone-map-bearing ISP configurations.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import ndimage

__all__ = ["ThresholdParams", "dynamic_threshold", "brightness_channels"]


@dataclass(frozen=True)
class ThresholdParams:
    """Tunables of the dynamic threshold.

    Attributes
    ----------
    z_white, z_yellow:
        Robust z-score thresholds for the two channels.
    min_brightness:
        Absolute floor on the whiteness channel: below it a pixel can
        never be a white marking, no matter how flat the frame is.
    min_scale:
        Lower bound on the robust scale to avoid amplifying a perfectly
        flat (e.g. black) image into spurious detections.
    min_neighbours:
        Minimum count of 8-neighbourhood mask pixels for a pixel to
        survive the contiguity filter (0 disables the filter).
    """

    z_white: float = 4.0
    z_yellow: float = 4.5
    min_brightness: float = 0.085
    min_scale: float = 0.012
    min_neighbours: int = 3


def brightness_channels(bev_rgb: np.ndarray) -> tuple:
    """Split a BEV RGB image into (whiteness, yellowness) channels."""
    if bev_rgb.ndim != 3 or bev_rgb.shape[2] != 3:
        raise ValueError(f"expected (H, W, 3) BEV image, got {bev_rgb.shape}")
    r = bev_rgb[..., 0]
    g = bev_rgb[..., 1]
    b = bev_rgb[..., 2]
    white = np.minimum(np.minimum(r, g), b)
    # Yellow paint has R >= G >> B (blue well under 60 % of the others);
    # vegetation has G > R and road/grass boundary mixes have B only
    # mildly depressed, so both stay out of the mask.
    yellow = np.clip(
        np.minimum(r, g) - 1.6 * b - 2.0 * np.clip(g - r, 0.0, None), 0.0, None
    )
    return white, yellow


def _robust_mask(
    channel: np.ndarray,
    z_threshold: float,
    params: ThresholdParams,
    valid: "np.ndarray | None" = None,
) -> np.ndarray:
    # Per-row statistics: each BEV row is one ground distance, so this
    # adapts to radial illumination gradients (headlight falloff) that
    # would fool a single global threshold.  Cells outside the camera
    # frame (warp zeros) are excluded from the statistics.
    if valid is not None:
        masked = np.where(valid, channel, np.nan)
        with np.errstate(all="ignore"):
            median = np.nanmedian(masked, axis=1, keepdims=True)
            mad = np.nanmedian(np.abs(masked - median), axis=1, keepdims=True)
        median = np.nan_to_num(median)
        mad = np.nan_to_num(mad)
    else:
        median = np.median(channel, axis=1, keepdims=True)
        mad = np.median(np.abs(channel - median), axis=1, keepdims=True)
    scale = np.maximum(1.4826 * mad, params.min_scale)
    mask = (channel - median) / scale > z_threshold
    if valid is not None:
        mask &= valid
    return mask


_NEIGHBOUR_KERNEL = np.array([[1, 1, 1], [1, 0, 1], [1, 1, 1]], dtype=np.uint8)


def dynamic_threshold(
    bev_rgb: np.ndarray,
    params: ThresholdParams = ThresholdParams(),
    valid: "np.ndarray | None" = None,
) -> np.ndarray:
    """Binarize a BEV RGB image into a lane-marking candidate mask.

    *valid* optionally marks BEV cells whose ground point projects
    inside the camera frame; cells outside are excluded from both the
    row statistics and the mask (wide windows clip at the image edges).
    """
    white, yellow = brightness_channels(bev_rgb)
    mask_white = _robust_mask(white, params.z_white, params, valid) & (
        white > params.min_brightness
    )
    mask_yellow = _robust_mask(yellow, params.z_yellow, params, valid) & (
        np.maximum(bev_rgb[..., 0], bev_rgb[..., 1]) > params.min_brightness
    )
    mask = mask_white | mask_yellow
    if params.min_neighbours > 0 and mask.any():
        neighbours = ndimage.convolve(
            mask.astype(np.uint8), _NEIGHBOUR_KERNEL, mode="constant"
        )
        mask &= neighbours >= params.min_neighbours
    return mask
