"""Perception (PR): lateral-deviation measurement from camera frames.

Implements the paper's sliding-window lane detection pipeline
(Fig. 3b): ROI selection -> perspective transform to a bird's-eye view
-> dynamic thresholding -> sliding-window lane-pixel search -> 2nd-order
polynomial fit -> lateral deviation ``y_L`` at the look-ahead distance
``LL`` (5.5 m).  Also contains the dense segmentation baseline that
stands in for the VPGNet/LaneNet accuracy points of Fig. 1.
"""

from repro.perception.roi import RoiPreset, ROI_PRESETS, roi_preset
from repro.perception.bev import BevGrid
from repro.perception.threshold import dynamic_threshold, ThresholdParams
from repro.perception.sliding_window import SlidingWindowParams, find_lane_pixels
from repro.perception.lane_fit import LaneFit, fit_lane_lines
from repro.perception.pipeline import (
    LOOKAHEAD_DISTANCE,
    PerceptionPipeline,
    PerceptionResult,
)
from repro.perception.segmentation import DenseLaneDetector
from repro.perception.evaluation import (
    SequenceStats,
    evaluate_sequence,
    trajectory_poses,
)

__all__ = [
    "SequenceStats",
    "evaluate_sequence",
    "trajectory_poses",
    "RoiPreset",
    "ROI_PRESETS",
    "roi_preset",
    "BevGrid",
    "dynamic_threshold",
    "ThresholdParams",
    "SlidingWindowParams",
    "find_lane_pixels",
    "LaneFit",
    "fit_lane_lines",
    "LOOKAHEAD_DISTANCE",
    "PerceptionPipeline",
    "PerceptionResult",
    "DenseLaneDetector",
]
