"""The complete perception (PR) pipeline and its measurement output.

``PerceptionPipeline.process`` runs ROI -> BEV warp -> dynamic
threshold -> sliding windows -> polynomial fit and converts the result
into control measurements:

- ``y_l``       — lateral deviation of the vehicle from the lane center
                  at the look-ahead distance (LL = 5.5 m), the paper's
                  control input;
- ``epsilon_l`` — heading error estimate at the look-ahead;
- ``curvature`` — road-curvature estimate (used for steering
                  feed-forward, as in standard LKAS implementations).

Sign convention: positive ``y_l`` means the vehicle is left of the lane
center (so the controller steers right).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Union

import numpy as np

from repro.utils.contracts import check_shapes
from repro.perception.bev import BevGrid
from repro.perception.lane_fit import LaneFit, fit_lane_lines
from repro.perception.roi import RoiPreset, roi_preset
from repro.perception.sliding_window import (
    SlidingWindowParams,
    find_lane_pixels,
)
from repro.perception.threshold import ThresholdParams, dynamic_threshold
from repro.sim.camera import CameraModel

__all__ = [
    "LOOKAHEAD_DISTANCE",
    "PerceptionResult",
    "PerceptionPipeline",
    "process_batch",
]

#: Look-ahead distance LL of the paper (Sec. II, control design).
LOOKAHEAD_DISTANCE = 5.5


@dataclass
class PerceptionResult:
    """Measurements extracted from one frame."""

    y_l: float
    epsilon_l: float
    curvature: float
    valid: bool
    lines_used: int
    n_pixels: int

    @classmethod
    def invalid(cls) -> "PerceptionResult":
        """The result reported when no lane line could be detected."""
        return cls(
            y_l=0.0,
            epsilon_l=0.0,
            curvature=0.0,
            valid=False,
            lines_used=0,
            n_pixels=0,
        )


class PerceptionPipeline:
    """Sliding-window lane detection with a switchable ROI knob.

    BEV grids are cached per ROI preset, so runtime ROI reconfiguration
    (the paper's dynamic PR knob) costs a dictionary lookup.
    """

    #: Consecutive invalid frames after which temporal hints expire.
    MAX_HINT_MISSES = 5

    def __init__(
        self,
        camera: CameraModel,
        roi: Union[RoiPreset, str] = "ROI 1",
        lookahead: float = LOOKAHEAD_DISTANCE,
        threshold_params: ThresholdParams = ThresholdParams(),
        window_params: SlidingWindowParams = SlidingWindowParams(),
        n_rows: int = 96,
        n_cols: int = 128,
        temporal_tracking: bool = False,
        require_both_lines: bool = True,
    ):
        self.camera = camera
        self.lookahead = lookahead
        self.threshold_params = threshold_params
        self.window_params = window_params
        self.temporal_tracking = temporal_tracking
        self.require_both_lines = require_both_lines
        self._bev_shape = (n_rows, n_cols)
        self._grids: Dict[str, BevGrid] = {}
        self._roi: RoiPreset = roi if isinstance(roi, RoiPreset) else roi_preset(roi)
        self._hints = None
        self._hint_misses = 0

    @property
    def roi(self) -> RoiPreset:
        """The active ROI preset."""
        return self._roi

    def set_roi(self, roi: Union[RoiPreset, str]) -> None:
        """Switch the active ROI preset (cheap: grids are cached).

        Switching invalidates the temporal tracking hints: they live in
        the rectified frame of the previous preset.
        """
        new_roi = roi if isinstance(roi, RoiPreset) else roi_preset(roi)
        if new_roi.name != self._roi.name:
            self._hints = None
            self._hint_misses = 0
        self._roi = new_roi

    def reset_tracking(self) -> None:
        """Drop temporal hints (start of a new, unrelated frame stream)."""
        self._hints = None
        self._hint_misses = 0

    def _grid(self) -> BevGrid:
        grid = self._grids.get(self._roi.name)
        if grid is None:
            grid = BevGrid(self.camera, self._roi, *self._bev_shape)
            self._grids[self._roi.name] = grid
        return grid

    @check_shapes(frame_rgb=("H", "W", 3))
    def process(self, frame_rgb: np.ndarray) -> PerceptionResult:
        """Measure lateral deviation from one RGB frame.

        With ``temporal_tracking`` on (the closed-loop default) the
        previous frame's fit seeds the sliding-window base search,
        which keeps sparse dash patterns tracked through their gaps.
        Hints expire after :data:`MAX_HINT_MISSES` consecutive misses.
        """
        grid = self._grid()
        bev = grid.warp(frame_rgb)
        mask = dynamic_threshold(bev, self.threshold_params, valid=grid.inside)
        return self._finish_mask(mask, grid)

    def _finish_mask(self, mask: np.ndarray, grid: BevGrid) -> PerceptionResult:
        """Sliding windows + fit + hint bookkeeping on a threshold mask.

        The tail half of :meth:`process`; the batched path computes the
        mask for many lanes in one call and finishes each lane here.
        """
        hints = self._hints if self.temporal_tracking else None
        pixels = find_lane_pixels(
            mask, grid.lateral_resolution, self.window_params, base_hints=hints
        )
        fit = fit_lane_lines(
            pixels,
            grid.x_axis,
            grid.lat_axis,
            lane_width=self.window_params.lane_width,
            require_both_lines=self.require_both_lines,
        )
        if self.temporal_tracking:
            self._update_hints(fit, grid)
        return self.measurement_from_fit(fit)

    def _update_hints(self, fit: LaneFit, grid: BevGrid) -> None:
        if fit.valid:
            x_near = float(grid.x_axis[0])
            left = (
                float(np.polyval(fit.left_poly, x_near))
                if fit.left_poly is not None
                else None
            )
            right = (
                float(np.polyval(fit.right_poly, x_near))
                if fit.right_poly is not None
                else None
            )
            self._hints = (left, right)
            self._hint_misses = 0
        else:
            self._hint_misses += 1
            if self._hint_misses > self.MAX_HINT_MISSES:
                self._hints = None

    def measurement_from_fit(self, fit: LaneFit) -> PerceptionResult:
        """Convert a rectified-frame lane fit into control measurements."""
        if not fit.valid:
            return PerceptionResult.invalid()
        ll = self.lookahead
        roi = self._roi
        # Undo the ROI's curvature rectification to get vehicle-frame
        # lateral coordinates of the lane center.
        center_at_ll = fit.center_lateral(ll) + float(roi.center_offset(np.array(ll)))
        slope_at_ll = fit.center_slope(ll) + roi.curvature * ll
        curvature = fit.center_curvature() + roi.curvature
        return PerceptionResult(
            y_l=-center_at_ll,
            epsilon_l=-slope_at_ll,
            curvature=curvature,
            valid=True,
            lines_used=fit.lines_used,
            n_pixels=fit.n_left + fit.n_right,
        )


def process_batch(
    pipelines: Sequence[PerceptionPipeline],
    frames: Sequence[np.ndarray],
) -> List[PerceptionResult]:
    """Run one frame through each pipeline with batched warp+threshold.

    Lanes are grouped by (camera, active ROI, BEV shape, threshold
    params); each group's frames go through a single
    :meth:`BevGrid.warp_batch` + batched :func:`dynamic_threshold`
    call, then every lane finishes (sliding windows, fit, temporal
    hints) on its own pipeline state.  Results are returned in lane
    order and are bit-identical to calling ``pipelines[i].process``
    per lane.
    """
    n_lanes = len(pipelines)
    results: List[PerceptionResult] = [None] * n_lanes  # type: ignore[list-item]
    groups: Dict[tuple, List[int]] = {}
    for lane, pipe in enumerate(pipelines):
        key = (pipe.camera, pipe.roi.name, pipe._bev_shape, pipe.threshold_params)
        groups.setdefault(key, []).append(lane)
    for lanes in groups.values():
        lead = pipelines[lanes[0]]
        grid = lead._grid()
        stack = np.stack([frames[i] for i in lanes])
        bev = grid.warp_batch(stack)
        masks = dynamic_threshold(bev, lead.threshold_params, valid=grid.inside)
        for j, i in enumerate(lanes):
            pipe = pipelines[i]
            results[i] = pipe._finish_mask(masks[j], pipe._grid())
    return results
