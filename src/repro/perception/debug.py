"""Terminal visualization helpers for perception debugging.

matplotlib is deliberately not a dependency; these render BEV masks,
frames and track maps as compact ASCII art, which turns out to be all
one needs to debug a thresholding or ROI problem over SSH.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.sim.track import Track

__all__ = ["mask_to_text", "frame_to_text", "track_to_text"]

#: Luminance ramp from dark to bright.
_RAMP = " .:-=+*#%@"


def mask_to_text(mask: np.ndarray, max_width: int = 96) -> str:
    """Render a boolean BEV mask (row 0 = near) as ASCII, far row first."""
    if mask.ndim != 2:
        raise ValueError(f"mask must be 2-D, got {mask.shape}")
    step = max(1, int(np.ceil(mask.shape[1] / max_width)))
    rows = []
    for row in mask[::-2][::1]:
        cells = row[::step]
        rows.append("".join("#" if c else "." for c in cells))
    return "\n".join(rows)


def frame_to_text(
    frame: np.ndarray, max_width: int = 96, max_height: int = 32
) -> str:
    """Render an RGB or grayscale frame as ASCII luminance art."""
    if frame.ndim == 3:
        luma = frame @ np.array([0.299, 0.587, 0.114], dtype=frame.dtype)
    else:
        luma = frame
    step_y = max(1, int(np.ceil(luma.shape[0] / max_height)))
    step_x = max(1, int(np.ceil(luma.shape[1] / max_width)))
    small = luma[::step_y, ::step_x]
    scaled = np.clip(small / max(float(small.max()), 1e-6), 0.0, 1.0)
    indices = (scaled * (len(_RAMP) - 1)).astype(int)
    return "\n".join("".join(_RAMP[i] for i in row) for row in indices)


def track_to_text(
    track: Track,
    width: int = 72,
    height: int = 24,
    vehicle_s: Optional[float] = None,
) -> str:
    """Plot a track centerline (and optionally the vehicle) in ASCII."""
    s_samples = np.linspace(0.0, track.length - 1e-6, 400)
    points = np.array([track.pose_at(float(s)).position() for s in s_samples])
    lo = points.min(axis=0) - 5.0
    hi = points.max(axis=0) + 5.0
    span = np.maximum(hi - lo, 1e-6)
    canvas = [[" "] * width for _ in range(height)]

    def plot(xy, char):
        col = int((xy[0] - lo[0]) / span[0] * (width - 1))
        row = int((xy[1] - lo[1]) / span[1] * (height - 1))
        canvas[height - 1 - row][col] = char

    for index, point in enumerate(points):
        sector = int(track.segment_index_at(float(s_samples[index])))
        plot(point, str((sector + 1) % 10))
    if vehicle_s is not None:
        plot(track.pose_at(float(vehicle_s)).position(), "X")
    return "\n".join("".join(row) for row in canvas)
