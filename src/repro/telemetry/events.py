"""The telemetry event schema: names, required fields, schema version.

Every event emitted through :class:`repro.telemetry.TelemetryRecorder`
must use one of the constants below — the ``OBS001`` project lint rule
rejects literal event strings at emit sites, so renaming an event is a
single-file change and the trace diff tool can rely on a closed set of
names.  :data:`EVENT_SCHEMA` maps each name to the fields an emit must
provide; the recorder validates both at runtime.

Bump :data:`SCHEMA_VERSION` whenever an event gains/loses required
fields or changes meaning; every persisted trace line carries the
version so offline consumers can dispatch on it.
"""

from __future__ import annotations

from typing import Dict, Tuple

__all__ = [
    "SCHEMA_VERSION",
    "RUN_MANIFEST",
    "CYCLE_START",
    "CYCLE_END",
    "KNOBS_RECONFIGURED",
    "IDENTIFIER_INVOKED",
    "FAULT_ACTIVATED",
    "FAULT_CLEARED",
    "DEGRADED_ENTER",
    "DEGRADED_EXIT",
    "EVENT_SCHEMA",
]

#: Version stamped into every event line and manifest.
SCHEMA_VERSION = 1

#: The first line of every trace file: the run manifest record.
RUN_MANIFEST = "run.manifest"
#: A control cycle began (ISP knob applied, classifiers scheduled).
CYCLE_START = "cycle.start"
#: A control cycle finished (knobs, timing, and controller output).
CYCLE_END = "cycle.end"
#: The reconfiguration manager changed at least one knob.
KNOBS_RECONFIGURED = "knobs.reconfigured"
#: The situation identifier ran for a set of classifiers.
IDENTIFIER_INVOKED = "identifier.invoked"
#: A fault spec's window opened.
FAULT_ACTIVATED = "fault.activated"
#: A fault spec's window closed.
FAULT_CLEARED = "fault.cleared"
#: The staleness watchdog engaged the safe fallback knobs.
DEGRADED_ENTER = "degraded.enter"
#: Identification recovered; characterized knobs are trusted again.
DEGRADED_EXIT = "degraded.exit"

#: Registered event name -> required payload fields.  The recorder
#: rejects unknown names and missing fields at emit time.
EVENT_SCHEMA: Dict[str, Tuple[str, ...]] = {
    RUN_MANIFEST: ("manifest",),
    CYCLE_START: ("time_ms", "s", "active_isp", "invoked"),
    CYCLE_END: (
        "time_ms",
        "s",
        "active_isp",
        "roi",
        "speed_kmph",
        "period_ms",
        "delay_ms",
        "measurement_valid",
        "degraded",
        "steering",
    ),
    KNOBS_RECONFIGURED: ("time_ms", "isp", "roi", "speed_kmph", "degraded"),
    IDENTIFIER_INVOKED: ("time_ms", "classifiers"),
    FAULT_ACTIVATED: ("time_ms", "kind", "spec"),
    FAULT_CLEARED: ("time_ms", "kind", "spec"),
    DEGRADED_ENTER: ("time_ms",),
    DEGRADED_EXIT: ("time_ms",),
}
