"""Trace persistence: append-only JSONL event streams on disk.

A trace file is one JSON object per line: the first line is the
:data:`~repro.telemetry.events.RUN_MANIFEST` record, every following
line one emitted event.  Lines are serialized with sorted keys and the
artifact-cache JSON coercions, so two runs of the same experiment
produce byte-identical event lines (the manifest line alone carries the
volatile wall-clock bounds).  Writes are atomic — ``tempfile.mkstemp``
plus ``os.replace`` — matching ``ArtifactCache.store``.
"""

from __future__ import annotations

import json
import os
import tempfile
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Union

import numpy as np

from repro.telemetry.events import RUN_MANIFEST, SCHEMA_VERSION
from repro.utils.cache import _jsonify

__all__ = ["RunTrace", "write_trace", "load_trace", "diff_traces"]

#: Manifest fields that legitimately differ between identical runs.
_VOLATILE_MANIFEST_FIELDS = ("wall_clock",)

#: Manifest fields compared by :func:`diff_traces`.
_STABLE_MANIFEST_FIELDS = (
    "schema",
    "package_version",
    "config_hash",
    "rng_streams",
    "env",
)


@dataclass
class RunTrace:
    """A loaded telemetry trace: one manifest plus its event stream."""

    manifest: Dict[str, object] = field(default_factory=dict)
    events: List[Dict[str, object]] = field(default_factory=list)

    def events_of(self, event: str) -> List[Dict[str, object]]:
        """The events with name *event*, in stream order."""
        return [record for record in self.events if record.get("event") == event]


def _default(obj: object) -> object:
    # np.bool_ (e.g. a CycleRecord's measurement_valid) is not an
    # np.integer/np.floating, which is all the cache coercion covers.
    if isinstance(obj, np.bool_):
        return bool(obj)
    return _jsonify(obj)


def _dump_line(record: Dict[str, object]) -> str:
    return json.dumps(record, sort_keys=True, default=_default)


def write_trace(
    path: Union[str, Path],
    manifest: Optional[Dict[str, object]],
    events: Iterable[Dict[str, object]],
) -> Path:
    """Atomically write a manifest + event stream as JSONL; returns the path.

    The file appears complete or not at all: content goes to a
    temporary file in the target directory first and is renamed over
    *path* in one :func:`os.replace`.
    """
    target = Path(path)
    lines = [
        _dump_line(
            {
                "event": RUN_MANIFEST,
                "schema": SCHEMA_VERSION,
                "manifest": manifest or {},
            }
        )
    ]
    lines.extend(_dump_line(record) for record in events)
    directory = target.parent if str(target.parent) else Path(".")
    fd, tmp_name = tempfile.mkstemp(dir=str(directory), suffix=".jsonl.tmp")
    try:
        with os.fdopen(fd, "w", encoding="utf-8") as handle:
            handle.write("\n".join(lines) + "\n")
        os.replace(tmp_name, target)
    except BaseException:
        if os.path.exists(tmp_name):
            os.unlink(tmp_name)
        raise
    return target


def load_trace(path: Union[str, Path]) -> RunTrace:
    """Parse a JSONL trace written by :func:`write_trace`."""
    trace = RunTrace()
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            record = json.loads(line)
            if record.get("event") == RUN_MANIFEST:
                trace.manifest = record.get("manifest", {})
            else:
                trace.events.append(record)
    return trace


def diff_traces(a: RunTrace, b: RunTrace, limit: int = 20) -> List[str]:
    """Human-readable differences between two traces (empty = equivalent).

    Volatile manifest fields (wall-clock bounds) are ignored; stable
    manifest fields and the full event streams are compared.  At most
    *limit* event-level differences are rendered, with a trailing
    summary line when more exist.
    """
    differences: List[str] = []
    for key in _STABLE_MANIFEST_FIELDS:
        if a.manifest.get(key) != b.manifest.get(key):
            differences.append(
                f"manifest.{key}: {a.manifest.get(key)!r} != "
                f"{b.manifest.get(key)!r}"
            )
    if len(a.events) != len(b.events):
        differences.append(
            f"event count: {len(a.events)} != {len(b.events)}"
        )
    shown = 0
    skipped = 0
    for index, (ea, eb) in enumerate(zip(a.events, b.events)):
        if ea == eb:
            continue
        if shown < limit:
            differences.append(
                f"event {index}: {_dump_line(ea)} != {_dump_line(eb)}"
            )
            shown += 1
        else:
            skipped += 1
    if skipped:
        differences.append(f"... and {skipped} more differing events")
    return differences
