"""Run manifests: the provenance record attached to every run artifact.

A manifest answers "what produced this trace?" without re-running
anything: the configuration hash (same digest the artifact cache keys
on), the package version, the RNG streams the run consumed, the active
environment knobs, and the wall-clock bounds.  Two runs with the same
manifest hash are the same experiment — their telemetry event streams
are byte-identical — while the wall-clock fields are explicitly
volatile and excluded from trace comparison.
"""

from __future__ import annotations

import dataclasses
import os
from typing import Dict, Iterable, Mapping, Optional

from repro.telemetry.events import SCHEMA_VERSION
from repro.utils.cache import config_hash
from repro.utils.version import __version__

__all__ = ["ENV_KNOBS", "build_manifest"]

#: Environment knobs recorded in every manifest: they change runtime
#: behaviour (contract checks, profiling, sweep parallelism) without
#: appearing in any config object.
ENV_KNOBS = ("REPRO_CONTRACTS", "REPRO_PROFILE", "REPRO_JOBS", "REPRO_BATCH")


def build_manifest(
    *,
    config: object = None,
    rng_streams: Iterable[str] = (),
    started_at: Optional[float] = None,
    finished_at: Optional[float] = None,
) -> Dict[str, object]:
    """Assemble a run manifest dict.

    Parameters
    ----------
    config:
        The run configuration: a dataclass (e.g. ``HilConfig``), a
        mapping, or ``None``.  Hashed with the artifact-cache digest
        (:func:`repro.utils.cache.config_hash`), so cache keys and
        manifests agree on identity.
    rng_streams:
        Stream names the run derived (see
        :func:`repro.utils.rng.collect_streams`); stored sorted and
        deduplicated.
    started_at / finished_at:
        Wall-clock bounds (``time.time()`` seconds).  These are the
        only non-deterministic manifest fields; trace diffing ignores
        them.
    """
    if config is None:
        config_dict: Mapping[str, object] = {}
    elif dataclasses.is_dataclass(config) and not isinstance(config, type):
        config_dict = dataclasses.asdict(config)
    else:
        config_dict = dict(config)
    return {
        "schema": SCHEMA_VERSION,
        "package_version": __version__,
        "config_hash": config_hash(config_dict),
        "rng_streams": sorted(set(rng_streams)),
        "env": {name: os.environ.get(name) for name in ENV_KNOBS},
        "wall_clock": {"started_at": started_at, "finished_at": finished_at},
    }
