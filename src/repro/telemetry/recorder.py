"""The telemetry recorder and its shared no-op activation pattern.

This mirrors :mod:`repro.utils.profiling` exactly: a module-level
``_ACTIVE`` recorder that defaults to ``None``, so instrumentation in
the per-cycle hot path costs one ``get_active() is None`` check when
telemetry is off — no object allocation, no string formatting, nothing
recorded.  Hook sites follow the idiom::

    rec = telemetry.get_active()
    if rec is not None:
        rec.emit(telemetry.CYCLE_START, time_ms=t_ms, ...)

Enabling
--------
- ``REPRO_TELEMETRY=1`` in the environment activates a process-global
  recorder at import time, or
- pass ``--telemetry out.jsonl`` to ``python -m repro run``, or
- programmatically: ``activate(TelemetryRecorder())`` / the
  ``activated()`` context manager.

Telemetry never touches RNG state or array values, so simulated traces
are bit-identical with telemetry on or off (tier-1 pinned).
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from typing import Dict, List, Optional

from repro.telemetry.events import EVENT_SCHEMA, SCHEMA_VERSION
from repro.telemetry.metrics import MetricsRegistry
from repro.utils import parallel

__all__ = [
    "TelemetryRecorder",
    "telemetry_enabled",
    "activate",
    "deactivate",
    "get_active",
    "activated",
]


def telemetry_enabled() -> bool:
    """Whether ``REPRO_TELEMETRY`` requests telemetry (checked per call)."""
    return os.environ.get("REPRO_TELEMETRY", "0").lower() not in ("", "0", "false")


class TelemetryRecorder:
    """Accumulates schema-validated events and a metrics registry."""

    def __init__(self):
        self.events: List[Dict[str, object]] = []
        self.metrics = MetricsRegistry()

    def emit(self, event: str, **fields) -> None:
        """Append one event; *event* must be a registered schema name.

        Unknown names and missing required fields raise
        :class:`ValueError` — an unregistered event would be invisible
        to ``trace --diff`` consumers and to the ``OBS001`` lint gate.
        """
        required = EVENT_SCHEMA.get(event)
        if required is None:
            raise ValueError(
                f"unknown telemetry event {event!r}; register it in "
                "repro.telemetry.events.EVENT_SCHEMA"
            )
        missing = [name for name in required if name not in fields]
        if missing:
            raise ValueError(
                f"telemetry event {event!r} is missing required fields "
                f"{missing}"
            )
        record: Dict[str, object] = {"event": event, "schema": SCHEMA_VERSION}
        record.update(fields)
        self.events.append(record)

    def events_of(self, event: str) -> List[Dict[str, object]]:
        """The recorded events with name *event*, in emit order."""
        return [record for record in self.events if record["event"] == event]

    def reset(self) -> None:
        """Drop all recorded events and metrics."""
        self.events.clear()
        self.metrics.reset()


_ACTIVE: Optional[TelemetryRecorder] = None


def activate(recorder: Optional[TelemetryRecorder] = None) -> TelemetryRecorder:
    """Install *recorder* (or a fresh one) as the active collector."""
    global _ACTIVE
    _ACTIVE = recorder if recorder is not None else TelemetryRecorder()
    return _ACTIVE


def deactivate() -> Optional[TelemetryRecorder]:
    """Remove the active recorder; returns it (with its data)."""
    global _ACTIVE
    previous = _ACTIVE
    _ACTIVE = None
    return previous


def get_active() -> Optional[TelemetryRecorder]:
    """The currently active recorder, if any."""
    return _ACTIVE


@contextmanager
def activated(recorder: Optional[TelemetryRecorder]):
    """Scoped activation; ``activated(None)`` is a no-op passthrough.

    Restores whatever recorder was active before on exit, so nested
    scopes (a run inside an env-enabled session) compose.
    """
    global _ACTIVE
    if recorder is None:
        yield None
        return
    previous = _ACTIVE
    _ACTIVE = recorder
    try:
        yield recorder
    finally:
        _ACTIVE = previous


# -- parallel_map stats funnel ----------------------------------------------
#
# Worker processes inherit the parent's active recorder via fork but
# their events/metrics die with the pool.  Registering this funnel makes
# parallel_map scope a fresh recorder around each task and ship its
# metrics snapshot back with the result; per-worker *events* are
# intentionally dropped (a sweep's event interleaving is not
# deterministic — its metrics are).


def _funnel_parent_active() -> bool:
    return _ACTIVE is not None


def _funnel_begin_task():
    previous = _ACTIVE
    fresh = TelemetryRecorder()
    activate(fresh)
    return previous, fresh


def _funnel_end_task(handle):
    previous, fresh = handle
    if previous is not None:
        activate(previous)
    else:
        deactivate()
    return fresh.metrics.snapshot()


def _funnel_merge(snapshot) -> None:
    active = _ACTIVE
    if active is not None:
        active.metrics.merge(snapshot)


parallel.register_stats_funnel(
    parallel.StatsFunnel(
        name="telemetry",
        parent_active=_funnel_parent_active,
        begin_task=_funnel_begin_task,
        end_task=_funnel_end_task,
        merge=_funnel_merge,
    )
)


# REPRO_TELEMETRY in the environment enables collection for the whole
# process without touching any call site.
if telemetry_enabled():  # pragma: no cover - env-dependent import effect
    activate(TelemetryRecorder())
