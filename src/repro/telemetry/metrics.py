"""Metrics registry: counters, gauges, and bounded histograms.

Counters accumulate, gauges hold the latest value, histograms keep a
bounded sample list.  Registries are designed to cross process
boundaries: :meth:`MetricsRegistry.snapshot` produces a plain picklable
dict and :meth:`MetricsRegistry.merge` folds such a snapshot back in —
this is how :func:`repro.utils.parallel.parallel_map` funnels per-worker
stats to the parent instead of dropping them with the pool.
"""

from __future__ import annotations

from typing import Dict, List, Mapping

__all__ = ["MetricsRegistry"]


class MetricsRegistry:
    """Named counters/gauges/histograms with snapshot/merge support."""

    #: Histogram sample cap per name (counts keep accumulating beyond).
    MAX_SAMPLES = 65536

    def __init__(self):
        self._counters: Dict[str, int] = {}
        self._gauges: Dict[str, float] = {}
        self._histograms: Dict[str, List[float]] = {}

    def count(self, name: str, amount: int = 1) -> None:
        """Add *amount* to the counter *name* (created at 0)."""
        self._counters[name] = self._counters.get(name, 0) + int(amount)

    def gauge(self, name: str, value: float) -> None:
        """Set the gauge *name* to *value* (last write wins)."""
        self._gauges[name] = float(value)

    def observe(self, name: str, value: float) -> None:
        """Append one sample to the histogram *name* (bounded)."""
        samples = self._histograms.get(name)
        if samples is None:
            samples = []
            self._histograms[name] = samples
        if len(samples) < self.MAX_SAMPLES:
            samples.append(float(value))

    def counters(self) -> Dict[str, int]:
        """A copy of all counters."""
        return dict(self._counters)

    def gauges(self) -> Dict[str, float]:
        """A copy of all gauges."""
        return dict(self._gauges)

    def histogram(self, name: str) -> List[float]:
        """A copy of the samples recorded under *name* (maybe empty)."""
        return list(self._histograms.get(name, ()))

    def histogram_summaries(self) -> Dict[str, Dict[str, float]]:
        """Per-histogram ``{"count", "mean", "p95"}`` summaries.

        The compact reporting view for surfaces (like the service
        ``stats`` operation) that want latency shapes without shipping
        every raw sample.  ``p95`` uses the nearest-rank percentile of
        the retained samples.
        """
        summaries: Dict[str, Dict[str, float]] = {}
        for name, samples in self._histograms.items():
            if not samples:
                continue
            ordered = sorted(samples)
            rank = max(0, min(len(ordered) - 1, int(0.95 * len(ordered))))
            summaries[name] = {
                "count": float(len(ordered)),
                "mean": sum(ordered) / len(ordered),
                "p95": ordered[rank],
            }
        return summaries

    def absorb_profiler(self, stats: Mapping[str, object]) -> None:
        """Fold :meth:`repro.utils.profiling.Profiler.stats` output in.

        Each stage label becomes a ``stage.<label>.calls`` counter and a
        ``stage.<label>.mean_ms`` histogram sample, so run metrics and
        wall-clock profiling share one report surface.
        """
        for label, stat in stats.items():
            self.count(f"stage.{label}.calls", stat.count)
            self.observe(f"stage.{label}.mean_ms", stat.mean_ms)

    def snapshot(self) -> Dict[str, object]:
        """A picklable plain-dict copy of the registry's state."""
        return {
            "counters": dict(self._counters),
            "gauges": dict(self._gauges),
            "histograms": {k: list(v) for k, v in self._histograms.items()},
        }

    def merge(self, snapshot: Mapping[str, object]) -> None:
        """Fold a :meth:`snapshot` in: counters add, gauges last-win,
        histogram samples extend (bounded)."""
        for name, amount in snapshot.get("counters", {}).items():
            self.count(name, amount)
        for name, value in snapshot.get("gauges", {}).items():
            self.gauge(name, value)
        for name, samples in snapshot.get("histograms", {}).items():
            mine = self._histograms.get(name)
            if mine is None:
                mine = []
                self._histograms[name] = mine
            room = self.MAX_SAMPLES - len(mine)
            if room > 0:
                mine.extend(float(v) for v in samples[:room])

    def reset(self) -> None:
        """Drop every recorded metric."""
        self._counters.clear()
        self._gauges.clear()
        self._histograms.clear()
