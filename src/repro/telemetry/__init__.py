"""Structured run telemetry: events, manifests, metrics, trace files.

The observability layer of the reproduction (ROADMAP: "production-scale,
observable, fast").  Four pieces compose:

- **events** (:mod:`repro.telemetry.events`) — a schema-versioned,
  closed set of event names (cycle start/end, knob reconfiguration,
  identifier invocation, fault activation/clearing, degraded-mode
  transitions) with required-field validation;
- **recorder** (:mod:`repro.telemetry.recorder`) — the shared no-op
  singleton activation pattern (identical to
  :mod:`repro.utils.profiling`): disabled telemetry costs the hot loop
  one ``None`` check per hook and simulated traces stay bit-identical
  either way;
- **manifest** (:mod:`repro.telemetry.manifest`) — the provenance
  record (config hash, package version, RNG streams, env knobs,
  wall-clock bounds) attached to every ``HilResult`` and
  characterization artifact;
- **trace** (:mod:`repro.telemetry.trace`) — atomic JSONL persistence
  plus :func:`load_trace` / :func:`diff_traces` for the ``python -m
  repro trace`` CLI.

Metrics recorded into the active recorder's
:class:`~repro.telemetry.metrics.MetricsRegistry` survive process-pool
fan-out: :func:`repro.utils.parallel.parallel_map` funnels per-worker
snapshots back to the parent registry.
"""

from repro.telemetry.events import (
    CYCLE_END,
    CYCLE_START,
    DEGRADED_ENTER,
    DEGRADED_EXIT,
    EVENT_SCHEMA,
    FAULT_ACTIVATED,
    FAULT_CLEARED,
    IDENTIFIER_INVOKED,
    KNOBS_RECONFIGURED,
    RUN_MANIFEST,
    SCHEMA_VERSION,
)
from repro.telemetry.manifest import ENV_KNOBS, build_manifest
from repro.telemetry.metrics import MetricsRegistry
from repro.telemetry.recorder import (
    TelemetryRecorder,
    activate,
    activated,
    deactivate,
    get_active,
    telemetry_enabled,
)
from repro.telemetry.trace import RunTrace, diff_traces, load_trace, write_trace

__all__ = [
    "SCHEMA_VERSION",
    "RUN_MANIFEST",
    "CYCLE_START",
    "CYCLE_END",
    "KNOBS_RECONFIGURED",
    "IDENTIFIER_INVOKED",
    "FAULT_ACTIVATED",
    "FAULT_CLEARED",
    "DEGRADED_ENTER",
    "DEGRADED_EXIT",
    "EVENT_SCHEMA",
    "ENV_KNOBS",
    "TelemetryRecorder",
    "MetricsRegistry",
    "RunTrace",
    "telemetry_enabled",
    "activate",
    "deactivate",
    "get_active",
    "activated",
    "build_manifest",
    "write_trace",
    "load_trace",
    "diff_traces",
]
