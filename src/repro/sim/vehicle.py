"""Nonlinear dynamic bicycle vehicle model (the Webots BMW X5 substitute).

The lateral dynamics follow the classic linear-tire dynamic bicycle
model the paper cites ([13], Kosecka et al.), integrated with RK4 at the
simulation step (5 ms in the paper's Webots setup).  The steering
actuator is modelled per the paper's reference [18] as a first-order lag
with rate and angle limits, and the longitudinal speed tracks its target
with a bounded acceleration so the controller's speed knob changes are
not instantaneous teleports.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.sim.geometry import Pose2D, wrap_angle
from repro.utils.validation import check_positive

__all__ = ["VehicleParams", "VehicleState", "Vehicle"]


@dataclass(frozen=True)
class VehicleParams:
    """Physical parameters of a BMW-X5-class SUV.

    Attributes
    ----------
    mass:
        Vehicle mass in kg.
    inertia_z:
        Yaw moment of inertia in kg m^2.
    dist_front, dist_rear:
        CoG to front/rear axle distances in metres.
    cornering_front, cornering_rear:
        Tire cornering stiffnesses in N/rad (per axle).
    steer_lag:
        First-order steering-actuator time constant in seconds.
    steer_rate_limit:
        Maximum steering rate in rad/s.
    steer_limit:
        Maximum steering angle in rad.
    accel_limit:
        Longitudinal acceleration bound used when the speed knob changes.
    """

    mass: float = 2100.0
    inertia_z: float = 3900.0
    dist_front: float = 1.33
    dist_rear: float = 1.62
    cornering_front: float = 1.2e5
    cornering_rear: float = 1.4e5
    steer_lag: float = 0.06
    steer_rate_limit: float = 0.7
    steer_limit: float = 0.55
    accel_limit: float = 2.0

    def __post_init__(self):
        for name in (
            "mass",
            "inertia_z",
            "dist_front",
            "dist_rear",
            "cornering_front",
            "cornering_rear",
            "steer_lag",
            "steer_rate_limit",
            "steer_limit",
            "accel_limit",
        ):
            check_positive(name, getattr(self, name))

    @property
    def wheelbase(self) -> float:
        """Front-to-rear axle distance in metres."""
        return self.dist_front + self.dist_rear


@dataclass
class VehicleState:
    """Full simulation state of the vehicle.

    ``pose`` is the world pose of the CoG; ``lateral_velocity`` and
    ``yaw_rate`` are the body-frame lateral dynamics states; ``steer`` is
    the *actual* (post-actuator) steering angle; ``speed`` the current
    longitudinal speed in m/s.
    """

    pose: Pose2D
    lateral_velocity: float = 0.0
    yaw_rate: float = 0.0
    steer: float = 0.0
    speed: float = 50.0 / 3.6


class Vehicle:
    """Integrates the bicycle model at a fixed simulation step."""

    #: Below this speed the linear-tire model is singular; clamp.
    MIN_SPEED = 1.0

    def __init__(self, params: VehicleParams, state: VehicleState):
        self.params = params
        self.state = state
        self.target_speed = state.speed

    def set_target_speed(self, speed_mps: float) -> None:
        """Command a new longitudinal speed (tracked with bounded accel)."""
        if speed_mps < self.MIN_SPEED:
            raise ValueError(f"target speed must be >= {self.MIN_SPEED} m/s")
        self.target_speed = float(speed_mps)

    def step(self, dt: float, steer_command: float) -> VehicleState:
        """Advance the simulation by *dt* seconds under *steer_command*.

        Returns the new state (also stored on ``self.state``).
        """
        check_positive("dt", dt)
        p = self.params
        s = self.state

        # Longitudinal speed tracking with bounded acceleration.
        dv = np.clip(self.target_speed - s.speed, -p.accel_limit * dt, p.accel_limit * dt)
        speed = max(self.MIN_SPEED, s.speed + dv)

        # Steering actuator: saturation -> first-order lag -> rate limit.
        command = float(np.clip(steer_command, -p.steer_limit, p.steer_limit))
        alpha = 1.0 - np.exp(-dt / p.steer_lag)
        desired_delta = alpha * (command - s.steer)
        max_delta = p.steer_rate_limit * dt
        steer = s.steer + float(np.clip(desired_delta, -max_delta, max_delta))
        steer = float(np.clip(steer, -p.steer_limit, p.steer_limit))

        # RK4 on [x, y, heading, v_y, r] with steer and speed held.
        y0 = np.array(
            [s.pose.x, s.pose.y, s.pose.heading, s.lateral_velocity, s.yaw_rate]
        )
        k1 = self._derivatives(y0, steer, speed)
        k2 = self._derivatives(y0 + 0.5 * dt * k1, steer, speed)
        k3 = self._derivatives(y0 + 0.5 * dt * k2, steer, speed)
        k4 = self._derivatives(y0 + dt * k3, steer, speed)
        y1 = y0 + (dt / 6.0) * (k1 + 2 * k2 + 2 * k3 + k4)

        self.state = VehicleState(
            pose=Pose2D(float(y1[0]), float(y1[1]), wrap_angle(float(y1[2]))),
            lateral_velocity=float(y1[3]),
            yaw_rate=float(y1[4]),
            steer=steer,
            speed=float(speed),
        )
        return self.state

    def _derivatives(self, y: np.ndarray, steer: float, speed: float) -> np.ndarray:
        p = self.params
        _, _, heading, v_y, r = y
        v = max(speed, self.MIN_SPEED)
        cf, cr = p.cornering_front, p.cornering_rear
        lf, lr = p.dist_front, p.dist_rear

        dv_y = (
            -(cf + cr) / (p.mass * v) * v_y
            + ((cr * lr - cf * lf) / (p.mass * v) - v) * r
            + cf / p.mass * steer
        )
        dr = (
            (cr * lr - cf * lf) / (p.inertia_z * v) * v_y
            - (cf * lf**2 + cr * lr**2) / (p.inertia_z * v) * r
            + cf * lf / p.inertia_z * steer
        )
        dx = v * np.cos(heading) - v_y * np.sin(heading)
        dy = v * np.sin(heading) + v_y * np.cos(heading)
        return np.array([dx, dy, r, dv_y, dr])

    @staticmethod
    def step_batch(
        params: VehicleParams,
        dt: float,
        state: np.ndarray,
        speed: np.ndarray,
        steer: np.ndarray,
        target_speed: np.ndarray,
        command: np.ndarray,
    ):
        """Vectorized :meth:`step` over stacked independent vehicles.

        *state* is ``(K, 5)`` columns ``[x, y, heading, v_y, r]``;
        *speed*, *steer*, *target_speed*, *command* are ``(K,)``.  All
        vehicles share *params* and *dt*.  Returns the new
        ``(state, speed, steer)`` without touching any ``Vehicle``
        object.  Every operation of the scalar path is an elementwise
        ufunc, so each lane's update is bit-identical to calling
        :meth:`step` on that lane alone.
        """
        # np.minimum/np.maximum pairs instead of np.clip: same result
        # element for element, without np.clip's per-call dispatch cost
        # (which the serial reference path keeps).
        p = params
        a_lim = p.accel_limit * dt
        dv = np.minimum(np.maximum(target_speed - speed, -a_lim), a_lim)
        new_speed = np.maximum(Vehicle.MIN_SPEED, speed + dv)

        cmd = np.minimum(np.maximum(command, -p.steer_limit), p.steer_limit)
        alpha = 1.0 - np.exp(-dt / p.steer_lag)
        desired_delta = alpha * (cmd - steer)
        max_delta = p.steer_rate_limit * dt
        new_steer = steer + np.minimum(
            np.maximum(desired_delta, -max_delta), max_delta
        )
        new_steer = np.minimum(np.maximum(new_steer, -p.steer_limit), p.steer_limit)

        y0 = state
        k1 = Vehicle._derivatives_batch(p, y0, new_steer, new_speed)
        k2 = Vehicle._derivatives_batch(p, y0 + 0.5 * dt * k1, new_steer, new_speed)
        k3 = Vehicle._derivatives_batch(p, y0 + 0.5 * dt * k2, new_steer, new_speed)
        k4 = Vehicle._derivatives_batch(p, y0 + dt * k3, new_steer, new_speed)
        y1 = y0 + (dt / 6.0) * (k1 + 2 * k2 + 2 * k3 + k4)
        y1[:, 2] = wrap_angle(y1[:, 2])
        return y1, new_speed, new_steer

    @staticmethod
    def _derivatives_batch(
        p: VehicleParams, y: np.ndarray, steer: np.ndarray, speed: np.ndarray
    ) -> np.ndarray:
        heading = y[:, 2]
        v_y = y[:, 3]
        r = y[:, 4]
        v = np.maximum(speed, Vehicle.MIN_SPEED)
        cf, cr = p.cornering_front, p.cornering_rear
        lf, lr = p.dist_front, p.dist_rear

        dv_y = (
            -(cf + cr) / (p.mass * v) * v_y
            + ((cr * lr - cf * lf) / (p.mass * v) - v) * r
            + cf / p.mass * steer
        )
        dr = (
            (cr * lr - cf * lf) / (p.inertia_z * v) * v_y
            - (cf * lf**2 + cr * lr**2) / (p.inertia_z * v) * r
            + cf * lf / p.inertia_z * steer
        )
        dx = v * np.cos(heading) - v_y * np.sin(heading)
        dy = v * np.sin(heading) + v_y * np.cos(heading)
        out = np.empty_like(y)
        out[:, 0] = dx
        out[:, 1] = dy
        out[:, 2] = r
        out[:, 3] = dv_y
        out[:, 4] = dr
        return out

    def clone(self) -> "Vehicle":
        """An independent copy (used by Monte-Carlo characterization)."""
        state = VehicleState(
            pose=self.state.pose,
            lateral_velocity=self.state.lateral_velocity,
            yaw_rate=self.state.yaw_rate,
            steer=self.state.steer,
            speed=self.state.speed,
        )
        twin = Vehicle(self.params, state)
        twin.target_speed = self.target_speed
        return twin
