"""Planar geometry primitives shared by the track, renderer and vehicle."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

__all__ = ["Pose2D", "wrap_angle", "rotation_matrix", "transform_points"]


def wrap_angle(angle):
    """Wrap an angle (scalar or array) to the interval ``(-pi, pi]``."""
    wrapped = np.mod(np.asarray(angle) + np.pi, 2.0 * np.pi) - np.pi
    # np.mod maps exact +pi to -pi; keep +pi representable.
    wrapped = np.where(wrapped == -np.pi, np.pi, wrapped)
    if np.isscalar(angle) or np.ndim(angle) == 0:
        return float(wrapped)
    return wrapped


def rotation_matrix(angle: float) -> np.ndarray:
    """2x2 counter-clockwise rotation matrix."""
    c, s = np.cos(angle), np.sin(angle)
    return np.array([[c, -s], [s, c]])


@dataclass(frozen=True)
class Pose2D:
    """A planar pose: position ``(x, y)`` in metres, heading in radians.

    Heading follows the usual mathematical convention (0 along +x,
    counter-clockwise positive).
    """

    x: float
    y: float
    heading: float

    def position(self) -> np.ndarray:
        """Position as a length-2 array."""
        return np.array([self.x, self.y])

    def forward(self) -> np.ndarray:
        """Unit vector along the heading."""
        return np.array([np.cos(self.heading), np.sin(self.heading)])

    def left(self) -> np.ndarray:
        """Unit vector 90 degrees to the left of the heading."""
        return np.array([-np.sin(self.heading), np.cos(self.heading)])

    def transform_to_world(self, local_xy: np.ndarray) -> np.ndarray:
        """Map points from this pose's local frame to the world frame.

        Local frame: x forward, y left.  *local_xy* is ``(..., 2)``.
        """
        pts = np.asarray(local_xy, dtype=float)
        rot = rotation_matrix(self.heading)
        return pts @ rot.T + self.position()

    def transform_to_local(self, world_xy: np.ndarray) -> np.ndarray:
        """Map points from the world frame into this pose's local frame."""
        pts = np.asarray(world_xy, dtype=float) - self.position()
        rot = rotation_matrix(-self.heading)
        return pts @ rot.T

    def advanced(self, forward: float, lateral: float = 0.0) -> "Pose2D":
        """A pose translated in the local frame, keeping the heading."""
        pos = self.position() + forward * self.forward() + lateral * self.left()
        return Pose2D(float(pos[0]), float(pos[1]), self.heading)

    def as_tuple(self) -> Tuple[float, float, float]:
        """The pose as an ``(x, y, heading)`` tuple."""
        return (self.x, self.y, self.heading)
