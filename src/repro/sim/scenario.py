"""Compact scenario DSL for building custom evaluation tracks.

Downstream users (and our own tests) often want a one-liner track:
``parse_scenario("S100 R60:80 S50@night L50:90/wd")`` builds a track of

- 100 m straight,
- a right turn of radius 60 m and arc length 80 m,
- 50 m straight at night,
- a left turn of radius 50 m, arc 90 m, with a white-dotted left lane.

Grammar (whitespace-separated sections)::

    section   := shape [ "/" lane ] [ "@" scene ]
    shape     := "S" length | ("L" | "R") radius ":" length
    lane      := "wc" | "wd" | "yc" | "yd"     (white/yellow x cont/dotted,
                                                "yy" = yellow double)
    scene     := "day" | "night" | "dark" | "dawn" | "dusk"

Unspecified lane/scene inherit from the previous section (first section
defaults to white continuous, day).
"""

from __future__ import annotations

import re
from typing import List

from repro.core.situation import (
    LaneColor,
    LaneForm,
    RoadLayout,
    Scene,
    Situation,
)
from repro.sim.geometry import Pose2D
from repro.sim.track import SectorSpec, Track

__all__ = ["parse_scenario", "ScenarioError"]


class ScenarioError(ValueError):
    """Raised for malformed scenario strings."""


_SECTION_RE = re.compile(
    r"^(?P<shape>[SLR])(?P<a>\d+(?:\.\d+)?)(?::(?P<b>\d+(?:\.\d+)?))?"
    r"(?:/(?P<lane>[a-z]{2}))?"
    r"(?:@(?P<scene>[a-z]+))?$"
)

_LANE_CODES = {
    "wc": (LaneColor.WHITE, LaneForm.CONTINUOUS),
    "wd": (LaneColor.WHITE, LaneForm.DOTTED),
    "yc": (LaneColor.YELLOW, LaneForm.CONTINUOUS),
    "yd": (LaneColor.YELLOW, LaneForm.DOTTED),
    "yy": (LaneColor.YELLOW, LaneForm.DOUBLE),
    "ww": (LaneColor.WHITE, LaneForm.DOUBLE),
}


def parse_scenario(spec: str, start: Pose2D = Pose2D(0.0, 0.0, 0.0)) -> Track:
    """Build a :class:`~repro.sim.track.Track` from a scenario string."""
    sections = spec.split()
    if not sections:
        raise ScenarioError("empty scenario")

    lane = (LaneColor.WHITE, LaneForm.CONTINUOUS)
    scene = Scene.DAY
    specs: List[SectorSpec] = []
    for section in sections:
        match = _SECTION_RE.match(section)
        if match is None:
            raise ScenarioError(f"malformed section {section!r}")
        shape = match.group("shape")
        a = float(match.group("a"))
        b = match.group("b")

        if match.group("lane"):
            code = match.group("lane")
            if code not in _LANE_CODES:
                raise ScenarioError(
                    f"unknown lane code {code!r} in {section!r} "
                    f"(expected one of {sorted(_LANE_CODES)})"
                )
            lane = _LANE_CODES[code]
        if match.group("scene"):
            try:
                scene = Scene(match.group("scene"))
            except ValueError as exc:
                raise ScenarioError(
                    f"unknown scene {match.group('scene')!r} in {section!r}"
                ) from exc

        if shape == "S":
            if b is not None:
                raise ScenarioError(f"straight section {section!r} takes one number")
            layout = RoadLayout.STRAIGHT
            curvature = 0.0
            length = a
        else:
            if b is None:
                raise ScenarioError(
                    f"turn section {section!r} needs radius:length"
                )
            radius = a
            length = float(b)
            if radius <= 0:
                raise ScenarioError(f"radius must be > 0 in {section!r}")
            layout = RoadLayout.LEFT if shape == "L" else RoadLayout.RIGHT
            curvature = (1.0 if shape == "L" else -1.0) / radius

        situation = Situation(layout, lane[0], lane[1], scene)
        specs.append(SectorSpec(length, curvature, situation))

    return Track.from_sections(specs, start)
