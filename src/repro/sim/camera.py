"""Pinhole camera model with a precomputed ground-plane back-projection.

The camera is rigidly mounted on the vehicle: at height ``mount_height``
above the road, pitched down by ``pitch`` radians, looking along the
vehicle's forward axis.  Because the mounting is rigid, the map from
pixels to ground-plane points *in the vehicle frame* is constant and is
precomputed once; per-frame rendering then only has to transform those
points into the world and look up road coordinates.

Conventions
-----------
- Vehicle frame: x forward, y left (metres on the ground plane).
- Image frame: ``u`` column (0 at the left), ``v`` row (0 at the top).
- ``pitch`` is positive downwards.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from repro.utils.validation import check_positive

__all__ = ["CameraModel", "GroundMap"]


@dataclass(frozen=True)
class GroundMap:
    """Precomputed pixel-to-ground geometry for a fixed camera.

    Attributes
    ----------
    forward, lateral:
        ``(H, W)`` arrays with the vehicle-frame coordinates of each
        pixel's ground intersection (NaN above the horizon).
    on_ground:
        ``(H, W)`` bool mask of pixels that hit the ground within
        ``max_distance``.
    lateral_footprint:
        ``(H, W)`` approximate lateral ground extent of one pixel in
        metres, used for anti-aliased lane-marking coverage.
    forward_footprint:
        Same for the longitudinal direction (dash-pattern anti-aliasing).
    """

    forward: np.ndarray
    lateral: np.ndarray
    on_ground: np.ndarray
    lateral_footprint: np.ndarray
    forward_footprint: np.ndarray


@dataclass(frozen=True)
class CameraModel:
    """Intrinsics + rigid mounting of the forward-facing camera.

    The paper evaluates at 512x256; tests use smaller frames for speed.
    ``focal_px`` defaults to ``width / 2`` (a 90-degree horizontal FOV).
    """

    width: int = 512
    height: int = 256
    mount_height: float = 1.3
    pitch: float = np.deg2rad(4.0)
    focal_px: float = 0.0
    max_distance: float = 90.0
    min_distance: float = 1.5

    def __post_init__(self):
        check_positive("width", self.width)
        check_positive("height", self.height)
        check_positive("mount_height", self.mount_height)
        check_positive("max_distance", self.max_distance)
        if self.focal_px <= 0:
            object.__setattr__(self, "focal_px", self.width / 2.0)

    @property
    def cx(self) -> float:
        """Horizontal principal point (pixels)."""
        return (self.width - 1) / 2.0

    @property
    def cy(self) -> float:
        """Vertical principal point (pixels)."""
        return (self.height - 1) / 2.0

    def ground_map(self) -> GroundMap:
        """Back-project every pixel onto the ground plane (vehicle frame).

        Arrays are float32: the renderer is the per-frame hot path and
        single precision is ample for centimetre-scale ground geometry.
        """
        u = np.arange(self.width, dtype=np.float32)
        v = np.arange(self.height, dtype=np.float32)
        uu, vv = np.meshgrid(u, v)
        # Camera-frame ray directions (z optical axis, x right, y down).
        dx = (uu - self.cx) / self.focal_px
        dy = (vv - self.cy) / self.focal_px
        cos_p = np.float32(np.cos(self.pitch))
        sin_p = np.float32(np.sin(self.pitch))
        # Rotate by pitch into the vehicle frame (X fwd, Y left, Z up).
        dir_fwd = cos_p - dy * sin_p
        dir_up = -sin_p - dy * cos_p
        dir_left = -dx

        below_horizon = dir_up < -1e-9
        t = np.where(
            below_horizon,
            np.float32(self.mount_height) / np.maximum(-dir_up, np.float32(1e-12)),
            np.float32(np.nan),
        )
        forward = t * dir_fwd
        lateral = t * dir_left
        on_ground = (
            below_horizon
            & (forward >= self.min_distance)
            & (forward <= self.max_distance)
        )
        forward = np.where(on_ground, forward, np.float32(np.nan))
        lateral = np.where(on_ground, lateral, np.float32(np.nan))

        lat_fp = self._footprint(lateral, axis=1)
        fwd_fp = self._footprint(forward, axis=0)
        return GroundMap(forward, lateral, on_ground, lat_fp, fwd_fp)

    @staticmethod
    def _footprint(coords: np.ndarray, axis: int) -> np.ndarray:
        """Per-pixel ground extent estimated from neighbour differences."""
        diff = np.abs(np.diff(coords, axis=axis))
        pad = [(0, 0), (0, 0)]
        pad[axis] = (0, 1)
        fp = np.pad(diff, pad, mode="edge")
        return np.where(np.isfinite(fp), fp, 0.0)

    def project(self, forward: np.ndarray, lateral: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        """Project vehicle-frame ground points to pixel coordinates.

        Parameters
        ----------
        forward, lateral:
            Vehicle-frame ground coordinates in metres (broadcastable).

        Returns
        -------
        (u, v):
            Pixel coordinates (float; may fall outside the frame).
        """
        fwd = np.asarray(forward, dtype=float)
        lat = np.asarray(lateral, dtype=float)
        cos_p, sin_p = np.cos(self.pitch), np.sin(self.pitch)
        # Vehicle-frame point (fwd, lat, -h) relative to the camera, in
        # camera coordinates (x right, y down, z optical axis).
        x_c = -lat
        y_c = -fwd * sin_p + self.mount_height * cos_p
        z_c = fwd * cos_p + self.mount_height * sin_p
        with np.errstate(divide="ignore", invalid="ignore"):
            u = self.cx + self.focal_px * x_c / z_c
            v = self.cy + self.focal_px * y_c / z_c
        return u, v

    def horizon_row(self) -> int:
        """The image row of the horizon (ground visible strictly below)."""
        return int(np.ceil(self.cy - self.focal_px * np.tan(self.pitch)))

    def scaled(self, width: int, height: int) -> "CameraModel":
        """The same camera re-sampled to a different resolution."""
        return CameraModel(
            width=width,
            height=height,
            mount_height=self.mount_height,
            pitch=self.pitch,
            focal_px=self.focal_px * width / self.width,
            max_distance=self.max_distance,
            min_distance=self.min_distance,
        )
