"""Simulation substrate: replaces the paper's Webots HiL plant.

Contains road/track geometry, a projective road-scene renderer with a
camera sensor model, and a nonlinear bicycle vehicle model integrated at
the paper's 5 ms simulation step.
"""

from repro.sim.geometry import Pose2D, wrap_angle
from repro.sim.track import Track, TrackSegment, SectorSpec
from repro.sim.camera import CameraModel
from repro.sim.photometry import ScenePhotometry, photometry_for
from repro.sim.renderer import RoadSceneRenderer, RenderOptions
from repro.sim.vehicle import Vehicle, VehicleParams, VehicleState
from repro.sim.imu import ImuModel, ImuSpec
from repro.sim.scenario import parse_scenario, ScenarioError
from repro.sim.world import (
    fig7_track,
    fig7_sector_situations,
    static_situation_track,
    DEFAULT_TURN_RADIUS,
)

__all__ = [
    "Pose2D",
    "wrap_angle",
    "Track",
    "TrackSegment",
    "SectorSpec",
    "CameraModel",
    "ScenePhotometry",
    "photometry_for",
    "RoadSceneRenderer",
    "RenderOptions",
    "Vehicle",
    "VehicleParams",
    "VehicleState",
    "ImuModel",
    "ImuSpec",
    "parse_scenario",
    "ScenarioError",
    "fig7_track",
    "fig7_sector_situations",
    "static_situation_track",
    "DEFAULT_TURN_RADIUS",
]
