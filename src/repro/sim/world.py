"""World models: the Fig. 7 dynamic track and static situation tracks.

The Fig. 7 case study is a nine-sector circuit exercising dynamic road
layout changes, lane type & color changes, and a night-to-dark scene
transition at the 8 -> 9 boundary, exactly as described in Sec. IV-D:

=======  ===========================================
sector   situation
=======  ===========================================
1        straight, white continuous, day
2        right turn, white continuous, day
3        straight, yellow continuous, day
4        left turn, white continuous, day
5        straight, yellow double, day
6        left turn, white dotted, day  (both lanes dotted)
7        right turn, yellow continuous, day
8        straight, white continuous, night
9        straight, white continuous, dark
=======  ===========================================

Sector 2 is the first turn (case 1 crashes at the 1 -> 2 boundary in the
paper); sector 6 combines a turn with dotted lanes (case 2 crashes at
5 -> 6); sectors 4 and 6 are the left turns the variable-invocation
scheme struggles with.
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.core.situation import RoadLayout, Situation
from repro.sim.geometry import Pose2D
from repro.sim.track import SectorSpec, Track

__all__ = [
    "DEFAULT_TURN_RADIUS",
    "layout_curvature",
    "fig7_sector_situations",
    "fig7_track",
    "static_situation_track",
]

#: Turn radius used for left/right sectors (gentle highway-ramp scale).
DEFAULT_TURN_RADIUS = 50.0

#: Arc length of straight / turning sectors on the Fig. 7 track.
_STRAIGHT_LENGTH = 110.0
_TURN_LENGTH = 85.0


def layout_curvature(layout: RoadLayout, radius: float = DEFAULT_TURN_RADIUS) -> float:
    """Signed centerline curvature implied by a road layout."""
    if layout is RoadLayout.STRAIGHT:
        return 0.0
    sign = 1.0 if layout is RoadLayout.LEFT else -1.0
    return sign / radius


def fig7_sector_situations() -> List[Situation]:
    """The nine sector situations of the Fig. 7 case-study track."""
    from repro.core.situation import situation_by_index

    # Table III indices of the nine sectors (see module docstring).
    indices = [1, 8, 3, 15, 4, 20, 9, 5, 7]
    return [situation_by_index(i) for i in indices]


def fig7_track(
    turn_radius: float = DEFAULT_TURN_RADIUS,
    straight_length: float = _STRAIGHT_LENGTH,
    turn_length: float = _TURN_LENGTH,
) -> Track:
    """Build the nine-sector dynamic case-study track of Fig. 7."""
    sections = []
    for situation in fig7_sector_situations():
        curvature = layout_curvature(situation.layout, turn_radius)
        length = (
            straight_length
            if situation.layout is RoadLayout.STRAIGHT
            else turn_length
        )
        sections.append(SectorSpec(length, curvature, situation))
    return Track.from_sections(sections, Pose2D(0.0, 0.0, 0.0))


def static_situation_track(
    situation: Situation,
    length: float = 250.0,
    turn_radius: float = DEFAULT_TURN_RADIUS,
    lead_in: float = 35.0,
) -> Track:
    """A track for static per-situation evaluation (Fig. 6).

    Turn situations are entered from a straight *lead-in* stretch with
    the same lane/scene appearance (labelled with the straight layout so
    situation identification matches the geometry) — a vehicle cannot
    materialize mid-curve, and the turn entry is part of what a turn
    situation evaluates.

    Curved sectors are capped below a half circle: past that point the
    arc's Frenet projection becomes ambiguous (a world point maps to two
    arc lengths), which no realistic road needs.
    """
    curvature = layout_curvature(situation.layout, turn_radius)
    sections = []
    if situation.layout is not RoadLayout.STRAIGHT:
        length = min(length, 0.75 * np.pi * turn_radius)
        if lead_in > 0.0:
            entry_situation = Situation(
                RoadLayout.STRAIGHT,
                situation.lane_color,
                situation.lane_form,
                situation.scene,
            )
            sections.append(SectorSpec(lead_in, 0.0, entry_situation))
    sections.append(SectorSpec(length, curvature, situation))
    return Track.from_sections(sections, Pose2D(0.0, 0.0, 0.0))
