"""Road centerline geometry: piecewise line/arc tracks with per-sector
situations.

A :class:`Track` is a chain of :class:`TrackSegment` objects, each a
straight line (curvature 0) or a constant-curvature arc.  Positive
curvature turns left.  Each segment carries the :class:`~repro.core.situation.Situation`
that holds while the vehicle drives it, which is how the Fig. 7 world
model encodes its nine sectors.

The essential operations are *Frenet projections*: mapping world points
to ``(s, d)`` road coordinates (arc length along the centerline, signed
lateral offset, positive left).  The renderer projects every ground-plane
pixel this way; the HiL engine projects the vehicle pose and the
look-ahead point to obtain the ground-truth lateral deviation
``y_L`` used by the QoC metric (Eq. 1 of the paper).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.core.situation import Situation
from repro.sim.geometry import Pose2D, wrap_angle

__all__ = ["SectorSpec", "TrackSegment", "Track"]

#: Curvatures below this magnitude are treated as straight lines.
_STRAIGHT_EPS = 1e-9


@dataclass(frozen=True)
class SectorSpec:
    """Declarative description of one track sector.

    Parameters
    ----------
    length:
        Arc length of the sector in metres.
    curvature:
        Signed centerline curvature in 1/m (positive = left turn).
    situation:
        The situation active in this sector.
    """

    length: float
    curvature: float
    situation: Situation

    def __post_init__(self):
        if not self.length > 0:
            raise ValueError(f"sector length must be > 0, got {self.length}")


class TrackSegment:
    """One line or arc piece of a track centerline."""

    def __init__(
        self,
        start: Pose2D,
        length: float,
        curvature: float,
        situation: Situation,
        s_start: float,
    ):
        if length <= 0:
            raise ValueError(f"segment length must be > 0, got {length}")
        self.start = start
        self.length = float(length)
        self.curvature = float(curvature)
        self.situation = situation
        self.s_start = float(s_start)
        self._is_arc = abs(self.curvature) > _STRAIGHT_EPS
        if self._is_arc:
            radius = 1.0 / self.curvature
            self._center = start.position() + radius * start.left()
            self._start_angle = float(
                np.arctan2(
                    start.y - self._center[1], start.x - self._center[0]
                )
            )

    @property
    def s_end(self) -> float:
        """Arc length at the end of the segment."""
        return self.s_start + self.length

    @property
    def is_arc(self) -> bool:
        """Whether the segment is curved (vs a straight line)."""
        return self._is_arc

    def end_pose(self) -> Pose2D:
        """Pose at the end of the segment (start of the next one)."""
        return self.pose_at(self.length)

    def pose_at(self, s_local: float) -> Pose2D:
        """Centerline pose at local arc length *s_local* (may extrapolate)."""
        if not self._is_arc:
            return self.start.advanced(s_local)
        heading = wrap_angle(self.start.heading + self.curvature * s_local)
        angle = self._start_angle + self.curvature * s_local
        radius = 1.0 / self.curvature
        pos = self._center + abs(radius) * np.array([np.cos(angle), np.sin(angle)])
        return Pose2D(float(pos[0]), float(pos[1]), heading)

    def locate(self, points_xy: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        """Frenet-project world points onto this segment.

        Parameters
        ----------
        points_xy:
            Array of shape ``(..., 2)`` of world coordinates.

        Returns
        -------
        (s_local, d):
            Local arc length (0 at segment start, unclamped) and signed
            lateral offset (positive left of the travel direction).
        """
        pts = np.asarray(points_xy)
        if pts.dtype not in (np.float32, np.float64):
            pts = pts.astype(np.float64)
        dtype = pts.dtype
        if not self._is_arc:
            rel = pts - self.start.position().astype(dtype)
            t = self.start.forward().astype(dtype)
            n = self.start.left().astype(dtype)
            # Explicit mul/add instead of `rel @ t`: BLAS picks different
            # accumulation kernels for (2,) and (M, 2) operands, so matmul
            # is not shape-invariant at the last ulp — elementwise ufuncs
            # are, which keeps scalar and stacked projections bit-identical.
            s_local = rel[..., 0] * t[0] + rel[..., 1] * t[1]
            d = rel[..., 0] * n[0] + rel[..., 1] * n[1]
            return s_local, d
        v = pts - self._center.astype(dtype)
        r = np.hypot(v[..., 0], v[..., 1])
        d = dtype.type(1.0 / self.curvature) - dtype.type(np.sign(self.curvature)) * r
        angle = np.arctan2(v[..., 1], v[..., 0])
        sweep = wrap_angle(angle - dtype.type(self._start_angle))
        s_local = sweep / dtype.type(self.curvature)
        return np.asarray(s_local, dtype=dtype), np.asarray(d, dtype=dtype)


class Track:
    """A chain of :class:`TrackSegment` pieces forming a road centerline."""

    def __init__(self, segments: Sequence[TrackSegment]):
        if not segments:
            raise ValueError("a track needs at least one segment")
        self.segments: List[TrackSegment] = list(segments)
        self._s_bounds = np.array(
            [seg.s_start for seg in self.segments] + [self.segments[-1].s_end]
        )

    # -- construction ---------------------------------------------------

    @classmethod
    def from_sections(
        cls, sections: Sequence[SectorSpec], start: Optional[Pose2D] = None
    ) -> "Track":
        """Build a track by chaining sector specs head-to-tail."""
        if start is None:
            start = Pose2D(0.0, 0.0, 0.0)
        segments: List[TrackSegment] = []
        pose = start
        s = 0.0
        for spec in sections:
            seg = TrackSegment(pose, spec.length, spec.curvature, spec.situation, s)
            segments.append(seg)
            pose = seg.end_pose()
            s = seg.s_end
        return cls(segments)

    # -- queries ---------------------------------------------------------

    def to_config(self) -> List[dict]:
        """JSON-friendly geometry description (for cache hashing).

        One entry per segment — exact start pose, length, curvature and
        situation — so two tracks hash equal exactly when their
        centerlines and sector situations are identical.  Floats pass
        through ``repr`` round-trip-exact, keeping the hash faithful to
        the geometry the engine actually simulates.
        """
        return [
            {
                "start": [seg.start.x, seg.start.y, seg.start.heading],
                "length": seg.length,
                "curvature": seg.curvature,
                "situation": list(seg.situation.to_config()),
            }
            for seg in self.segments
        ]

    @property
    def length(self) -> float:
        """Total arc length of the track."""
        return float(self._s_bounds[-1])

    def segment_index_at(self, s) -> np.ndarray:
        """Index of the segment containing arc length *s* (clamped)."""
        idx = np.searchsorted(self._s_bounds, np.asarray(s, dtype=float), "right") - 1
        return np.clip(idx, 0, len(self.segments) - 1)

    def curvature_at(self, s) -> np.ndarray:
        """Centerline curvature at arc length *s* (vectorized)."""
        curvatures = np.array([seg.curvature for seg in self.segments])
        result = curvatures[self.segment_index_at(s)]
        if np.ndim(s) == 0:
            return float(result)
        return result

    def situation_at(self, s: float) -> Situation:
        """The situation active at arc length *s*."""
        return self.segments[int(self.segment_index_at(s))].situation

    def pose_at(self, s: float, d: float = 0.0) -> Pose2D:
        """World pose at road coordinates ``(s, d)``."""
        seg = self.segments[int(self.segment_index_at(s))]
        center = seg.pose_at(s - seg.s_start)
        if abs(d) < 1e-12:
            return center
        pos = center.position() + d * center.left()
        return Pose2D(float(pos[0]), float(pos[1]), center.heading)

    def frenet(
        self, x: float, y: float, s_hint: Optional[float] = None
    ) -> Tuple[float, float]:
        """Project a single world point to ``(s, d)`` road coordinates.

        When *s_hint* is given, only segments near the hint are searched,
        which is both faster and unambiguous on self-approaching tracks.
        """
        point = np.array([x, y])
        candidates = self._candidate_segments(s_hint)
        best: Optional[Tuple[float, float]] = None
        best_cost = np.inf
        for seg in candidates:
            s_local, d = seg.locate(point)
            s_local = float(s_local)
            d = float(d)
            overshoot = max(0.0, -s_local, s_local - seg.length)
            # Allow extrapolation off the first/last segment ends.
            if seg is self.segments[0]:
                overshoot = max(0.0, s_local - seg.length)
            if seg is self.segments[-1]:
                overshoot = max(0.0, -s_local)
            cost = overshoot + 1e-3 * abs(d)
            if cost < best_cost:
                best_cost = cost
                best = (seg.s_start + s_local, d)
        assert best is not None
        return best

    def frenet_batch(
        self, xs: np.ndarray, ys: np.ndarray, s_hints: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Project many world points to ``(s, d)``, one hint per point.

        Vectorized :meth:`frenet`: candidate segments come from each
        point's own hint window, per-segment projections run stacked,
        and the cost scan keeps the first strict minimum in the same
        ascending-segment order as the scalar loop — so every point's
        result is bit-identical to ``frenet(x, y, s_hint)``.
        """
        xs = np.asarray(xs, dtype=float)
        n_pts = xs.shape[0]
        pts = np.empty((n_pts, 2))
        pts[:, 0] = xs
        pts[:, 1] = ys
        # Inline segment_index_at without np.clip's dispatch overhead.
        idx = self._s_bounds.searchsorted(np.asarray(s_hints, dtype=float), "right") - 1
        idx = np.minimum(np.maximum(idx, 0), len(self.segments) - 1)
        lo = np.maximum(idx - 1, 0)
        hi = np.minimum(idx + 2, len(self.segments))
        best_cost = np.full(n_pts, np.inf)
        best_s = np.zeros(n_pts)
        best_d = np.zeros(n_pts)
        last = len(self.segments) - 1
        for k in range(3):
            ci = lo + k
            in_window = ci < hi
            if not in_window.any():
                break
            for seg_idx in np.unique(ci[in_window]):
                seg = self.segments[seg_idx]
                m = in_window & (ci == seg_idx)
                s_local, d = seg.locate(pts[m])
                overshoot = np.maximum(
                    0.0, np.maximum(-s_local, s_local - seg.length)
                )
                if seg_idx == 0:
                    overshoot = np.maximum(0.0, s_local - seg.length)
                if seg_idx == last:
                    overshoot = np.maximum(0.0, -s_local)
                cost = overshoot + 1e-3 * np.abs(d)
                better = cost < best_cost[m]
                rows = np.flatnonzero(m)[better]
                best_cost[rows] = cost[better]
                best_s[rows] = seg.s_start + s_local[better]
                best_d[rows] = d[better]
        return best_s, best_d

    def _candidate_segments(self, s_hint: Optional[float]) -> List[TrackSegment]:
        if s_hint is None:
            return self.segments
        idx = int(self.segment_index_at(s_hint))
        lo = max(0, idx - 1)
        hi = min(len(self.segments), idx + 2)
        return self.segments[lo:hi]

    def locate_points(
        self,
        points_xy: np.ndarray,
        s_window: Tuple[float, float],
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Frenet-project many world points, restricted to an s-window.

        Used by the renderer, which only needs road coordinates for ground
        points within the camera's look-ahead range.

        Parameters
        ----------
        points_xy:
            ``(..., 2)`` world coordinates.
        s_window:
            ``(s_min, s_max)`` arc-length window of interest.

        Returns
        -------
        (s, d, valid):
            Arrays of the points' arc lengths, lateral offsets, and a
            boolean mask marking points that fell inside some candidate
            segment (or its extrapolation at the track ends).
        """
        pts = np.asarray(points_xy)
        if pts.dtype not in (np.float32, np.float64):
            pts = pts.astype(np.float64)
        shape = pts.shape[:-1]
        s_out = np.full(shape, np.nan, dtype=pts.dtype)
        d_out = np.full(shape, np.nan, dtype=pts.dtype)
        valid = np.zeros(shape, dtype=bool)

        s_min, s_max = s_window
        for i, seg in enumerate(self.segments):
            if seg.s_end < s_min or seg.s_start > s_max:
                continue
            s_local, d = seg.locate(pts)
            inside = (s_local >= 0.0) & (s_local < seg.length)
            if i == 0:
                inside |= s_local < 0.0
            if i == len(self.segments) - 1:
                inside |= s_local >= seg.length
            take = inside & ~valid
            s_out[take] = seg.s_start + s_local[take]
            d_out[take] = d[take]
            valid |= take
        return s_out, d_out, valid

    def start_pose(self, d: float = 0.0) -> Pose2D:
        """World pose at the beginning of the track, offset *d* laterally."""
        return self.pose_at(0.0, d)
