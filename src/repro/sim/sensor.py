"""Camera sensor model: Bayer mosaic and noise injection.

The paper's ISP consumes RAW frames in the Bayer domain (Fig. 3a).  This
module turns the renderer's linear RGB radiance into a single-channel
RGGB Bayer mosaic with signal-dependent sensor noise, which
:mod:`repro.isp` then reconstructs.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

__all__ = [
    "BAYER_PATTERN",
    "bayer_channel_masks",
    "mosaic",
    "mosaic_batch",
    "add_sensor_noise",
    "blackout_frame",
    "band_frame",
]

#: RGGB: rows 0,2,... start R G, rows 1,3,... start G B.
BAYER_PATTERN = "RGGB"


def bayer_channel_masks(height: int, width: int) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Boolean masks (R, G, B) of an RGGB mosaic of the given size."""
    rows = np.arange(height)[:, None]
    cols = np.arange(width)[None, :]
    even_row = rows % 2 == 0
    even_col = cols % 2 == 0
    red = even_row & even_col
    blue = ~even_row & ~even_col
    green = ~(red | blue)
    return red, green, blue


def mosaic(rgb: np.ndarray) -> np.ndarray:
    """Subsample a linear ``(H, W, 3)`` RGB image to an RGGB Bayer plane."""
    if rgb.ndim != 3 or rgb.shape[2] != 3:
        raise ValueError(f"expected (H, W, 3) RGB image, got shape {rgb.shape}")
    height, width = rgb.shape[:2]
    raw = np.empty((height, width), dtype=rgb.dtype)
    raw[0::2, 0::2] = rgb[0::2, 0::2, 0]  # R
    raw[0::2, 1::2] = rgb[0::2, 1::2, 1]  # G
    raw[1::2, 0::2] = rgb[1::2, 0::2, 1]  # G
    raw[1::2, 1::2] = rgb[1::2, 1::2, 2]  # B
    return raw


def mosaic_batch(rgb: np.ndarray) -> np.ndarray:
    """Subsample a stacked ``(B, H, W, 3)`` RGB batch to RGGB planes.

    Pure strided assignment over the leading batch axis — each lane's
    plane is bitwise identical to :func:`mosaic` of that lane alone.
    """
    if rgb.ndim != 4 or rgb.shape[3] != 3:
        raise ValueError(f"expected (B, H, W, 3) RGB batch, got shape {rgb.shape}")
    batch, height, width = rgb.shape[:3]
    raw = np.empty((batch, height, width), dtype=rgb.dtype)
    raw[:, 0::2, 0::2] = rgb[:, 0::2, 0::2, 0]  # R
    raw[:, 0::2, 1::2] = rgb[:, 0::2, 1::2, 1]  # G
    raw[:, 1::2, 0::2] = rgb[:, 1::2, 0::2, 1]  # G
    raw[:, 1::2, 1::2] = rgb[:, 1::2, 1::2, 2]  # B
    return raw


def add_sensor_noise(
    raw: np.ndarray,
    rng: np.random.Generator,
    read_noise: float,
    shot_noise: float,
) -> np.ndarray:
    """Add read (Gaussian) and shot (signal-dependent) noise, clip to [0, 1].

    The shot-noise term scales with the square root of the signal, the
    standard approximation of Poisson photon noise in the continuous
    domain.
    """
    if read_noise < 0 or shot_noise < 0:
        raise ValueError("noise levels must be non-negative")
    signal = np.clip(raw, 0.0, None)
    sigma = np.sqrt(read_noise**2 + (shot_noise**2) * signal)
    dtype = raw.dtype if raw.dtype in (np.float32, np.float64) else np.float64
    noisy = signal + sigma * rng.standard_normal(raw.shape, dtype=dtype)
    return np.clip(noisy, 0.0, 1.0)


def blackout_frame(raw: np.ndarray) -> np.ndarray:
    """A fully dark frame of the same shape/dtype (sensor blackout fault).

    Models a sensor that stops integrating light (shutter stuck, power
    glitch, severe under-exposure): the readout still produces a frame,
    but it carries no scene information.
    """
    return np.zeros_like(raw)


def band_frame(
    raw: np.ndarray,
    rng: np.random.Generator,
    band_px: int = 8,
    strength: float = 0.85,
) -> np.ndarray:
    """Attenuate alternating horizontal row bands (readout banding fault).

    Models the row-banding artifact of a failing readout chain: every
    other band of ``band_px`` rows is attenuated by ``strength`` (1.0
    blanks the band entirely).  The band phase is drawn from *rng* per
    frame so the artifact crawls over the image the way real rolling
    banding does — pass a seeded generator for reproducible runs.
    """
    if band_px < 1:
        raise ValueError(f"band_px must be >= 1, got {band_px}")
    if not 0.0 <= strength <= 1.0:
        raise ValueError(f"strength must be in [0, 1], got {strength}")
    phase = int(rng.integers(2))
    rows = np.arange(raw.shape[0])
    mask = ((rows // band_px) + phase) % 2 == 0
    banded = raw.copy()
    banded[mask] *= 1.0 - strength
    return banded
