"""Inertial measurement model for the controller's body-frame feedback.

The LKAS controller consumes the body lateral velocity and yaw rate —
on a production vehicle these come from the ESC/IMU cluster, not from
the camera.  By default the HiL engine feeds the true values (the
paper's Webots setup does the same); this model adds the realistic
imperfections — white noise and a slowly-drifting bias — so their
effect on QoC can be studied.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from repro.sim.vehicle import VehicleState
from repro.utils.rng import derive_rng

__all__ = ["ImuModel", "ImuSpec"]


@dataclass(frozen=True)
class ImuSpec:
    """Noise/bias magnitudes of an automotive-grade IMU.

    Defaults are typical ESC-cluster numbers: yaw-rate noise ~0.2 deg/s
    RMS with a slowly wandering bias, lateral-velocity estimate noise a
    few cm/s.
    """

    lateral_velocity_noise: float = 0.03  # m/s RMS
    yaw_rate_noise: float = 0.0035  # rad/s RMS
    yaw_rate_bias_walk: float = 1e-4  # rad/s per sqrt(s)
    steer_noise: float = 0.002  # rad RMS (steering-angle sensor)

    def __post_init__(self):
        for name in (
            "lateral_velocity_noise",
            "yaw_rate_noise",
            "yaw_rate_bias_walk",
            "steer_noise",
        ):
            if getattr(self, name) < 0:
                raise ValueError(f"{name} must be >= 0")


class ImuModel:
    """Samples noisy body-frame measurements from the true state."""

    def __init__(self, spec: ImuSpec = ImuSpec(), seed: int = 0):
        self.spec = spec
        self._rng = derive_rng(seed, "imu")
        self._yaw_bias = 0.0

    def reset(self) -> None:
        """Clear the accumulated yaw-rate bias."""
        self._yaw_bias = 0.0

    def sample(
        self, state: VehicleState, dt: float
    ) -> Tuple[float, float, float]:
        """Measured ``(v_y, r, steer)`` for the current step.

        ``dt`` scales the yaw-bias random walk.
        """
        spec = self.spec
        self._yaw_bias += (
            spec.yaw_rate_bias_walk * np.sqrt(max(dt, 0.0)) * self._rng.standard_normal()
        )
        v_y = state.lateral_velocity + spec.lateral_velocity_noise * self._rng.standard_normal()
        r = state.yaw_rate + self._yaw_bias + spec.yaw_rate_noise * self._rng.standard_normal()
        steer = state.steer + spec.steer_noise * self._rng.standard_normal()
        return float(v_y), float(r), float(steer)
