"""Projective road-scene renderer (the Webots camera substitute).

For every frame the renderer:

1. transforms the camera's precomputed ground-plane pixel map into the
   world using the vehicle pose,
2. Frenet-projects those ground points onto the track centerline to get
   per-pixel road coordinates ``(s, d)``,
3. evaluates the lane-marking appearance field (color, dash pattern,
   single/double lines, per-sector lane types) with footprint-based
   anti-aliasing,
4. applies the scene photometry (exposure, illuminant tint, headlight
   falloff) of the sector the vehicle is in,
5. optionally mosaics to an RGGB Bayer RAW frame with sensor noise —
   the input the :mod:`repro.isp` pipeline expects.

The output RGB is *linear light*; the tone-mapping ISP stage is what
moves it to a display/perception-friendly domain, which is exactly why
skipping that stage hurts low-light situations in the reproduction.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.core.situation import LaneColor, LaneForm, Scene
from repro.sim.camera import CameraModel, GroundMap
from repro.sim.geometry import Pose2D, rotation_matrix
from repro.sim.photometry import ScenePhotometry, photometry_for
from repro.sim.sensor import add_sensor_noise, mosaic, mosaic_batch
from repro.sim.track import Track
from repro.utils.rng import derive_rng
from repro.utils.scratch import ScratchCache

__all__ = ["RenderOptions", "RoadSceneRenderer", "render_raw_batch"]

# Lane-marking geometry (metres). Widths follow common road standards.
MARK_HALF_WIDTH = 0.075
DOUBLE_LINE_OFFSET = 0.19
DOUBLE_LINE_HALF_WIDTH = 0.055
DASH_LENGTH = 3.0
DASH_PERIOD = 7.5
#: Extra light returned by retroreflective lane paint under headlights.
RETROREFLECTIVE_GAIN = 0.6

#: Bumped whenever rendered appearance changes; cache keys of artifacts
#: derived from renders (classifier datasets, characterization tables)
#: include it so stale artifacts are regenerated automatically.
RENDERER_VERSION = 4

# Linear-light albedos (float32: the frame math never leaves float32).
WHITE_ALBEDO = np.array([0.85, 0.85, 0.85], dtype=np.float32)
YELLOW_ALBEDO = np.array([0.82, 0.62, 0.10], dtype=np.float32)
ROAD_ALBEDO = np.array([0.21, 0.21, 0.22], dtype=np.float32)
SHOULDER_ALBEDO = np.array([0.10, 0.20, 0.08], dtype=np.float32)

_FORM_CODE = {LaneForm.CONTINUOUS: 0, LaneForm.DOTTED: 1, LaneForm.DOUBLE: 2}
_COLOR_CODE = {LaneColor.WHITE: 0, LaneColor.YELLOW: 1}


@dataclass(frozen=True)
class RenderOptions:
    """Rendering tweaks that are not situation-dependent.

    Attributes
    ----------
    lane_width:
        Lane width in metres (paper Sec. IV-A: 3.25 m).
    texture_amplitude:
        Amplitude of the position-stable asphalt texture.
    adjacent_lane_width:
        Width of the asphalt strip left of the left marking (the
        oncoming lane); grass begins beyond it.
    right_shoulder:
        Width of the asphalt shoulder right of the right marking.
    noise:
        Whether the RAW output carries sensor noise.
    """

    lane_width: float = 3.25
    texture_amplitude: float = 0.015
    adjacent_lane_width: float = 3.25
    right_shoulder: float = 0.6
    noise: bool = True


class RoadSceneRenderer:
    """Render RGB / RAW road frames for a vehicle pose on a track."""

    def __init__(
        self,
        camera: CameraModel,
        track: Track,
        options: Optional[RenderOptions] = None,
        seed: int = 0,
    ):
        self.camera = camera
        self.track = track
        self.options = options or RenderOptions()
        self.seed = seed
        self._noise_rng = derive_rng(seed, "camera-noise")
        self._ground: GroundMap = camera.ground_map()
        gm = self._ground
        self._valid = gm.on_ground
        self._vidx = np.nonzero(self._valid.ravel())[0]
        self._fwd = gm.forward.ravel()[self._vidx].astype(np.float32)
        self._lat = gm.lateral.ravel()[self._vidx].astype(np.float32)
        self._lat_fp = np.maximum(
            gm.lateral_footprint.ravel()[self._vidx], 1e-4
        ).astype(np.float32)
        self._fwd_fp = np.maximum(
            gm.forward_footprint.ravel()[self._vidx], 1e-4
        ).astype(np.float32)
        self._local = np.stack([self._fwd, self._lat], axis=-1)
        # Per-segment appearance tables are pose-independent: built once
        # here, reused by every frame (never recomputed per render).
        self._segment_tables = self._build_segment_tables()
        # Reusable per-frame temporaries (world points, albedo planes)
        # and per-photometry float32 constants; both bounded.
        self._scratch = ScratchCache(max_entries=16)
        self._photometry_arrays: dict = {}

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------

    def render_rgb(
        self, pose: Pose2D, scene: Optional[Scene] = None
    ) -> np.ndarray:
        """Render the linear-light RGB frame seen from *pose*.

        When *scene* is ``None`` the scene condition of the sector the
        vehicle currently occupies is used (dynamic-track behaviour).
        """
        s_vehicle, _ = self.track.frenet(pose.x, pose.y)
        if scene is None:
            scene = self.track.situation_at(s_vehicle).scene
        photometry = photometry_for(scene)
        return self._render(pose, photometry, s_vehicle)

    def render_raw(
        self, pose: Pose2D, scene: Optional[Scene] = None
    ) -> np.ndarray:
        """Render the RGGB Bayer RAW frame (what the ISP consumes)."""
        s_vehicle, _ = self.track.frenet(pose.x, pose.y)
        if scene is None:
            scene = self.track.situation_at(s_vehicle).scene
        photometry = photometry_for(scene)
        rgb = self._render(pose, photometry, s_vehicle)
        raw = mosaic(rgb)
        if self.options.noise:
            raw = add_sensor_noise(
                raw, self._noise_rng, photometry.read_noise, photometry.shot_noise
            )
        return raw

    def scene_at(self, pose: Pose2D) -> Scene:
        """The scene condition of the sector containing *pose*."""
        s, _ = self.track.frenet(pose.x, pose.y)
        return self.track.situation_at(s).scene

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------

    def _build_segment_tables(self) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Per-segment (s_start, lane-form code, lane-color code) arrays."""
        bounds = np.array([seg.s_start for seg in self.track.segments])
        forms = np.array(
            [_FORM_CODE[seg.situation.lane_form] for seg in self.track.segments]
        )
        colors = np.array(
            [_COLOR_CODE[seg.situation.lane_color] for seg in self.track.segments]
        )
        return bounds, forms, colors

    def _photometry_constants(self, photometry: ScenePhotometry):
        """Float32 tint/sky arrays, built once per photometry object."""
        cached = self._photometry_arrays.get(photometry)
        if cached is None:
            cached = (
                photometry.tint_array().astype(np.float32),
                (photometry.sky_array() * max(photometry.exposure, 0.05)).astype(
                    np.float32
                ),
            )
            self._photometry_arrays[photometry] = cached
        return cached

    def _render(
        self, pose: Pose2D, photometry: ScenePhotometry, s_vehicle: float
    ) -> np.ndarray:
        cam = self.camera
        opts = self.options
        height, width = cam.height, cam.width

        # 1. ground pixels -> world -> road coordinates
        rot = rotation_matrix(pose.heading).astype(np.float32)
        world = self._scratch.get("world", self._local.shape)
        np.matmul(self._local, rot.T, out=world)
        world += pose.position().astype(np.float32)
        window = (s_vehicle - 25.0, s_vehicle + cam.max_distance + 30.0)
        s_pt, d_pt, on_track = self.track.locate_points(world, window)
        s_pt = np.where(on_track, s_pt, np.float32(0.0))
        d_pt = np.where(on_track, d_pt, np.float32(1e6))  # far off-road

        # 2. base albedo: asphalt / shoulder, with position-stable texture
        half = opts.lane_width / 2.0
        on_road = (d_pt >= -(half + opts.right_shoulder)) & (
            d_pt <= half + opts.adjacent_lane_width
        )
        albedo = np.where(
            on_road[:, None],
            ROAD_ALBEDO[None, :],
            SHOULDER_ALBEDO[None, :],
        )
        texture = np.float32(opts.texture_amplitude) * _position_hash(s_pt, d_pt)
        albedo *= np.float32(1.0) + texture[:, None]

        # 3. lane markings
        seg_idx = (
            np.searchsorted(self._segment_tables[0], s_pt, side="right") - 1
        ).clip(0, len(self.track.segments) - 1)
        form_code = self._segment_tables[1][seg_idx]
        color_code = self._segment_tables[2][seg_idx]

        left_cov = self._marking_coverage(
            d_pt - half, s_pt, form_code, self._lat_fp, self._fwd_fp
        )
        right_cov = self._marking_coverage(
            d_pt + half,
            s_pt,
            np.full_like(form_code, _FORM_CODE[LaneForm.DOTTED]),
            self._lat_fp,
            self._fwd_fp,
        )
        left_color = np.where(
            color_code[:, None] == _COLOR_CODE[LaneColor.YELLOW],
            YELLOW_ALBEDO[None, :],
            WHITE_ALBEDO[None, :],
        )
        albedo += left_cov[:, None] * (left_color - albedo)
        albedo += right_cov[:, None] * (WHITE_ALBEDO[None, :] - albedo)

        # 4. photometry: exposure, headlight falloff, tint, ambient.
        # Lane paint is retroreflective (glass beads): under headlight
        # illumination the markings return extra light to the camera.
        # ``albedo`` is a fresh per-call temporary, so the radiance
        # chain runs in place on it.
        tint, sky = self._photometry_constants(photometry)
        if np.isfinite(photometry.headlight_falloff):
            illum = np.float32(photometry.exposure) * (
                np.float32(0.25)
                + np.float32(0.75)
                * np.exp(-self._fwd / np.float32(photometry.headlight_falloff))
            )
            marking_cov = np.maximum(left_cov, right_cov)
            retro = np.float32(1.0) + np.float32(RETROREFLECTIVE_GAIN) * marking_cov
            albedo *= (illum * retro)[:, None]
        else:
            albedo *= np.float32(photometry.exposure)
        albedo *= tint
        albedo += np.float32(photometry.ambient)
        radiance = albedo

        # 5. scatter into the frame; sky everywhere else
        frame = np.empty((height * width, 3), dtype=np.float32)
        frame[:] = sky
        frame[self._vidx] = radiance
        np.clip(frame, 0.0, 1.0, out=frame)
        return frame.reshape(height, width, 3)

    def _render_batch(
        self,
        poses: Sequence[Pose2D],
        photometry: ScenePhotometry,
        s_vehicles: Sequence[float],
    ) -> np.ndarray:
        """Render B frames sharing one photometry as ``(B, H, W, 3)``.

        Mirrors :meth:`_render` op by op with a leading batch axis.
        Geometry transforms that are not batch-invariant (the pose
        matmul, ``locate_points`` with its per-lane s-window) run
        per-lane into views of the stacked buffers; everything after is
        elementwise/broadcast math, which numpy evaluates identically
        for ``(N,)`` and ``(B, N)`` operands — that is what keeps lanes
        bit-identical to serial renders.
        """
        cam = self.camera
        opts = self.options
        height, width = cam.height, cam.width
        batch = len(poses)
        n_pts = self._local.shape[0]

        # 1. ground pixels -> world -> road coordinates (per lane)
        world = self._scratch.get("world-batch", (batch, n_pts, 2))
        s_pt = np.empty((batch, n_pts), dtype=np.float32)
        d_pt = np.empty((batch, n_pts), dtype=np.float32)
        on_track = np.empty((batch, n_pts), dtype=bool)
        for lane, (pose, s_vehicle) in enumerate(zip(poses, s_vehicles)):
            rot = rotation_matrix(pose.heading).astype(np.float32)
            np.matmul(self._local, rot.T, out=world[lane])
            world[lane] += pose.position().astype(np.float32)
            window = (s_vehicle - 25.0, s_vehicle + cam.max_distance + 30.0)
            s_lane, d_lane, on_lane = self.track.locate_points(
                world[lane], window
            )
            s_pt[lane] = s_lane
            d_pt[lane] = d_lane
            on_track[lane] = on_lane
        s_pt = np.where(on_track, s_pt, np.float32(0.0))
        d_pt = np.where(on_track, d_pt, np.float32(1e6))  # far off-road

        # 2. base albedo: asphalt / shoulder, with position-stable texture
        half = opts.lane_width / 2.0
        on_road = (d_pt >= -(half + opts.right_shoulder)) & (
            d_pt <= half + opts.adjacent_lane_width
        )
        albedo = np.where(
            on_road[..., None],
            ROAD_ALBEDO[None, :],
            SHOULDER_ALBEDO[None, :],
        )
        texture = np.float32(opts.texture_amplitude) * _position_hash(s_pt, d_pt)
        albedo *= np.float32(1.0) + texture[..., None]

        # 3. lane markings
        seg_idx = (
            np.searchsorted(self._segment_tables[0], s_pt, side="right") - 1
        ).clip(0, len(self.track.segments) - 1)
        form_code = self._segment_tables[1][seg_idx]
        color_code = self._segment_tables[2][seg_idx]

        left_cov = self._marking_coverage(
            d_pt - half, s_pt, form_code, self._lat_fp, self._fwd_fp
        )
        right_cov = self._marking_coverage(
            d_pt + half,
            s_pt,
            np.full_like(form_code, _FORM_CODE[LaneForm.DOTTED]),
            self._lat_fp,
            self._fwd_fp,
        )
        left_color = np.where(
            color_code[..., None] == _COLOR_CODE[LaneColor.YELLOW],
            YELLOW_ALBEDO[None, :],
            WHITE_ALBEDO[None, :],
        )
        albedo += left_cov[..., None] * (left_color - albedo)
        albedo += right_cov[..., None] * (WHITE_ALBEDO[None, :] - albedo)

        # 4. photometry — shared across the group, so the (N,) illum
        # profile broadcasts over lanes exactly as in the serial path.
        tint, sky = self._photometry_constants(photometry)
        if np.isfinite(photometry.headlight_falloff):
            illum = np.float32(photometry.exposure) * (
                np.float32(0.25)
                + np.float32(0.75)
                * np.exp(-self._fwd / np.float32(photometry.headlight_falloff))
            )
            marking_cov = np.maximum(left_cov, right_cov)
            retro = np.float32(1.0) + np.float32(RETROREFLECTIVE_GAIN) * marking_cov
            albedo *= (illum * retro)[..., None]
        else:
            albedo *= np.float32(photometry.exposure)
        albedo *= tint
        albedo += np.float32(photometry.ambient)
        radiance = albedo

        # 5. scatter into the frames; sky everywhere else
        frame = np.empty((batch, height * width, 3), dtype=np.float32)
        frame[:] = sky
        frame[:, self._vidx] = radiance
        np.clip(frame, 0.0, 1.0, out=frame)
        return frame.reshape(batch, height, width, 3)

    @staticmethod
    def _marking_coverage(
        delta: np.ndarray,
        s: np.ndarray,
        form_code: np.ndarray,
        lat_fp: np.ndarray,
        fwd_fp: np.ndarray,
    ) -> np.ndarray:
        """Anti-aliased coverage of a marking centred at ``delta == 0``.

        *delta* is the lateral distance to the marking centerline;
        *form_code* selects continuous / dotted / double per point.
        """
        single = _line_coverage(delta, MARK_HALF_WIDTH, lat_fp)
        double = np.maximum(
            _line_coverage(delta - DOUBLE_LINE_OFFSET, DOUBLE_LINE_HALF_WIDTH, lat_fp),
            _line_coverage(delta + DOUBLE_LINE_OFFSET, DOUBLE_LINE_HALF_WIDTH, lat_fp),
        )
        lateral = np.where(form_code == _FORM_CODE[LaneForm.DOUBLE], double, single)
        dash_pos = np.mod(s, DASH_PERIOD)
        dash = np.clip(
            (DASH_LENGTH / 2.0 - np.abs(dash_pos - DASH_LENGTH / 2.0)) / fwd_fp + 0.5,
            0.0,
            1.0,
        )
        modulation = np.where(form_code == _FORM_CODE[LaneForm.DOTTED], dash, 1.0)
        return lateral * modulation


def _line_coverage(delta: np.ndarray, half_width: float, footprint: np.ndarray) -> np.ndarray:
    """Fraction of a pixel's lateral footprint covered by a painted line."""
    return np.clip((half_width - np.abs(delta)) / footprint + 0.5, 0.0, 1.0)


def _position_hash(s: np.ndarray, d: np.ndarray) -> np.ndarray:
    """Cheap position-stable pseudo-noise in [-1, 1] for asphalt texture."""
    q = np.sin(s * 12.9898 + d * 78.233) * 43758.5453
    return 2.0 * (q - np.floor(q)) - 1.0


def render_raw_batch(
    renderers: Sequence[RoadSceneRenderer],
    poses: Sequence[Pose2D],
    scenes: Optional[Sequence[Optional[Scene]]] = None,
) -> np.ndarray:
    """Render one RAW frame per lane in a single batched pass.

    All *renderers* must share the same track object, camera, and
    options (the batched driver groups lanes by exactly that key); the
    leading renderer's precomputed geometry then serves every lane.
    Lanes are sub-grouped by scene photometry so each group renders
    through one :meth:`RoadSceneRenderer._render_batch` call.  Sensor
    noise stays strictly per-lane: each lane draws from its own
    ``camera-noise`` stream, one draw per frame, exactly as in
    :meth:`RoadSceneRenderer.render_raw`.

    Returns the stacked ``(B, H, W)`` Bayer planes in lane order.
    """
    lead = renderers[0]
    n_lanes = len(renderers)
    if scenes is None:
        scenes = [None] * n_lanes
    for r in renderers:
        if r.track is not lead.track or r.camera != lead.camera or r.options != lead.options:
            raise ValueError(
                "render_raw_batch lanes must share track, camera and options"
            )

    # Per-lane situate: same frenet + situation lookup as render_raw.
    s_vehicles: List[float] = []
    photometries: List[ScenePhotometry] = []
    for renderer, pose, scene in zip(renderers, poses, scenes):
        s_vehicle, _ = renderer.track.frenet(pose.x, pose.y)
        if scene is None:
            scene = renderer.track.situation_at(s_vehicle).scene
        s_vehicles.append(s_vehicle)
        photometries.append(photometry_for(scene))

    groups: dict = {}
    for lane, photometry in enumerate(photometries):
        groups.setdefault(photometry, []).append(lane)

    cam = lead.camera
    out = np.empty((n_lanes, cam.height, cam.width), dtype=np.float32)
    for photometry, lanes in groups.items():
        rgb = lead._render_batch(
            [poses[i] for i in lanes], photometry, [s_vehicles[i] for i in lanes]
        )
        raw = mosaic_batch(rgb)
        for j, i in enumerate(lanes):
            renderer = renderers[i]
            if renderer.options.noise:
                out[i] = add_sensor_noise(
                    raw[j],
                    renderer._noise_rng,
                    photometry.read_noise,
                    photometry.shot_noise,
                )
            else:
                out[i] = raw[j]
    return out
