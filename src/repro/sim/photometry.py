"""Scene photometry: how day/night/dark/dawn/dusk change the image.

Each :class:`~repro.core.situation.Scene` maps to exposure, color cast,
ambient light and sensor-noise levels.  These are the levers that make
ISP stage selection situation-dependent in the reproduction:

- low exposure (night/dark) makes the tone-mapping stage critical,
- color casts (dawn/dusk/night sodium lights) make color mapping matter,
- high noise (dark) makes denoising matter.

Values are in linear light, normalized so a white lane marking in full
daylight lands near 0.9 before sensor noise.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

import numpy as np

from repro.core.situation import Scene

__all__ = ["ScenePhotometry", "photometry_for", "SCENE_PHOTOMETRY"]


@dataclass(frozen=True)
class ScenePhotometry:
    """Photometric parameters of one scene condition.

    Attributes
    ----------
    exposure:
        Global multiplier on scene radiance (1.0 = daylight).
    tint:
        Per-channel RGB multipliers modelling the illuminant color cast.
    ambient:
        Additive ambient level (e.g. sky glow) in linear light.
    read_noise:
        Standard deviation of signal-independent sensor noise.
    shot_noise:
        Scale of signal-dependent (sqrt) sensor noise.
    sky:
        Linear RGB of the sky above the horizon.
    headlight_falloff:
        e-folding distance (metres) of the illumination reaching the road
        ahead.  ``inf`` means uniformly lit (daylight); small values model
        driving on headlights alone.
    """

    exposure: float
    tint: Tuple[float, float, float]
    ambient: float
    read_noise: float
    shot_noise: float
    sky: Tuple[float, float, float]
    headlight_falloff: float = float("inf")

    def tint_array(self) -> np.ndarray:
        """The illuminant tint as a numpy array."""
        return np.array(self.tint, dtype=float)

    def sky_array(self) -> np.ndarray:
        """The sky color as a numpy array."""
        return np.array(self.sky, dtype=float)


SCENE_PHOTOMETRY: Dict[Scene, ScenePhotometry] = {
    Scene.DAY: ScenePhotometry(
        exposure=1.0,
        tint=(1.0, 1.0, 1.0),
        ambient=0.02,
        read_noise=0.008,
        shot_noise=0.010,
        sky=(0.55, 0.70, 0.95),
    ),
    Scene.NIGHT: ScenePhotometry(
        # Street lights: dim warm illumination (sodium-vapor cast).
        exposure=0.34,
        tint=(1.12, 0.98, 0.72),
        ambient=0.010,
        read_noise=0.014,
        shot_noise=0.016,
        sky=(0.03, 0.03, 0.05),
        headlight_falloff=45.0,
    ),
    Scene.DARK: ScenePhotometry(
        # No street lights: headlights only — very dim, noisy.
        exposure=0.15,
        tint=(1.0, 1.0, 0.95),
        ambient=0.004,
        read_noise=0.013,
        shot_noise=0.020,
        sky=(0.01, 0.01, 0.02),
        headlight_falloff=26.0,
    ),
    Scene.DAWN: ScenePhotometry(
        exposure=0.62,
        tint=(0.88, 0.95, 1.15),
        ambient=0.015,
        read_noise=0.012,
        shot_noise=0.013,
        sky=(0.45, 0.52, 0.75),
    ),
    Scene.DUSK: ScenePhotometry(
        exposure=0.68,
        tint=(1.18, 0.95, 0.78),
        ambient=0.015,
        read_noise=0.012,
        shot_noise=0.013,
        sky=(0.75, 0.50, 0.35),
    ),
}


def photometry_for(scene: Scene) -> ScenePhotometry:
    """Return the photometry of *scene* (KeyError-safe with message)."""
    try:
        return SCENE_PHOTOMETRY[scene]
    except KeyError as exc:  # pragma: no cover - Scene enum is closed
        raise ValueError(f"no photometry registered for scene {scene!r}") from exc
