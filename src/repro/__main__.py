"""Command-line interface: ``python -m repro <command>``.

Commands
--------
run            one closed-loop simulation (situation x case)
profile        measured per-stage wall clock vs Table II modeled latency
inject         closed-loop simulation under a fault campaign
track          the Fig. 7/8 dynamic-track study
characterize   design-time knob sweep for a situation (Table III row)
train          train / load the three situation classifiers (Table IV)
sensitivity    Monte-Carlo knob-sensitivity study (Sec. III-B)
report         regenerate every paper artifact into a markdown report
trace          inspect / diff telemetry event streams (JSONL)
lint           project static analysis (reprolint) over a file set
graph          whole-program import graph and API lockfile
serve          long-running sensing service (unix socket or TCP)
request        one request against a running sensing service

The simulation commands are thin wrappers over :mod:`repro.api` — the
same keyword-only facade scripts are expected to use.

Error contract: bad user input — an invalid argument value, a malformed
spec string, an unreachable service — exits 2 with a one-line message
on stderr (``repro <command>: <reason>``), uniformly across
subcommands.  Exit 1 is reserved for completed runs with a negative
outcome (a crash), matching ``result.crashed``.
"""

from __future__ import annotations

import argparse
import sys


def _parse_frame(text):
    """``"WxH"`` -> (width, height), or None for an empty string."""
    if not text:
        return None
    try:
        width, _, height = text.partition("x")
        return int(width), int(height)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"frame must look like 384x192, got {text!r}"
        ) from None


def _describe_situation(index: int) -> str:
    from repro.core.situation import situation_by_index

    return situation_by_index(index).describe()


def _cmd_run(args: argparse.Namespace) -> int:
    from repro.api import simulate

    result = simulate(
        situation=args.situation,
        case=args.case,
        length_m=args.length,
        seed=args.seed,
        frame=args.frame,
        profile=args.profile,
        telemetry=args.telemetry,
        cache=args.cache,
    )
    status = "CRASHED" if result.crashed else "completed"
    print(f"{args.case} on '{_describe_situation(args.situation)}': {status}")
    print(f"MAE = {result.mae(skip_time_s=2.0) * 100:.2f} cm over "
          f"{result.duration_s():.1f} s")
    if result.manifest is not None:
        # The config hash identifies the run semantics; execution
        # strategy knobs (REPRO_BATCH, jobs) never change it.
        print(f"config hash {result.manifest['config_hash']} "
              f"(repro {result.manifest['package_version']})")
    if args.telemetry:
        print(f"telemetry trace written to {args.telemetry}")
    if result.profile:
        print()
        print(result.profile_table())
    return 1 if result.crashed else 0


def _cmd_profile(args: argparse.Namespace) -> int:
    from repro.api import profile

    report = profile(
        situation=args.situation,
        case=args.case,
        length_m=args.length,
        seed=args.seed,
        frame=args.frame,
    )
    # The 'model ms' column is the latency the control design assumes
    # (Table II / Table IV, Xavier @ 30 W); measured columns are this
    # host's wall clock.  Stages without a modeled figure (the renderer
    # is simulation scaffolding, per-ISP-stage splits are not profiled
    # in the paper) show '-'.
    result = report.result
    print(
        f"{args.case} on '{_describe_situation(args.situation)}' "
        f"({len(result.cycles)} cycles, seed {args.seed})"
    )
    print(report.table())
    return 1 if result.crashed else 0


def _summarize_fault_run(label: str, result) -> None:
    status = "CRASHED" if result.crashed else "completed"
    print(
        f"  {label:12s} {status:9s} "
        f"MAE {result.mae(skip_time_s=2.0) * 100:6.2f} cm  "
        f"degraded {result.degraded_fraction() * 100:5.1f} % "
        f"of {len(result.cycles)} cycles"
    )


def _cmd_inject(args: argparse.Namespace) -> int:
    from repro.api import inject
    from repro.faults import resolve_fault_plan

    # A bad --spec raises ValueError; main()'s uniform handler turns it
    # into the one-line stderr message + exit 2.
    plan = resolve_fault_plan(args.faults)
    kwargs = dict(
        faults=plan,
        situation=args.situation,
        case=args.case,
        length_m=args.length,
        seed=args.seed,
        frame=args.frame,
    )
    print(
        f"{args.case} on '{_describe_situation(args.situation)}' "
        f"under faults: {plan.describe()}"
    )
    if args.compare:
        baseline = inject(mitigate=False, **kwargs)
        _summarize_fault_run("unmitigated", baseline)
    result = inject(mitigate=not args.no_mitigation, **kwargs)
    _summarize_fault_run(
        "unmitigated" if args.no_mitigation else "mitigated", result
    )
    if result.fault_kinds():
        print(f"  faults seen: {', '.join(result.fault_kinds())}")
    return 1 if result.crashed else 0


def _cmd_track(args: argparse.Namespace) -> int:
    from repro.experiments.fig8 import format_fig8, run_fig8

    cases = args.cases.split(",") if args.cases else None
    results = run_fig8(cases=cases) if cases else run_fig8()
    print(format_fig8(results))
    return 0


def _cmd_characterize(args: argparse.Namespace) -> int:
    from repro.api import characterize

    evaluations = characterize(
        situation=args.situation, jobs=args.jobs, batch=args.batch,
        cache=args.cache,
    )
    print(f"{_describe_situation(args.situation)}:")
    for ev in evaluations:
        status = "CRASH" if ev.crashed else f"MAE {ev.mae * 100:6.2f} cm"
        print(
            f"  {ev.knobs.isp} {ev.knobs.roi} v={ev.knobs.speed_kmph:.0f} "
            f"-> {status} (h={ev.period_ms:.0f}, tau={ev.delay_ms:.1f})"
        )
    return 0


def _cmd_cache(args: argparse.Namespace) -> int:
    from repro.cache import RolloutCache

    store = RolloutCache(args.dir)
    if args.clear:
        removed = store.clear()
        print(f"removed {removed} cached rollouts from {store.root}")
        return 0
    if args.verify:
        checked, problems = store.verify()
        for problem in problems:
            print(problem, file=sys.stderr)
        verdict = "OK" if not problems else f"{len(problems)} problem(s)"
        print(f"verified {checked} cached rollouts under {store.root}: {verdict}")
        return 2 if problems else 0
    entries = store.entries()
    print(f"store    {store.root}")
    print(f"entries  {len(entries)}")
    print(f"bytes    {store.total_bytes()}")
    return 0


def _cmd_train(args: argparse.Namespace) -> int:
    import logging

    from repro.classifiers.train import train_all_classifiers

    # Library progress goes through logging; surface it on the console.
    logging.basicConfig(level=logging.INFO, format="%(message)s")
    results = train_all_classifiers(use_cache=not args.no_cache, verbose=True)
    for name, result in results.items():
        print(f"{name}: val accuracy {result.val_accuracy * 100:.2f} % "
              f"({'cache' if result.from_cache else 'trained'})")
    return 0


def _cmd_sensitivity(args: argparse.Namespace) -> int:
    from repro.core.sensitivity import SensitivityConfig, knob_sensitivity
    from repro.core.situation import situation_by_index

    report = knob_sensitivity(
        situation_by_index(args.situation),
        SensitivityConfig(n_samples=args.samples),
    )
    print(f"{report.situation.describe()}: QoC variance share per knob")
    for knob in report.ranked_knobs():
        print(f"  {knob:6s}: {report.main_effect[knob] * 100:5.1f} %")
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    from repro.experiments.report import generate_report

    generate_report(
        path=args.output,
        include_dynamic=not args.skip_dynamic,
        include_characterization=not args.skip_characterization,
        include_classifiers=not args.skip_classifiers,
    )
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    import json as json_module

    from repro.api import diff_traces, load_trace

    if args.diff:
        differences = diff_traces(a=args.diff[0], b=args.diff[1])
        if not differences:
            print(f"{args.diff[0]} and {args.diff[1]}: identical")
            return 0
        for line in differences:
            print(line)
        return 2
    if not args.path:
        print(
            "repro trace: give a trace path (optionally --json) "
            "or --diff A B",
            file=sys.stderr,
        )
        return 2
    trace = load_trace(path=args.path)
    if args.json:
        print(
            json_module.dumps(
                {"manifest": trace.manifest, "events": trace.events},
                indent=2,
                sort_keys=True,
            )
        )
        return 0
    manifest = trace.manifest
    print(f"{args.path}:")
    print(f"  schema          {manifest.get('schema')}")
    print(f"  package version {manifest.get('package_version')}")
    print(f"  config hash     {manifest.get('config_hash')}")
    streams = manifest.get("rng_streams") or []
    print(f"  rng streams     {len(streams)}: {', '.join(streams)}")
    env = manifest.get("env") or {}
    set_knobs = {k: v for k, v in env.items() if v is not None}
    print(f"  env knobs       {set_knobs if set_knobs else '(none set)'}")
    counts: dict = {}
    for event in trace.events:
        counts[event["event"]] = counts.get(event["event"], 0) + 1
    print(f"  events          {len(trace.events)}")
    for name in sorted(counts):
        print(f"    {name:20s} {counts[name]}")
    return 0


def _doc_excerpt(cls) -> str:
    """First line of a rule class docstring (its one-line summary)."""
    doc = (cls.__doc__ or "").strip()
    return doc.splitlines()[0].strip() if doc else cls.description


def _list_rules() -> int:
    from repro.analysis import all_rules_by_id, project_rules_by_id

    project = set(project_rules_by_id())
    for rule_id, cls in sorted(all_rules_by_id().items()):
        scope = "project" if rule_id in project else "file"
        print(f"{rule_id}  {cls.name:22s} [{cls.severity:7s}] ({scope})")
        print(f"        {_doc_excerpt(cls)}")
    return 0


def _resolve_package_dir(config, paths, base=None):
    """The package tree a project pass should analyse.

    An explicit path wins; otherwise the first package under the config
    root's ``src/`` layout (for this repo: ``src/repro``).
    """
    from pathlib import Path

    if paths:
        return Path(paths[0])
    if base is None:
        base = Path(config.root) if config.root else Path.cwd()
    src = base / "src"
    if src.is_dir():
        packages = sorted(
            entry for entry in src.iterdir()
            if (entry / "__init__.py").is_file()
        )
        if packages:
            return packages[0]
    return base


def _cmd_lint(args: argparse.Namespace) -> int:
    from dataclasses import replace
    from pathlib import Path

    from repro.analysis import LintEngine, load_config

    if args.list_rules:
        return _list_rules()
    base = load_config(Path(args.paths[0]) if args.paths else None)
    config = replace(
        base,
        select=tuple(args.select.split(",")) if args.select else base.select,
        ignore=tuple(args.ignore.split(",")) if args.ignore else base.ignore,
    )
    try:
        engine = LintEngine(config)
    except ValueError as exc:
        print(f"reprolint: {exc}", file=sys.stderr)
        return 2
    if args.project:
        report = engine.lint_project(_resolve_package_dir(config, args.paths))
    else:
        report = engine.lint_paths(args.paths or ["src/repro"])
    print(report.render_json() if args.format == "json" else report.render_text())
    return report.exit_code()


def _cmd_graph(args: argparse.Namespace) -> int:
    import json as json_module
    from pathlib import Path

    from repro.analysis import LintEngine, load_config
    from repro.analysis.surface import extract_api_surface, write_lockfile

    root = Path(args.root) if args.root else None
    config = load_config(root)
    package_dir = _resolve_package_dir(config, [], base=root)
    engine = LintEngine(config)
    graph, report = engine.build_graph(package_dir)
    if report.crashed:
        print(report.render_text(), file=sys.stderr)
        return 2

    if args.update_lockfile:
        surface, _ = extract_api_surface(graph.package_dir)
        base = Path(config.root) if config.root else graph.package_dir.parent
        lock_path = base / config.lockfile
        changed = write_lockfile(lock_path, surface)
        print(f"{lock_path}: {'updated' if changed else 'up to date'}")
        return 0

    layer_deps = {}
    for (src, dst), sites in graph.layer_edges().items():
        layer_deps.setdefault(src, set()).add(dst)
    if args.dot:
        print(f'digraph "{graph.package_name}" {{')
        for src in sorted(layer_deps):
            for dst in sorted(layer_deps[src]):
                print(f'  "{src}" -> "{dst}";')
        print("}")
    elif args.json:
        imports_by_module = {}
        for info, target, _record in graph.internal_edges():
            imports_by_module.setdefault(info.name, set()).add(target)
        document = {
            "package": graph.package_name,
            "modules": {
                name: {
                    "layer": info.layer,
                    "path": info.path,
                    "imports": sorted(imports_by_module.get(name, ())),
                }
                for name, info in sorted(graph.modules.items())
            },
            "layers": {
                src: sorted(layer_deps[src]) for src in sorted(layer_deps)
            },
        }
        print(json_module.dumps(document, indent=2, sort_keys=True))
    else:
        edges = graph.internal_edges()
        print(
            f"{graph.package_name}: {len(graph.modules)} modules, "
            f"{len(edges)} internal import edges"
        )
        for src in sorted(layer_deps):
            print(f"  {src} -> {', '.join(sorted(layer_deps[src]))}")
    return 0


def _parse_host_port(spec: str) -> tuple:
    """``"host:port"`` for ``--tcp`` (the last colon splits, for IPv6)."""
    host, _, port_text = spec.rpartition(":")
    if not host or not port_text:
        raise ValueError(f"--tcp must look like host:port, got {spec!r}")
    try:
        return host, int(port_text)
    except ValueError:
        raise ValueError(
            f"--tcp port must be an integer, got {port_text!r}"
        ) from None


def _cmd_serve(args: argparse.Namespace) -> int:
    from repro.service.server import serve_blocking

    socket_path = host = port = None
    if args.tcp:
        host, port = _parse_host_port(args.tcp)
    else:
        socket_path = args.socket

    def _ready(server) -> None:
        kind = server.address[0]
        where = ":".join(str(part) for part in server.address[1:])
        print(
            f"repro service listening on {kind} {where} "
            f"({server.workers} workers, queue limit {server.queue_limit})"
        )
        sys.stdout.flush()

    serve_blocking(
        socket_path=socket_path,
        host=host,
        port=port,
        workers=args.workers,
        queue_limit=args.queue_limit,
        stats_path=args.stats,
        ready_callback=_ready,
    )
    return 0


def _is_hil_result(obj) -> bool:
    """Duck-typed HilResult check (the hil layer stays un-imported here)."""
    return hasattr(obj, "mae") and hasattr(obj, "cycles")


def _summarize_served_result(result) -> None:
    """Human-readable rendering for whatever a served op returned."""
    import json as json_module

    from repro.api import ProfileReport

    if _is_hil_result(result):
        status = "CRASHED" if result.crashed else "completed"
        print(
            f"{status}: MAE = {result.mae(skip_time_s=2.0) * 100:.2f} cm "
            f"over {result.duration_s():.1f} s ({len(result.cycles)} cycles)"
        )
    elif isinstance(result, ProfileReport):
        _summarize_served_result(result.result)
        print(result.table())
    elif isinstance(result, list):
        for index, item in enumerate(result):
            if _is_hil_result(item):
                print(f"[{index}] ", end="")
                _summarize_served_result(item)
            elif hasattr(item, "knobs"):
                status = (
                    "CRASH" if item.crashed else f"MAE {item.mae * 100:6.2f} cm"
                )
                print(
                    f"  {item.knobs.isp} {item.knobs.roi} "
                    f"v={item.knobs.speed_kmph:.0f} -> {status}"
                )
            else:
                print(item)
    else:
        print(json_module.dumps(result, indent=2, sort_keys=True))


def _cmd_request(args: argparse.Namespace) -> int:
    import json as json_module

    from repro.api import connect

    if args.params:
        try:
            params = json_module.loads(args.params)
        except json_module.JSONDecodeError as exc:
            raise ValueError(f"--params must be valid JSON: {exc}") from None
        if not isinstance(params, dict):
            raise ValueError("--params must be a JSON object")
    else:
        params = {}
    if args.tcp:
        kwargs = {"tcp": args.tcp}
    else:
        kwargs = {"socket": args.socket}
    # Connection and typed service failures (queue_full, bad params,
    # unknown op, ...) propagate to main()'s handler -> exit 2.
    with connect(timeout=args.timeout, **kwargs) as client:
        result = client.request(
            args.op, params=params, deadline_ms=args.deadline_ms
        )
    _summarize_served_result(result)
    return 0


def build_parser() -> argparse.ArgumentParser:
    """Construct the argparse CLI parser."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="DATE 2021 'Hardware- and Situation-Aware Sensing' reproduction",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_run = sub.add_parser("run", help="one closed-loop simulation")
    p_run.add_argument("--situation", type=int, default=1, help="Table III index 1-21")
    p_run.add_argument("--case", default="case3",
                       choices=["case1", "case2", "case3", "case4", "variable", "adaptive"])
    p_run.add_argument("--length", type=float, default=150.0)
    p_run.add_argument("--seed", type=int, default=1)
    p_run.add_argument("--profile", action="store_true",
                       help="print measured per-stage wall clock after the run")
    p_run.add_argument("--frame", type=_parse_frame, default=None,
                       help="camera frame as WxH (default 384x192)")
    p_run.add_argument("--telemetry", metavar="PATH", default=None,
                       help="record the run's telemetry event stream "
                            "to this JSONL file")
    p_run.add_argument("--cache", metavar="auto|off|PATH", default=None,
                       help="rollout result cache: 'auto' (default store), "
                            "'off' (default), or an explicit store root; "
                            "a hit is bit-identical to rerunning")
    p_run.set_defaults(func=_cmd_run)

    p_prof = sub.add_parser(
        "profile", help="measured stage wall clock vs Table II modeled latency"
    )
    p_prof.add_argument("--situation", type=int, default=1, help="Table III index 1-21")
    p_prof.add_argument("--case", default="case4",
                        choices=["case1", "case2", "case3", "case4", "variable", "adaptive"])
    p_prof.add_argument("--length", type=float, default=60.0)
    p_prof.add_argument("--seed", type=int, default=1)
    p_prof.add_argument("--frame", type=_parse_frame, default=None,
                        help="camera frame as WxH (default 384x192)")
    p_prof.set_defaults(func=_cmd_profile)

    p_inj = sub.add_parser(
        "inject", help="closed-loop simulation under a fault campaign"
    )
    p_inj.add_argument(
        "--faults", required=True,
        help="preset name (blackout, banding, classifier-outage, "
             "flaky-classifiers, stress) or a spec string like "
             "'blackout@2000:2800;timeout@1500:inf,probability=0.5'",
    )
    p_inj.add_argument("--situation", type=int, default=1, help="Table III index 1-21")
    p_inj.add_argument("--case", default="case3",
                       choices=["case1", "case2", "case3", "case4", "variable", "adaptive"])
    p_inj.add_argument("--length", type=float, default=150.0)
    p_inj.add_argument("--seed", type=int, default=1)
    p_inj.add_argument("--frame", type=_parse_frame, default=None,
                       help="camera frame as WxH (default 384x192)")
    p_inj.add_argument("--no-mitigation", action="store_true",
                       help="run without graceful degradation")
    p_inj.add_argument("--compare", action="store_true",
                       help="also run the unmitigated baseline first")
    p_inj.set_defaults(func=_cmd_inject)

    p_track = sub.add_parser("track", help="Fig. 7/8 dynamic-track study")
    p_track.add_argument("--cases", default="", help="comma list, default all five")
    p_track.set_defaults(func=_cmd_track)

    p_char = sub.add_parser("characterize", help="knob sweep for one situation")
    p_char.add_argument("--situation", type=int, default=8)
    p_char.add_argument(
        "--jobs",
        default=None,
        help="worker processes for the sweep (0 or 'auto' = all cores; "
        "default: $REPRO_JOBS or 1, i.e. serial)",
    )
    p_char.add_argument(
        "--batch",
        default=None,
        help="lock-step rollout lanes per worker (0 or 'auto' sizes the "
        "chunk from the grid; default: $REPRO_BATCH or auto)",
    )
    p_char.add_argument(
        "--cache",
        metavar="auto|off|PATH",
        default=None,
        help="rollout result cache: 'auto' (default), 'off', or an "
        "explicit store root; warm sweeps reuse cached rollouts",
    )
    p_char.set_defaults(func=_cmd_characterize)

    p_cache = sub.add_parser(
        "cache", help="inspect/maintain the rollout result cache"
    )
    mode = p_cache.add_mutually_exclusive_group()
    mode.add_argument("--stats", action="store_true",
                      help="print store location and size (the default)")
    mode.add_argument("--clear", action="store_true",
                      help="delete every cached rollout")
    mode.add_argument("--verify", action="store_true",
                      help="re-hash every entry against its embedded key "
                           "document; exit 2 on any mismatch")
    p_cache.add_argument("--dir", default=None, metavar="PATH",
                         help="explicit store root "
                              "(default: <cache dir>/rollouts)")
    p_cache.set_defaults(func=_cmd_cache)

    p_train = sub.add_parser("train", help="train the situation classifiers")
    p_train.add_argument("--no-cache", action="store_true")
    p_train.set_defaults(func=_cmd_train)

    p_sens = sub.add_parser("sensitivity", help="Monte-Carlo knob sensitivity")
    p_sens.add_argument("--situation", type=int, default=8)
    p_sens.add_argument("--samples", type=int, default=24)
    p_sens.set_defaults(func=_cmd_sensitivity)

    p_report = sub.add_parser("report", help="regenerate all paper artifacts")
    p_report.add_argument("--output", default="report.md")
    p_report.add_argument("--skip-dynamic", action="store_true")
    p_report.add_argument("--skip-characterization", action="store_true")
    p_report.add_argument("--skip-classifiers", action="store_true")
    p_report.set_defaults(func=_cmd_report)

    p_trace = sub.add_parser(
        "trace", help="inspect / diff telemetry event streams"
    )
    p_trace.add_argument(
        "path", nargs="?", default=None,
        help="a trace written by 'run --telemetry' (JSONL)",
    )
    p_trace.add_argument("--show", action="store_true",
                         help="print the summary (the default display)")
    p_trace.add_argument("--json", action="store_true",
                         help="dump manifest and events as JSON")
    p_trace.add_argument(
        "--diff", nargs=2, metavar=("A", "B"), default=None,
        help="compare two traces; exit 0 when equivalent, 2 when they "
             "diverge (volatile manifest fields ignored)",
    )
    p_trace.set_defaults(func=_cmd_trace)

    p_lint = sub.add_parser("lint", help="project static analysis (reprolint)")
    p_lint.add_argument("paths", nargs="*", help="files/directories (default src/repro)")
    p_lint.add_argument("--format", choices=["text", "json"], default="text")
    p_lint.add_argument("--select", default="", help="comma list of rule ids to run")
    p_lint.add_argument("--ignore", default="", help="comma list of rule ids to skip")
    p_lint.add_argument("--list-rules", action="store_true",
                        help="print the rule registry and exit")
    p_lint.add_argument("--project", action="store_true",
                        help="run the whole-program pass (import graph, "
                             "architecture contract, dead code, API lockfile)")
    p_lint.set_defaults(func=_cmd_lint)

    p_graph = sub.add_parser(
        "graph", help="whole-program import graph and API lockfile")
    p_graph.add_argument("--root", default="",
                         help="project root (default: discovered from cwd)")
    mode = p_graph.add_mutually_exclusive_group()
    mode.add_argument("--dot", action="store_true",
                      help="emit the layer dependency graph as Graphviz dot")
    mode.add_argument("--json", action="store_true",
                      help="emit modules, layers, and import edges as JSON")
    mode.add_argument("--update-lockfile", action="store_true",
                      help="regenerate the public-API lockfile "
                           "(api_surface.json) and exit")
    p_graph.set_defaults(func=_cmd_graph)

    p_serve = sub.add_parser(
        "serve", help="long-running sensing service (unix socket or TCP)"
    )
    p_serve.add_argument(
        "--socket", default="repro.sock",
        help="unix-domain socket path to listen on (default repro.sock)",
    )
    p_serve.add_argument(
        "--tcp", default=None, metavar="HOST:PORT",
        help="listen on TCP instead of the unix socket",
    )
    p_serve.add_argument(
        "--workers", default=None,
        help="worker processes (0 or 'auto' = all cores; "
             "default: $REPRO_JOBS or 1)",
    )
    p_serve.add_argument(
        "--queue-limit", type=int, default=16,
        help="bounded admission queue size; requests past it are "
             "rejected with a typed queue_full error (default 16)",
    )
    p_serve.add_argument(
        "--stats", default=None, metavar="PATH",
        help="flush the final metrics snapshot to this JSON file on drain",
    )
    p_serve.set_defaults(func=_cmd_serve)

    p_req = sub.add_parser(
        "request", help="one request against a running sensing service"
    )
    p_req.add_argument(
        "op",
        help="operation: simulate, characterize, inject, profile, "
             "health, stats, shutdown",
    )
    p_req.add_argument(
        "--params", default="",
        help="operation parameters as a JSON object, e.g. "
             "'{\"seed\": 7, \"length_m\": 60}'",
    )
    p_req.add_argument("--socket", default="repro.sock",
                       help="service unix socket path (default repro.sock)")
    p_req.add_argument("--tcp", default=None, metavar="HOST:PORT",
                       help="connect over TCP instead of the unix socket")
    p_req.add_argument("--deadline-ms", type=float, default=None,
                       help="server-side deadline for this request")
    p_req.add_argument("--timeout", type=float, default=None,
                       help="client-side response wait in seconds")
    p_req.set_defaults(func=_cmd_request)
    return parser


def main(argv=None) -> int:
    """CLI entry point; returns the process exit code.

    Uniform error contract: bad user input — wherever it is detected
    (argument coercion, facade validation, an unreachable or rejecting
    service) — prints one line on stderr and exits 2.
    """
    parser = build_parser()
    args = parser.parse_args(argv)
    from repro.service.errors import ServiceError

    try:
        return args.func(args)
    except (ValueError, ServiceError, OSError) as exc:
        print(f"repro {args.command}: {exc}", file=sys.stderr)
        return 2


def lint_main() -> int:
    """Entry point for the ``reprolint`` console script."""
    return main(["lint"] + sys.argv[1:])


if __name__ == "__main__":
    sys.exit(main())
