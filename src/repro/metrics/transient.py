"""Transient-response metrics on closed-loop traces.

MAE (Eq. 1) is the paper's QoC score; for analysis and the ablation
discussion it helps to decompose a run into classical control metrics:
settling time of the initial offset, overshoot, and the steady
regulation error per track section.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

__all__ = ["TransientMetrics", "transient_metrics"]


@dataclass(frozen=True)
class TransientMetrics:
    """Classical step-response style metrics of a regulation trace.

    Attributes
    ----------
    settling_time_s:
        First time after which ``|y|`` stays within ``band`` of zero
        (NaN if the trace never settles).
    overshoot_m:
        Largest excursion *past* zero relative to the initial sign
        (0 for a monotone approach).
    steady_state_mae:
        MAE over the settled portion (NaN if never settled).
    peak_abs_m:
        Largest ``|y|`` anywhere in the trace.
    """

    settling_time_s: float
    overshoot_m: float
    steady_state_mae: float
    peak_abs_m: float

    @property
    def settled(self) -> bool:
        """Whether the trace entered (and stayed in) the settling band."""
        return np.isfinite(self.settling_time_s)


def transient_metrics(
    time_s: np.ndarray,
    y: np.ndarray,
    band: float = 0.05,
) -> TransientMetrics:
    """Compute transient metrics of a lateral-deviation trace.

    Parameters
    ----------
    time_s, y:
        Trace arrays (same length, time increasing).
    band:
        Settling band in metres.
    """
    time_s = np.asarray(time_s, dtype=float)
    y = np.asarray(y, dtype=float)
    if time_s.shape != y.shape or time_s.size == 0:
        raise ValueError("time_s and y must be equal-length, non-empty")
    if band <= 0:
        raise ValueError(f"band must be > 0, got {band}")

    inside = np.abs(y) <= band
    settling_time = np.nan
    settle_index: Optional[int] = None
    # Last index where the trace is outside the band; settled after it.
    outside = np.nonzero(~inside)[0]
    if outside.size == 0:
        settling_time = float(time_s[0])
        settle_index = 0
    elif outside[-1] + 1 < y.size:
        settle_index = int(outside[-1] + 1)
        settling_time = float(time_s[settle_index])

    # Overshoot: excursion past zero, relative to the side the trace
    # starts on.  Explicit sign tests — an exactly-centred start has no
    # approach direction and therefore no overshoot.
    if y[0] > 0.0:
        overshoot = float(max(0.0, -y.min()))
    elif y[0] < 0.0:
        overshoot = float(max(0.0, y.max()))
    else:
        overshoot = 0.0

    steady_mae = np.nan
    if settle_index is not None and settle_index < y.size:
        steady_mae = float(np.mean(np.abs(y[settle_index:])))

    return TransientMetrics(
        settling_time_s=settling_time,
        overshoot_m=overshoot,
        steady_state_mae=steady_mae,
        peak_abs_m=float(np.max(np.abs(y))),
    )
