"""Quality-of-control metrics (paper Sec. IV-B).

The paper evaluates closed-loop QoC with the mean absolute error of the
lateral deviation (Eq. 1)::

    MAE = (1/n) * sum_k |y[k]|

where ``y[k]`` is the lateral deviation ``y_L`` at the k-th sample and
ideally zero.  Lower is better.  Figures 6 and 8 report values
normalized to case 3 (the robust baseline).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.utils.contracts import check_finite

__all__ = ["mae", "rmse", "max_abs", "normalize_to"]


@check_finite("samples")
def mae(samples: Sequence[float]) -> float:
    """Mean absolute error (Eq. 1). Raises on an empty sample set."""
    arr = np.asarray(samples, dtype=float)
    if arr.size == 0:
        raise ValueError("MAE of an empty sample set is undefined")
    return float(np.mean(np.abs(arr)))


@check_finite("samples")
def rmse(samples: Sequence[float]) -> float:
    """Root-mean-square error (diagnostic companion to MAE)."""
    arr = np.asarray(samples, dtype=float)
    if arr.size == 0:
        raise ValueError("RMSE of an empty sample set is undefined")
    return float(np.sqrt(np.mean(np.square(arr))))


@check_finite("samples")
def max_abs(samples: Sequence[float]) -> float:
    """Worst-case absolute deviation."""
    arr = np.asarray(samples, dtype=float)
    if arr.size == 0:
        raise ValueError("max_abs of an empty sample set is undefined")
    return float(np.max(np.abs(arr)))


def normalize_to(values: Sequence[float], reference: float) -> np.ndarray:
    """Normalize *values* by *reference* (Fig. 6 / Fig. 8 convention)."""
    if reference <= 0 or not np.isfinite(reference):
        raise ValueError(f"reference must be positive and finite, got {reference}")
    return np.asarray(values, dtype=float) / reference
