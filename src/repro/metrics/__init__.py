"""Quality-of-control and detection-accuracy metrics."""

from repro.metrics.qoc import (
    mae,
    rmse,
    max_abs,
    normalize_to,
)
from repro.metrics.accuracy import detection_accuracy, DetectionSample
from repro.metrics.transient import TransientMetrics, transient_metrics

__all__ = [
    "mae",
    "rmse",
    "max_abs",
    "normalize_to",
    "detection_accuracy",
    "DetectionSample",
    "TransientMetrics",
    "transient_metrics",
]
