"""Lane-detection accuracy (the Fig. 1 vertical axis).

A detection is counted correct when the measured look-ahead deviation
is within a fixed tolerance of the ground truth; accuracy is the
fraction of correct detections over a frame dataset spanning the
evaluated situations.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

__all__ = ["DetectionSample", "detection_accuracy", "DEFAULT_TOLERANCE_M"]

#: |y_L error| below this counts as a correct detection (metres).
DEFAULT_TOLERANCE_M = 0.30


@dataclass(frozen=True)
class DetectionSample:
    """One evaluated frame: measurement vs ground truth."""

    measured_y_l: float
    true_y_l: float
    valid: bool

    def correct(self, tolerance: float = DEFAULT_TOLERANCE_M) -> bool:
        """Whether this detection is within *tolerance* of ground truth."""
        if not self.valid:
            return False
        return abs(self.measured_y_l - self.true_y_l) <= tolerance


def detection_accuracy(
    samples: Iterable[DetectionSample],
    tolerance: float = DEFAULT_TOLERANCE_M,
) -> float:
    """Fraction of correct detections (invalid frames count as misses)."""
    total = 0
    correct = 0
    for sample in samples:
        total += 1
        if sample.correct(tolerance):
            correct += 1
    if total == 0:
        raise ValueError("accuracy of an empty dataset is undefined")
    return correct / total
