"""The package version, importable from the lowest layer.

The canonical ``repro.__version__`` re-exports this value.  It lives in
``utils`` so that low-layer subsystems (telemetry manifests stamp every
run artifact with the producing version) can read it without importing
the package root, which would invert the layering.
"""

from __future__ import annotations

__all__ = ["__version__"]

__version__ = "1.4.0"
