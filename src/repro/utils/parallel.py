"""Deterministic process-pool fan-out for independent sweep evaluations.

The characterization sweep (Table III), the Monte-Carlo sensitivity
study and the multi-case experiment drivers all evaluate many
*independent* closed-loop simulations: every work item carries its own
seed and builds its own world, so the only thing parallelism may change
is wall-clock time.  :func:`parallel_map` encodes that contract:

- **Determinism** — results are returned in submission order, never in
  completion order, and each worker executes exactly the code the
  serial loop would.  The produced values are therefore bit-identical
  for any worker count.  Work items that need their own random stream
  derive it with :func:`task_seed` (a thin wrapper over
  :func:`repro.utils.rng.stream_seed` that folds the task index into
  the stream name).
- **Safe serial fallback** — with ``jobs=1`` no process is ever
  spawned; the map degenerates to a plain loop, keeping tests,
  debuggers and coverage tools simple.
- **Crash isolation** — an exception inside one work item does not
  abort the sweep: the failing item is reported through logging and a
  :class:`TaskFailure` takes its slot in the result list, so callers
  can both continue and see exactly which knob setting failed.  If the
  pool itself dies (a worker segfault kills the executor), the
  remaining items are re-run serially in-process.
- **Stats funneling** — process-global collectors (the profiling
  singleton, the telemetry metrics registry) do not silently lose what
  workers record: registered :class:`StatsFunnel` instances scope a
  fresh collector around every task and merge its snapshot back into
  the parent, identically for serial and pooled execution.

Worker-count resolution (:func:`resolve_jobs`): an explicit integer
wins, then the ``REPRO_JOBS`` environment variable, then 1 (serial).
``0`` or ``"auto"`` selects ``os.cpu_count()``.

Lane-count resolution (:func:`resolve_batch`) works the same way for
the batched rollout engine: explicit value, then ``$REPRO_BATCH``,
then ``"auto"`` (a deterministic function of the task and worker
counts — never of timing).

Consecutive :func:`parallel_map` calls reuse one persistent
:class:`ProcessPoolExecutor` per worker count instead of spawning a
fresh pool per sweep stage (characterize alone runs two stages per
situation); :func:`shutdown_pool` tears it down explicitly and an
``atexit`` hook covers interpreter exit.  Forked workers inherit the
parent's state *as of pool creation* — callers that mutate process
globals (environment variables, monkeypatched modules) between sweeps
should call :func:`shutdown_pool` so the next sweep sees the change.
"""

from __future__ import annotations

import atexit
import logging
import math
import os
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple, TypeVar, Union

from repro.utils import profiling
from repro.utils.rng import stream_seed

__all__ = [
    "StatsFunnel",
    "TaskFailure",
    "get_executor",
    "parallel_map",
    "register_stats_funnel",
    "resolve_batch",
    "resolve_jobs",
    "shutdown_pool",
    "task_seed",
]

_log = logging.getLogger(__name__)

T = TypeVar("T")
R = TypeVar("R")

#: Log a progress line every this many completed tasks (and at the end).
_PROGRESS_EVERY = 8


@dataclass(frozen=True)
class TaskFailure:
    """Placeholder result for a work item whose evaluation raised.

    ``item`` is the original work spec (so the failing knob setting can
    be reported), ``error`` the formatted exception.
    """

    index: int
    item: object
    error: str

    def __bool__(self) -> bool:
        # Failures are falsy so ``[r for r in results if r]`` keeps
        # only successful evaluations.
        return False


def task_seed(seed: int, stream: str, index: int) -> int:
    """Per-task child seed: fold the task index into the stream name.

    Tasks seeded this way draw from statistically independent streams
    that depend only on ``(seed, stream, index)`` — never on worker
    identity or completion order — so a sweep is reproducible for any
    ``jobs`` value.
    """
    return stream_seed(seed, f"{stream}/{index}")


def resolve_jobs(jobs: Union[int, str, None] = None) -> int:
    """Resolve a worker count: explicit value, then ``$REPRO_JOBS``, then 1.

    ``0`` or ``"auto"`` (either as the argument or as the environment
    value) means :func:`os.cpu_count`.
    """
    if jobs is None:
        env = os.environ.get("REPRO_JOBS", "").strip()
        if not env:
            return 1
        jobs = env
    if isinstance(jobs, str):
        if jobs.lower() == "auto":
            jobs = 0
        else:
            try:
                jobs = int(jobs)
            except ValueError:
                raise ValueError(
                    f"invalid jobs value {jobs!r}: expected an integer or 'auto'"
                ) from None
    if jobs < 0:
        raise ValueError(f"jobs must be >= 0, got {jobs}")
    if jobs == 0:
        jobs = os.cpu_count() or 1
    return jobs


#: Upper bound of the ``"auto"`` batch size: beyond ~16 lanes the
#: kernels stop gaining arithmetic intensity and peak memory grows.
_AUTO_BATCH_CAP = 16


def resolve_batch(
    batch: Union[int, str, None],
    n_tasks: int,
    jobs: int = 1,
) -> int:
    """Resolve the rollout lane count: explicit > ``$REPRO_BATCH`` > auto.

    ``0`` or ``"auto"`` (argument or environment value) chooses
    ``min(16, ceil(n_tasks / jobs))`` — every worker gets its whole
    chunk as one batch, capped where the kernels stop gaining.  The
    result depends only on ``(batch, n_tasks, jobs)``, never on timing,
    so sweep composition is deterministic.
    """
    if batch is None:
        env = os.environ.get("REPRO_BATCH", "").strip()
        batch = env if env else "auto"
    if isinstance(batch, str):
        if batch.lower() == "auto":
            batch = 0
        else:
            try:
                batch = int(batch)
            except ValueError:
                raise ValueError(
                    f"invalid batch value {batch!r}: expected an integer or 'auto'"
                ) from None
    if batch < 0:
        raise ValueError(f"batch must be >= 0, got {batch}")
    if batch == 0:
        batch = min(_AUTO_BATCH_CAP, math.ceil(n_tasks / max(1, jobs)))
    return max(1, batch)


# ---------------------------------------------------------------------------
# persistent pool
#
# Pool startup is pure overhead repeated per sweep stage; keeping one
# executor alive across consecutive parallel_map calls amortizes it.
# The pool is keyed by its worker count: asking for a different count
# replaces it (workers are forked lazily, so an oversized max_workers
# would still only fork what the first sweep touches — but replacing
# keeps the observable process count exact).

_POOL: Optional[ProcessPoolExecutor] = None
_POOL_WORKERS: int = 0


def _get_pool(workers: int) -> ProcessPoolExecutor:
    global _POOL, _POOL_WORKERS
    if _POOL is not None and _POOL_WORKERS != workers:
        shutdown_pool()
    if _POOL is None:
        _POOL = ProcessPoolExecutor(max_workers=workers)
        _POOL_WORKERS = workers
    return _POOL


def _discard_pool() -> None:
    """Forget a broken pool without joining its corpse."""
    global _POOL, _POOL_WORKERS
    pool, _POOL, _POOL_WORKERS = _POOL, None, 0
    if pool is not None:
        pool.shutdown(wait=False, cancel_futures=True)


def shutdown_pool() -> None:
    """Shut down the persistent worker pool (no-op when none is live).

    Call between sweeps after mutating process-global state that forked
    workers must observe (environment knobs, monkeypatches); the next
    :func:`parallel_map` transparently starts a fresh pool.
    """
    global _POOL, _POOL_WORKERS
    pool, _POOL, _POOL_WORKERS = _POOL, None, 0
    if pool is not None:
        pool.shutdown(wait=True)


atexit.register(shutdown_pool)


def get_executor(jobs: Union[int, str, None] = None) -> ProcessPoolExecutor:
    """The persistent worker pool for *jobs* workers (see :func:`resolve_jobs`).

    Long-lived callers (the :mod:`repro.service` server) submit their own
    futures against the shared pool instead of going through
    :func:`parallel_map`; the pool is the same one sweeps reuse, so a
    resident server amortizes worker fork and cache-warm costs across
    every request.  Do not shut the returned executor down directly —
    use :func:`shutdown_pool`.
    """
    return _get_pool(max(1, resolve_jobs(jobs)))


def _run_one(fn: Callable[[T], R], item: T, index: int) -> Union[R, TaskFailure]:
    """Evaluate one work item, converting exceptions to TaskFailure."""
    try:
        return fn(item)
    # Crash isolation is the contract here: any failure becomes a
    # recorded TaskFailure and the sweep continues.
    except Exception as exc:  # reprolint: disable=EXC001
        return TaskFailure(index=index, item=item, error=f"{type(exc).__name__}: {exc}")


# ---------------------------------------------------------------------------
# worker-stats funnel
#
# Process-global collectors (the profiling singleton, the telemetry
# recorder) are inherited by forked workers, but whatever a worker
# records there dies with the pool.  A registered StatsFunnel closes
# that gap: when its collector is active in the parent, every task —
# serial or pooled — runs against a fresh per-task collector whose
# picklable snapshot rides back alongside the result and is merged into
# the parent's collector in submission order.  Because jobs=1 takes the
# exact same scope/snapshot/merge path, parent-side stats are identical
# for any worker count.


@dataclass(frozen=True)
class StatsFunnel:
    """How one process-global collector crosses the pool boundary.

    ``parent_active`` says whether the collector is live in the parent
    (inactive funnels add zero overhead); ``begin_task`` scopes a fresh
    collector in the executing process and returns an opaque handle;
    ``end_task`` restores the previous collector and returns a
    picklable snapshot; ``merge`` folds a snapshot into the parent's
    collector.  Workers resolve funnels by *name* from their own
    registry (names pickle, callables need not), which fork-based pools
    satisfy by inheriting the registration.
    """

    name: str
    parent_active: Callable[[], bool]
    begin_task: Callable[[], object]
    end_task: Callable[[object], object]
    merge: Callable[[object], None]


_FUNNELS: Dict[str, StatsFunnel] = {}


def register_stats_funnel(funnel: StatsFunnel) -> None:
    """Register *funnel* (replacing any previous one with its name)."""
    _FUNNELS[funnel.name] = funnel


def _active_funnel_names() -> Tuple[str, ...]:
    """Names of the funnels whose parent collector is live, sorted."""
    return tuple(
        sorted(name for name, f in _FUNNELS.items() if f.parent_active())
    )


def _run_one_with_stats(
    fn: Callable[[T], R], item: T, index: int, funnel_names: Tuple[str, ...]
) -> Tuple[Union[R, TaskFailure], Dict[str, object]]:
    """:func:`_run_one` plus per-task collector snapshots for the parent."""
    scoped = [
        (funnel, funnel.begin_task())
        for funnel in (_FUNNELS.get(name) for name in funnel_names)
        if funnel is not None
    ]
    result = _run_one(fn, item, index)
    payloads: Dict[str, object] = {}
    for funnel, handle in reversed(scoped):
        payloads[funnel.name] = funnel.end_task(handle)
    return result, payloads


def _merge_stats(payloads: Dict[str, object]) -> None:
    """Fold one task's collector snapshots into the parent collectors."""
    for name, snapshot in payloads.items():
        funnel = _FUNNELS.get(name)
        if funnel is not None:
            funnel.merge(snapshot)


def parallel_map(
    fn: Callable[[T], R],
    items: Sequence[T],
    *,
    jobs: Union[int, str, None] = None,
    label: str = "sweep",
) -> List[Union[R, TaskFailure]]:
    """Map *fn* over *items*, optionally across a process pool.

    Parameters
    ----------
    fn:
        A picklable (module-level) callable evaluating one work item.
    items:
        Picklable work specs; evaluated independently.
    jobs:
        Worker count (see :func:`resolve_jobs`).  ``1`` runs a plain
        in-process loop without spawning anything.
    label:
        Name used in progress/failure log lines.

    Returns
    -------
    list
        One entry per item, in item order.  Entries are either ``fn``'s
        return value or a :class:`TaskFailure` (falsy) if that item
        raised.
    """
    n_jobs = resolve_jobs(jobs)
    items = list(items)
    if not items:
        return []
    # Resolved once up front so serial, pooled and broken-pool paths
    # agree on which collectors are scoped per task.
    funnel_names = _active_funnel_names()
    if n_jobs == 1:
        if not funnel_names:
            return [
                _seen(_run_one(fn, item, i), label)
                for i, item in enumerate(items)
            ]
        out: List[Union[R, TaskFailure]] = []
        for i, item in enumerate(items):
            result, payloads = _run_one_with_stats(fn, item, i, funnel_names)
            _merge_stats(payloads)
            out.append(_seen(result, label))
        return out

    results: List[Optional[Union[R, TaskFailure]]] = [None] * len(items)
    workers = min(n_jobs, len(items))
    _log.info("%s: %d tasks across %d workers", label, len(items), workers)
    pool = _get_pool(workers)
    if funnel_names:
        futures = [
            pool.submit(_run_one_with_stats, fn, item, i, funnel_names)
            for i, item in enumerate(items)
        ]
    else:
        futures = [
            pool.submit(_run_one, fn, item, i)
            for i, item in enumerate(items)
        ]
    broken_from: Optional[int] = None
    for i, future in enumerate(futures):
        try:
            if funnel_names:
                result, payloads = future.result()
                _merge_stats(payloads)
            else:
                result = future.result()
            results[i] = _seen(result, label)
        except BrokenProcessPool:
            # A worker died hard (e.g. OOM-kill): every unfinished
            # future raises.  Discard the dead executor so the next
            # sweep starts fresh, and fall back to in-process
            # execution for the remaining items.
            _discard_pool()
            broken_from = i
            break
        # Same crash-isolation contract for errors raised on the
        # submission side (e.g. an unpicklable work item).
        except Exception as exc:  # reprolint: disable=EXC001
            results[i] = _seen(
                TaskFailure(
                    index=i, item=items[i], error=f"{type(exc).__name__}: {exc}"
                ),
                label,
            )
        if (i + 1) % _PROGRESS_EVERY == 0 or i + 1 == len(items):
            _log.info("%s: %d/%d done", label, i + 1, len(items))
    if broken_from is not None:
        _log.warning(
            "%s: process pool broke at task %d/%d; finishing serially",
            label,
            broken_from + 1,
            len(items),
        )
        for i in range(broken_from, len(items)):
            if results[i] is None:
                if funnel_names:
                    result, payloads = _run_one_with_stats(
                        fn, items[i], i, funnel_names
                    )
                    _merge_stats(payloads)
                    results[i] = _seen(result, label)
                else:
                    results[i] = _seen(_run_one(fn, items[i], i), label)
    return results  # type: ignore[return-value]


def _seen(result: Union[R, TaskFailure], label: str) -> Union[R, TaskFailure]:
    """Log failures as they are collected; pass results through."""
    if isinstance(result, TaskFailure):
        _log.warning(
            "%s: task %d failed on %r: %s",
            label,
            result.index,
            result.item,
            result.error,
        )
    return result


# -- profiling funnel --------------------------------------------------------
#
# The profiling singleton is the original victim of the dropped-stats
# gap: sweep workers timed their stages into a forked copy of the
# parent's profiler and the numbers vanished with the pool.  The funnel
# below fixes that; repro.telemetry registers an equivalent funnel for
# its metrics registry at import.


def _profiling_parent_active() -> bool:
    return profiling.get_active() is not None


def _profiling_begin_task():
    previous = profiling.get_active()
    fresh = profiling.Profiler()
    profiling.activate(fresh)
    return previous, fresh


def _profiling_end_task(handle):
    previous, fresh = handle
    if previous is not None:
        profiling.activate(previous)
    else:
        profiling.deactivate()
    return fresh.snapshot()


def _profiling_merge(snapshot) -> None:
    active = profiling.get_active()
    if active is not None:
        active.merge(snapshot)


register_stats_funnel(
    StatsFunnel(
        name="profiling",
        parent_active=_profiling_parent_active,
        begin_task=_profiling_begin_task,
        end_task=_profiling_end_task,
        merge=_profiling_merge,
    )
)
