"""Near-zero-overhead scoped stage timers for the per-cycle hot path.

The paper's argument rests on *where the sensor-to-actuation delay
goes* (Table II profiles every ISP configuration, the PR pipeline and
the classifiers stage by stage).  This module gives the reproduction
the same observability over its own wall clock::

    from repro.utils.profiling import profile

    with profile("isp.tone_map"):
        rgb = tone_map(rgb)

Timings aggregate per label (count / total / mean / p95) on the
currently *active* :class:`Profiler`.  When no profiler is active —
the default — ``profile()`` returns a shared no-op context manager:
no object is allocated per call and nothing is recorded, so
instrumentation may stay in hot loops permanently.

Enabling
--------
- ``REPRO_PROFILE=1`` in the environment activates a process-global
  profiler at import time (also inherited by CLI entry points), or
- pass ``--profile`` to ``python -m repro run`` / use
  ``python -m repro profile``, or
- programmatically: ``activate(Profiler())`` / the ``activated()``
  context manager.

Profiling never touches RNG state or array values, so traces are
bit-identical with profiling on or off.
"""

from __future__ import annotations

import os
import time
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional

import numpy as np

__all__ = [
    "StageStats",
    "Profiler",
    "profile",
    "profiling_enabled",
    "activate",
    "deactivate",
    "get_active",
    "activated",
    "format_stage_table",
]


def profiling_enabled() -> bool:
    """Whether ``REPRO_PROFILE`` requests profiling (checked per call)."""
    return os.environ.get("REPRO_PROFILE", "0").lower() not in ("", "0", "false")


@dataclass(frozen=True)
class StageStats:
    """Aggregated timings of one labelled stage."""

    label: str
    count: int
    total_ms: float
    mean_ms: float
    p95_ms: float


class _Span:
    """Context manager timing one scope into its profiler."""

    __slots__ = ("_profiler", "_label", "_count", "_t0")

    def __init__(self, profiler: "Profiler", label: str, count: int = 1):
        self._profiler = profiler
        self._label = label
        self._count = count

    def __enter__(self) -> "_Span":
        self._t0 = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self._profiler.record(
            self._label, time.perf_counter() - self._t0, count=self._count
        )
        return False


class _NullSpan:
    """Shared do-nothing span handed out while profiling is off."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False


#: The singleton no-op span: ``profile()`` with no active profiler
#: returns this exact object, so the disabled path allocates nothing.
NULL_SPAN = _NullSpan()


class Profiler:
    """Aggregates scoped timings per label.

    Sample lists are bounded at :data:`MAX_SAMPLES` per label (p95 is
    computed over the first window); ``count``/``total`` keep
    accumulating beyond the cap, so long runs stay memory-bounded.
    """

    MAX_SAMPLES = 65536

    def __init__(self):
        self._samples: Dict[str, List[float]] = {}
        self._count: Dict[str, int] = {}
        self._total: Dict[str, float] = {}

    def span(self, label: str, count: int = 1) -> _Span:
        """A context manager recording one timed scope under *label*.

        *count* weights the measurement: a batched kernel that processes
        B lanes in one call records its wall time once with ``count=B``,
        so per-item means stay comparable with the serial path.
        """
        return _Span(self, label, count)

    def record(self, label: str, seconds: float, count: int = 1) -> None:
        """Add one measurement (seconds) under *label*, worth *count* items."""
        samples = self._samples.get(label)
        if samples is None:
            samples = []
            self._samples[label] = samples
            self._count[label] = 0
            self._total[label] = 0.0
        if len(samples) < self.MAX_SAMPLES:
            samples.append(seconds)
        self._count[label] += count
        self._total[label] += seconds

    @property
    def labels(self) -> List[str]:
        """Labels in first-recorded order."""
        return list(self._samples)

    def stats(self) -> Dict[str, StageStats]:
        """Per-label aggregate statistics, in first-recorded order."""
        out: Dict[str, StageStats] = {}
        for label, samples in self._samples.items():
            count = self._count[label]
            total = self._total[label]
            p95 = float(np.percentile(np.asarray(samples), 95.0)) if samples else 0.0
            out[label] = StageStats(
                label=label,
                count=count,
                total_ms=total * 1e3,
                mean_ms=(total / count) * 1e3 if count else 0.0,
                p95_ms=p95 * 1e3,
            )
        return out

    def reset(self) -> None:
        """Drop all recorded measurements."""
        self._samples.clear()
        self._count.clear()
        self._total.clear()

    def snapshot(self) -> Dict[str, object]:
        """A picklable plain-dict copy of the recorded measurements.

        This is the shape :func:`repro.utils.parallel.parallel_map`
        ships from worker processes back to the parent; fold it into
        another profiler with :meth:`merge`.
        """
        return {
            label: (list(samples), self._count[label], self._total[label])
            for label, samples in self._samples.items()
        }

    def merge(self, snapshot: Mapping[str, object]) -> None:
        """Fold a :meth:`snapshot` in: samples extend (bounded), counts
        and totals accumulate.  Labels keep first-appearance order."""
        for label, (samples, count, total) in snapshot.items():
            mine = self._samples.get(label)
            if mine is None:
                mine = []
                self._samples[label] = mine
                self._count[label] = 0
                self._total[label] = 0.0
            room = self.MAX_SAMPLES - len(mine)
            if room > 0:
                mine.extend(samples[:room])
            self._count[label] += count
            self._total[label] += total


_ACTIVE: Optional[Profiler] = None


def profile(label: str, count: int = 1):
    """A timed span when a profiler is active, else the shared no-op.

    *count* weights the span for batched kernels (see
    :meth:`Profiler.span`); the default 1 is the serial case.
    """
    if _ACTIVE is None:
        return NULL_SPAN
    return _ACTIVE.span(label, count)


def activate(profiler: Optional[Profiler] = None) -> Profiler:
    """Install *profiler* (or a fresh one) as the active collector."""
    global _ACTIVE
    _ACTIVE = profiler if profiler is not None else Profiler()
    return _ACTIVE


def deactivate() -> Optional[Profiler]:
    """Remove the active profiler; returns it (with its data)."""
    global _ACTIVE
    previous = _ACTIVE
    _ACTIVE = None
    return previous


def get_active() -> Optional[Profiler]:
    """The currently active profiler, if any."""
    return _ACTIVE


@contextmanager
def activated(profiler: Optional[Profiler]):
    """Scoped activation; ``activated(None)`` is a no-op passthrough.

    Restores whatever profiler was active before on exit, so nested
    scopes (an engine run inside an env-enabled session) compose.
    """
    global _ACTIVE
    if profiler is None:
        yield None
        return
    previous = _ACTIVE
    _ACTIVE = profiler
    try:
        yield profiler
    finally:
        _ACTIVE = previous


def format_stage_table(
    stats: Mapping[str, StageStats],
    modeled_ms: Optional[Mapping[str, float]] = None,
) -> str:
    """Render stats as an aligned text table.

    *modeled_ms* optionally maps labels to the paper's modeled latency
    (Table II); matching rows grow a ``model ms`` column so measured
    wall-clock sits next to the latency the control design assumes.
    """
    header = f"{'stage':<24} {'count':>7} {'mean ms':>9} {'p95 ms':>9} {'total ms':>10}"
    if modeled_ms:
        header += f" {'model ms':>9}"
    lines = [header]
    for label, stat in stats.items():
        row = (
            f"{label:<24} {stat.count:>7d} {stat.mean_ms:>9.3f} "
            f"{stat.p95_ms:>9.3f} {stat.total_ms:>10.2f}"
        )
        if modeled_ms:
            model = modeled_ms.get(label)
            row += f" {model:>9.3f}" if model is not None else f" {'-':>9}"
        lines.append(row)
    return "\n".join(lines)


# REPRO_PROFILE in the environment enables collection for the whole
# process without touching any call site.
if profiling_enabled():  # pragma: no cover - env-dependent import effect
    activate(Profiler())
