"""Shared utilities: RNG, parallel sweeps, caching, profiling, validation."""

from repro.utils.parallel import TaskFailure, parallel_map, resolve_jobs, task_seed
from repro.utils.profiling import Profiler, StageStats, profile, profiling_enabled
from repro.utils.rng import derive_rng, seed_everything
from repro.utils.scratch import ScratchCache
from repro.utils.validation import (
    check_finite,
    check_in_range,
    check_positive,
    check_shape,
)

__all__ = [
    "TaskFailure",
    "parallel_map",
    "resolve_jobs",
    "task_seed",
    "Profiler",
    "StageStats",
    "profile",
    "profiling_enabled",
    "ScratchCache",
    "derive_rng",
    "seed_everything",
    "check_finite",
    "check_in_range",
    "check_positive",
    "check_shape",
]
