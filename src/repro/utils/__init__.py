"""Shared utilities: deterministic RNG, parallel sweeps, caching, validation."""

from repro.utils.parallel import TaskFailure, parallel_map, resolve_jobs, task_seed
from repro.utils.rng import derive_rng, seed_everything
from repro.utils.validation import (
    check_finite,
    check_in_range,
    check_positive,
    check_shape,
)

__all__ = [
    "TaskFailure",
    "parallel_map",
    "resolve_jobs",
    "task_seed",
    "derive_rng",
    "seed_everything",
    "check_finite",
    "check_in_range",
    "check_positive",
    "check_shape",
]
