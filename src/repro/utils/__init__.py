"""Shared utilities: deterministic RNG, image helpers, caching, validation."""

from repro.utils.rng import derive_rng, seed_everything
from repro.utils.validation import (
    check_finite,
    check_in_range,
    check_positive,
    check_shape,
)

__all__ = [
    "derive_rng",
    "seed_everything",
    "check_finite",
    "check_in_range",
    "check_positive",
    "check_shape",
]
