"""Deterministic random-number management.

Every stochastic component in the library (sensor noise, dataset
generation, Monte-Carlo characterization) draws from a
:class:`numpy.random.Generator` derived from a user-supplied seed plus a
string *stream* name.  Deriving per-stream generators keeps experiments
reproducible even when components are re-ordered or run in parallel:
adding noise to the camera does not perturb the dataset generator.
"""

from __future__ import annotations

import hashlib
from contextlib import contextmanager
from typing import Callable, List

import numpy as np

__all__ = [
    "collect_streams",
    "derive_rng",
    "seed_everything",
    "seed_legacy_global",
    "stream_seed",
]

#: Listeners notified with each stream name passed to :func:`derive_rng`.
#: Empty in normal operation, so the hot path pays one falsy check.
_STREAM_LISTENERS: List[Callable[[str], None]] = []


@contextmanager
def collect_streams():
    """Record the stream names derived while the block runs.

    Yields a list that accumulates every ``stream`` argument passed to
    :func:`derive_rng` (in call order, duplicates kept).  Telemetry
    manifests use this to attach the set of RNG streams a run actually
    consumed, without the components having to report them.
    """
    seen: List[str] = []
    _STREAM_LISTENERS.append(seen.append)
    try:
        yield seen
    finally:
        _STREAM_LISTENERS.remove(seen.append)


def stream_seed(seed: int, stream: str) -> int:
    """Derive a 63-bit integer seed for *stream* from a base *seed*.

    The derivation hashes ``(seed, stream)`` with SHA-256 so that distinct
    stream names give statistically independent generators, and the same
    ``(seed, stream)`` pair always maps to the same child seed.
    """
    digest = hashlib.sha256(f"{seed}:{stream}".encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "little") & (2**63 - 1)


def derive_rng(seed: int, stream: str) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for ``(seed, stream)``.

    Parameters
    ----------
    seed:
        Base experiment seed.
    stream:
        Component name, e.g. ``"camera-noise"`` or ``"dataset/road"``.
    """
    if _STREAM_LISTENERS:
        for listener in _STREAM_LISTENERS:
            listener(stream)
    return np.random.default_rng(stream_seed(seed, stream))


def seed_legacy_global(seed: int) -> None:
    """Seed numpy's legacy global RNG (``np.random.*`` module functions).

    This is the **only** sanctioned call site of ``np.random.seed`` in
    the codebase — the ``RNG001`` lint rule flags every other use.  The
    library itself never draws from the legacy global state, but
    third-party snippets in examples might; seeding it here avoids
    cross-run flakiness without scattering global-state writes.
    """
    np.random.seed(seed % (2**32))


def seed_everything(seed: int) -> np.random.Generator:
    """Seed the legacy global RNG and return a fresh generator.

    Prefer :func:`derive_rng` for component streams; use this once at
    process start when an experiment also touches code that consumes the
    global ``np.random`` state.
    """
    seed_legacy_global(seed)
    return np.random.default_rng(seed)
