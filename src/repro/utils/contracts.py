"""Lightweight runtime contracts for hot array boundaries.

This module lives in :mod:`repro.utils` so that every layer — including
:mod:`repro.metrics`, whose architecture contract allows it to import
nothing but ``utils`` — can guard its boundaries without coupling to the
analysis subsystem.  :mod:`repro.analysis.contracts` re-exports these
names for backward compatibility.

The static rules catch structural mistakes; these decorators catch the
dynamic ones — a frame with the wrong rank reaching the perception
pipeline, a NaN leaking out of the NN forward pass — *at the call
site*, instead of as a cryptic downstream numpy error.

Contracts are **on by default** (so every test run checks them) and
compile to nothing when disabled: with ``REPRO_CONTRACTS=0`` in the
environment at import time, the decorators return the function object
unchanged — zero wrapper, zero per-call cost.  When enabled, each
wrapper also consults :func:`contracts_enabled` per call so tests can
toggle checking without re-importing the library.

Shape specs map argument names to expected shapes::

    @check_shapes(frame=("H", "W", 3))      # rank 3, last dim exactly 3
    @check_shapes(x=("N", "C", None, None)) # rank 4, anything per dim
    def process(frame): ...

- ``int`` dimensions must match exactly,
- ``str`` dimensions are symbolic: every use of the same symbol within
  one call must agree (``("N", "N")`` demands a square matrix),
- ``None`` matches anything,
- an ``int`` spec (not a tuple) constrains only the rank.

:func:`check_finite` asserts ``np.isfinite`` over named array (or
scalar) arguments, and over the return value with ``result=True``.
"""

from __future__ import annotations

import functools
import inspect
import os
from typing import Callable, Dict, Optional, Tuple, Union

import numpy as np

__all__ = [
    "ContractViolation",
    "assert_finite",
    "check_finite",
    "check_shapes",
    "contracts_enabled",
    "set_contracts_enabled",
]

ShapeSpec = Union[int, Tuple[Optional[Union[int, str]], ...]]

#: Captured once at import: REPRO_CONTRACTS=0 strips the decorators.
_COMPILED_IN = os.environ.get("REPRO_CONTRACTS", "1") != "0"

_enabled = _COMPILED_IN


class ContractViolation(ValueError):
    """A runtime contract (shape or finiteness) was violated."""


def contracts_enabled() -> bool:
    """Whether contract checks run on decorated calls."""
    return _enabled


def set_contracts_enabled(enabled: bool) -> bool:
    """Toggle checking at runtime; returns the previous value.

    Has no effect on functions decorated while ``REPRO_CONTRACTS=0``
    was set: those were compiled out entirely.
    """
    global _enabled
    previous = _enabled
    _enabled = bool(enabled)
    return previous


def assert_finite(value, name: str = "value") -> None:
    """Raise :class:`ContractViolation` if *value* has NaN/Inf entries."""
    arr = np.asarray(value, dtype=float)
    if arr.size and not np.isfinite(arr).all():
        bad = int(arr.size - np.count_nonzero(np.isfinite(arr)))
        raise ContractViolation(
            f"{name} contains {bad} non-finite value(s) "
            f"(shape {arr.shape})"
        )


def _bind(fn: Callable, signature: inspect.Signature, args, kwargs):
    bound = signature.bind(*args, **kwargs)
    bound.apply_defaults()
    return bound


def check_shapes(**specs: ShapeSpec) -> Callable[[Callable], Callable]:
    """Check named array arguments against shape specs (see module doc).

    The special key ``result`` constrains the return value.
    """
    result_spec = specs.pop("result", None)

    def decorate(fn: Callable) -> Callable:
        if not _COMPILED_IN:
            return fn
        signature = inspect.signature(fn)
        for name in specs:
            if name not in signature.parameters:
                raise TypeError(
                    f"check_shapes: {fn.__qualname__} has no parameter {name!r}"
                )

        @functools.wraps(fn)
        def wrapper(*args, **kwargs):
            if not _enabled:
                return fn(*args, **kwargs)
            bound = _bind(fn, signature, args, kwargs)
            symbols: Dict[str, int] = {}
            for name, spec in specs.items():
                _check_shape(
                    bound.arguments[name], spec, f"{fn.__qualname__}({name})",
                    symbols,
                )
            result = fn(*args, **kwargs)
            if result_spec is not None:
                _check_shape(
                    result, result_spec, f"{fn.__qualname__}() result", symbols
                )
            return result

        return wrapper

    return decorate


def _check_shape(value, spec: ShapeSpec, label: str, symbols: Dict[str, int]):
    shape = np.shape(value)
    if isinstance(spec, int):
        if len(shape) != spec:
            raise ContractViolation(
                f"{label}: expected rank {spec}, got shape {shape}"
            )
        return
    if len(shape) != len(spec):
        raise ContractViolation(
            f"{label}: expected rank {len(spec)} shape {spec}, got {shape}"
        )
    for axis, (actual, expected) in enumerate(zip(shape, spec)):
        if expected is None:
            continue
        if isinstance(expected, str):
            pinned = symbols.setdefault(expected, actual)
            if pinned != actual:
                raise ContractViolation(
                    f"{label}: dim {axis} ({expected!r}) is {actual}, "
                    f"but {expected!r} was {pinned} earlier in the call"
                )
        elif actual != expected:
            raise ContractViolation(
                f"{label}: dim {axis} is {actual}, expected {expected} "
                f"(shape {shape} vs spec {spec})"
            )


def check_finite(
    *names: str, result: bool = False
) -> Callable[[Callable], Callable]:
    """Check that the named arguments (and optionally the return value)
    contain no NaN/Inf entries."""

    def decorate(fn: Callable) -> Callable:
        if not _COMPILED_IN:
            return fn
        signature = inspect.signature(fn)
        for name in names:
            if name not in signature.parameters:
                raise TypeError(
                    f"check_finite: {fn.__qualname__} has no parameter {name!r}"
                )

        @functools.wraps(fn)
        def wrapper(*args, **kwargs):
            if not _enabled:
                return fn(*args, **kwargs)
            bound = _bind(fn, signature, args, kwargs)
            for name in names:
                assert_finite(
                    bound.arguments[name], f"{fn.__qualname__}({name})"
                )
            value = fn(*args, **kwargs)
            if result:
                assert_finite(value, f"{fn.__qualname__}() result")
            return value

        return wrapper

    return decorate
