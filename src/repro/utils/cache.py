"""On-disk artifact cache for expensive deterministic computations.

Trained classifier weights and characterization tables are deterministic
functions of their configuration.  The cache stores such artifacts as
``.npz`` files keyed by a SHA-256 hash of the configuration dictionary,
so a second run (or a test suite following a benchmark run) skips the
expensive recomputation.

Set the environment variable ``REPRO_NO_CACHE=1`` to bypass the cache
entirely, or ``REPRO_CACHE_DIR`` to relocate it.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
import time
from pathlib import Path
from typing import Any, Dict, Optional

import numpy as np

__all__ = ["ArtifactCache", "config_hash", "default_cache_dir"]

#: Orphaned ``*.npz.tmp`` files older than this are swept on store();
#: young ones may belong to a concurrent writer mid-flight.
_STALE_TMP_AGE_S = 3600.0


def default_cache_dir() -> Path:
    """Return the cache root (``$REPRO_CACHE_DIR`` or ``~/.cache/repro``)."""
    env = os.environ.get("REPRO_CACHE_DIR")
    if env:
        return Path(env)
    return Path.home() / ".cache" / "repro"


def config_hash(config: Dict[str, Any]) -> str:
    """Hash a JSON-serializable config dict to a stable hex digest."""
    blob = json.dumps(config, sort_keys=True, default=_jsonify)
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()[:24]


def _jsonify(obj: Any) -> Any:
    if isinstance(obj, (np.integer,)):
        return int(obj)
    if isinstance(obj, (np.floating,)):
        return float(obj)
    if isinstance(obj, np.ndarray):
        return obj.tolist()
    if hasattr(obj, "to_config"):
        return obj.to_config()
    raise TypeError(f"not JSON-serializable: {type(obj)!r}")


class ArtifactCache:
    """Store/retrieve dictionaries of numpy arrays keyed by config hashes.

    Parameters
    ----------
    namespace:
        Subdirectory under the cache root, e.g. ``"classifiers"``.
    enabled:
        Force-enable/disable; defaults to honouring ``REPRO_NO_CACHE``.
    """

    def __init__(self, namespace: str, *, enabled: Optional[bool] = None):
        if enabled is None:
            enabled = os.environ.get("REPRO_NO_CACHE", "0") != "1"
        self.namespace = namespace
        self.enabled = enabled
        self.root = default_cache_dir() / namespace

    def _path(self, key: str) -> Path:
        return self.root / f"{key}.npz"

    def load(self, config: Dict[str, Any]) -> Optional[Dict[str, np.ndarray]]:
        """Return the cached arrays for *config*, or ``None`` on a miss."""
        if not self.enabled:
            return None
        path = self._path(config_hash(config))
        if not path.exists():
            return None
        try:
            with np.load(path, allow_pickle=False) as data:
                return {name: data[name] for name in data.files}
        except (OSError, ValueError):
            # A corrupt cache entry behaves like a miss.
            return None

    def store(self, config: Dict[str, Any], arrays: Dict[str, np.ndarray]) -> Path:
        """Atomically persist *arrays* under the hash of *config*.

        The write goes to a unique ``*.npz.tmp`` file that is renamed
        over the target with :func:`os.replace`, so concurrent writers
        of the same key are safe: each writes its own temp file and the
        last rename wins atomically — readers never observe a partial
        entry.  Stale temp files from interrupted writers are swept
        opportunistically.
        """
        path = self._path(config_hash(config))
        if not self.enabled:
            return path
        self.root.mkdir(parents=True, exist_ok=True)
        self._sweep_tmp(max_age_s=_STALE_TMP_AGE_S)
        fd, tmp_name = tempfile.mkstemp(dir=self.root, suffix=".npz.tmp")
        try:
            with os.fdopen(fd, "wb") as handle:
                np.savez(handle, **arrays)
            os.replace(tmp_name, path)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise
        return path

    def clear(self) -> int:
        """Delete every entry in this namespace; return the count removed.

        Also removes orphaned ``*.npz.tmp`` files left by interrupted
        :meth:`store` calls (those do not count towards the total —
        they were never visible entries).
        """
        if not self.root.exists():
            return 0
        removed = 0
        for path in self.root.glob("*.npz"):
            path.unlink()
            removed += 1
        self._sweep_tmp(max_age_s=0.0)
        return removed

    def _sweep_tmp(self, max_age_s: float) -> int:
        """Unlink ``*.npz.tmp`` files older than *max_age_s* seconds."""
        if not self.root.exists():
            return 0
        now = time.time()
        swept = 0
        for tmp in self.root.glob("*.npz.tmp"):
            try:
                if now - tmp.stat().st_mtime >= max_age_s:
                    tmp.unlink()
                    swept += 1
            except OSError:
                # Raced with a concurrent writer finishing its rename
                # (or another sweep): the file is gone either way.
                continue
        return swept
