"""Small argument-validation helpers used across the library.

These raise ``ValueError`` with a consistent message format so call sites
stay one-liners and tests can assert on behaviour uniformly.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

__all__ = ["check_positive", "check_in_range", "check_shape", "check_finite"]


def check_positive(name: str, value: float) -> float:
    """Validate that *value* is strictly positive and return it."""
    if not value > 0:
        raise ValueError(f"{name} must be > 0, got {value!r}")
    return value


def check_in_range(
    name: str,
    value: float,
    low: float,
    high: float,
    *,
    inclusive: bool = True,
) -> float:
    """Validate that *value* lies in ``[low, high]`` (or ``(low, high)``)."""
    if inclusive:
        ok = low <= value <= high
        bounds = f"[{low}, {high}]"
    else:
        ok = low < value < high
        bounds = f"({low}, {high})"
    if not ok:
        raise ValueError(f"{name} must be in {bounds}, got {value!r}")
    return value


def check_shape(name: str, array: np.ndarray, shape: Sequence[int]) -> np.ndarray:
    """Validate the shape of *array*; ``-1`` entries match any extent."""
    actual = np.asarray(array).shape
    if len(actual) != len(shape) or any(
        want not in (-1, got) for want, got in zip(shape, actual)
    ):
        raise ValueError(f"{name} must have shape {tuple(shape)}, got {actual}")
    return array


def check_finite(name: str, array: np.ndarray) -> np.ndarray:
    """Validate that every element of *array* is finite."""
    arr = np.asarray(array)
    if not np.all(np.isfinite(arr)):
        raise ValueError(f"{name} contains non-finite values")
    return array
