"""Bounded per-shape scratch-buffer caches for hot paths.

Inference-time hot loops (conv im2col, ISP stage temporaries, renderer
frame math) repeatedly allocate arrays whose shapes are fixed for the
lifetime of an episode.  :class:`ScratchCache` hands out reusable
buffers keyed by ``(tag, shape)`` so a steady-state control cycle
performs no per-cycle allocations for those temporaries.

Rules of use
------------
- A scratch buffer may only be used for values that are **consumed
  before the next request for the same key** — never return one to a
  caller that outlives the function (the next cycle would overwrite
  it behind the caller's back).
- Buffers requested with ``zero=True`` are zero-filled on *creation
  only*; callers relying on zeros must never write outside the region
  they fully overwrite each call (the conv padding buffer works this
  way: borders stay zero forever, the interior is rewritten per call).

The cache is **bounded**: it keeps at most ``max_entries`` buffers and
evicts least-recently-used ones, so long multi-resolution sweeps (many
distinct frame shapes) cannot grow it without limit.  Each worker
process of a parallel sweep holds its own cache (module state is not
shared across processes), so reuse never races.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Hashable, Tuple

import numpy as np

__all__ = ["ScratchCache"]


class ScratchCache:
    """LRU-bounded pool of reusable numpy buffers keyed by (tag, shape)."""

    def __init__(self, max_entries: int = 32):
        if max_entries < 1:
            raise ValueError(f"max_entries must be >= 1, got {max_entries}")
        self.max_entries = max_entries
        self._buffers: "OrderedDict[Hashable, np.ndarray]" = OrderedDict()

    def __len__(self) -> int:
        return len(self._buffers)

    def get(
        self,
        tag: Hashable,
        shape: Tuple[int, ...],
        dtype=np.float32,
        zero: bool = False,
    ) -> np.ndarray:
        """A reusable buffer of *shape*/*dtype* for the given *tag*.

        The same ``(tag, shape, dtype)`` key always returns the same
        array object until it is evicted; contents are whatever the
        previous user left (except ``zero=True`` buffers, which start
        zero-filled when created).
        """
        key = (tag, shape, np.dtype(dtype))
        buf = self._buffers.get(key)
        if buf is not None:
            self._buffers.move_to_end(key)
            return buf
        while len(self._buffers) >= self.max_entries:
            self._buffers.popitem(last=False)
        buf = (
            np.zeros(shape, dtype=dtype) if zero else np.empty(shape, dtype=dtype)
        )
        self._buffers[key] = buf
        return buf

    def clear(self) -> None:
        """Drop every pooled buffer (tests / memory pressure)."""
        self._buffers.clear()
