"""Run records and QoC aggregation for closed-loop simulations."""

from __future__ import annotations

import json
import os
import tempfile
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import Dict, List, Optional

import numpy as np

from repro.metrics.qoc import mae
from repro.sim.track import Track
from repro.utils.profiling import StageStats, format_stage_table

__all__ = ["CycleRecord", "HilResult", "SectorQoC"]


@dataclass
class CycleRecord:
    """Bookkeeping of one control cycle."""

    time_ms: float
    s: float
    active_isp: str
    roi: str
    speed_kmph: float
    period_ms: float
    delay_ms: float
    invoked: tuple
    measurement_valid: bool
    y_l_measured: float
    steering: float
    #: True when the cycle ran on the mitigation fallback knobs
    #: (identification stale — see repro.core.reconfiguration).
    degraded: bool = False
    #: Kind strings of the fault specs active during this cycle
    #: (empty without a fault plan — see repro.faults).
    faults: tuple = ()


@dataclass
class SectorQoC:
    """Per-sector QoC summary (the Fig. 8 bar data)."""

    sector: int
    s_start: float
    s_end: float
    mae: Optional[float]
    reached: bool
    completed: bool

    @property
    def failed(self) -> bool:
        """The vehicle entered the sector but crashed inside it."""
        return self.reached and not self.completed


@dataclass
class HilResult:
    """Full trace of one closed-loop run."""

    time_s: np.ndarray
    s: np.ndarray
    lateral_offset: np.ndarray
    y_l_true: np.ndarray
    steering: np.ndarray
    speed: np.ndarray
    cycles: List[CycleRecord] = field(default_factory=list)
    crashed: bool = False
    crash_s: Optional[float] = None
    completed: bool = False
    #: Measured per-stage wall-clock stats (``HilConfig.profile=True``
    #: or ``REPRO_PROFILE=1``); ``None`` when profiling was off.  This
    #: is ephemeral observability data: :meth:`save` does not persist
    #: it, and it never influences the simulated trace.
    profile: Optional[Dict[str, StageStats]] = None
    #: The run manifest (config hash, package version, RNG streams —
    #: see :func:`repro.telemetry.build_manifest`).  Attached by the
    #: engine, persisted by :meth:`save`, and ``None`` for results
    #: constructed by hand or loaded from pre-telemetry traces.
    manifest: Optional[Dict[str, object]] = None

    def profile_table(self) -> str:
        """The stage-timing table as text ('' when profiling was off)."""
        if not self.profile:
            return ""
        return format_stage_table(self.profile)

    def mae(self, skip_time_s: float = 0.0) -> float:
        """MAE of the true look-ahead deviation (Eq. 1).

        ``skip_time_s`` optionally drops the initial transient (the runs
        start with a deliberate lateral offset).  Runs shorter than the
        skip (e.g. an early crash) fall back to the full trace.  An
        empty trace (a run that recorded no step) has no defined MAE
        and raises :class:`ValueError`.
        """
        if self.time_s.size == 0:
            raise ValueError("MAE of an empty trace is undefined")
        sel = self.time_s >= skip_time_s
        if not sel.any():
            sel = slice(None)
        return mae(self.y_l_true[sel])

    def duration_s(self) -> float:
        """Simulated duration of the run in seconds."""
        return float(self.time_s[-1]) if self.time_s.size else 0.0

    def max_offset(self) -> float:
        """Largest absolute lateral offset reached (0.0 on an empty trace)."""
        if self.lateral_offset.size == 0:
            return 0.0
        return float(np.max(np.abs(self.lateral_offset)))

    def degraded_cycles(self) -> int:
        """Cycles that ran on the mitigation fallback knobs."""
        return sum(1 for c in self.cycles if c.degraded)

    def degraded_fraction(self) -> float:
        """Fraction of cycles in degraded mode (0.0 without cycles)."""
        if not self.cycles:
            return 0.0
        return self.degraded_cycles() / len(self.cycles)

    def fault_kinds(self) -> tuple:
        """Distinct fault kinds seen across the run's cycles (sorted)."""
        return tuple(sorted({kind for c in self.cycles for kind in c.faults}))

    def save(
        self, path: str, *, extra_json: Optional[Dict[str, str]] = None
    ) -> Path:
        """Persist the trace to ``.npz`` (cycle records as JSON inside).

        Useful for offline analysis of long runs without re-simulating.
        The write is atomic (temp file + :func:`os.replace`, the
        ``ArtifactCache.store`` pattern), so a crash mid-write never
        leaves a corrupt file at the returned path — which is always
        exactly the file written, with the ``.npz`` suffix applied up
        front rather than appended behind our back by ``np.savez``.

        ``extra_json`` attaches additional JSON-string members to the
        archive (e.g. the cache-key document :mod:`repro.cache` embeds
        for ``verify``); :meth:`load` ignores members it does not know,
        so extras never change the loaded result.
        """
        target = Path(path)
        if target.suffix != ".npz":
            target = target.with_suffix(target.suffix + ".npz")
        payload = {
            "time_s": self.time_s,
            "s": self.s,
            "lateral_offset": self.lateral_offset,
            "y_l_true": self.y_l_true,
            "steering": self.steering,
            "speed": self.speed,
            "crashed": np.array(self.crashed),
            "crash_s": np.array(
                np.nan if self.crash_s is None else self.crash_s
            ),
            "completed": np.array(self.completed),
            "cycles_json": np.array(
                json.dumps([asdict(c) for c in self.cycles])
            ),
        }
        if self.manifest is not None:
            payload["manifest_json"] = np.array(json.dumps(self.manifest))
        for name, blob in (extra_json or {}).items():
            if name in payload:
                raise ValueError(f"extra_json key shadows a trace member: {name!r}")
            payload[name] = np.array(blob)
        fd, tmp_name = tempfile.mkstemp(
            dir=str(target.parent), suffix=".npz.tmp"
        )
        try:
            # Writing to the open handle (not a path) keeps np.savez
            # from appending its own suffix, so `target` provably names
            # the bytes on disk.
            with os.fdopen(fd, "wb") as handle:
                np.savez(handle, **payload)
            os.replace(tmp_name, target)
        except BaseException:
            if os.path.exists(tmp_name):
                os.unlink(tmp_name)
            raise
        return target

    @classmethod
    def load(cls, path: str) -> "HilResult":
        """Inverse of :meth:`save`."""
        with np.load(path, allow_pickle=False) as data:
            cycles = [
                CycleRecord(
                    **{
                        **c,
                        "invoked": tuple(c["invoked"]),
                        # Absent in traces saved before the fault
                        # subsystem existed; default to clean cycles.
                        "faults": tuple(c.get("faults", ())),
                        "degraded": bool(c.get("degraded", False)),
                    }
                )
                for c in json.loads(str(data["cycles_json"]))
            ]
            crash_s = float(data["crash_s"])
            manifest = (
                json.loads(str(data["manifest_json"]))
                # Absent in traces saved before the telemetry subsystem.
                if "manifest_json" in data.files
                else None
            )
            return cls(
                time_s=data["time_s"],
                s=data["s"],
                lateral_offset=data["lateral_offset"],
                y_l_true=data["y_l_true"],
                steering=data["steering"],
                speed=data["speed"],
                cycles=cycles,
                crashed=bool(data["crashed"]),
                crash_s=None if np.isnan(crash_s) else crash_s,
                completed=bool(data["completed"]),
                manifest=manifest,
            )

    def sector_qoc(self, track: Track, skip_distance_m: float = 0.0) -> List[SectorQoC]:
        """Aggregate QoC per track sector (Fig. 8).

        Parameters
        ----------
        track:
            The track the run was recorded on (provides sector bounds).
        skip_distance_m:
            Arc length skipped at the start of each sector before QoC is
            accumulated, so a sector's score is not dominated by the
            switching transient of its entry (the paper evaluates
            per-sector performance the same way: the transition effects
            belong to the failure analysis, not the steady QoC).
        """
        sectors: List[SectorQoC] = []
        progress = float(self.s[-1]) if self.s.size else 0.0
        for index, seg in enumerate(track.segments, start=1):
            reached = progress > seg.s_start
            completed = (progress >= seg.s_end - 1e-6) or (
                self.completed and index == len(track.segments)
            )
            sel = (self.s >= seg.s_start + skip_distance_m) & (self.s < seg.s_end)
            # Same Eq. 1 aggregate as HilResult.mae; a sector without a
            # single sample has no QoC (None), not a zero.
            sector_mae = mae(self.y_l_true[sel]) if sel.any() else None
            sectors.append(
                SectorQoC(
                    sector=index,
                    s_start=seg.s_start,
                    s_end=seg.s_end,
                    mae=sector_mae,
                    reached=reached,
                    completed=completed and not (
                        self.crashed
                        and self.crash_s is not None
                        and seg.s_start <= self.crash_s < seg.s_end
                    ),
                )
            )
        return sectors
