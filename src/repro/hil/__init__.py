"""Hardware-in-the-loop co-simulation engine (IMACS + Webots stand-in).

Couples the renderer/vehicle substrate with the ISP, classifiers,
perception and control at the paper's timing granularity: 5 ms
simulation steps, 200 FPS camera, control at the situation-specific
period ``h`` with actuation applied after the sensor-to-actuation delay
``tau`` (both ceiled to the simulation step, footnote 5).
"""

from repro.hil.batch import BatchedHilEngine, run_batch
from repro.hil.engine import HilConfig, HilEngine
from repro.hil.record import CycleRecord, HilResult, SectorQoC

__all__ = [
    "BatchedHilEngine",
    "HilConfig",
    "HilEngine",
    "CycleRecord",
    "HilResult",
    "SectorQoC",
    "run_batch",
]
