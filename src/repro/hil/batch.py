"""Batched lock-step rollout engine.

Sweeps (Table III characterization, Monte-Carlo studies) evaluate many
*independent* closed-loop rollouts whose per-cycle cost is dominated by
numpy dispatch overhead, not arithmetic.  :class:`BatchedHilEngine`
advances B rollouts ("lanes") in lock step — lanes advance their own
5 ms plant steps and rendezvous at control cycles — and funnels the
three hot sensing stages through single batched kernel calls per
cycle:

- **render** — lanes sharing (track, camera, options) stack their poses
  over the shared per-situation photometry constants
  (:func:`repro.sim.renderer.render_raw_batch`);
- **ISP** — lanes running the same configuration stack their RAW planes
  through :meth:`repro.isp.pipeline.IspPipeline.process_batch`;
- **classifier** — lanes sharing a :class:`CnnIdentifier` run one
  stacked network forward (:meth:`CnnIdentifier.identify_batch`);
- **perception** — lanes sharing (camera, ROI, threshold params) share
  one BEV warp + dynamic threshold
  (:func:`repro.perception.pipeline.process_batch`).

Between cycles, lanes sharing a plant configuration advance their
5 ms steps as one stacked cohort (:meth:`Vehicle.step_batch` +
:meth:`Track.frenet_batch`).  Everything else — controller,
reconfiguration manager, fault injection, RNG draws — is each lane's
own serial Python, executed through the exact seam methods of
:class:`repro.hil.engine.HilEngine`.  Batching happens over the leading
axis only and per-lane reduction orders are unchanged, so every lane's
:class:`HilResult` trace is bit-identical to running that lane alone
through ``HilEngine.run`` (see DESIGN.md for the invariance argument).

Lanes leave the active set as soon as they crash, finish the track, or
exhaust their step budget; the survivors keep batching until the last
lane retires.  A lane whose cycle takes a fault path that has no
batched equivalent (an ISP tap, non-null classifier outcomes) simply
drops to the serial kernels for that cycle — correctness never depends
on batch composition.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Union

import numpy as np

from repro.control.controller import LaneKeepingController
from repro.core.cases import CaseConfig
from repro.core.knobs import KnobSetting
from repro.core.reconfiguration import SituationIdentifier
from repro.core.situation import Situation
from repro.faults.injection import NullInjector
from repro.hil.engine import HilConfig, HilEngine
from repro.hil.record import HilResult
from repro.perception.pipeline import PerceptionResult
from repro.perception.pipeline import process_batch as perception_process_batch
from repro.sim.geometry import Pose2D
from repro.sim.renderer import render_raw_batch
from repro.sim.track import Track
from repro.sim.vehicle import Vehicle, VehicleState
from repro.telemetry import recorder as telemetry
from repro.utils import profiling
from repro.utils.profiling import profile

__all__ = ["BatchedHilEngine", "run_batch"]


@dataclass
class _Lane:
    """Mutable per-lane rollout state (one serial run's loop variables)."""

    engine: HilEngine
    vehicle: object
    n_steps: int
    controller: Optional[LaneKeepingController] = None
    step: int = 0
    control_due: int = 0
    pending: list = field(default_factory=list)
    current_u: float = 0.0
    s_hint: float = 0.0
    crashed: bool = False
    crash_s: Optional[float] = None
    completed: bool = False
    recorded: int = 0
    cycles: list = field(default_factory=list)
    times: np.ndarray = None  # type: ignore[assignment]
    s_arr: np.ndarray = None  # type: ignore[assignment]
    d_arr: np.ndarray = None  # type: ignore[assignment]
    y_arr: np.ndarray = None  # type: ignore[assignment]
    steer_arr: np.ndarray = None  # type: ignore[assignment]
    speed_arr: np.ndarray = None  # type: ignore[assignment]
    active: bool = True


class BatchedHilEngine:
    """Advance several independent :class:`HilEngine` rollouts lock-step.

    Lanes rendezvous at control cycles, not at raw simulation steps:
    each lane advances its own 5 ms plant steps (vectorized across the
    cohort sharing its plant configuration) until its next control
    cycle is due, then *all* active lanes run that cycle together
    through the batched sensing kernels.  Lanes
    with different sampling periods — a knob sweep evaluates exactly
    that — would almost never share a wall-clock step, but they always
    share cycle rendezvous, so every cycle batches the full surviving
    lane set.  Each lane's cycle carries its own simulated time; lanes
    are independent rollouts, so nothing couples their clocks.

    Sharing track objects, camera sizes, ISP names, or identifier
    instances across lanes is what unlocks the batched kernels, but
    none of it is required — unshared lanes fall back to their serial
    kernels and stay bit-identical either way.

    ``cache``/``cache_documents`` enable per-lane result reuse: before
    simulating, each lane with a key document is looked up in the store
    (duck-typed: any object with ``load(document)``/``store(document,
    result)``, normally a :class:`repro.cache.RolloutCache`) and only
    the misses are rolled — a batch with partial hits shrinks to its
    live lanes, which stay bit-identical because lanes are independent.
    Fresh results are written back unless ``cache_write=False`` (the
    sweep runner's pool workers read through but leave writing to the
    parent process).
    """

    def __init__(
        self,
        engines: Sequence[HilEngine],
        *,
        cache=None,
        cache_documents: Optional[Sequence[Optional[dict]]] = None,
        cache_write: bool = True,
    ):
        if not engines:
            raise ValueError("BatchedHilEngine needs at least one engine")
        self.engines = list(engines)
        if cache_documents is not None and len(cache_documents) != len(
            self.engines
        ):
            raise ValueError(
                f"expected {len(self.engines)} cache documents, "
                f"got {len(cache_documents)}"
            )
        self.cache = cache
        self.cache_documents = (
            list(cache_documents) if cache_documents is not None else None
        )
        self.cache_write = cache_write

    @staticmethod
    def _t_ms(lane: _Lane) -> float:
        """The lane's current simulated time (its own clock)."""
        return lane.step * lane.engine.config.sim_step_ms

    def run(self, start_s: float = 0.0) -> List[HilResult]:
        """Simulate every lane from ``start_s``; results in lane order.

        With a cache attached, cached lanes are loaded instead of
        simulated and fresh lanes are written back (see the class
        docstring); the returned list is indistinguishable from a
        cache-less run.
        """
        if self.cache is None or self.cache_documents is None:
            return self._run_lanes(self.engines, start_s)
        results: List[Optional[HilResult]] = [
            self.cache.load(document) for document in self.cache_documents
        ]
        live = [i for i, result in enumerate(results) if result is None]
        if live:
            fresh = self._run_lanes([self.engines[i] for i in live], start_s)
            for i, result in zip(live, fresh):
                results[i] = result
                if self.cache_write:
                    self.cache.store(self.cache_documents[i], result)
        return results  # type: ignore[return-value]

    def _run_lanes(
        self, engines: Sequence[HilEngine], start_s: float
    ) -> List[HilResult]:
        """Simulate *engines* lock-step (the cache-less core of :meth:`run`)."""
        # Reuse an already-active profiler (REPRO_PROFILE=1); otherwise
        # any lane asking for profiling scopes one shared collector over
        # the whole batch (batched spans are whole-batch by nature).
        profiler = profiling.get_active()
        local_profiler = None
        if profiler is None and any(e.config.profile for e in engines):
            profiler = local_profiler = profiling.Profiler()
            profiling.activate(local_profiler)

        lanes: List[_Lane] = []
        for engine in engines:
            vehicle, n_steps = engine._start_run(start_s)
            lane = _Lane(engine=engine, vehicle=vehicle, n_steps=n_steps)
            lane.s_hint = start_s
            lane.times = np.zeros(n_steps)
            lane.s_arr = np.zeros(n_steps)
            lane.d_arr = np.zeros(n_steps)
            lane.y_arr = np.zeros(n_steps)
            lane.steer_arr = np.zeros(n_steps)
            lane.speed_arr = np.zeros(n_steps)
            lanes.append(lane)

        wall_started = time.time()
        try:
            active = [lane for lane in lanes if lane.n_steps > 0]
            while active:
                self._advance_all(active)
                due = [lane for lane in active if lane.active]
                if due:
                    self._control_cycles(due)
                    self._cycle_steps(due)
                active = [lane for lane in active if lane.active]
        finally:
            if local_profiler is not None:
                profiling.deactivate()

        rec = telemetry.get_active()
        if rec is not None and profiler is not None:
            rec.metrics.absorb_profiler(profiler.stats())

        wall_finished = time.time()
        return [
            lane.engine._build_result(
                lane.times,
                lane.s_arr,
                lane.d_arr,
                lane.y_arr,
                lane.steer_arr,
                lane.speed_arr,
                lane.recorded,
                lane.cycles,
                lane.crashed,
                lane.crash_s,
                lane.completed,
                profiler,
                wall_started,
                wall_finished,
            )
            for lane in lanes
        ]

    # ------------------------------------------------------------------

    def _advance_to_cycle(self, lane: _Lane) -> None:
        """Advance a lane's plant steps until its next control cycle.

        Replays the serial loop exactly: actuate pending commands at the
        top of every step, stop *before* the cycle when the step hits
        ``control_due``, otherwise run the step's plant update.  The
        lane deactivates here when its step budget runs out.
        """
        while lane.active:
            step = lane.step
            if step >= lane.n_steps:
                lane.active = False
                return
            # Actuate commands whose sensor-to-actuation delay elapsed
            # (before the new sample, exactly as the serial loop does).
            while lane.pending and lane.pending[0][0] <= step:
                lane.current_u = lane.pending.pop(0)[1]
            if step == lane.control_due:
                return
            self._post_step(lane)

    def _post_step(self, lane: _Lane) -> None:
        """The plant half of one simulation step: move, record, check."""
        step = lane.step
        step_s = lane.engine.config.sim_step_ms / 1000.0
        lane.vehicle.step(step_s, lane.current_u)
        state = lane.vehicle.state
        track = lane.engine.track
        s_now, d_now = track.frenet(state.pose.x, state.pose.y, s_hint=lane.s_hint)
        lane.s_hint = s_now
        look = (
            state.pose.position()
            + lane.engine.perception.lookahead * state.pose.forward()
        )
        _, y_true = track.frenet(look[0], look[1], s_hint=s_now)

        lane.times[lane.recorded] = (step + 1) * step_s
        lane.s_arr[lane.recorded] = s_now
        lane.d_arr[lane.recorded] = d_now
        lane.y_arr[lane.recorded] = y_true
        lane.steer_arr[lane.recorded] = state.steer
        lane.speed_arr[lane.recorded] = state.speed
        lane.recorded += 1
        lane.step += 1

        cfg = lane.engine.config
        if abs(d_now) > cfg.crash_offset_m:
            lane.crashed = True
            lane.crash_s = s_now
            lane.active = False
        elif s_now >= track.length - cfg.end_margin_m:
            lane.completed = True
            lane.active = False

    @staticmethod
    def _plant_groups(lanes: List[_Lane]) -> Dict[tuple, List[_Lane]]:
        """Group lanes whose plant steps can run as one stacked update."""
        groups: Dict[tuple, List[_Lane]] = {}
        for lane in lanes:
            if not lane.active:
                continue
            key = (
                lane.engine.config.sim_step_ms,
                lane.vehicle.params,
                id(lane.engine.track),
            )
            groups.setdefault(key, []).append(lane)
        return groups

    def _advance_all(self, lanes: List[_Lane]) -> None:
        """Advance every lane to its next control cycle, plant vectorized.

        Lanes sharing ``(sim_step_ms, vehicle params, track)`` step as a
        stacked cohort through :meth:`Vehicle.step_batch` and
        :meth:`Track.frenet_batch`; a lane with no cohort partner takes
        the scalar :meth:`_advance_to_cycle` path.  Either way each
        lane replays the serial per-step logic in the serial order.
        """
        for (step_ms, params, _), members in self._plant_groups(lanes).items():
            if len(members) == 1:
                self._advance_to_cycle(members[0])
            else:
                self._advance_group(members, params, step_ms / 1000.0)

    def _advance_group(self, members: List[_Lane], params, dt: float) -> None:
        """Lock-step plant ticks for one homogeneous lane cohort.

        The cohort's plant state lives in stacked arrays across ticks;
        each tick applies the serial per-step logic to every lane not
        yet at its cycle — budget check, pending actuation, then one
        vectorized plant step.  Lanes drop out of the tick as they hit
        their ``control_due`` (or crash / finish / exhaust the budget);
        survivors' :class:`VehicleState` objects are materialized once,
        at the rendezvous.
        """
        track = members[0].engine.track
        state = np.array(
            [
                [
                    lane.vehicle.state.pose.x,
                    lane.vehicle.state.pose.y,
                    lane.vehicle.state.pose.heading,
                    lane.vehicle.state.lateral_velocity,
                    lane.vehicle.state.yaw_rate,
                ]
                for lane in members
            ]
        )
        speed = np.array([lane.vehicle.state.speed for lane in members])
        steer = np.array([lane.vehicle.state.steer for lane in members])
        target = np.array([lane.vehicle.target_speed for lane in members])
        u = np.array([lane.current_u for lane in members])
        hints = np.array([lane.s_hint for lane in members])
        look = np.array([lane.engine.perception.lookahead for lane in members])

        while True:
            idxs = []
            for j, lane in enumerate(members):
                if not lane.active:
                    continue
                if lane.step >= lane.n_steps:
                    lane.active = False
                    continue
                if lane.pending and lane.pending[0][0] <= lane.step:
                    while lane.pending and lane.pending[0][0] <= lane.step:
                        lane.current_u = lane.pending.pop(0)[1]
                    u[j] = lane.current_u
                if lane.step != lane.control_due:
                    idxs.append(j)
            if not idxs:
                break
            sel = np.array(idxs)
            new_state, new_speed, new_steer = Vehicle.step_batch(
                params, dt, state[sel], speed[sel], steer[sel], target[sel], u[sel]
            )
            s_now, d_now, y_true = self._project_batch(
                track, new_state, look[sel], hints[sel]
            )
            state[sel] = new_state
            speed[sel] = new_speed
            steer[sel] = new_steer
            hints[sel] = s_now
            for row, j in enumerate(idxs):
                self._record_step(
                    members[j],
                    track,
                    dt,
                    s_now[row],
                    d_now[row],
                    y_true[row],
                    new_steer[row],
                    new_speed[row],
                )
        for j, lane in enumerate(members):
            if lane.active:
                self._write_state(lane, state[j], speed[j], steer[j])

    def _cycle_steps(self, due: List[_Lane]) -> None:
        """The plant step every lane runs right after its control cycle.

        Same stacked update as :meth:`_advance_group` but for exactly
        one step, with state re-gathered because the cycle just changed
        each lane's speed target.  No pending actuation here: the serial
        loop pops commands before the cycle, not after.
        """
        for (step_ms, params, _), members in self._plant_groups(due).items():
            if len(members) == 1:
                self._post_step(members[0])
                continue
            dt = step_ms / 1000.0
            track = members[0].engine.track
            state = np.array(
                [
                    [
                        lane.vehicle.state.pose.x,
                        lane.vehicle.state.pose.y,
                        lane.vehicle.state.pose.heading,
                        lane.vehicle.state.lateral_velocity,
                        lane.vehicle.state.yaw_rate,
                    ]
                    for lane in members
                ]
            )
            speed = np.array([lane.vehicle.state.speed for lane in members])
            steer = np.array([lane.vehicle.state.steer for lane in members])
            target = np.array([lane.vehicle.target_speed for lane in members])
            u = np.array([lane.current_u for lane in members])
            hints = np.array([lane.s_hint for lane in members])
            look = np.array(
                [lane.engine.perception.lookahead for lane in members]
            )
            new_state, new_speed, new_steer = Vehicle.step_batch(
                params, dt, state, speed, steer, target, u
            )
            s_now, d_now, y_true = self._project_batch(
                track, new_state, look, hints
            )
            for j, lane in enumerate(members):
                self._record_step(
                    lane,
                    track,
                    dt,
                    s_now[j],
                    d_now[j],
                    y_true[j],
                    new_steer[j],
                    new_speed[j],
                )
                if lane.active:
                    self._write_state(lane, new_state[j], new_speed[j], new_steer[j])

    @staticmethod
    def _project_batch(
        track: Track, state: np.ndarray, look: np.ndarray, hints: np.ndarray
    ):
        """Stacked pose + look-ahead Frenet projections for one tick."""
        s_now, d_now = track.frenet_batch(state[:, 0], state[:, 1], hints)
        look_x = state[:, 0] + look * np.cos(state[:, 2])
        look_y = state[:, 1] + look * np.sin(state[:, 2])
        _, y_true = track.frenet_batch(look_x, look_y, s_now)
        return s_now, d_now, y_true

    @staticmethod
    def _record_step(
        lane: _Lane,
        track: Track,
        dt: float,
        s_now,
        d_now,
        y_true,
        steer,
        speed,
    ) -> None:
        """Per-lane trace write + crash/finish checks of one plant step."""
        rec = lane.recorded
        lane.times[rec] = (lane.step + 1) * dt
        lane.s_arr[rec] = s_now
        lane.d_arr[rec] = d_now
        lane.y_arr[rec] = y_true
        lane.steer_arr[rec] = steer
        lane.speed_arr[rec] = speed
        lane.recorded += 1
        lane.step += 1
        lane.s_hint = float(s_now)
        cfg = lane.engine.config
        if abs(d_now) > cfg.crash_offset_m:
            lane.crashed = True
            lane.crash_s = float(s_now)
            lane.active = False
        elif s_now >= track.length - cfg.end_margin_m:
            lane.completed = True
            lane.active = False

    @staticmethod
    def _write_state(lane: _Lane, row: np.ndarray, speed, steer) -> None:
        """Materialize a lane's stacked plant state back onto its vehicle."""
        lane.vehicle.state = VehicleState(
            pose=Pose2D(float(row[0]), float(row[1]), float(row[2])),
            lateral_velocity=float(row[3]),
            yaw_rate=float(row[4]),
            steer=float(steer),
            speed=float(speed),
        )

    def _control_cycles(self, due: List[_Lane]) -> None:
        """Run one sensing+control cycle for every due lane, batched."""
        pres = [
            lane.engine._cycle_begin(
                self._t_ms(lane), lane.vehicle.state, lane.s_hint
            )
            for lane in due
        ]

        sensing = [i for i, pre in enumerate(pres) if not pre.dropped]
        rgbs: Dict[int, np.ndarray] = {}
        if sensing:
            raws = self._render(due, pres, sensing)
            rgbs = self._isp(due, pres, sensing, raws)
            self._classify(due, pres, sensing, rgbs)

        decisions = []
        for i, (lane, pre) in enumerate(zip(due, pres)):
            decision = lane.engine.manager.decide(self._t_ms(lane), pre.invoked)
            decisions.append(decision)
            if i in rgbs:
                lane.engine.perception.set_roi(decision.roi)

        measurements = self._perceive(due, rgbs)

        for i, (lane, pre, decision) in enumerate(zip(due, pres, decisions)):
            measurement = measurements.get(i)
            if measurement is None:
                measurement = PerceptionResult.invalid()
            u, decision, record, controller = lane.engine._cycle_finish(
                self._t_ms(lane), pre, decision, measurement, lane.controller
            )
            lane.controller = controller
            lane.cycles.append(record)
            lane.vehicle.set_target_speed(decision.speed_kmph / 3.6)
            tau_steps, h_steps = lane.engine._timing_steps(record)
            lane.pending.append((lane.step + tau_steps, u))
            lane.control_due = lane.step + h_steps

    def _render(
        self,
        due: List[_Lane],
        pres: list,
        sensing: List[int],
    ) -> Dict[int, np.ndarray]:
        """Batched render + per-lane RAW corruption; RAW plane per lane."""
        groups: Dict[tuple, List[int]] = {}
        for i in sensing:
            renderer = due[i].engine.renderer
            key = (id(renderer.track), renderer.camera, renderer.options)
            groups.setdefault(key, []).append(i)

        raws: Dict[int, np.ndarray] = {}
        for members in groups.values():
            if len(members) == 1:
                i = members[0]
                with profile("hil.render"):
                    raws[i] = due[i].engine.renderer.render_raw(pres[i].state.pose)
            else:
                renderers = [due[i].engine.renderer for i in members]
                poses = [pres[i].state.pose for i in members]
                with profile("hil.render", count=len(members)):
                    stacked = render_raw_batch(renderers, poses)
                for j, i in enumerate(members):
                    raws[i] = stacked[j]
        for i in sensing:
            raws[i] = due[i].engine.injector.corrupt_raw(
                self._t_ms(due[i]), raws[i]
            )
        return raws

    def _isp(
        self,
        due: List[_Lane],
        pres: list,
        sensing: List[int],
        raws: Dict[int, np.ndarray],
    ) -> Dict[int, np.ndarray]:
        """Batched ISP per active configuration; RGB frame per lane."""
        rgbs: Dict[int, np.ndarray] = {}
        groups: Dict[tuple, List[int]] = {}
        for i in sensing:
            tap = due[i].engine.injector.isp_tap(self._t_ms(due[i]))
            if tap is not None:
                # An active ISP tap fault has per-stage hooks the
                # batched kernels cannot honour: serial path this cycle.
                with profile("hil.isp"):
                    rgbs[i] = due[i].engine._isp(pres[i].active_isp).process(
                        raws[i], tap=tap
                    )
                continue
            groups.setdefault((pres[i].active_isp, raws[i].shape), []).append(i)
        for (isp_name, _), members in groups.items():
            pipeline = due[members[0]].engine._isp(isp_name)
            if len(members) == 1:
                i = members[0]
                with profile("hil.isp"):
                    rgbs[i] = pipeline.process(raws[i])
            else:
                stacked = np.stack([raws[i] for i in members])
                batch_rgb = pipeline.process_batch(stacked)
                for j, i in enumerate(members):
                    rgbs[i] = batch_rgb[j]
        return rgbs

    def _classify(
        self,
        due: List[_Lane],
        pres: list,
        sensing: List[int],
        rgbs: Dict[int, np.ndarray],
    ) -> None:
        """Stacked classifier forward where possible, then per-lane seams.

        Only lanes whose injector is the stateless :class:`NullInjector`
        may precompute features: their ``classifier_outcomes`` is
        guaranteed ``None`` (the clean path), so handing the features to
        :meth:`HilEngine._cycle_classify` skips exactly the serial
        ``identify`` call and nothing else.  Any identifier exposing
        ``identify_batch`` (e.g. ``CnnIdentifier``) qualifies; grouping
        is by identifier *instance* — shared weights by construction.
        """
        features: Dict[int, dict] = {}
        groups: Dict[int, List[int]] = {}
        for i in sensing:
            engine = due[i].engine
            if (
                pres[i].invoked
                and type(engine.injector) is NullInjector
                and getattr(engine.identifier, "identify_batch", None) is not None
            ):
                groups.setdefault(id(engine.identifier), []).append(i)
        for members in groups.values():
            if len(members) < 2:
                continue  # serial call inside _cycle_classify is as fast
            identifier = due[members[0]].engine.identifier
            with profile("hil.classifier", count=len(members)):
                batched = identifier.identify_batch(
                    [rgbs[i] for i in members],
                    [pres[i].invoked for i in members],
                    [pres[i].true_situation for i in members],
                )
            for j, i in enumerate(members):
                features[i] = batched[j]
        for i in sensing:
            due[i].engine._cycle_classify(
                self._t_ms(due[i]), pres[i], rgbs[i], features=features.get(i)
            )

    def _perceive(
        self,
        due: List[_Lane],
        rgbs: Dict[int, np.ndarray],
    ) -> Dict[int, PerceptionResult]:
        """Batched warp+threshold, per-lane windows/fit, dropout faults."""
        measurements: Dict[int, PerceptionResult] = {}
        members = sorted(rgbs)
        if members:
            pipelines = [due[i].engine.perception for i in members]
            frames = [rgbs[i] for i in members]
            with profile("hil.pr", count=len(members)):
                results = perception_process_batch(pipelines, frames)
            for i, measurement in zip(members, results):
                if due[i].engine.injector.perception_dropout(self._t_ms(due[i])):
                    measurement = PerceptionResult.invalid()
                measurements[i] = measurement
        return measurements


def run_batch(
    configs: Sequence[HilConfig],
    *,
    track: Union[Track, Sequence[Track]],
    case: Union[CaseConfig, str],
    table: Union[
        Mapping[Situation, KnobSetting],
        Sequence[Optional[Mapping[Situation, KnobSetting]]],
        None,
    ] = None,
    identifier: Union[SituationIdentifier, str, None] = None,
    start_s: float = 0.0,
) -> List[HilResult]:
    """Build one engine per config and run them lock-step.

    ``track`` and ``table`` may be single values (shared by every lane)
    or per-lane sequences.  ``identifier`` accepts a registry spec
    string (resolved per lane, so each lane derives its own identifier
    RNG streams exactly as a serial run would) or a stateless
    identifier instance such as :class:`CnnIdentifier` (shared across
    lanes, which is what enables the stacked classifier forward).
    Results come back in config order, each bit-identical to
    ``HilEngine(...).run(start_s)`` for that lane.
    """
    n_lanes = len(configs)
    tracks = list(track) if isinstance(track, (list, tuple)) else [track] * n_lanes
    if len(tracks) != n_lanes:
        raise ValueError(f"expected {n_lanes} tracks, got {len(tracks)}")
    if table is None or isinstance(table, Mapping):
        tables: Sequence = [table] * n_lanes
    else:
        tables = list(table)
        if len(tables) != n_lanes:
            raise ValueError(f"expected {n_lanes} tables, got {len(tables)}")
    engines = [
        HilEngine(
            tracks[i],
            case,
            table=tables[i],
            identifier=identifier,
            config=configs[i],
        )
        for i in range(n_lanes)
    ]
    return BatchedHilEngine(engines).run(start_s=start_s)
